#ifndef METACOMM_CORE_CIRCUIT_BREAKER_H_
#define METACOMM_CORE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace metacomm::core {

/// Per-repository circuit breaker guarding the Update Manager's
/// propagation path.
///
/// The paper logs failed updates for administrator-driven recovery
/// (§4.4) but says nothing about *how long* to keep hammering a dead
/// administrative link. With emulated link timeouts a down device can
/// stall every propagation wave for its full fail-latency; the breaker
/// bounds that cost: after `failure_threshold` consecutive retryable
/// failures the circuit opens and further updates to the repository
/// fast-fail into the error log without touching the device. After an
/// exponentially growing backoff one probe update is let through
/// (half-open); success re-closes the circuit, failure re-opens it
/// with a doubled backoff.
///
/// Permanent failures (the device responded and rejected the command)
/// count as proof of life: they reset the consecutive-failure streak.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive retryable failures before the circuit opens.
    int failure_threshold = 3;
    /// First open interval; doubles on every failed probe.
    int64_t open_backoff_micros = 50'000;
    /// Backoff growth cap.
    int64_t max_backoff_micros = 5'000'000;
    /// Disabled breakers admit everything and never open.
    bool enabled = true;
  };

  /// Point-in-time view for the monitor and tests.
  struct Snapshot {
    State state = State::kClosed;
    int consecutive_failures = 0;
    /// Times the circuit transitioned closed/half-open -> open.
    uint64_t open_transitions = 0;
    /// Updates fast-failed while the circuit was open.
    uint64_t skipped = 0;
    /// Current open interval (what the next failed probe doubles).
    int64_t backoff_micros = 0;
    /// NowMicros timestamp of the last half-open probe admission; 0 if
    /// never probed.
    int64_t last_probe_micros = 0;
  };

  explicit CircuitBreaker(Options options) : options_(options) {}

  /// Asks to send one update. Closed: admitted. Open: admitted once
  /// the backoff deadline passed (the caller becomes the half-open
  /// probe), otherwise refused and counted as skipped. Half-open: the
  /// in-flight probe blocks other updates, but a probe admitted more
  /// than one backoff interval ago is presumed lost (its wave died
  /// with Stop(), say) and a new probe is admitted.
  bool Allow(int64_t now_micros) EXCLUDES(mutex_);

  /// Reports the outcome of an admitted update. Success closes the
  /// circuit and resets the streak and backoff; a retryable failure
  /// extends the streak (opening the circuit at the threshold, or
  /// immediately when it was a failed half-open probe).
  void OnSuccess() EXCLUDES(mutex_);
  void OnRetryableFailure(int64_t now_micros) EXCLUDES(mutex_);

  /// Administrative reset: Synchronize(device) re-closes the circuit
  /// before dumping the repository, since sync *is* the recovery path.
  void ForceClose() EXCLUDES(mutex_);

  Snapshot snapshot() const EXCLUDES(mutex_);
  State state() const EXCLUDES(mutex_);

  static const char* StateName(State state);

 private:
  const Options options_;

  mutable Mutex mutex_{LockRank::kBreaker, "core.breaker"};
  State state_ GUARDED_BY(mutex_) = State::kClosed;
  int consecutive_failures_ GUARDED_BY(mutex_) = 0;
  uint64_t open_transitions_ GUARDED_BY(mutex_) = 0;
  uint64_t skipped_ GUARDED_BY(mutex_) = 0;
  int64_t backoff_micros_ GUARDED_BY(mutex_) = 0;
  /// NowMicros deadline after which an open circuit admits a probe.
  int64_t retry_at_micros_ GUARDED_BY(mutex_) = 0;
  int64_t last_probe_micros_ GUARDED_BY(mutex_) = 0;
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_CIRCUIT_BREAKER_H_
