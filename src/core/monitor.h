#ifndef METACOMM_CORE_MONITOR_H_
#define METACOMM_CORE_MONITOR_H_

#include <string>

#include "common/status.h"
#include "core/update_manager.h"
#include "ldap/server.h"
#include "ltap/gateway.h"

namespace metacomm::core {

/// Publishes MetaComm runtime statistics as directory entries under
/// cn=monitor,<suffix> — the directory-native monitoring idiom (real
/// servers expose cn=monitor the same way). Administrators browse the
/// meta-directory's own health with the same LDAP tools they use for
/// everything else.
///
/// Layout:
///   cn=monitor,<suffix>                    (container)
///   cn=gateway,cn=monitor,<suffix>         LTAP counters
///   cn=update-manager,cn=monitor,<suffix>  UM counters
///   cn=directory,cn=monitor,<suffix>       backend size/changes
///   cn=ldap-reads,cn=monitor,<suffix>      read path: search counts,
///                                          plan mix, candidate
///                                          selectivity, snapshot age
///   cn=um-health-<repo>,cn=monitor,<suffix> per-repository fault
///                                          surface: circuit-breaker
///                                          state, consecutive
///                                          failures, open skips,
///                                          replay backlog, injected
///                                          fault telemetry
///
/// Counters are point-in-time snapshots; call Refresh() to update.
/// Writes go straight to the backend (monitor data is operational, not
/// integrated user data — it must not trigger propagation).
class MonitorPublisher {
 public:
  /// None of the pointers are owned; all must outlive the publisher.
  MonitorPublisher(ldap::LdapServer* server, ltap::LtapGateway* gateway,
                   UpdateManager* update_manager, std::string suffix);

  /// Creates/updates the monitor entries with current counters.
  Status Refresh();

  /// DN of the monitor container.
  std::string base_dn() const { return "cn=monitor," + suffix_; }

 private:
  /// Upserts one monitor entry with the given counter attributes.
  Status Publish(const std::string& name,
                 const std::vector<std::pair<std::string, uint64_t>>&
                     counters);

  /// Upserts one monitor entry from pre-rendered "key=value" strings
  /// (for non-numeric values like the breaker state name).
  Status PublishInfo(const std::string& name,
                     std::vector<std::string> info);

  ldap::LdapServer* server_;
  ltap::LtapGateway* gateway_;
  UpdateManager* update_manager_;
  std::string suffix_;
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_MONITOR_H_
