#include "core/error_log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "common/strings.h"

namespace metacomm::core {

namespace {

/// Decodes "attr=v1,v2" (escaped) into the record.
Status DecodeImageLine(const std::string& line, lexpress::Record* record) {
  size_t eq = line.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("error image line without '=': " + line);
  }
  METACOMM_ASSIGN_OR_RETURN(std::string attr,
                            UnescapeErrorToken(line.substr(0, eq)));
  lexpress::Value values;
  std::string rest = line.substr(eq + 1);
  size_t start = 0;
  while (true) {
    size_t comma = rest.find(',', start);
    std::string token = comma == std::string::npos
                            ? rest.substr(start)
                            : rest.substr(start, comma - start);
    METACOMM_ASSIGN_OR_RETURN(std::string value,
                              UnescapeErrorToken(token));
    values.push_back(std::move(value));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  record->Set(attr, std::move(values));
  return Status::Ok();
}

std::vector<std::string> EncodeImage(const lexpress::Record& record) {
  std::vector<std::string> lines;
  for (const auto& [attr, values] : record.attrs()) {
    std::string line = EscapeErrorToken(attr) + "=";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) line += ',';
      line += EscapeErrorToken(values[i]);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

Status DecodeImage(const std::vector<std::string>& lines,
                   const std::string& schema, lexpress::Record* record) {
  record->set_schema(schema);
  for (const std::string& line : lines) {
    METACOMM_RETURN_IF_ERROR(DecodeImageLine(line, record));
  }
  return Status::Ok();
}

StatusOr<lexpress::DescriptorOp> ParseOp(const std::string& name) {
  if (EqualsIgnoreCase(name, "add")) return lexpress::DescriptorOp::kAdd;
  if (EqualsIgnoreCase(name, "modify")) {
    return lexpress::DescriptorOp::kModify;
  }
  if (EqualsIgnoreCase(name, "delete")) {
    return lexpress::DescriptorOp::kDelete;
  }
  return Status::InvalidArgument("unknown errorOp '" + name + "'");
}

}  // namespace

std::string EscapeErrorToken(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '%' || c == ',' || c == '=') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

StatusOr<std::string> UnescapeErrorToken(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out.push_back(escaped[i]);
      continue;
    }
    std::optional<uint64_t> byte =
        i + 2 < escaped.size()
            ? ParseHexUint64(std::string_view(escaped).substr(i + 1, 2))
            : std::nullopt;
    if (!byte.has_value()) {
      return Status::InvalidArgument("bad escape in error token: " +
                                     escaped);
    }
    out.push_back(static_cast<char>(*byte));
    i += 2;
  }
  return out;
}

void EncodeFailure(const LoggedFailure& failure, ldap::Entry* entry) {
  entry->SetOne("errorSeq", std::to_string(failure.sequence));
  if (!failure.repository.empty()) {
    entry->SetOne("errorRepository", failure.repository);
  }
  entry->SetOne("errorClass", ApplyOutcomeName(failure.outcome));
  entry->SetOne("errorOp",
                lexpress::DescriptorOpName(failure.update.op));
  if (!failure.update.source.empty()) {
    entry->SetOne("errorSource", failure.update.source);
  }
  entry->SetOne("errorSchema", failure.update.schema);
  entry->SetOne("errorConditional",
                failure.update.conditional ? "true" : "false");
  std::vector<std::string> explicit_attrs(
      failure.update.explicit_attrs.begin(),
      failure.update.explicit_attrs.end());
  if (!explicit_attrs.empty()) {
    entry->Set("errorExplicitAttr", std::move(explicit_attrs));
  }
  std::vector<std::string> old_image = EncodeImage(failure.update.old_record);
  if (!old_image.empty()) entry->Set("errorOldImage", std::move(old_image));
  std::vector<std::string> new_image = EncodeImage(failure.update.new_record);
  if (!new_image.empty()) entry->Set("errorNewImage", std::move(new_image));
}

StatusOr<LoggedFailure> ParseErrorEntry(const ldap::Entry& entry) {
  std::string seq_text = entry.GetFirst("errorSeq");
  if (seq_text.empty()) {
    return Status::InvalidArgument(entry.dn().ToString() +
                                   ": no errorSeq (audit-only entry)");
  }
  LoggedFailure failure;
  std::optional<uint64_t> sequence = ParseUint64(seq_text);
  if (!sequence.has_value()) {
    return Status::InvalidArgument(entry.dn().ToString() +
                                   ": bad errorSeq '" + seq_text + "'");
  }
  failure.sequence = *sequence;
  failure.repository = entry.GetFirst("errorRepository");
  std::optional<ApplyOutcome> outcome =
      ParseApplyOutcome(entry.GetFirst("errorClass"));
  if (!outcome.has_value()) {
    return Status::InvalidArgument(entry.dn().ToString() +
                                   ": bad errorClass '" +
                                   entry.GetFirst("errorClass") + "'");
  }
  failure.outcome = *outcome;
  failure.error =
      Status::Unavailable(entry.GetFirst("errorText"));
  METACOMM_ASSIGN_OR_RETURN(failure.update.op,
                            ParseOp(entry.GetFirst("errorOp")));
  failure.update.schema = entry.GetFirst("errorSchema");
  failure.update.source = entry.GetFirst("errorSource");
  failure.update.conditional =
      EqualsIgnoreCase(entry.GetFirst("errorConditional"), "true");
  for (const std::string& attr : entry.GetAll("errorExplicitAttr")) {
    failure.update.explicit_attrs.insert(attr);
  }
  METACOMM_RETURN_IF_ERROR(DecodeImage(entry.GetAll("errorOldImage"),
                                       failure.update.schema,
                                       &failure.update.old_record));
  METACOMM_RETURN_IF_ERROR(DecodeImage(entry.GetAll("errorNewImage"),
                                       failure.update.schema,
                                       &failure.update.new_record));
  return failure;
}

}  // namespace metacomm::core
