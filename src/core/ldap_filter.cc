#include "core/ldap_filter.h"

#include "core/integrated_schema.h"

namespace metacomm::core {

LdapFilter::LdapFilter(ldap::LdapService* service, LdapFilterConfig config)
    : service_(service), config_(std::move(config)) {}

ldap::OpContext LdapFilter::InternalContext() const {
  ldap::OpContext ctx;
  ctx.principal = "cn=metacomm";
  ctx.internal = true;
  return ctx;
}

lexpress::Record LdapFilter::ToRecord(const ldap::Entry& entry) const {
  lexpress::Record record("ldap");
  for (const auto& [name, attr] : entry.attributes()) {
    if (EqualsIgnoreCase(name, "objectClass")) continue;
    record.Set(name, attr.values());
  }
  return record;
}

StatusOr<ldap::Entry> LdapFilter::ToEntry(
    const lexpress::Record& record) const {
  std::string key = record.GetFirst(config_.key_attr);
  if (key.empty()) {
    return Status::InvalidArgument("ldap record lacks key attribute " +
                                   config_.key_attr + ": " +
                                   record.ToString());
  }
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn dn, DnForKey(key));
  ldap::Entry entry(std::move(dn));
  for (const auto& [name, value] : record.attrs()) {
    entry.Set(name, value);
  }
  // person requires sn; synthesize from cn when the source device has
  // no separate surname field (dirty-data tolerance).
  if (!entry.Has("sn")) {
    std::string cn = entry.GetFirst("cn");
    size_t space = cn.find_last_of(' ');
    entry.SetOne("sn", space == std::string::npos
                           ? cn
                           : cn.substr(space + 1));
  }
  ApplyObjectClasses(&entry);
  return entry;
}

StatusOr<ldap::Dn> LdapFilter::DnForKey(const std::string& key) const {
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base,
                            ldap::Dn::Parse(config_.people_base));
  return base.Child(ldap::Rdn(config_.key_attr, key));
}

StatusOr<std::optional<ldap::Entry>> LdapFilter::FindByKey(
    const std::string& key) {
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn dn, DnForKey(key));
  ldap::SearchRequest request;
  request.base = std::move(dn);
  request.scope = ldap::Scope::kBase;
  StatusOr<ldap::SearchResult> result =
      service_->Search(InternalContext(), request);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kNotFound) {
      return std::optional<ldap::Entry>();
    }
    return result.status();
  }
  if (result->entries.empty()) return std::optional<ldap::Entry>();
  return std::optional<ldap::Entry>(std::move(result->entries.front()));
}

StatusOr<std::optional<ldap::Entry>> LdapFilter::FindByAttr(
    const std::string& attr, const std::string& value) {
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base,
                            ldap::Dn::Parse(config_.people_base));
  ldap::SearchRequest request;
  request.base = std::move(base);
  request.scope = ldap::Scope::kSubtree;
  request.filter = ldap::Filter::Equality(attr, value);
  METACOMM_ASSIGN_OR_RETURN(ldap::SearchResult result,
                            service_->Search(InternalContext(), request));
  if (result.entries.empty()) return std::optional<ldap::Entry>();
  return std::optional<ldap::Entry>(std::move(result.entries.front()));
}

std::vector<ldap::Modification> LdapFilter::DiffMods(
    const ldap::Entry& current, const lexpress::Record& old_image,
    const lexpress::Record& target) const {
  std::vector<ldap::Modification> mods;

  // Replace attributes whose target values differ from the entry.
  for (const auto& [name, value] : target.attrs()) {
    if (EqualsIgnoreCase(name, config_.key_attr)) continue;  // RDN.
    std::vector<std::string> current_values = current.GetAll(name);
    bool equal = current_values.size() == value.size();
    if (equal) {
      for (const std::string& v : value) {
        bool found = false;
        for (const std::string& c : current_values) {
          if (EqualsIgnoreCase(c, v)) found = true;
        }
        if (!found) equal = false;
      }
    }
    if (equal) continue;
    ldap::Modification mod;
    mod.type = ldap::Modification::Type::kReplace;
    mod.attribute = name;
    mod.values = value;
    mods.push_back(std::move(mod));
  }

  // Remove attributes the update dropped: present in the old image,
  // absent from the target. Attributes outside the update's view
  // (e.g. mail, set by other tools) are left alone.
  for (const auto& [name, value] : old_image.attrs()) {
    if (EqualsIgnoreCase(name, config_.key_attr)) continue;
    if (target.Has(name) || !current.Has(name)) continue;
    ldap::Modification mod;
    mod.type = ldap::Modification::Type::kReplace;
    mod.attribute = name;
    mods.push_back(std::move(mod));
  }

  // Auxiliary classes required by newly set attributes.
  ldap::Entry merged = current;
  for (const auto& [name, value] : target.attrs()) {
    merged.Set(name, value);
  }
  std::vector<std::string> needed = ApplyObjectClasses(&merged);
  for (std::string& cls : needed) {
    ldap::Modification mod;
    mod.type = ldap::Modification::Type::kAdd;
    mod.attribute = "objectClass";
    mod.values = {std::move(cls)};
    mods.push_back(std::move(mod));
  }
  return mods;
}

ApplyResult LdapFilter::Apply(const lexpress::UpdateDescriptor& update) {
  return ApplyWithContext(InternalContext(), update);
}

std::vector<ApplyResult> LdapFilter::ApplyBatch(
    const std::vector<lexpress::UpdateDescriptor>& updates) {
  // One internal context — one LTAP session — carries the whole batch.
  ldap::OpContext ctx = InternalContext();
  std::vector<ApplyResult> results;
  results.reserve(updates.size());
  for (const lexpress::UpdateDescriptor& update : updates) {
    results.push_back(ApplyWithContext(ctx, update));
  }
  return results;
}

ApplyResult LdapFilter::ApplyWithContext(
    const ldap::OpContext& ctx, const lexpress::UpdateDescriptor& update) {
  std::string old_key = update.old_record.GetFirst(config_.key_attr);
  std::string new_key = update.new_record.GetFirst(config_.key_attr);

  switch (update.op) {
    case lexpress::DescriptorOp::kDelete: {
      METACOMM_ASSIGN_OR_RETURN(ldap::Dn dn, DnForKey(old_key));
      Status status = service_->Delete(ctx, ldap::DeleteRequest{dn});
      if (status.code() == StatusCode::kNotFound && update.conditional) {
        return lexpress::Record("ldap");  // Already gone — converged.
      }
      METACOMM_RETURN_IF_ERROR(status);
      return lexpress::Record("ldap");
    }
    case lexpress::DescriptorOp::kAdd: {
      METACOMM_ASSIGN_OR_RETURN(std::optional<ldap::Entry> existing,
                                FindByKey(new_key));
      if (existing.has_value()) {
        if (!update.conditional) {
          return Status::AlreadyExists("entry already exists: " +
                                       existing->dn().ToString());
        }
        // Conditional add -> modify (§5.4).
        std::vector<ldap::Modification> mods =
            DiffMods(*existing, update.old_record, update.new_record);
        if (!mods.empty()) {
          METACOMM_RETURN_IF_ERROR(service_->Modify(
              ctx, ldap::ModifyRequest{existing->dn(), std::move(mods)}));
        }
      } else {
        METACOMM_ASSIGN_OR_RETURN(ldap::Entry entry,
                                  ToEntry(update.new_record));
        METACOMM_RETURN_IF_ERROR(service_->Add(ctx,
                                               ldap::AddRequest{entry}));
      }
      METACOMM_ASSIGN_OR_RETURN(std::optional<ldap::Entry> stored,
                                FindByKey(new_key));
      return ToRecord(*stored);
    }
    case lexpress::DescriptorOp::kModify: {
      // Locate the entry: normally at the old key; idempotent reapply
      // may find it already renamed to the new key.
      std::string located_key = old_key.empty() ? new_key : old_key;
      METACOMM_ASSIGN_OR_RETURN(std::optional<ldap::Entry> entry,
                                FindByKey(located_key));
      bool renamed_already = false;
      if (!entry.has_value() && !new_key.empty() && new_key != old_key) {
        METACOMM_ASSIGN_OR_RETURN(entry, FindByKey(new_key));
        renamed_already = entry.has_value();
      }
      if (!entry.has_value()) {
        if (update.conditional) {
          // Conditional modify -> add fallback.
          METACOMM_ASSIGN_OR_RETURN(ldap::Entry fresh,
                                    ToEntry(update.new_record));
          METACOMM_RETURN_IF_ERROR(
              service_->Add(ctx, ldap::AddRequest{fresh}));
          return ToRecord(fresh);
        }
        return Status::NotFound("no entry with " + config_.key_attr +
                                "=" + located_key);
      }

      bool key_changes = !new_key.empty() && !old_key.empty() &&
                         new_key != old_key && !renamed_already;
      if (key_changes) {
        // The ModifyRDN/Modify pair (§5.1): the rename and the other
        // attribute changes cannot be one atomic LDAP operation.
        ldap::ModifyRdnRequest rename;
        rename.dn = entry->dn();
        rename.new_rdn = ldap::Rdn(config_.key_attr, new_key);
        rename.delete_old_rdn = true;
        METACOMM_RETURN_IF_ERROR(service_->ModifyRdn(ctx, rename));
        ++pair_operations_;
        if (pair_crash_hook_) {
          // Simulated UM crash between the pair: readers now see the
          // §5.1 inconsistency until resynchronization repairs it.
          METACOMM_RETURN_IF_ERROR(pair_crash_hook_());
        }
        METACOMM_ASSIGN_OR_RETURN(entry, FindByKey(new_key));
        if (!entry.has_value()) {
          return Status::Internal("entry lost during rename");
        }
      }

      std::vector<ldap::Modification> mods =
          DiffMods(*entry, update.old_record, update.new_record);
      if (!mods.empty()) {
        METACOMM_RETURN_IF_ERROR(service_->Modify(
            ctx, ldap::ModifyRequest{entry->dn(), std::move(mods)}));
      }
      METACOMM_ASSIGN_OR_RETURN(
          std::optional<ldap::Entry> stored,
          FindByKey(new_key.empty() ? located_key : new_key));
      if (!stored.has_value()) {
        return Status::Internal("entry vanished after modify");
      }
      return ToRecord(*stored);
    }
  }
  return Status::Internal("bad descriptor op");
}

StatusOr<std::vector<lexpress::Record>> LdapFilter::DumpAll() {
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base,
                            ldap::Dn::Parse(config_.people_base));
  ldap::SearchRequest request;
  request.base = std::move(base);
  request.scope = ldap::Scope::kSubtree;
  request.filter = ldap::Filter::Equality("objectClass", "person");
  METACOMM_ASSIGN_OR_RETURN(ldap::SearchResult result,
                            service_->Search(InternalContext(), request));
  std::vector<lexpress::Record> out;
  out.reserve(result.entries.size());
  for (const ldap::Entry& entry : result.entries) {
    out.push_back(ToRecord(entry));
  }
  return out;
}

}  // namespace metacomm::core
