#ifndef METACOMM_CORE_PROTOCOL_CONVERTERS_H_
#define METACOMM_CORE_PROTOCOL_CONVERTERS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "devices/device.h"
#include "lexpress/record.h"

namespace metacomm::core {

/// Protocol converter interface: "provides a unified API for all
/// repositories" (paper §4.1) — get by key, add/modify/delete, full
/// retrieval — while speaking each repository's proprietary protocol
/// underneath.
class ProtocolConverter {
 public:
  virtual ~ProtocolConverter() = default;

  virtual StatusOr<std::optional<lexpress::Record>> Get(
      const std::string& key) = 0;
  virtual Status Add(const lexpress::Record& record) = 0;

  /// Makes the repository's record match `record` exactly: fields in
  /// the record are set, fields the repository holds but the record
  /// lacks are cleared (device-generated fields excepted). The mapper
  /// always produces full images, so Modify is image replacement, not
  /// a merge — attribute removals must propagate (a checked-out hotel
  /// desk's port must leave the station).
  virtual Status Modify(const std::string& key,
                        const lexpress::Record& record) = 0;
  virtual Status Delete(const std::string& key) = 0;
  virtual StatusOr<std::vector<lexpress::Record>> DumpAll() = 0;
};

/// Speaks the Definity's OSSI-style line protocol ("add station ...").
/// All mutations go through Device::ExecuteCommand — the same interface
/// a human administrator's terminal uses — so MetaComm exercises the
/// legacy path rather than a privileged backdoor.
class PbxProtocolConverter : public ProtocolConverter {
 public:
  /// `device` is not owned and must outlive the converter.
  explicit PbxProtocolConverter(devices::Device* device)
      : device_(device) {}

  StatusOr<std::optional<lexpress::Record>> Get(
      const std::string& key) override;
  Status Add(const lexpress::Record& record) override;
  Status Modify(const std::string& key,
                const lexpress::Record& record) override;
  Status Delete(const std::string& key) override;
  StatusOr<std::vector<lexpress::Record>> DumpAll() override;

 private:
  /// Renders "Field value" pairs with quoting for the OSSI line.
  static std::string RenderFields(const lexpress::Record& record);

  devices::Device* device_;
};

/// Speaks the messaging platform's keyword protocol
/// ("ADD MAILBOX 4567 SubscriberName=...").
class MpProtocolConverter : public ProtocolConverter {
 public:
  explicit MpProtocolConverter(devices::Device* device)
      : device_(device) {}

  StatusOr<std::optional<lexpress::Record>> Get(
      const std::string& key) override;
  Status Add(const lexpress::Record& record) override;
  Status Modify(const std::string& key,
                const lexpress::Record& record) override;
  Status Delete(const std::string& key) override;
  StatusOr<std::vector<lexpress::Record>> DumpAll() override;

 private:
  static std::string RenderAssignments(const lexpress::Record& record);

  devices::Device* device_;
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_PROTOCOL_CONVERTERS_H_
