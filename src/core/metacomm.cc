#include "core/metacomm.h"

#include "core/integrated_schema.h"
#include "lexpress/mapping.h"

namespace metacomm::core {

MetaCommSystem::MetaCommSystem(SystemConfig config)
    : config_(std::move(config)), schema_(BuildIntegratedSchema()) {}

MetaCommSystem::~MetaCommSystem() {
  if (um_ != nullptr) um_->Stop();
}

StatusOr<std::unique_ptr<MetaCommSystem>> MetaCommSystem::Create(
    SystemConfig config) {
  std::unique_ptr<MetaCommSystem> system(
      new MetaCommSystem(std::move(config)));
  METACOMM_RETURN_IF_ERROR(system->Init());
  return system;
}

Status MetaCommSystem::Init() {
  // Directory server + gateway.
  ldap::ServerConfig server_config;
  server_config.allow_anonymous_writes = true;  // §7: simple security.
  server_ = std::make_unique<ldap::LdapServer>(BuildIntegratedSchema(),
                                               server_config);
  gateway_ = std::make_unique<ltap::LtapGateway>(server_.get(),
                                                 config_.gateway);

  // Bootstrap the suffix entries (written directly to the backend —
  // they exist before MetaComm starts).
  auto add_container = [this](const std::string& dn_text,
                              const std::string& object_class,
                              const std::string& naming_attr,
                              const std::string& naming_value) -> Status {
    METACOMM_ASSIGN_OR_RETURN(ldap::Dn dn, ldap::Dn::Parse(dn_text));
    ldap::Entry entry(std::move(dn));
    entry.AddObjectClass("top");
    entry.AddObjectClass(object_class);
    entry.SetOne(naming_attr, naming_value);
    Status status = server_->backend().Add(entry);
    if (status.code() == StatusCode::kAlreadyExists) return Status::Ok();
    return status;
  };
  {
    METACOMM_ASSIGN_OR_RETURN(ldap::Dn suffix,
                              ldap::Dn::Parse(config_.suffix));
    const ldap::Ava& ava = suffix.leaf().avas().front();
    std::string cls = EqualsIgnoreCase(ava.attribute, "ou")
                          ? "organizationalUnit"
                          : "organization";
    METACOMM_RETURN_IF_ERROR(
        add_container(config_.suffix, cls, ava.attribute, ava.value));
  }
  {
    METACOMM_ASSIGN_OR_RETURN(ldap::Dn people,
                              ldap::Dn::Parse(config_.people_base));
    const ldap::Ava& ava = people.leaf().avas().front();
    METACOMM_RETURN_IF_ERROR(add_container(
        config_.people_base, "organizationalUnit", ava.attribute,
        ava.value));
  }
  if (!config_.errors_base.empty()) {
    METACOMM_ASSIGN_OR_RETURN(ldap::Dn errors,
                              ldap::Dn::Parse(config_.errors_base));
    const ldap::Ava& ava = errors.leaf().avas().front();
    METACOMM_RETURN_IF_ERROR(add_container(
        config_.errors_base, kMetacommErrorClass, ava.attribute,
        ava.value));
  }

  // LDAP filter + Update Manager.
  LdapFilterConfig filter_config;
  filter_config.people_base = config_.people_base;
  ldap_filter_ =
      std::make_unique<LdapFilter>(gateway_.get(), filter_config);
  UpdateManagerConfig um_config = config_.um;
  um_config.error_base = config_.errors_base;
  um_ = std::make_unique<UpdateManager>(gateway_.get(), ldap_filter_.get(),
                                        um_config);

  // Devices and their filters.
  for (const PbxMappingParams& params : config_.pbxs) {
    devices::PbxConfig pbx_config;
    pbx_config.name = params.name;
    pbx_config.command_rtt_micros = config_.device_command_rtt_micros;
    if (!params.extension_prefix.empty()) {
      pbx_config.extension_prefixes = {params.extension_prefix};
    }
    auto pbx = std::make_unique<devices::DefinityPbx>(pbx_config);

    METACOMM_ASSIGN_OR_RETURN(
        std::vector<lexpress::Mapping> mappings,
        lexpress::CompileMappings(GeneratePbxMappings(params)));
    if (mappings.size() != 2) {
      return Status::Internal("expected a mapping pair for " + params.name);
    }
    auto filter = std::make_unique<DeviceFilter>(
        pbx.get(),
        std::make_unique<PbxProtocolConverter>(pbx.get()),
        std::move(mappings[0]), std::move(mappings[1]), "Extension");
    um_->AddDeviceFilter(filter.get());
    pbxs_.push_back(std::move(pbx));
    filters_.push_back(std::move(filter));
  }
  for (const MpMappingParams& params : config_.mps) {
    devices::MpConfig mp_config;
    mp_config.name = params.name;
    mp_config.command_rtt_micros = config_.device_command_rtt_micros;
    auto mp = std::make_unique<devices::MessagingPlatform>(mp_config);

    METACOMM_ASSIGN_OR_RETURN(
        std::vector<lexpress::Mapping> mappings,
        lexpress::CompileMappings(GenerateMpMappings(params)));
    if (mappings.size() != 2) {
      return Status::Internal("expected a mapping pair for " + params.name);
    }
    auto filter = std::make_unique<DeviceFilter>(
        mp.get(), std::make_unique<MpProtocolConverter>(mp.get()),
        std::move(mappings[0]), std::move(mappings[1]), "MailboxNumber");
    um_->AddDeviceFilter(filter.get());
    mps_.push_back(std::move(mp));
    filters_.push_back(std::move(filter));
  }

  METACOMM_RETURN_IF_ERROR(um_->ValidateMappings());
  METACOMM_RETURN_IF_ERROR(um_->InstallTrigger(config_.people_base));
  monitor_ = std::make_unique<MonitorPublisher>(
      server_.get(), gateway_.get(), um_.get(), config_.suffix);
  if (config_.um.threaded) um_->Start();
  return Status::Ok();
}

devices::DefinityPbx* MetaCommSystem::pbx(const std::string& name) {
  for (auto& pbx : pbxs_) {
    if (EqualsIgnoreCase(pbx->name(), name)) return pbx.get();
  }
  return nullptr;
}

devices::MessagingPlatform* MetaCommSystem::mp(const std::string& name) {
  for (auto& mp : mps_) {
    if (EqualsIgnoreCase(mp->name(), name)) return mp.get();
  }
  return nullptr;
}

DeviceFilter* MetaCommSystem::filter(const std::string& name) {
  for (auto& filter : filters_) {
    if (EqualsIgnoreCase(filter->name(), name)) return filter.get();
  }
  return nullptr;
}

ldap::Client MetaCommSystem::NewClient() {
  ldap::Client client(gateway_.get());
  client.set_session_id(gateway_->NewSession());
  return client;
}

Status MetaCommSystem::AddPerson(
    const std::string& cn,
    const std::vector<std::pair<std::string, std::string>>& extra_attrs) {
  ldap::Client client = NewClient();
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base,
                            ldap::Dn::Parse(config_.people_base));
  ldap::Entry entry(base.Child(ldap::Rdn("cn", cn)));
  entry.SetOne("cn", cn);
  size_t space = cn.find_last_of(' ');
  entry.SetOne("sn", space == std::string::npos ? cn
                                                : cn.substr(space + 1));
  for (const auto& [attr, value] : extra_attrs) {
    entry.AddValue(attr, value);
  }
  ApplyObjectClasses(&entry);
  return client.Add(entry);
}

}  // namespace metacomm::core
