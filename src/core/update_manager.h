#ifndef METACOMM_CORE_UPDATE_MANAGER_H_
#define METACOMM_CORE_UPDATE_MANAGER_H_

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/sharded_blocking_queue.h"
#include "common/thread_annotations.h"
#include "core/circuit_breaker.h"
#include "core/error_log.h"
#include "core/ldap_filter.h"
#include "core/repository_filter.h"
#include "lexpress/closure.h"
#include "ltap/gateway.h"

namespace metacomm::core {

/// Update Manager tuning.
struct UpdateManagerConfig {
  /// true: worker threads drain the update queue (production shape).
  /// false: callers drive processing synchronously — trigger
  /// notifications process inline and Pump() drains queued DDUs —
  /// which is what the deterministic tests and benches use.
  bool threaded = false;
  /// Number of update workers (threaded mode). Each worker owns one
  /// shard of the update queue; items route to shards by the hash of
  /// their normalized target DN, so updates to the SAME entry stay
  /// strictly FIFO while updates to different entries propagate in
  /// parallel. 1 reproduces the paper's single global coordinator.
  int worker_threads = 1;
  /// How many times a DDU retries a contended entry lock before the
  /// update is dropped and the §4.4 error entry is logged. Without
  /// retries, a device update racing a client LDAP write on a
  /// zero-timeout gateway is lost instead of serialized behind it.
  int ddu_lock_retries = 3;
  /// Base backoff between DDU lock retries (doubles per attempt).
  int64_t ddu_lock_retry_backoff_micros = 1'000;
  /// lexpress closure fixpoint cap (runtime cycle detection, §4.2).
  int closure_max_iterations = 16;
  /// Ablation switch (EXPERIMENTS.md A1): when false, updates are NOT
  /// reapplied to their originating device, so the write-write
  /// convergence of §4.4/§5.4 is lost under racing updates.
  bool reapply_to_originator = true;
  /// The saga-style undo of §4.4's "later version": on a failed device
  /// update, already-applied device updates of the same sequence are
  /// compensated using pre-update information.
  bool saga_undo = false;
  /// Where error-log entries are written ("cn=errors,o=Lucent");
  /// empty disables directory error logging.
  std::string error_base = "cn=errors,o=Lucent";
  /// Experiment instrumentation: sleep this long between computing an
  /// update's closure and writing it back, widening the window in
  /// which concurrent updates can interleave. Used by the locking
  /// ablation (EXPERIMENTS.md A2); zero in production. In the batched
  /// path the delay models the per-conversation device cost and is
  /// paid once per WAVE, not once per update.
  int64_t artificial_processing_delay_micros = 0;
  /// Most items a worker drains from its shard per wakeup. 1 (the
  /// default) is the paper's one-update-per-device-conversation shape
  /// and leaves every existing code path untouched; larger values
  /// enable the batched, coalescing propagation pipeline (DESIGN.md
  /// "Batching & coalescing"): redundant same-entity updates fold
  /// together and each repository pays its conversation cost once per
  /// batch instead of once per update. Incompatible with `saga_undo`
  /// (batches fall back to sequential processing when both are set).
  int max_batch_size = 1;
  /// Per-repository circuit breaker (DESIGN.md "Fault tolerance").
  /// When a device's administrative link is down, every propagation
  /// attempt pays the full (possibly injected-timeout) link cost; the
  /// breaker bounds it: after `breaker_failure_threshold` consecutive
  /// retryable failures further updates to that repository fast-fail
  /// into the §4.4 error log while propagation to healthy repositories
  /// continues undisturbed.
  bool breaker_enabled = true;
  int breaker_failure_threshold = 3;
  /// First open interval; doubles per failed half-open probe, capped
  /// at breaker_max_backoff_micros.
  int64_t breaker_open_backoff_micros = 50'000;
  int64_t breaker_max_backoff_micros = 5'000'000;
  /// Background repair worker (threaded mode): scans the error log
  /// every repair_scan_interval_micros and, once a repository's
  /// circuit re-closes, replays its logged failed updates in sequence
  /// order — falling back to a targeted Synchronize(device) when
  /// replay cannot converge. Non-threaded assemblies drive repair
  /// explicitly via RunRepairPass().
  bool repair_enabled = true;
  int64_t repair_scan_interval_micros = 500'000;
};

/// One step of an update execution plan: a canonical update aimed at a
/// named repository ("ldap" or a device instance).
struct PlannedOp {
  std::string repository;
  lexpress::UpdateDescriptor update;
};

/// "An update execution plan is generated, determining in which order
/// the updates to the various data sources should be applied" (paper
/// §6). The plan is: the directory write first (the materialized view
/// is the system of record), then each routed device update — with
/// conditional reapplication to the originator — and finally, outside
/// the static plan, the device-generated-information backfill (§5.5),
/// which depends on the devices' results.
struct UpdatePlan {
  std::vector<PlannedOp> ops;
  /// The closure-extended directory image the plan drives toward.
  lexpress::Record final_ldap;
  int closure_iterations = 0;

  /// "modify@ldap -> delete@pbx9 -> add@pbx5" for logs and tests.
  std::string ToString() const;
};

/// The Update Manager (paper §4.4): MetaComm's coordinator.
///
/// Responsibilities reproduced:
///  * receives LDAP-originated updates from LTAP trigger processing
///    (OnUpdate) while LTAP holds the entry lock;
///  * receives direct device updates (DDUs) from device filters,
///    obtains LTAP entry locks itself (one lock session per update),
///    and serializes everything through the update queue — sharded by
///    target entry, so only same-entry updates serialize with each
///    other (see DESIGN.md "Concurrency model");
///  * computes the lexpress transitive closure and writes derived
///    attribute changes back to the directory;
///  * propagates translated updates to every relevant device filter,
///    reapplying to the originating device with conditional semantics
///    for write-write convergence (§5.4);
///  * propagates device-generated information to the LDAP server after
///    all other devices are updated (§5.5);
///  * on failure: aborts, writes an error entry into the directory,
///    and notifies the administrator (§4.4) — optionally undoing
///    already-applied device updates (saga extension);
///  * synchronizes repositories under an LTAP quiesce window (§5.1).
class UpdateManager : public ltap::TriggerActionServer {
 public:
  /// Callback invoked when an update fails and is logged.
  using AdminCallback = std::function<void(
      const Status& error, const lexpress::UpdateDescriptor& update)>;

  /// `gateway` and `ldap_filter` are not owned and must outlive the UM.
  UpdateManager(ltap::LtapGateway* gateway, LdapFilter* ldap_filter,
                UpdateManagerConfig config = {});
  ~UpdateManager() override;

  /// Registers a device filter (not owned) and wires its DDU handler.
  /// Both of the filter's mappings join the closure mapping set.
  void AddDeviceFilter(RepositoryFilter* filter);

  /// Validates the assembled mapping set (compile-time cycle check).
  Status ValidateMappings() const;

  /// Registers this UM's after-trigger on the gateway for the given
  /// subtree. Call once after all filters are added.
  Status InstallTrigger(const std::string& base_dn);

  /// Starts the worker pool (threaded mode only; one worker per queue
  /// shard, `UpdateManagerConfig::worker_threads` of them).
  void Start();
  /// Stops the workers, then fails every drained-but-unprocessed item:
  /// its entry locks are released and its waiting caller (threaded
  /// Path A) gets Unavailable — items must not leak locks or hang
  /// callers when the queue dies.
  void Stop();

  /// Synchronous mode: processes queued DDUs inline; returns how many.
  size_t Pump();

  /// Direct device update intake (wired to DeviceFilter::SetDduHandler
  /// by AddDeviceFilter, public for tests and custom filters).
  void SubmitDeviceUpdate(lexpress::UpdateDescriptor update);

  /// Synchronizes one device with the directory under quiesce (§4.4,
  /// §5.1): device records are upserted into the directory, and
  /// directory entries in the device's partition but missing from the
  /// device are pushed to it. Also serves as initial directory
  /// population.
  Status Synchronize(const std::string& device_name) EXCLUDES(sync_mutex_);

  /// Synchronizes every registered device.
  Status SynchronizeAll();

  /// One pass of the error-log repair protocol: scans error_base,
  /// groups replayable entries by repository, and for every repository
  /// whose circuit admits traffic replays them in errorSeq order
  /// (conditional semantics, under the entity's LTAP lock).
  /// Successfully replayed entries are deleted; a replay that cannot
  /// converge falls back to Synchronize(repository) and clears that
  /// repository's backlog. The repair worker calls this periodically
  /// in threaded mode; tests and synchronous assemblies call it
  /// directly.
  Status RunRepairPass() EXCLUDES(sync_mutex_);

  /// The repository's circuit breaker (nullptr for unknown names).
  /// Exposed for the monitor and the fault-tolerance tests.
  CircuitBreaker* breaker(const std::string& repository) const;

  /// Builds (without executing) the execution plan for an update in
  /// the integrated schema. `ldap_current` marks the directory as
  /// already reflecting the update's explicit changes (Path A).
  /// Exposed so tests and tools can inspect routing decisions.
  StatusOr<UpdatePlan> PlanUpdate(
      const lexpress::UpdateDescriptor& ldap_update, bool ldap_current);

  void set_admin_callback(AdminCallback callback) EXCLUDES(admin_mutex_) {
    MutexLock lock(&admin_mutex_);
    admin_callback_ = std::move(callback);
  }

  const lexpress::MappingSet& mappings() const { return mappings_; }

  /// Per-shard queue telemetry (threaded mode).
  struct ShardStats {
    uint64_t enqueued = 0;           // Items pushed onto this shard.
    uint64_t dequeued = 0;           // Items a worker picked up.
    uint64_t max_depth = 0;          // High-water queue depth.
    uint64_t queue_wait_micros = 0;  // Total enqueue->dequeue latency.
    uint64_t depth = 0;              // Depth sampled at stats() time.
  };

  /// Counters for the experiment harnesses.
  struct Stats {
    uint64_t ldap_updates = 0;       // Path A: via LTAP triggers.
    uint64_t device_updates = 0;     // Path B: DDUs processed.
    uint64_t device_applies = 0;     // Updates pushed to devices.
    uint64_t reapplications = 0;     // Conditional reapplies (§5.4).
    uint64_t generated_info = 0;     // §5.5 post-propagation LDAP fixes.
    uint64_t errors = 0;
    uint64_t undos = 0;              // Saga compensations.
    uint64_t closure_iterations = 0;
    uint64_t syncs = 0;
    uint64_t lock_retries = 0;       // DDU lock retry attempts.
    uint64_t shutdown_drained = 0;   // Items failed by Stop()'s drain.
    uint64_t batches = 0;            // Worker queue drains (incl. size 1).
    uint64_t coalesced = 0;          // Items folded away by the coalescer.
    uint64_t rtts_saved = 0;         // Repository conversations amortized
                                     // away by batching (device sessions
                                     // shared + per-wave delay sharing).
    uint64_t breaker_open_skips = 0;  // Updates fast-failed, circuit open.
    uint64_t replayed = 0;            // Error-log entries replayed ok.
    uint64_t repair_passes = 0;       // RunRepairPass invocations.
    uint64_t repair_syncs = 0;        // Repair fell back to Synchronize.
    /// Histogram of popped batch sizes: {1, 2, 3-4, 5-8, 9-16, >16}.
    std::vector<uint64_t> batch_size_buckets = std::vector<uint64_t>(6, 0);
    std::vector<ShardStats> shards;  // One per update-queue shard.
    /// Per-repository fault-tolerance surface (breaker state, device
    /// health, replay backlog) — what cn=um-health publishes.
    struct RepositoryStats {
      std::string name;
      CircuitBreaker::Snapshot breaker;
      RepositoryHealth health;
      uint64_t replay_backlog = 0;  // Replayable error entries pending.
    };
    std::vector<RepositoryStats> repositories;
  };
  Stats stats() const EXCLUDES(stats_mutex_);

  /// Items currently queued across every update-queue shard. Cheap
  /// enough for a per-request admission check — the wire server sheds
  /// load with LDAP busy (51) when this crosses its admission limit,
  /// instead of letting the queue grow without bound.
  size_t QueueDepth() const { return queue_.Size(); }

  // ltap::TriggerActionServer:
  Status OnUpdate(const ltap::UpdateNotification& notification) override;

 private:
  struct WorkItem {
    lexpress::UpdateDescriptor descriptor;
    /// Entry locks already held for this item, owned by its private
    /// `lock_session`. Taken on the submitting thread, BEFORE the item
    /// enters the queue — if a worker itself blocked on entry locks, a
    /// client whose trigger is waiting in the queue could deadlock
    /// against it.
    std::vector<ldap::Dn> locked;
    /// LTAP session owning `locked`. One fresh session PER work item:
    /// a shared session would make LockTable::Acquire treat two
    /// concurrent DDUs on the same entry as one re-entrant owner, so
    /// both would "hold" the lock and race.
    uint64_t lock_session = 0;
    /// Queue shard this item routes to (hash of the normalized target
    /// DN; round-robin when there is no DN).
    size_t shard = 0;
    /// Enqueue timestamp for the per-shard latency counters.
    int64_t enqueue_micros = 0;
    /// True when `descriptor` is already translated to the ldap schema
    /// and `locked` is populated (prepared device update).
    bool prepared = false;
    /// Set when a completion needs to be signalled (threaded Path A).
    std::shared_ptr<std::promise<Status>> done;
  };

  /// Translates a device update to the integrated schema and takes the
  /// LTAP entry locks ("LTAP is used to obtain locks", §4.4). Returns
  /// nullopt when the update routes nowhere. Runs on the submitting
  /// (device notification) thread.
  StatusOr<std::optional<WorkItem>> PrepareDeviceUpdate(
      const lexpress::UpdateDescriptor& update);

  /// Propagates a prepared device update and releases its locks.
  Status FinishDeviceUpdate(const WorkItem& item, lexpress::Vm* vm);

  /// Overlays a device update's partial images onto the directory's
  /// current entry so fan-out never clears attributes the source
  /// device doesn't carry. Requires the item's entry lock to be held.
  lexpress::UpdateDescriptor HydrateDeviceUpdate(
      lexpress::UpdateDescriptor update);

  /// Acquires one entry lock for a DDU, retrying a bounded number of
  /// times with exponential backoff when the entry is contended.
  Status AcquireEntryLock(const ldap::Dn& dn, uint64_t session);

  void ReleaseLocks(const std::vector<ldap::Dn>& locked,
                    uint64_t session);

  /// Builds the canonical descriptor for an LDAP-originated update.
  StatusOr<lexpress::UpdateDescriptor> DescriptorFromNotification(
      const ltap::UpdateNotification& notification) const;

  /// Processes one queued item (dispatches on descriptor schema).
  /// `vm` is the calling worker's interpreter, reused across items.
  Status ProcessItem(const WorkItem& item, lexpress::Vm* vm);

  /// Path A tail: descriptor is in the "ldap" schema and the directory
  /// already reflects the client's operation.
  Status ProcessLdapOriginated(const lexpress::UpdateDescriptor& update,
                               lexpress::Vm* vm);

  /// Path B: descriptor is in a device schema; takes the LTAP entry
  /// lock, applies to the directory, propagates (§4.4).
  Status ProcessDeviceOriginated(const lexpress::UpdateDescriptor& update,
                                 lexpress::Vm* vm);

  /// Shared propagation tail: closure, directory diff, device fan-out,
  /// generated-information round. `ldap_current` tells whether the
  /// directory already reflects update.new_record's explicit changes.
  Status Propagate(const lexpress::UpdateDescriptor& ldap_update,
                   bool ldap_current, lexpress::Vm* vm);

  /// PlanUpdate with the worker's interpreter (the public overload
  /// forwards with the per-thread fallback).
  StatusOr<UpdatePlan> PlanUpdate(
      const lexpress::UpdateDescriptor& ldap_update, bool ldap_current,
      lexpress::Vm* vm);

  /// One device's answer to an update, kept for the §5.5 round.
  struct DeviceResult {
    RepositoryFilter* filter;
    lexpress::Record sent;    // The image we asked the device to hold.
    lexpress::Record result;  // What the device actually holds now.
  };

  /// The §5.5 device-generated-information round: folds attributes the
  /// devices MINTED (differ from what we sent) back into the directory.
  /// Shared by the sequential and the batched propagation paths.
  Status BackfillGeneratedInfo(const lexpress::UpdateDescriptor& ldap_update,
                               const UpdatePlan& plan,
                               const std::vector<DeviceResult>& results);

  /// A coalesced unit of batch work: the effective update plus the
  /// queue items it settles (promises + entry-lock sessions).
  struct UnitWork {
    lexpress::UpdateDescriptor update;
    std::vector<size_t> constituents;  // Indices into the popped batch.
    bool annihilated = false;
    bool ldap_current = false;  // Path A unit: directory already current.
  };

  /// The batched path (max_batch_size > 1): coalesces the popped
  /// items, partitions the units into entity-disjoint waves, and
  /// propagates each wave with shared repository conversations.
  void ProcessBatch(std::vector<WorkItem> items, lexpress::Vm* vm);

  /// Plans and executes one wave of entity-disjoint units: one shared
  /// processing delay, one LTAP session for all directory writes, one
  /// device session per repository. Settles every constituent.
  void PropagateWave(std::vector<UnitWork>& units,
                     const std::vector<size_t>& wave,
                     std::vector<WorkItem>& items, lexpress::Vm* vm);

  /// Releases each constituent's locks and completes its promise.
  void SettleUnit(const UnitWork& unit, std::vector<WorkItem>& items,
                  const Status& status);

  /// Batch-size telemetry for one worker queue drain.
  void RecordBatch(size_t batch_size) EXCLUDES(stats_mutex_);

  /// Writes an audit-only error entry (no replay target) and notifies
  /// the administrator. Directory aborts and planning failures land
  /// here.
  void HandleError(const Status& error,
                   const lexpress::UpdateDescriptor& update)
      EXCLUDES(admin_mutex_);

  /// Repository-aware failure path: the error entry carries the
  /// serialized update so the repair worker can replay it once
  /// `repository`'s circuit re-closes. Outcome kRetryable /
  /// kSkippedOpenCircuit entries are replayable; kPermanent entries
  /// are audit-only (the device rejected the command — replaying it
  /// verbatim would fail again).
  void HandleFailure(const std::string& repository, ApplyOutcome outcome,
                     const Status& error,
                     const lexpress::UpdateDescriptor& update)
      EXCLUDES(admin_mutex_);

  /// Sends one update through the repository's circuit breaker: an
  /// open circuit yields kSkippedOpenCircuit without touching the
  /// repository; otherwise the apply result feeds the breaker (a
  /// permanent rejection is proof of life and counts as success).
  ApplyResult ApplyToRepository(RepositoryFilter* filter,
                                const lexpress::UpdateDescriptor& update);

  CircuitBreaker* BreakerFor(const std::string& repository) const;

  /// Sleeps up to `micros`, waking early when Stop() is called.
  /// Returns false when the UM is stopping (the caller should bail).
  bool SleepInterruptible(int64_t micros) EXCLUDES(shutdown_mutex_);
  bool stopping() const EXCLUDES(shutdown_mutex_);
  /// Count of Stop() calls so far. In-flight work bails when the epoch
  /// it captured at entry changes — which distinguishes "a Stop was
  /// requested while I ran" from "the UM is currently stopped" (a
  /// post-Stop Synchronize must still run; it is the recovery path).
  uint64_t stop_epoch() const EXCLUDES(shutdown_mutex_);

  /// Repair worker body: periodic RunRepairPass until Stop().
  void RepairLoop();

  /// Replays one repository's backlog in sequence order. Returns true
  /// when replay could not converge and the caller must fall back to
  /// Synchronize. `replayed_dns` collects the error entries to delete.
  bool ReplayRepository(RepositoryFilter* filter,
                        const std::vector<LoggedFailure>& failures,
                        const std::vector<ldap::Dn>& entry_dns,
                        std::vector<ldap::Dn>* replayed_dns);

  /// After a successful replay, folds device-minted attributes the
  /// directory never saw (the §5.5 round the outage swallowed) into
  /// the entry — fills gaps only, never overwrites directory values.
  void BackfillFromReplay(RepositoryFilter* filter,
                          const lexpress::Record& device_result);

  /// True when the directory's image of the replayed entity matches
  /// the repository's record (subset compare over mapped attributes).
  bool ReplayConverged(RepositoryFilter* filter,
                       const lexpress::UpdateDescriptor& update);

  /// Deletes an error-log entry and maintains the backlog counter.
  void DeleteErrorEntry(const ldap::Dn& dn, const std::string& repository)
      EXCLUDES(stats_mutex_);

  /// Reverts already-applied device updates (saga extension).
  void UndoApplied(
      const std::vector<std::pair<RepositoryFilter*,
                                  lexpress::UpdateDescriptor>>& applied);

  RepositoryFilter* FindFilter(const std::string& name) const;

  /// Stamps the enqueue time, pushes onto the item's shard, and
  /// maintains the per-shard counters. False when the queue is closed
  /// (the caller still owns the item's locks).
  bool Enqueue(WorkItem item) EXCLUDES(stats_mutex_);

  /// Records a worker (or Pump) picking `item` up.
  void RecordDequeue(const WorkItem& item) EXCLUDES(stats_mutex_);

  /// One worker per shard: drains that shard in strict FIFO order, so
  /// per-entry ordering holds while distinct entries run in parallel.
  void WorkerLoop(size_t shard);

  ltap::LtapGateway* gateway_;
  LdapFilter* ldap_filter_;
  UpdateManagerConfig config_;
  // filters_ and mappings_ are setup-only (AddDeviceFilter before
  // Start(), per the class contract); workers only ever read them.
  std::vector<RepositoryFilter*> filters_;
  lexpress::MappingSet mappings_;
  uint64_t um_session_ = 0;

  /// One breaker per registered repository, created alongside the
  /// filter in AddDeviceFilter (setup-only map; the breakers
  /// themselves are thread-safe).
  std::map<std::string, std::unique_ptr<CircuitBreaker>,
           CaseInsensitiveLess>
      breakers_;

  ShardedBlockingQueue<WorkItem> queue_;
  std::vector<std::thread> workers_;
  std::thread repair_thread_;
  std::atomic<bool> running_{false};

  /// Stop() interruption plumbing: backoff sleeps and the repair
  /// worker's scan interval watch `stopping_`; Synchronize's record
  /// loops watch `stop_epoch_` instead (a post-Stop resync must run).
  /// Shutdown is prompt without abandoning LTAP locks.
  mutable Mutex shutdown_mutex_{LockRank::kUmShutdown, "um.shutdown"};
  CondVar shutdown_cv_;
  bool stopping_ GUARDED_BY(shutdown_mutex_) = false;
  uint64_t stop_epoch_ GUARDED_BY(shutdown_mutex_) = 0;

  mutable Mutex admin_mutex_{LockRank::kUmAdmin, "um.admin"};
  AdminCallback admin_callback_ GUARDED_BY(admin_mutex_);
  // stats_mutex_ is held while sampling queue depths, breaker
  // snapshots and repository health (stats()), so it ranks before the
  // shard, breaker and fault-injector locks.
  mutable Mutex stats_mutex_{LockRank::kUmStats, "um.stats"};
  Stats stats_ GUARDED_BY(stats_mutex_);
  /// Replayable error-log entries not yet replayed, per repository.
  std::map<std::string, uint64_t, CaseInsensitiveLess> replay_backlog_
      GUARDED_BY(stats_mutex_);
  std::atomic<uint64_t> error_sequence_{0};
  /// One synchronization at a time. Held across gateway quiesce,
  /// directory writes and the whole repository fan-out, so it is the
  /// outermost lock of the core (see lock_rank.h).
  Mutex sync_mutex_ ACQUIRED_BEFORE(shutdown_mutex_, admin_mutex_,
                                    stats_mutex_){LockRank::kUmSync,
                                                  "um.sync"};
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_UPDATE_MANAGER_H_
