#include "core/protocol_converters.h"

#include "common/strings.h"

namespace metacomm::core {

namespace {

/// Parses "Field: value" display output into a record.
lexpress::Record ParseColonLines(const std::string& text,
                                 const std::string& schema) {
  lexpress::Record record(schema);
  for (const std::string& line : Split(text, '\n')) {
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string field = Trim(line.substr(0, colon));
    std::string value = Trim(line.substr(colon + 1));
    if (!field.empty() && !value.empty()) record.SetOne(field, value);
  }
  return record;
}

/// Parses "Field=value" show output into a record.
lexpress::Record ParseEqualsLines(const std::string& text,
                                  const std::string& schema) {
  lexpress::Record record(schema);
  for (const std::string& line : Split(text, '\n')) {
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string field = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (!field.empty() && !value.empty()) record.SetOne(field, value);
  }
  return record;
}

}  // namespace

std::string PbxProtocolConverter::RenderFields(
    const lexpress::Record& record) {
  std::string out;
  for (const auto& [field, value] : record.attrs()) {
    if (EqualsIgnoreCase(field, "Extension")) continue;
    if (value.empty()) continue;
    out += " " + field + " ";
    const std::string& v = value.front();
    if (v.find(' ') != std::string::npos) {
      out += "\"" + v + "\"";
    } else {
      out += v;
    }
  }
  return out;
}

StatusOr<std::optional<lexpress::Record>> PbxProtocolConverter::Get(
    const std::string& key) {
  StatusOr<std::string> reply =
      device_->ExecuteCommand("display station " + key);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kNotFound) {
      return std::optional<lexpress::Record>();
    }
    return reply.status();
  }
  return std::optional<lexpress::Record>(
      ParseColonLines(*reply, device_->schema()));
}

Status PbxProtocolConverter::Add(const lexpress::Record& record) {
  std::string command = "add station " + record.GetFirst("Extension") +
                        RenderFields(record);
  return device_->ExecuteCommand(command).status();
}

Status PbxProtocolConverter::Modify(const std::string& key,
                                    const lexpress::Record& record) {
  std::string command = "change station " + key + RenderFields(record);
  // Modify carries the full desired image: fields the station holds
  // but the image lacks are cleared (empty quoted value).
  METACOMM_ASSIGN_OR_RETURN(std::optional<lexpress::Record> current,
                            Get(key));
  if (current.has_value()) {
    for (const auto& [field, value] : current->attrs()) {
      if (EqualsIgnoreCase(field, "Extension")) continue;
      if (!record.Has(field)) command += " " + field + " \"\"";
    }
  }
  // A key change rides along as an explicit Extension field.
  std::string new_key = record.GetFirst("Extension");
  if (!new_key.empty() && new_key != key) {
    command += " Extension " + new_key;
  }
  return device_->ExecuteCommand(command).status();
}

Status PbxProtocolConverter::Delete(const std::string& key) {
  return device_->ExecuteCommand("remove station " + key).status();
}

StatusOr<std::vector<lexpress::Record>> PbxProtocolConverter::DumpAll() {
  METACOMM_ASSIGN_OR_RETURN(std::string listing,
                            device_->ExecuteCommand("list station"));
  std::vector<lexpress::Record> out;
  for (const std::string& line : Split(listing, '\n')) {
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::string extension = Split(trimmed, ' ').front();
    METACOMM_ASSIGN_OR_RETURN(std::optional<lexpress::Record> record,
                              Get(extension));
    if (record.has_value()) out.push_back(std::move(*record));
  }
  return out;
}

std::string MpProtocolConverter::RenderAssignments(
    const lexpress::Record& record) {
  std::string out;
  for (const auto& [field, value] : record.attrs()) {
    if (EqualsIgnoreCase(field, "MailboxNumber")) continue;
    if (EqualsIgnoreCase(field, "SubscriberId")) continue;  // Generated.
    if (value.empty()) continue;
    const std::string& v = value.front();
    out += " " + field + "=";
    if (v.find(' ') != std::string::npos) {
      out += "\"" + v + "\"";
    } else {
      out += v;
    }
  }
  return out;
}

StatusOr<std::optional<lexpress::Record>> MpProtocolConverter::Get(
    const std::string& key) {
  StatusOr<std::string> reply =
      device_->ExecuteCommand("SHOW MAILBOX " + key);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kNotFound) {
      return std::optional<lexpress::Record>();
    }
    return reply.status();
  }
  return std::optional<lexpress::Record>(
      ParseEqualsLines(*reply, device_->schema()));
}

Status MpProtocolConverter::Add(const lexpress::Record& record) {
  std::string command = "ADD MAILBOX " + record.GetFirst("MailboxNumber") +
                        RenderAssignments(record);
  return device_->ExecuteCommand(command).status();
}

Status MpProtocolConverter::Modify(const std::string& key,
                                   const lexpress::Record& record) {
  std::string command = "MODIFY MAILBOX " + key +
                        RenderAssignments(record);
  METACOMM_ASSIGN_OR_RETURN(std::optional<lexpress::Record> current,
                            Get(key));
  if (current.has_value()) {
    for (const auto& [field, value] : current->attrs()) {
      if (EqualsIgnoreCase(field, "MailboxNumber") ||
          EqualsIgnoreCase(field, "SubscriberId")) {
        continue;
      }
      if (!record.Has(field)) command += " " + field + "=\"\"";
    }
  }
  std::string new_key = record.GetFirst("MailboxNumber");
  if (!new_key.empty() && new_key != key) {
    command += " MailboxNumber=" + new_key;
  }
  return device_->ExecuteCommand(command).status();
}

Status MpProtocolConverter::Delete(const std::string& key) {
  return device_->ExecuteCommand("DELETE MAILBOX " + key).status();
}

StatusOr<std::vector<lexpress::Record>> MpProtocolConverter::DumpAll() {
  METACOMM_ASSIGN_OR_RETURN(std::string listing,
                            device_->ExecuteCommand("LIST MAILBOXES"));
  std::vector<lexpress::Record> out;
  for (const std::string& line : Split(listing, '\n')) {
    std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::string number = Split(trimmed, ' ').front();
    METACOMM_ASSIGN_OR_RETURN(std::optional<lexpress::Record> record,
                              Get(number));
    if (record.has_value()) out.push_back(std::move(*record));
  }
  return out;
}

}  // namespace metacomm::core
