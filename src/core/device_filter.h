#ifndef METACOMM_CORE_DEVICE_FILTER_H_
#define METACOMM_CORE_DEVICE_FILTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "core/protocol_converters.h"
#include "core/repository_filter.h"
#include "devices/device.h"

namespace metacomm::core {

/// Filter for a legacy telecom device: protocol converter + lexpress
/// mapper pair, plus the change-notification plumbing that turns
/// direct device updates into lexpress update descriptors (paper §4.1,
/// §4.4).
class DeviceFilter : public RepositoryFilter {
 public:
  /// Invoked with the descriptor of every direct device update; wired
  /// to UpdateManager::SubmitDeviceUpdate.
  using DduHandler = std::function<void(lexpress::UpdateDescriptor)>;

  /// `device` is not owned. `to_ldap`/`from_ldap` are this instance's
  /// compiled mapping pair; `key_attr` names the device schema's key
  /// ("Extension", "MailboxNumber").
  DeviceFilter(devices::Device* device,
               std::unique_ptr<ProtocolConverter> converter,
               lexpress::Mapping to_ldap, lexpress::Mapping from_ldap,
               std::string key_attr);

  /// Starts forwarding device notifications as DDU descriptors.
  /// Notifications caused by this filter's own Apply calls are
  /// suppressed (they are MetaComm's propagation, not new updates).
  void SetDduHandler(DduHandler handler);

  devices::Device* device() { return device_; }

  // RepositoryFilter:
  const std::string& name() const override { return device_->name(); }
  const std::string& schema() const override { return device_->schema(); }
  const lexpress::Mapping& to_ldap() const override { return to_ldap_; }
  const lexpress::Mapping& from_ldap() const override {
    return from_ldap_;
  }
  ApplyResult Apply(const lexpress::UpdateDescriptor& update) override;
  std::vector<ApplyResult> ApplyBatch(
      const std::vector<lexpress::UpdateDescriptor>& updates) override;
  StatusOr<std::optional<lexpress::Record>> Fetch(
      const std::string& key) override;
  StatusOr<std::vector<lexpress::Record>> DumpAll() override;
  const std::string& key_attr() const override { return key_attr_; }
  RepositoryHealth Health() const override;

  /// Number of conditional operations that needed the fallback path
  /// (conditional modify failed -> add attempted; §5.4).
  uint64_t conditional_fallbacks() const {
    return conditional_fallbacks_.load();
  }

 private:
  devices::Device* device_;
  std::unique_ptr<ProtocolConverter> converter_;
  lexpress::Mapping to_ldap_;
  lexpress::Mapping from_ldap_;
  std::string key_attr_;
  DduHandler ddu_handler_;
  std::atomic<uint64_t> conditional_fallbacks_{0};
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_DEVICE_FILTER_H_
