#include "core/mapping_gen.h"

namespace metacomm::core {

std::string GeneratePbxMappings(const PbxMappingParams& params) {
  const std::string& name = params.name;
  const std::string d = std::to_string(params.extension_digits);
  std::string out;

  // Device -> directory. LastUpdater names this switch so the reverse
  // mapping can detect reapplication (§5.4). The cycle between
  // telephoneNumber and Extension composes transforms, so fixpoint
  // detection is deferred to runtime (allow_cycles).
  out += "mapping " + name + "ToLdap from pbx to ldap {\n";
  out += "  option target_name = \"ldap\";\n";
  out += "  option allow_cycles = true;\n";
  out += "  table CosClass {\n";
  out += "    \"0\" -> \"basic\";\n";
  out += "    \"1\" -> \"standard\";\n";
  out += "    \"2\" -> \"gold\";\n";
  out += "    \"3\" -> \"executive\";\n";
  out += "    default -> \"custom\";\n";
  out += "  }\n";
  out += "  key Extension -> DefinityExtension;\n";
  out += "  map \"" + name + "\" -> LastUpdater;\n";
  out += "  map concat(\"" + params.phone_prefix +
         "\", Extension) -> telephoneNumber;\n";
  out += "  map Name -> cn;\n";
  out += "  map surname(Name) -> sn;\n";
  out += "  map givenname(Name) -> givenName when contains(Name, \" \");\n";
  out += "  map Room -> roomNumber;\n";
  out += "  map Cos -> DefinityCos;\n";
  out += "  map first(lookup(CosClass, Cos)) -> employeeType;\n";
  out += "  map CoveragePath -> DefinityCoveragePath;\n";
  out += "  map SetType -> DefinitySetType;\n";
  out += "  map Port -> DefinityPort;\n";
  out += "  map \"" + name + "\" -> DefinityPbxName;\n";
  out += "}\n\n";

  // Directory -> device. The partition constraint reproduces the
  // paper's example: this switch "accepts updates for phone numbers
  // beginning with" phone_prefix + extension_prefix.
  out += "mapping LdapTo" + name + " from ldap to pbx {\n";
  out += "  option target_name = \"" + name + "\";\n";
  out += "  option originator = \"LastUpdater\";\n";
  out += "  option allow_cycles = true;\n";
  out += "  table ClassCos {\n";
  out += "    \"basic\" -> \"0\";\n";
  out += "    \"standard\" -> \"1\";\n";
  out += "    \"gold\" -> \"2\";\n";
  out += "    \"executive\" -> \"3\";\n";
  out += "  }\n";
  out += "  partition when prefix(DefinityExtension, \"" +
         params.extension_prefix + "\") or prefix(telephoneNumber, \"" +
         params.phone_prefix + params.extension_prefix + "\");\n";
  // Alternate attribute mappings for Extension: the first satisfied
  // rule wins — the paper's telephoneNumber-vs-DefinityExtension
  // conflict resolution (§4.2).
  out += "  key substr(digits(telephoneNumber), -" + d + ", " + d +
         ") -> Extension;\n";
  out += "  map DefinityExtension -> Extension;\n";
  out += "  map cn -> Name;\n";
  out += "  map roomNumber -> Room;\n";
  out += "  map DefinityCos -> Cos;\n";
  out += "  map first(lookup(ClassCos, employeeType)) -> Cos;\n";
  out += "  map DefinityCoveragePath -> CoveragePath;\n";
  out += "  map DefinitySetType -> SetType;\n";
  out += "  map DefinityPort -> Port;\n";
  out += "}\n";
  return out;
}

std::string GenerateMpMappings(const MpMappingParams& params) {
  const std::string& name = params.name;
  const std::string d = std::to_string(params.mailbox_digits);
  std::string out;

  out += "mapping " + name + "ToLdap from mp to ldap {\n";
  out += "  option target_name = \"ldap\";\n";
  out += "  option allow_cycles = true;\n";
  out += "  key MailboxNumber -> MpMailboxNumber;\n";
  out += "  map \"" + name + "\" -> LastUpdater;\n";
  // SubscriberId is device-generated (§5.5); this rule is how it
  // reaches the directory after the platform assigns it.
  out += "  map SubscriberId -> MpSubscriberId;\n";
  out += "  map SubscriberName -> cn;\n";
  out += "  map Pin -> MpPin;\n";
  out += "  map Greeting -> MpGreeting;\n";
  out += "  map \"" + name + "\" -> MpPlatformName;\n";
  out += "}\n\n";

  // The paper's chained example: "from the telephone number to a voice
  // mailbox identifier in the voice messaging platform" — an extension
  // change ripples PBX -> telephoneNumber -> MailboxNumber. The
  // telephone-number rule comes first so it wins over a stale
  // MpMailboxNumber (alternate attribute mappings, §4.2).
  std::string from_phone = "substr(digits(telephoneNumber), -" + d + ", " +
                           d + ")";
  std::string mailbox_expr =
      "default(" + from_phone + ", MpMailboxNumber)";
  out += "mapping LdapTo" + name + " from ldap to mp {\n";
  out += "  option target_name = \"" + name + "\";\n";
  out += "  option originator = \"LastUpdater\";\n";
  out += "  option allow_cycles = true;\n";
  if (params.extension_prefix.empty()) {
    out += "  partition when present(MpMailboxNumber) or "
           "present(telephoneNumber);\n";
  } else {
    out += "  partition when prefix(" + mailbox_expr + ", \"" +
           params.extension_prefix + "\");\n";
  }
  out += "  key " + from_phone + " -> MailboxNumber;\n";
  out += "  map MpMailboxNumber -> MailboxNumber;\n";
  out += "  map cn -> SubscriberName;\n";
  out += "  map MpPin -> Pin;\n";
  out += "  map MpGreeting -> Greeting;\n";
  out += "}\n";
  return out;
}

}  // namespace metacomm::core
