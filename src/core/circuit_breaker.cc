#include "core/circuit_breaker.h"

#include <algorithm>

namespace metacomm::core {

bool CircuitBreaker::Allow(int64_t now_micros) {
  if (!options_.enabled) return true;
  MutexLock lock(&mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_micros >= retry_at_micros_) {
        state_ = State::kHalfOpen;
        last_probe_micros_ = now_micros;
        return true;
      }
      ++skipped_;
      return false;
    case State::kHalfOpen:
      // One probe at a time — unless the outstanding probe is stale
      // (admitted over a full backoff interval ago and never reported
      // back), in which case it is presumed abandoned.
      if (now_micros - last_probe_micros_ > backoff_micros_) {
        last_probe_micros_ = now_micros;
        return true;
      }
      ++skipped_;
      return false;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  if (!options_.enabled) return;
  MutexLock lock(&mutex_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  backoff_micros_ = 0;
}

void CircuitBreaker::OnRetryableFailure(int64_t now_micros) {
  if (!options_.enabled) return;
  MutexLock lock(&mutex_);
  ++consecutive_failures_;
  bool open_now = state_ == State::kHalfOpen ||
                  consecutive_failures_ >= options_.failure_threshold;
  if (!open_now) return;
  if (state_ != State::kOpen) ++open_transitions_;
  // Failed probe doubles the wait; fresh trip starts at the base.
  backoff_micros_ =
      backoff_micros_ == 0
          ? options_.open_backoff_micros
          : std::min(backoff_micros_ * 2, options_.max_backoff_micros);
  state_ = State::kOpen;
  retry_at_micros_ = now_micros + backoff_micros_;
}

void CircuitBreaker::ForceClose() {
  MutexLock lock(&mutex_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  backoff_micros_ = 0;
  retry_at_micros_ = 0;
}

CircuitBreaker::Snapshot CircuitBreaker::snapshot() const {
  MutexLock lock(&mutex_);
  Snapshot snap;
  snap.state = state_;
  snap.consecutive_failures = consecutive_failures_;
  snap.open_transitions = open_transitions_;
  snap.skipped = skipped_;
  snap.backoff_micros = backoff_micros_;
  snap.last_probe_micros = last_probe_micros_;
  return snap;
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(&mutex_);
  return state_;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace metacomm::core
