#include "core/device_filter.h"

namespace metacomm::core {

namespace {

/// Set while the filter itself is mutating the device on this thread.
/// Device notifications are synchronous on the mutating thread, so a
/// thread-local flag cleanly separates MetaComm's own propagation
/// (suppressed) from genuine direct device updates (forwarded).
thread_local bool tls_self_apply = false;

class SelfApplyScope {
 public:
  SelfApplyScope() { tls_self_apply = true; }
  ~SelfApplyScope() { tls_self_apply = false; }
};

}  // namespace

DeviceFilter::DeviceFilter(devices::Device* device,
                           std::unique_ptr<ProtocolConverter> converter,
                           lexpress::Mapping to_ldap,
                           lexpress::Mapping from_ldap,
                           std::string key_attr)
    : device_(device),
      converter_(std::move(converter)),
      to_ldap_(std::move(to_ldap)),
      from_ldap_(std::move(from_ldap)),
      key_attr_(std::move(key_attr)) {}

void DeviceFilter::SetDduHandler(DduHandler handler) {
  ddu_handler_ = std::move(handler);
  device_->SetNotificationHandler(
      [this](const devices::DeviceNotification& notification) {
        if (tls_self_apply) return;  // Echo of our own propagation.
        if (!ddu_handler_) return;
        lexpress::UpdateDescriptor desc;
        desc.op = notification.op;
        desc.schema = device_->schema();
        desc.old_record = notification.old_record;
        desc.new_record = notification.new_record;
        desc.source = device_->name();
        // A device administrator set whatever fields changed.
        for (const auto& [attr, value] : desc.new_record.attrs()) {
          if (!(desc.old_record.Get(attr) == value)) {
            desc.explicit_attrs.insert(attr);
          }
        }
        for (const auto& [attr, value] : desc.old_record.attrs()) {
          if (!desc.new_record.Has(attr)) desc.explicit_attrs.insert(attr);
        }
        ddu_handler_(std::move(desc));
      });
}

ApplyResult DeviceFilter::Apply(const lexpress::UpdateDescriptor& update) {
  SelfApplyScope self_apply;
  std::string old_key = update.old_record.GetFirst(key_attr_);
  std::string new_key = update.new_record.GetFirst(key_attr_);

  switch (update.op) {
    case lexpress::DescriptorOp::kAdd: {
      if (update.conditional) {
        // Reapplied add -> conditional modify; on failure, add (§5.4).
        Status status = converter_->Modify(new_key, update.new_record);
        if (status.code() == StatusCode::kNotFound) {
          conditional_fallbacks_.fetch_add(1);
          METACOMM_RETURN_IF_ERROR(converter_->Add(update.new_record));
        } else {
          METACOMM_RETURN_IF_ERROR(status);
        }
      } else {
        METACOMM_RETURN_IF_ERROR(converter_->Add(update.new_record));
      }
      break;
    }
    case lexpress::DescriptorOp::kModify: {
      std::string key = old_key.empty() ? new_key : old_key;
      Status status = converter_->Modify(key, update.new_record);
      if (status.code() == StatusCode::kNotFound && update.conditional) {
        conditional_fallbacks_.fetch_add(1);
        METACOMM_RETURN_IF_ERROR(converter_->Add(update.new_record));
      } else {
        METACOMM_RETURN_IF_ERROR(status);
      }
      break;
    }
    case lexpress::DescriptorOp::kDelete: {
      Status status = converter_->Delete(old_key);
      if (status.code() == StatusCode::kNotFound && update.conditional) {
        // Reapplied delete: the record is already gone — converged.
        break;
      }
      METACOMM_RETURN_IF_ERROR(status);
      break;
    }
  }

  if (update.op == lexpress::DescriptorOp::kDelete) {
    return lexpress::Record(schema());
  }
  // Return the repository's resulting record so the Update Manager can
  // pick up device-generated information (§5.5).
  METACOMM_ASSIGN_OR_RETURN(std::optional<lexpress::Record> result,
                            converter_->Get(new_key.empty() ? old_key
                                                            : new_key));
  if (!result.has_value()) {
    return Status::Internal(name() + ": record vanished after apply");
  }
  return *result;
}

std::vector<ApplyResult> DeviceFilter::ApplyBatch(
    const std::vector<lexpress::UpdateDescriptor>& updates) {
  // One administrative session for the whole batch: the emulated link
  // RTT is paid once, and every converter command inside — including
  // conditional-fallback retries and result fetches — rides it.
  devices::LatencyEmulator::SessionScope session(&device_->latency());
  return RepositoryFilter::ApplyBatch(updates);
}

RepositoryHealth DeviceFilter::Health() const {
  devices::FaultInjector& faults = device_->faults();
  RepositoryHealth health;
  health.reachable = !faults.outage_active();
  health.commands = faults.mutations_seen();
  health.injected_failures = faults.injected_failures();
  return health;
}

StatusOr<std::optional<lexpress::Record>> DeviceFilter::Fetch(
    const std::string& key) {
  return converter_->Get(key);
}

StatusOr<std::vector<lexpress::Record>> DeviceFilter::DumpAll() {
  return converter_->DumpAll();
}

}  // namespace metacomm::core
