#ifndef METACOMM_CORE_COALESCER_H_
#define METACOMM_CORE_COALESCER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lexpress/record.h"

namespace metacomm::core {

/// One effective update produced by coalescing a batch: the folded
/// descriptor plus the indices of the batch items it subsumes. The
/// unit's position in the output preserves the queue position of its
/// first constituent, so per-entity ordering survives coalescing.
struct CoalescedUnit {
  lexpress::UpdateDescriptor update;
  /// Ascending indices into the input batch.
  std::vector<size_t> constituents;
  /// True when the unit folded to nothing: an entity both created and
  /// destroyed inside the batch (Add ... Delete) needs no propagation
  /// at all, only its constituents' completions.
  bool annihilated = false;
};

struct CoalesceResult {
  std::vector<CoalescedUnit> units;
  /// Input items folded into an earlier unit (batch size minus units).
  size_t coalesced_away = 0;
};

/// Folds redundant work in one FIFO batch of update descriptors.
///
/// Merge rules (per entity, identified by the value chain of
/// `key_attr` so renames extend the chain):
///   Add    + Modify -> Add    (new image = later's, explicit union)
///   Modify + Modify -> Modify (old = first's old, new = last's new)
///   Modify + Delete -> Delete (targeting the first's still-applied key)
///   Add    + Delete -> annihilated (nothing to propagate)
///   Delete + X, Add + Add     -> barrier: a fresh unit is started and
///                                ordered after the previous one.
///
/// Two descriptors only ever merge when they share source, schema and
/// conditional flag — conditional (Originator/LastUpdater, §5.4)
/// updates are never merged across originators, so reapplication
/// semantics are untouched.
CoalesceResult CoalesceBatch(
    const std::vector<lexpress::UpdateDescriptor>& batch,
    const std::string& key_attr);

}  // namespace metacomm::core

#endif  // METACOMM_CORE_COALESCER_H_
