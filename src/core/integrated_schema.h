#ifndef METACOMM_CORE_INTEGRATED_SCHEMA_H_
#define METACOMM_CORE_INTEGRATED_SCHEMA_H_

#include <string>
#include <vector>

#include "ldap/entry.h"
#include "ldap/schema.h"

namespace metacomm::core {

/// Builds MetaComm's integrated directory schema (paper §5.2).
///
/// The design constraints the paper derives from LDAP's lack of
/// transactions are all observed here:
///  * everything about a person lives in ONE entry (no person/child
///    split — parent+child updates cannot be made atomic);
///  * each integrated device contributes an *auxiliary* object class
///    (definityUser, mpUser) holding that device's user attributes;
///  * attribute names are device-prefixed and unique (auxiliary class
///    fields need unique names, §5.2 footnote);
///  * auxiliary classes carry no mandatory attributes (LDAP forbids
///    it), so "has objectclass definityUser" only means the person MAY
///    use a PBX — code must test DefinityExtension to know (§5.2);
///  * a metacommObject auxiliary class carries the LastUpdater
///    bookkeeping attribute that drives conditional updates (§5.4).
///
/// Also defined: the metacommError structural class for the error-log
/// entries the Update Manager writes on failed updates (§4.4).
ldap::Schema BuildIntegratedSchema();

/// Attributes contributed by the Definity auxiliary class.
extern const char* const kDefinityAttributes[];
extern const size_t kDefinityAttributeCount;

/// Attributes contributed by the messaging-platform auxiliary class.
extern const char* const kMpAttributes[];
extern const size_t kMpAttributeCount;

/// Object class names.
inline constexpr char kDefinityUserClass[] = "definityUser";
inline constexpr char kMpUserClass[] = "mpUser";
inline constexpr char kMetacommObjectClass[] = "metacommObject";
inline constexpr char kMetacommErrorClass[] = "metacommError";

/// The LastUpdater attribute (paper §5.4).
inline constexpr char kLastUpdaterAttr[] = "LastUpdater";

/// Ensures `entry` carries the person structural chain plus whichever
/// auxiliary classes its attributes require. Returns the classes added.
std::vector<std::string> ApplyObjectClasses(ldap::Entry* entry);

}  // namespace metacomm::core

#endif  // METACOMM_CORE_INTEGRATED_SCHEMA_H_
