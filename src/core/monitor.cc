#include "core/monitor.h"

#include "common/clock.h"

namespace metacomm::core {

MonitorPublisher::MonitorPublisher(ldap::LdapServer* server,
                                   ltap::LtapGateway* gateway,
                                   UpdateManager* update_manager,
                                   std::string suffix)
    : server_(server),
      gateway_(gateway),
      update_manager_(update_manager),
      suffix_(std::move(suffix)) {}

Status MonitorPublisher::Publish(
    const std::string& name,
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  std::vector<std::string> info;
  info.reserve(counters.size());
  for (const auto& [key, value] : counters) {
    info.push_back(key + "=" + std::to_string(value));
  }
  return PublishInfo(name, std::move(info));
}

Status MonitorPublisher::PublishInfo(const std::string& name,
                                     std::vector<std::string> info) {
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base, ldap::Dn::Parse(base_dn()));
  ldap::Dn dn = base.Child(ldap::Rdn("cn", name));

  if (server_->backend().Exists(dn)) {
    ldap::Modification replace;
    replace.type = ldap::Modification::Type::kReplace;
    replace.attribute = "monitorInfo";
    replace.values = std::move(info);
    return server_->backend().Modify(dn, {std::move(replace)});
  }
  ldap::Entry entry(std::move(dn));
  entry.AddObjectClass("top");
  entry.AddObjectClass("monitoredObject");
  entry.SetOne("cn", name);
  entry.Set("monitorInfo", std::move(info));
  return server_->backend().Add(entry);
}

Status MonitorPublisher::Refresh() {
  // Container.
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base, ldap::Dn::Parse(base_dn()));
  if (!server_->backend().Exists(base)) {
    ldap::Entry container(base);
    container.AddObjectClass("top");
    container.AddObjectClass("monitoredObject");
    container.SetOne("cn", "monitor");
    container.SetOne("description",
                     "MetaComm runtime statistics; refresh to update");
    METACOMM_RETURN_IF_ERROR(server_->backend().Add(container));
  }

  ltap::LtapGateway::Stats gateway_stats = gateway_->stats();
  METACOMM_RETURN_IF_ERROR(Publish(
      "gateway",
      {{"updates", gateway_stats.updates},
       {"reads", gateway_stats.reads},
       {"internalOps", gateway_stats.internal_ops},
       {"triggersFired", gateway_stats.triggers_fired},
       {"vetoes", gateway_stats.vetoes},
       {"quiesceWaits", gateway_stats.quiesce_waits},
       {"contendedLocks",
        gateway_->lock_table().contended_acquisitions()}}));

  UpdateManager::Stats um_stats = update_manager_->stats();
  METACOMM_RETURN_IF_ERROR(Publish(
      "update-manager",
      {{"ldapUpdates", um_stats.ldap_updates},
       {"deviceUpdates", um_stats.device_updates},
       {"deviceApplies", um_stats.device_applies},
       {"reapplications", um_stats.reapplications},
       {"generatedInfo", um_stats.generated_info},
       {"errors", um_stats.errors},
       {"undos", um_stats.undos},
       {"closureIterations", um_stats.closure_iterations},
       {"syncs", um_stats.syncs},
       {"lockRetries", um_stats.lock_retries},
       {"shutdownDrained", um_stats.shutdown_drained},
       {"batches", um_stats.batches},
       {"coalesced", um_stats.coalesced},
       {"rttsSaved", um_stats.rtts_saved},
       {"breakerOpenSkips", um_stats.breaker_open_skips},
       {"replayed", um_stats.replayed},
       {"repairPasses", um_stats.repair_passes},
       {"repairSyncs", um_stats.repair_syncs}}));

  // Per-repository fault surface (cn=um-health-<repo>): breaker state,
  // replay backlog, and the device's own fault telemetry. This is what
  // an administrator watches during an outage (§4.4).
  for (const UpdateManager::Stats::RepositoryStats& repo :
       um_stats.repositories) {
    std::vector<std::string> info;
    info.push_back(std::string("breakerState=") +
                   CircuitBreaker::StateName(repo.breaker.state));
    info.push_back("consecutiveFailures=" +
                   std::to_string(repo.breaker.consecutive_failures));
    info.push_back("openTransitions=" +
                   std::to_string(repo.breaker.open_transitions));
    info.push_back("skippedOpenCircuit=" +
                   std::to_string(repo.breaker.skipped));
    info.push_back("backoffMicros=" +
                   std::to_string(repo.breaker.backoff_micros));
    info.push_back("lastProbeMicros=" +
                   std::to_string(repo.breaker.last_probe_micros));
    info.push_back("replayBacklog=" +
                   std::to_string(repo.replay_backlog));
    info.push_back(std::string("reachable=") +
                   (repo.health.reachable ? "1" : "0"));
    info.push_back("commands=" + std::to_string(repo.health.commands));
    info.push_back("injectedFailures=" +
                   std::to_string(repo.health.injected_failures));
    METACOMM_RETURN_IF_ERROR(
        PublishInfo("um-health-" + repo.name, std::move(info)));
  }

  // Batch size histogram under its own monitored object; the bucket
  // edges mirror UpdateManager::Stats::batch_size_buckets.
  {
    const std::vector<uint64_t>& buckets = um_stats.batch_size_buckets;
    static const char* kBucketNames[] = {"size1",    "size2",  "size3to4",
                                         "size5to8", "size9to16", "sizeOver16"};
    std::vector<std::pair<std::string, uint64_t>> histogram;
    for (size_t i = 0; i < buckets.size() && i < 6; ++i) {
      histogram.emplace_back(kBucketNames[i], buckets[i]);
    }
    METACOMM_RETURN_IF_ERROR(Publish("um-batches", histogram));
  }

  // One monitored object per update-queue shard (cn=um-shard-N).
  for (size_t shard = 0; shard < um_stats.shards.size(); ++shard) {
    const UpdateManager::ShardStats& s = um_stats.shards[shard];
    METACOMM_RETURN_IF_ERROR(
        Publish("um-shard-" + std::to_string(shard),
                {{"enqueued", s.enqueued},
                 {"dequeued", s.dequeued},
                 {"depth", s.depth},
                 {"maxDepth", s.max_depth},
                 {"queueWaitMicros", s.queue_wait_micros}}));
  }

  METACOMM_RETURN_IF_ERROR(
      Publish("directory", {{"entries", server_->backend().Size()},
                            {"changes", server_->backend().ChangeCount()}}));

  // Read-path health: how searches are being answered (index plan vs
  // subtree scan), how selective the plans are, and how fresh the
  // published snapshot is. Sampled before Publish() below bumps the
  // counters with its own upsert reads.
  ldap::Backend::ReadStats read_stats = server_->backend().read_stats();
  ldap::Backend::SnapshotPtr snapshot = server_->backend().GetSnapshot();
  int64_t now_micros = RealClock::Get()->NowMicros();
  uint64_t age_micros =
      now_micros > snapshot->published_micros
          ? static_cast<uint64_t>(now_micros - snapshot->published_micros)
          : 0;
  return Publish("ldap-reads",
                 {{"searches", read_stats.searches},
                  {"gets", read_stats.gets},
                  {"exists", read_stats.exists},
                  {"indexedPlans", read_stats.indexed_plans},
                  {"scanPlans", read_stats.scan_plans},
                  {"candidatesExamined", read_stats.candidates_examined},
                  {"candidatesMatched", read_stats.candidates_matched},
                  {"snapshotVersion", snapshot->version},
                  {"snapshotAgeMicros", age_micros}});
}

}  // namespace metacomm::core
