#include "core/integrated_schema.h"

#include "common/strings.h"

namespace metacomm::core {

const char* const kDefinityAttributes[] = {
    "DefinityExtension",    "DefinityCos",     "DefinityRoom",
    "DefinityCoveragePath", "DefinitySetType", "DefinityPort",
    "DefinityPbxName",
};
const size_t kDefinityAttributeCount =
    sizeof(kDefinityAttributes) / sizeof(kDefinityAttributes[0]);

const char* const kMpAttributes[] = {
    "MpMailboxNumber", "MpSubscriberId", "MpPin",
    "MpGreeting",      "MpPlatformName",
};
const size_t kMpAttributeCount =
    sizeof(kMpAttributes) / sizeof(kMpAttributes[0]);

ldap::Schema BuildIntegratedSchema() {
  ldap::Schema schema = ldap::Schema::Standard();

  auto attr = [&schema](std::string name, bool single = false) {
    ldap::AttributeTypeDef def;
    def.name = std::move(name);
    def.syntax = ldap::AttributeSyntax::kDirectoryString;
    def.single_valued = single;
    Status s = schema.AddAttributeType(std::move(def));
    (void)s;  // Definitions below are statically unique.
  };

  for (size_t i = 0; i < kDefinityAttributeCount; ++i) {
    attr(kDefinityAttributes[i]);
  }
  for (size_t i = 0; i < kMpAttributeCount; ++i) {
    attr(kMpAttributes[i]);
  }
  attr(kLastUpdaterAttr, /*single=*/true);
  attr("errorText");
  attr("errorOp", /*single=*/true);
  attr("errorTarget", /*single=*/true);
  attr("errorTime", /*single=*/true);
  // Replay payload (PR 5): the failed update serialized well enough to
  // reapply it verbatim once the repository's circuit re-closes.
  attr("errorSeq", /*single=*/true);
  attr("errorRepository", /*single=*/true);
  attr("errorClass", /*single=*/true);
  attr("errorSource", /*single=*/true);
  attr("errorSchema", /*single=*/true);
  attr("errorConditional", /*single=*/true);
  attr("errorExplicitAttr");
  attr("errorOldImage");
  attr("errorNewImage");
  attr("monitorInfo");  // "counter=value" strings, cn=monitor subtree.

  auto cls = [&schema](std::string name, ldap::ObjectClassKind kind,
                       std::string superior,
                       std::vector<std::string> must,
                       std::vector<std::string> may) {
    ldap::ObjectClassDef def;
    def.name = std::move(name);
    def.kind = kind;
    def.superior = std::move(superior);
    def.must = std::move(must);
    def.may = std::move(may);
    Status s = schema.AddObjectClass(std::move(def));
    (void)s;
  };

  // Auxiliary classes MUST NOT declare mandatory attributes (§5.2) —
  // Schema::AddObjectClass enforces it; everything is MAY.
  {
    std::vector<std::string> may(kDefinityAttributes,
                                 kDefinityAttributes +
                                     kDefinityAttributeCount);
    cls(kDefinityUserClass, ldap::ObjectClassKind::kAuxiliary, "top", {},
        std::move(may));
  }
  {
    std::vector<std::string> may(kMpAttributes,
                                 kMpAttributes + kMpAttributeCount);
    cls(kMpUserClass, ldap::ObjectClassKind::kAuxiliary, "top", {},
        std::move(may));
  }
  cls(kMetacommObjectClass, ldap::ObjectClassKind::kAuxiliary, "top", {},
      {kLastUpdaterAttr});
  cls(kMetacommErrorClass, ldap::ObjectClassKind::kStructural, "top",
      {"cn"}, {"errorText", "errorOp", "errorTarget", "errorTime",
               "description", "errorSeq", "errorRepository", "errorClass",
               "errorSource", "errorSchema", "errorConditional",
               "errorExplicitAttr", "errorOldImage", "errorNewImage"});
  cls("monitoredObject", ldap::ObjectClassKind::kStructural, "top",
      {"cn"}, {"monitorInfo", "description"});
  return schema;
}

std::vector<std::string> ApplyObjectClasses(ldap::Entry* entry) {
  std::vector<std::string> added;
  auto ensure = [entry, &added](const char* cls) {
    if (!entry->HasObjectClass(cls)) {
      entry->AddObjectClass(cls);
      added.push_back(cls);
    }
  };
  ensure("top");
  ensure("person");
  ensure("organizationalPerson");
  ensure("inetOrgPerson");

  bool has_definity = false;
  for (size_t i = 0; i < kDefinityAttributeCount; ++i) {
    if (entry->Has(kDefinityAttributes[i])) has_definity = true;
  }
  if (has_definity) ensure(kDefinityUserClass);

  bool has_mp = false;
  for (size_t i = 0; i < kMpAttributeCount; ++i) {
    if (entry->Has(kMpAttributes[i])) has_mp = true;
  }
  if (has_mp) ensure(kMpUserClass);

  if (entry->Has(kLastUpdaterAttr)) ensure(kMetacommObjectClass);
  return added;
}

}  // namespace metacomm::core
