#ifndef METACOMM_CORE_METACOMM_H_
#define METACOMM_CORE_METACOMM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/device_filter.h"
#include "core/ldap_filter.h"
#include "core/mapping_gen.h"
#include "core/monitor.h"
#include "core/update_manager.h"
#include "devices/definity_pbx.h"
#include "devices/messaging_platform.h"
#include "ldap/client.h"
#include "ldap/server.h"
#include "ltap/gateway.h"

namespace metacomm::core {

/// Deployment-level configuration of a MetaComm instance.
struct SystemConfig {
  /// Directory suffix and the standard containers beneath it.
  std::string suffix = "o=Lucent";
  std::string people_base = "ou=People,o=Lucent";
  std::string errors_base = "cn=errors,o=Lucent";

  /// PBXs to instantiate. Default: the paper's single Definity
  /// ("pbx1", any extension, numbers under +1 908 582).
  std::vector<PbxMappingParams> pbxs = {PbxMappingParams{}};
  /// Messaging platforms to instantiate. Default: one platform "mp1".
  std::vector<MpMappingParams> mps = {MpMappingParams{}};

  /// Emulated per-conversation round-trip latency of every device's
  /// administrative link (devices::LatencyEmulator). Zero (the default)
  /// keeps the simulators instantaneous; benches set it to model the
  /// slow proprietary interfaces the paper's devices sit behind.
  int64_t device_command_rtt_micros = 0;

  /// Update Manager settings (threading, ablations, extensions).
  UpdateManagerConfig um;
  /// Gateway settings (lock/quiesce timeouts, ablations).
  ltap::GatewayConfig gateway;
};

/// A fully assembled MetaComm deployment (paper Figure 1): LDAP server
/// behind an LTAP gateway, one filter per device, and the Update
/// Manager wiring them together. This is the top-level object the
/// examples and benchmarks instantiate.
///
/// Clients administer everything through LDAP against gateway() — "any
/// LDAP tool can contact LTAP to administer the telecom devices" (§4) —
/// while device administrators keep using each device's proprietary
/// command interface; MetaComm keeps both sides consistent.
class MetaCommSystem {
 public:
  /// Builds and wires a full deployment; creates the suffix entries
  /// and installs the UM trigger. Fails if the generated mappings do
  /// not validate.
  static StatusOr<std::unique_ptr<MetaCommSystem>> Create(
      SystemConfig config);

  ~MetaCommSystem();

  /// The service clients should talk to (the LTAP gateway).
  ltap::LtapGateway& gateway() { return *gateway_; }

  /// The raw directory server (reads bypassing the gateway, tests).
  ldap::LdapServer& server() { return *server_; }

  UpdateManager& update_manager() { return *um_; }
  LdapFilter& ldap_filter() { return *ldap_filter_; }

  /// cn=monitor publisher; call Refresh() then browse via LDAP.
  MonitorPublisher& monitor() { return *monitor_; }

  /// Devices by name; nullptr when unknown.
  devices::DefinityPbx* pbx(const std::string& name);
  devices::MessagingPlatform* mp(const std::string& name);
  DeviceFilter* filter(const std::string& name);

  /// A new LDAP client session against the gateway (what the WBA and
  /// other tools use). Each client gets its own LTAP session id.
  ldap::Client NewClient();

  /// Convenience: adds a person entry (inetOrgPerson under
  /// people_base) through the gateway, triggering full propagation.
  Status AddPerson(const std::string& cn,
                   const std::vector<std::pair<std::string, std::string>>&
                       extra_attrs = {});

  const SystemConfig& config() const { return config_; }

 private:
  explicit MetaCommSystem(SystemConfig config);
  Status Init();

  SystemConfig config_;
  ldap::Schema schema_;
  std::unique_ptr<ldap::LdapServer> server_;
  std::unique_ptr<ltap::LtapGateway> gateway_;
  std::unique_ptr<LdapFilter> ldap_filter_;
  std::vector<std::unique_ptr<devices::DefinityPbx>> pbxs_;
  std::vector<std::unique_ptr<devices::MessagingPlatform>> mps_;
  std::vector<std::unique_ptr<DeviceFilter>> filters_;
  std::unique_ptr<UpdateManager> um_;
  std::unique_ptr<MonitorPublisher> monitor_;
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_METACOMM_H_
