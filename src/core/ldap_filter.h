#ifndef METACOMM_CORE_LDAP_FILTER_H_
#define METACOMM_CORE_LDAP_FILTER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/repository_filter.h"
#include "ldap/entry.h"
#include "ldap/service.h"
#include "lexpress/record.h"

namespace metacomm::core {

/// Configuration of the LDAP filter.
struct LdapFilterConfig {
  /// Subtree holding the integrated person entries.
  std::string people_base = "ou=People,o=Lucent";
  /// The LDAP-side record key. It participates in the entry's RDN, so
  /// key changes become the ModifyRDN/Modify pair of §5.1.
  std::string key_attr = "cn";
};

/// The LDAP filter: protocol converter between lexpress' canonical
/// records and LDAP entries, plus descriptor application against the
/// directory (paper §4.1).
///
/// All writes go through the LTAP gateway with OpContext::internal set:
/// the Update Manager calls Apply only while it (or the client whose
/// trigger is being processed) holds the LTAP entry lock, so trigger
/// re-processing and re-locking must be bypassed.
class LdapFilter {
 public:
  /// `service` is the LTAP gateway (or a bare server in tests).
  LdapFilter(ldap::LdapService* service, LdapFilterConfig config);

  const LdapFilterConfig& config() const { return config_; }
  const std::string& key_attr() const { return config_.key_attr; }

  /// Flattens an entry into an "ldap"-schema record (objectClass is
  /// dropped; it is directory plumbing, not integrated data).
  lexpress::Record ToRecord(const ldap::Entry& entry) const;

  /// Builds a person entry (DN under people_base, structural chain and
  /// auxiliary classes derived from the attributes) from a record.
  StatusOr<ldap::Entry> ToEntry(const lexpress::Record& record) const;

  /// DN a record with this key value lives at.
  StatusOr<ldap::Dn> DnForKey(const std::string& key) const;

  /// Entry lookup by key attribute (RDN-based, exact).
  StatusOr<std::optional<ldap::Entry>> FindByKey(const std::string& key);

  /// Entry lookup by an arbitrary equality (uses the backend index);
  /// returns the first match under people_base.
  StatusOr<std::optional<ldap::Entry>> FindByAttr(const std::string& attr,
                                                  const std::string& value);

  /// Applies a canonical update (records in the "ldap" schema) to the
  /// directory. Key-changing modifies are applied as the
  /// ModifyRDN/Modify pair (§5.1); `pair_crash_hook`, if set, runs
  /// between the two operations so tests can simulate the UM crash the
  /// paper analyzes. Conditional updates degrade gracefully
  /// (add->modify fallback etc.). Returns the resulting record (empty
  /// for deletes).
  ApplyResult Apply(const lexpress::UpdateDescriptor& update);

  /// Applies a batch of canonical updates under ONE internal LTAP
  /// session (a single gateway context instead of one per update —
  /// the directory-side half of batched propagation). Results are
  /// positional; a failing update does not stop the rest.
  std::vector<ApplyResult> ApplyBatch(
      const std::vector<lexpress::UpdateDescriptor>& updates);

  /// Installs a hook invoked between ModifyRDN and Modify of a pair.
  /// A non-OK return aborts before the second half (simulated crash).
  void set_pair_crash_hook(std::function<Status()> hook) {
    pair_crash_hook_ = std::move(hook);
  }

  /// Every person entry under people_base, as records.
  StatusOr<std::vector<lexpress::Record>> DumpAll();

  /// Number of ModifyRDN/Modify pairs executed.
  uint64_t pair_operations() const { return pair_operations_; }

 private:
  /// Builds modifications turning `current` into `target` (only the
  /// attributes `target`/`old_image` mention are touched), including
  /// any objectClass values newly required.
  std::vector<ldap::Modification> DiffMods(
      const ldap::Entry& current, const lexpress::Record& old_image,
      const lexpress::Record& target) const;

  /// Apply against a caller-provided gateway context (shared by every
  /// update of an ApplyBatch call).
  ApplyResult ApplyWithContext(
      const ldap::OpContext& ctx, const lexpress::UpdateDescriptor& update);

  ldap::OpContext InternalContext() const;

  ldap::LdapService* service_;
  LdapFilterConfig config_;
  std::function<Status()> pair_crash_hook_;
  uint64_t pair_operations_ = 0;
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_LDAP_FILTER_H_
