#include "core/update_manager.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/clock.h"
#include "common/logging.h"
#include "core/coalescer.h"
#include "core/device_filter.h"
#include "core/integrated_schema.h"

namespace metacomm::core {

namespace {

/// Merges `overlay`'s attributes onto `base` (overlay wins).
lexpress::Record MergeRecords(const lexpress::Record& base,
                              const lexpress::Record& overlay) {
  lexpress::Record out = base;
  out.set_schema(base.schema().empty() ? overlay.schema() : base.schema());
  for (const auto& [attr, value] : overlay.attrs()) {
    out.Set(attr, value);
  }
  return out;
}

}  // namespace

UpdateManager::UpdateManager(ltap::LtapGateway* gateway,
                             LdapFilter* ldap_filter,
                             UpdateManagerConfig config)
    : gateway_(gateway),
      ldap_filter_(ldap_filter),
      config_(config),
      queue_(static_cast<size_t>(std::max(1, config.worker_threads))) {
  um_session_ = gateway_->NewSession();
  stats_.shards.resize(queue_.shard_count());
}

UpdateManager::~UpdateManager() { Stop(); }

void UpdateManager::AddDeviceFilter(RepositoryFilter* filter) {
  filters_.push_back(filter);
  mappings_.Add(filter->to_ldap());
  mappings_.Add(filter->from_ldap());
  CircuitBreaker::Options breaker_options;
  breaker_options.failure_threshold = config_.breaker_failure_threshold;
  breaker_options.open_backoff_micros = config_.breaker_open_backoff_micros;
  breaker_options.max_backoff_micros = config_.breaker_max_backoff_micros;
  breaker_options.enabled = config_.breaker_enabled;
  breakers_.emplace(filter->name(),
                    std::make_unique<CircuitBreaker>(breaker_options));
  if (auto* device_filter = dynamic_cast<DeviceFilter*>(filter)) {
    device_filter->SetDduHandler(
        [this](lexpress::UpdateDescriptor update) {
          SubmitDeviceUpdate(std::move(update));
        });
  }
}

Status UpdateManager::ValidateMappings() const {
  return mappings_.Validate();
}

Status UpdateManager::InstallTrigger(const std::string& base_dn) {
  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base, ldap::Dn::Parse(base_dn));
  ltap::TriggerSpec spec;
  spec.name = "metacomm-um";
  spec.base = std::move(base);
  spec.ops = ltap::kTriggerAll;
  spec.timing = ltap::TriggerTiming::kAfter;
  spec.server = this;
  gateway_->RegisterTrigger(std::move(spec));
  return Status::Ok();
}

void UpdateManager::Start() {
  if (!config_.threaded) return;
  if (running_.exchange(true)) return;
  {
    MutexLock lock(&shutdown_mutex_);
    stopping_ = false;  // A restarted UM sleeps and repairs again.
  }
  queue_.Reopen();  // Stop() closed it; restarts take updates again.
  // "The main thread of the UM, the coordinator, iterates through the
  // global update queue" (§4.4). worker_threads=1 reproduces that
  // single coordinator; more workers keep one strict FIFO per shard,
  // which is all the §4.4 convergence argument needs — it reasons
  // about the order of updates to one entry, never across entries.
  workers_.reserve(queue_.shard_count());
  for (size_t shard = 0; shard < queue_.shard_count(); ++shard) {
    workers_.emplace_back([this, shard] { WorkerLoop(shard); });
  }
  if (config_.repair_enabled) {
    repair_thread_ = std::thread([this] { RepairLoop(); });
  }
}

void UpdateManager::Stop() {
  if (!running_.exchange(false)) return;
  // Raise the stop flag FIRST: in-flight lock backoffs, artificial
  // processing delays, a running Synchronize, and the repair worker's
  // scan sleep all watch it, so workers reach their release paths
  // promptly instead of sleeping out their full backoff schedules —
  // and every path still releases its LTAP locks on the way out.
  {
    MutexLock lock(&shutdown_mutex_);
    stopping_ = true;
    ++stop_epoch_;
  }
  shutdown_cv_.NotifyAll();
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (repair_thread_.joinable()) repair_thread_.join();
  // The queue died with items still in it: release their entry locks
  // and fail their callers, instead of leaving locks held forever and
  // threaded OnUpdate callers hanging in done.get().
  std::vector<WorkItem> abandoned = queue_.Drain();
  for (WorkItem& item : abandoned) {
    ReleaseLocks(item.locked, item.lock_session);
    if (item.done) {
      item.done->set_value(
          Status::Unavailable("update manager is shut down"));
    }
  }
  if (!abandoned.empty()) {
    MutexLock lock(&stats_mutex_);
    stats_.shutdown_drained += abandoned.size();
  }
}

void UpdateManager::WorkerLoop(size_t shard) {
  const size_t max_batch =
      static_cast<size_t>(std::max(1, config_.max_batch_size));
  // The worker's lexpress interpreter: its stack, value pool and record
  // view persist across every item this worker ever processes, so the
  // closure/translation hot path runs allocation-free in steady state.
  lexpress::Vm vm;
  while (true) {
    std::vector<WorkItem> batch = queue_.PopBatch(shard, max_batch);
    if (batch.empty()) return;  // Closed; Stop() reclaims the rest.
    for (WorkItem& item : batch) RecordDequeue(item);
    RecordBatch(batch.size());
    if (batch.size() == 1) {
      // The paper shape — and the max_batch_size=1 default — bypasses
      // the coalescer entirely.
      WorkItem& item = batch.front();
      Status status = ProcessItem(item, &vm);
      if (item.done) item.done->set_value(status);
      continue;
    }
    ProcessBatch(std::move(batch), &vm);
  }
}

void UpdateManager::RecordBatch(size_t batch_size) {
  size_t bucket = batch_size <= 2    ? batch_size - 1
                  : batch_size <= 4  ? 2
                  : batch_size <= 8  ? 3
                  : batch_size <= 16 ? 4
                                     : 5;
  MutexLock lock(&stats_mutex_);
  ++stats_.batches;
  ++stats_.batch_size_buckets[bucket];
}

bool UpdateManager::Enqueue(WorkItem item) {
  item.enqueue_micros = RealClock::Get()->NowMicros();
  size_t shard = item.shard;
  if (!queue_.Push(shard, std::move(item))) return false;
  MutexLock lock(&stats_mutex_);
  ShardStats& stats = stats_.shards[shard];
  ++stats.enqueued;
  stats.max_depth =
      std::max<uint64_t>(stats.max_depth, queue_.Depth(shard));
  return true;
}

void UpdateManager::RecordDequeue(const WorkItem& item) {
  int64_t waited = RealClock::Get()->NowMicros() - item.enqueue_micros;
  MutexLock lock(&stats_mutex_);
  ShardStats& stats = stats_.shards[item.shard];
  ++stats.dequeued;
  if (waited > 0) {
    stats.queue_wait_micros += static_cast<uint64_t>(waited);
  }
}

size_t UpdateManager::Pump() {
  // Synchronous assemblies drain on whatever thread calls Pump; a
  // per-thread interpreter keeps its scratch warm across calls.
  thread_local lexpress::Vm vm;
  size_t processed = 0;
  while (true) {
    std::optional<WorkItem> item = queue_.TryPopAny();
    if (!item.has_value()) break;
    RecordDequeue(*item);
    Status status = ProcessItem(*item, &vm);
    if (item->done) item->done->set_value(status);
    ++processed;
  }
  return processed;
}

void UpdateManager::SubmitDeviceUpdate(lexpress::UpdateDescriptor update) {
  if (config_.threaded) {
    // Translate and lock on THIS thread (the device's notification
    // thread) so the coordinator never blocks on entry locks; the
    // device administrator's command stalls instead, exactly as a DDU
    // stalls at LTAP in the paper's design (§4.4).
    StatusOr<std::optional<WorkItem>> prepared =
        PrepareDeviceUpdate(update);
    if (!prepared.ok()) {
      HandleError(prepared.status(), update);
      return;
    }
    if (!prepared->has_value()) return;  // Routed nowhere.
    WorkItem item = std::move(**prepared);
    // Same-entry FIFO: the shard is chosen from the first (normalized,
    // sorted) locked DN, so every update touching that entry lands on
    // the same worker. DN-less items carry no ordering constraint.
    item.shard = item.locked.empty()
                     ? queue_.NextShard()
                     : queue_.ShardFor(item.locked.front().Normalized());
    std::vector<ldap::Dn> locked = item.locked;
    uint64_t lock_session = item.lock_session;
    if (!Enqueue(std::move(item))) {
      // Workers already stopped (UM shutdown/crash): the update is
      // lost until resynchronization — the §4.4 recovery story.
      ReleaseLocks(locked, lock_session);
    }
    return;
  }
  // Synchronous mode: the device notification thread carries the
  // propagation to completion before the administrator's command
  // returns.
  WorkItem item;
  item.descriptor = std::move(update);
  Status status = ProcessItem(item, /*vm=*/nullptr);
  (void)status;  // Failures were logged/notified by ProcessItem.
}

Status UpdateManager::OnUpdate(
    const ltap::UpdateNotification& notification) {
  if (notification.timing == ltap::TriggerTiming::kBefore) {
    return Status::Ok();
  }
  if (notification.session_id == um_session_) {
    return Status::Ok();  // Our own writes need no re-processing.
  }
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.ldap_updates;
  }
  StatusOr<lexpress::UpdateDescriptor> descriptor =
      DescriptorFromNotification(notification);
  if (!descriptor.ok()) return descriptor.status();

  if (!config_.threaded) {
    WorkItem item;
    item.descriptor = std::move(descriptor).value();
    return ProcessItem(item, /*vm=*/nullptr);
  }
  // Threaded: enqueue and wait — LTAP must not reply to the client
  // until the UM "completes the update sequence and notifies LTAP"
  // (§4.4). Routed by the updated entry's DN: a later update to the
  // same entry (the client holds its lock until we return, so it can
  // only be later) queues behind this one on the same shard.
  WorkItem item;
  item.descriptor = std::move(descriptor).value();
  item.shard = queue_.ShardFor(notification.dn.Normalized());
  item.done = std::make_shared<std::promise<Status>>();
  std::future<Status> done = item.done->get_future();
  if (!Enqueue(std::move(item))) {
    return Status::Unavailable("update manager is shut down");
  }
  return done.get();
}

StatusOr<lexpress::UpdateDescriptor>
UpdateManager::DescriptorFromNotification(
    const ltap::UpdateNotification& notification) const {
  lexpress::UpdateDescriptor desc;
  desc.schema = "ldap";
  desc.source = "ldap";
  switch (notification.op) {
    case ldap::UpdateOp::kAdd:
      desc.op = lexpress::DescriptorOp::kAdd;
      break;
    case ldap::UpdateOp::kDelete:
      desc.op = lexpress::DescriptorOp::kDelete;
      break;
    case ldap::UpdateOp::kModify:
    case ldap::UpdateOp::kModifyRdn:
      desc.op = lexpress::DescriptorOp::kModify;
      break;
  }
  if (notification.old_entry.has_value()) {
    desc.old_record = ldap_filter_->ToRecord(*notification.old_entry);
  }
  if (notification.new_entry.has_value()) {
    desc.new_record = ldap_filter_->ToRecord(*notification.new_entry);
  }
  desc.old_record.set_schema("ldap");
  desc.new_record.set_schema("ldap");

  switch (desc.op) {
    case lexpress::DescriptorOp::kAdd:
      for (const auto& [attr, value] : desc.new_record.attrs()) {
        desc.explicit_attrs.insert(attr);
      }
      break;
    case lexpress::DescriptorOp::kModify:
      if (notification.op == ldap::UpdateOp::kModifyRdn) {
        desc.explicit_attrs.insert(ldap_filter_->key_attr());
      }
      for (const ldap::Modification& mod : notification.mods) {
        desc.explicit_attrs.insert(mod.attribute);
      }
      break;
    case lexpress::DescriptorOp::kDelete:
      break;
  }
  // This update's origin is the directory; record it so device-side
  // Originator detection (§5.4) sees a non-device source.
  if (desc.op != lexpress::DescriptorOp::kDelete) {
    desc.new_record.SetOne(kLastUpdaterAttr, "ldap");
    desc.explicit_attrs.erase(kLastUpdaterAttr);
  }
  return desc;
}

RepositoryFilter* UpdateManager::FindFilter(const std::string& name) const {
  for (RepositoryFilter* filter : filters_) {
    if (EqualsIgnoreCase(filter->name(), name)) return filter;
  }
  return nullptr;
}

Status UpdateManager::ProcessItem(const WorkItem& item, lexpress::Vm* vm) {
  if (item.prepared) return FinishDeviceUpdate(item, vm);
  if (EqualsIgnoreCase(item.descriptor.schema, "ldap")) {
    return ProcessLdapOriginated(item.descriptor, vm);
  }
  return ProcessDeviceOriginated(item.descriptor, vm);
}

Status UpdateManager::ProcessLdapOriginated(
    const lexpress::UpdateDescriptor& update, lexpress::Vm* vm) {
  // LTAP already applied the client's operation and holds the entry
  // lock for the duration of this call.
  return Propagate(update, /*ldap_current=*/true, vm);
}

StatusOr<std::optional<UpdateManager::WorkItem>>
UpdateManager::PrepareDeviceUpdate(
    const lexpress::UpdateDescriptor& update) {
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.device_updates;
  }
  RepositoryFilter* filter = FindFilter(update.source);
  if (filter == nullptr) {
    return Status::Internal("no filter for device: " + update.source);
  }

  // Translate into the integrated schema. The device->ldap mapping
  // stamps LastUpdater with the device's name (§5.4).
  METACOMM_ASSIGN_OR_RETURN(
      std::optional<lexpress::UpdateDescriptor> translated,
      filter->to_ldap().Translate(update));
  if (!translated.has_value()) {
    return std::optional<WorkItem>();  // Routed nowhere.
  }
  lexpress::UpdateDescriptor ldap_update = std::move(*translated);

  // The device administrator's changes are "explicit" at the
  // directory level: the closure must not overwrite them.
  for (const auto& [attr, value] : ldap_update.new_record.attrs()) {
    if (!(ldap_update.old_record.Get(attr) == value)) {
      ldap_update.explicit_attrs.insert(attr);
    }
  }
  ldap_update.explicit_attrs.erase(kLastUpdaterAttr);

  // "LTAP is used to obtain locks" (§4.4): take the entry lock(s)
  // before the update enters the global queue so conflicting LDAP
  // client updates serialize behind this DDU. Locks are taken in
  // normalized-DN order so concurrent renames cannot deadlock.
  const std::string& key_attr = ldap_filter_->key_attr();
  std::vector<ldap::Dn> to_lock;
  for (const std::string& key :
       {ldap_update.old_record.GetFirst(key_attr),
        ldap_update.new_record.GetFirst(key_attr)}) {
    if (key.empty()) continue;
    METACOMM_ASSIGN_OR_RETURN(ldap::Dn dn, ldap_filter_->DnForKey(key));
    bool duplicate = false;
    for (const ldap::Dn& held : to_lock) {
      if (held == dn) duplicate = true;
    }
    if (!duplicate) to_lock.push_back(std::move(dn));
  }
  std::sort(to_lock.begin(), to_lock.end(),
            [](const ldap::Dn& a, const ldap::Dn& b) {
              return a.Normalized() < b.Normalized();
            });

  WorkItem item;
  item.prepared = true;
  // One fresh LTAP session per work item. Locking under a session
  // shared by every DDU (the old um_session_) made LockTable::Acquire
  // treat two concurrent DDUs on the same entry as one re-entrant
  // owner — both "held" the lock and raced.
  item.lock_session = gateway_->NewSession();
  for (const ldap::Dn& dn : to_lock) {
    Status status = AcquireEntryLock(dn, item.lock_session);
    if (!status.ok()) {
      ReleaseLocks(item.locked, item.lock_session);
      return status;
    }
    item.locked.push_back(dn);
  }

  item.descriptor = std::move(ldap_update);
  return std::optional<WorkItem>(std::move(item));
}

lexpress::UpdateDescriptor UpdateManager::HydrateDeviceUpdate(
    lexpress::UpdateDescriptor update) {
  // The device reports only the attributes it holds; hydrate both
  // images with the directory's current entry. Without this, fan-out
  // to the OTHER devices carries an image missing every attribute this
  // device never knew — and full-image repository writes then clear
  // them (a PBX room change would erase the messaging platform's Pin).
  // Attributes the administrator removed at the device stay removed.
  //
  // Runs on the worker, not the submitting device thread: the item has
  // held its entry lock since prepare, so the image read here is the
  // same FIFO-stable one — and the lookup cost lands on the parallel
  // side of the queue instead of the administrator's terminal.
  if (update.op == lexpress::DescriptorOp::kDelete) return update;
  const std::string& key_attr = ldap_filter_->key_attr();
  std::string key = update.old_record.GetFirst(key_attr);
  if (key.empty()) key = update.new_record.GetFirst(key_attr);
  if (key.empty()) return update;
  StatusOr<std::optional<ldap::Entry>> current =
      ldap_filter_->FindByKey(key);
  if (!current.ok() || !current->has_value()) return update;
  lexpress::Record image = ldap_filter_->ToRecord(**current);
  lexpress::Record merged_new = MergeRecords(image, update.new_record);
  for (const auto& [attr, value] : update.old_record.attrs()) {
    if (!update.new_record.Has(attr)) merged_new.Remove(attr);
  }
  update.old_record = MergeRecords(image, update.old_record);
  update.new_record = std::move(merged_new);
  return update;
}

Status UpdateManager::AcquireEntryLock(const ldap::Dn& dn,
                                       uint64_t session) {
  Status status = gateway_->LockEntry(dn, session);
  for (int attempt = 0; attempt < config_.ddu_lock_retries; ++attempt) {
    if (status.ok() || (status.code() != StatusCode::kConflict &&
                        status.code() != StatusCode::kDeadlineExceeded)) {
      break;
    }
    // The holder is usually a client write or another DDU one
    // propagation round away from finishing: back off (doubling per
    // attempt) instead of dropping the device update on the floor.
    {
      MutexLock lock(&stats_mutex_);
      ++stats_.lock_retries;
    }
    // Doubling, capped at 64x so long retry budgets poll steadily
    // instead of sleeping for geometric ages.
    int64_t backoff = config_.ddu_lock_retry_backoff_micros
                      << std::min(attempt, 6);
    if (!SleepInterruptible(backoff)) {
      return Status::Unavailable("update manager is shut down");
    }
    status = gateway_->LockEntry(dn, session);
  }
  return status;
}

bool UpdateManager::SleepInterruptible(int64_t micros) {
  if (micros <= 0) return !stopping();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(micros);
  MutexLock lock(&shutdown_mutex_);
  while (!stopping_) {
    if (!shutdown_cv_.WaitUntil(lock, deadline)) return true;  // Slept.
  }
  return false;  // Stopping: the caller bails to its release path.
}

bool UpdateManager::stopping() const {
  MutexLock lock(&shutdown_mutex_);
  return stopping_;
}

uint64_t UpdateManager::stop_epoch() const {
  MutexLock lock(&shutdown_mutex_);
  return stop_epoch_;
}

void UpdateManager::ReleaseLocks(const std::vector<ldap::Dn>& locked,
                                 uint64_t session) {
  for (auto it = locked.rbegin(); it != locked.rend(); ++it) {
    gateway_->UnlockEntry(*it, session);
  }
}

Status UpdateManager::FinishDeviceUpdate(const WorkItem& item,
                                         lexpress::Vm* vm) {
  Status status = Propagate(HydrateDeviceUpdate(item.descriptor),
                            /*ldap_current=*/false, vm);
  ReleaseLocks(item.locked, item.lock_session);
  return status;
}

Status UpdateManager::ProcessDeviceOriginated(
    const lexpress::UpdateDescriptor& update, lexpress::Vm* vm) {
  StatusOr<std::optional<WorkItem>> prepared = PrepareDeviceUpdate(update);
  if (!prepared.ok()) {
    HandleError(prepared.status(), update);
    return prepared.status();
  }
  if (!prepared->has_value()) return Status::Ok();
  return FinishDeviceUpdate(**prepared, vm);
}

std::string UpdatePlan::ToString() const {
  std::string out;
  for (const PlannedOp& op : ops) {
    if (!out.empty()) out += " -> ";
    out += std::string(lexpress::DescriptorOpName(op.update.op)) + "@" +
           op.repository;
    if (op.update.conditional) out += "?";
  }
  return out;
}

StatusOr<UpdatePlan> UpdateManager::PlanUpdate(
    const lexpress::UpdateDescriptor& ldap_update, bool ldap_current) {
  return PlanUpdate(ldap_update, ldap_current, /*vm=*/nullptr);
}

StatusOr<UpdatePlan> UpdateManager::PlanUpdate(
    const lexpress::UpdateDescriptor& ldap_update, bool ldap_current,
    lexpress::Vm* vm) {
  UpdatePlan plan;

  if (ldap_update.op == lexpress::DescriptorOp::kDelete) {
    if (!ldap_current) {
      PlannedOp directory_delete;
      directory_delete.repository = "ldap";
      directory_delete.update = ldap_update;
      directory_delete.update.conditional = true;  // Idempotent view op.
      plan.ops.push_back(std::move(directory_delete));
    }
    for (RepositoryFilter* filter : filters_) {
      METACOMM_ASSIGN_OR_RETURN(
          std::optional<lexpress::UpdateDescriptor> translated,
          filter->from_ldap().Translate(ldap_update, vm));
      if (!translated.has_value()) continue;
      PlannedOp device_delete;
      device_delete.repository = filter->name();
      device_delete.update = std::move(*translated);
      plan.ops.push_back(std::move(device_delete));
    }
    plan.final_ldap = lexpress::Record("ldap");
    return plan;
  }

  // ---- Add / Modify ----
  // Base images for the closure: the directory's old image plus each
  // device schema's derived old image.
  std::map<std::string, lexpress::Record, CaseInsensitiveLess> base;
  base.emplace("ldap", ldap_update.old_record);
  for (RepositoryFilter* filter : filters_) {
    if (base.count(filter->schema()) > 0) continue;
    StatusOr<bool> in_partition =
        filter->from_ldap().PartitionAccepts(ldap_update.old_record, vm);
    if (!in_partition.ok() || !*in_partition) continue;
    StatusOr<lexpress::Record> derived =
        filter->from_ldap().MapRecord(ldap_update.old_record, vm);
    if (derived.ok()) base.emplace(filter->schema(), std::move(*derived));
  }

  METACOMM_ASSIGN_OR_RETURN(
      lexpress::ClosureResult closure,
      mappings_.Propagate(base, "ldap", ldap_update.new_record,
                          ldap_update.explicit_attrs,
                          config_.closure_max_iterations, vm));
  plan.closure_iterations = closure.iterations;
  plan.final_ldap = closure.records["ldap"];
  plan.final_ldap.set_schema("ldap");

  // The directory write comes first: the materialized view is the
  // system of record, and device translation reads its final image.
  PlannedOp directory_op;
  directory_op.repository = "ldap";
  directory_op.update = ldap_update;
  directory_op.update.new_record = plan.final_ldap;
  directory_op.update.conditional = ldap_current || ldap_update.conditional;
  plan.ops.push_back(std::move(directory_op));

  lexpress::UpdateDescriptor fanout = ldap_update;
  fanout.new_record = plan.final_ldap;
  for (RepositoryFilter* filter : filters_) {
    METACOMM_ASSIGN_OR_RETURN(
        std::optional<lexpress::UpdateDescriptor> translated,
        filter->from_ldap().Translate(fanout, vm));
    if (!translated.has_value()) continue;
    PlannedOp device_op;
    device_op.repository = filter->name();
    device_op.update = std::move(*translated);
    plan.ops.push_back(std::move(device_op));
  }
  return plan;
}

Status UpdateManager::Propagate(
    const lexpress::UpdateDescriptor& ldap_update, bool ldap_current,
    lexpress::Vm* vm) {
  StatusOr<UpdatePlan> plan = PlanUpdate(ldap_update, ldap_current, vm);
  if (!plan.ok()) {
    // Closure fixpoint failure (runtime cycle detection, §4.2) or a
    // mapping evaluation error.
    HandleError(plan.status(), ldap_update);
    return plan.status();
  }
  {
    MutexLock lock(&stats_mutex_);
    stats_.closure_iterations +=
        static_cast<uint64_t>(plan->closure_iterations);
  }

  if (config_.artificial_processing_delay_micros > 0 &&
      !SleepInterruptible(config_.artificial_processing_delay_micros)) {
    return Status::Unavailable("update manager is shut down");
  }

  Status first_error = Status::Ok();
  std::vector<std::pair<RepositoryFilter*, lexpress::UpdateDescriptor>>
      applied_for_undo;
  std::vector<DeviceResult> results;
  bool aborted = false;

  for (const PlannedOp& op : plan->ops) {
    if (aborted) break;
    if (EqualsIgnoreCase(op.repository, "ldap")) {
      ApplyResult applied = ldap_filter_->Apply(op.update);
      if (!applied.ok()) {
        // The view write failed: abort the sequence (§4.4).
        HandleError(applied.status(), op.update);
        return applied.status();
      }
      continue;
    }

    RepositoryFilter* filter = FindFilter(op.repository);
    if (filter == nullptr) {
      Status error = Status::Internal("plan names unknown repository: " +
                                      op.repository);
      HandleError(error, op.update);
      if (first_error.ok()) first_error = error;
      continue;
    }
    if (op.update.conditional) {
      // This is the reapplication to the originating device that
      // enforces write-write convergence (§4.4, §5.4).
      if (!config_.reapply_to_originator) continue;
      MutexLock lock(&stats_mutex_);
      ++stats_.reapplications;
    }

    // Remember the pre-update image for saga undo.
    std::optional<lexpress::Record> prior;
    if (config_.saga_undo) {
      std::string prior_key =
          op.update.old_record.GetFirst(filter->key_attr());
      if (prior_key.empty()) {
        prior_key = op.update.new_record.GetFirst(filter->key_attr());
      }
      StatusOr<std::optional<lexpress::Record>> fetched =
          filter->Fetch(prior_key);
      if (fetched.ok()) prior = *fetched;
    }

    ApplyResult applied = ApplyToRepository(filter, op.update);
    if (!applied.ok()) {
      HandleFailure(filter->name(), applied.outcome(), applied.status(),
                    op.update);
      if (first_error.ok()) first_error = applied.status();
      if (config_.saga_undo) {
        // Compensate the devices already updated in this sequence,
        // then stop fanning out. The failure itself was logged and the
        // administrator notified; the client's directory write stands
        // (§4.4: errors are repaired out-of-band).
        UndoApplied(applied_for_undo);
        aborted = true;
      }
      continue;
    }
    {
      MutexLock lock(&stats_mutex_);
      ++stats_.device_applies;
    }
    if (op.update.op != lexpress::DescriptorOp::kDelete) {
      results.push_back(DeviceResult{filter, op.update.new_record,
                                     std::move(*applied)});
    }

    if (config_.saga_undo) {
      lexpress::UpdateDescriptor inverse;
      inverse.schema = op.update.schema;
      inverse.source = "metacomm-undo";
      inverse.conditional = true;
      switch (op.update.op) {
        case lexpress::DescriptorOp::kAdd:
          inverse.op = lexpress::DescriptorOp::kDelete;
          inverse.old_record = op.update.new_record;
          break;
        case lexpress::DescriptorOp::kModify:
          if (prior.has_value()) {
            inverse.op = lexpress::DescriptorOp::kModify;
            inverse.old_record = op.update.new_record;
            inverse.new_record = *prior;
          } else {
            inverse.op = lexpress::DescriptorOp::kDelete;
            inverse.old_record = op.update.new_record;
          }
          break;
        case lexpress::DescriptorOp::kDelete:
          inverse.op = lexpress::DescriptorOp::kAdd;
          if (prior.has_value()) inverse.new_record = *prior;
          break;
      }
      applied_for_undo.emplace_back(filter, std::move(inverse));
    }
  }

  if (ldap_update.op != lexpress::DescriptorOp::kDelete) {
    // Deletes mint no device-generated information.
    (void)BackfillGeneratedInfo(ldap_update, *plan, results);
  }
  // Device-side failures were logged and the administrator notified
  // (§4.4); they do not fail the originating client operation.
  (void)first_error;
  return Status::Ok();
}

Status UpdateManager::BackfillGeneratedInfo(
    const lexpress::UpdateDescriptor& ldap_update, const UpdatePlan& plan,
    const std::vector<DeviceResult>& results) {
  // Device-generated information (§5.5): after all other devices are
  // updated, fold anything the devices MINTED (e.g. the messaging
  // platform's SubscriberId) back into the directory. Minted means it
  // differs from the image we sent — an echo of a value the device was
  // given is not generated information, and must never overwrite
  // explicitly set directory attributes (§4.2's conflict rule).
  lexpress::Record generated("ldap");
  for (const DeviceResult& device : results) {
    StatusOr<lexpress::Record> result_mapped =
        device.filter->to_ldap().MapRecord(device.result);
    if (!result_mapped.ok()) continue;
    StatusOr<lexpress::Record> sent_mapped =
        device.filter->to_ldap().MapRecord(device.sent);
    for (const auto& [attr, value] : result_mapped->attrs()) {
      if (EqualsIgnoreCase(attr, kLastUpdaterAttr)) continue;
      if (ldap_update.explicit_attrs.count(attr) > 0) continue;
      if (sent_mapped.ok() && sent_mapped->Get(attr) == value) {
        continue;  // Echo of what we sent, not device-generated.
      }
      if (!(plan.final_ldap.Get(attr) == value)) {
        generated.Set(attr, value);
      }
    }
  }
  if (generated.empty()) return Status::Ok();
  lexpress::UpdateDescriptor backfill;
  backfill.op = lexpress::DescriptorOp::kModify;
  backfill.schema = "ldap";
  backfill.source = ldap_update.source;
  backfill.conditional = true;
  backfill.old_record = plan.final_ldap;
  backfill.new_record = MergeRecords(plan.final_ldap, generated);
  ApplyResult applied = ldap_filter_->Apply(backfill);
  if (!applied.ok()) {
    HandleError(applied.status(), backfill);
    return applied.status();
  }
  MutexLock lock(&stats_mutex_);
  ++stats_.generated_info;
  return Status::Ok();
}

void UpdateManager::SettleUnit(const UnitWork& unit,
                               std::vector<WorkItem>& items,
                               const Status& status) {
  for (size_t index : unit.constituents) {
    WorkItem& item = items[index];
    ReleaseLocks(item.locked, item.lock_session);
    if (item.done) item.done->set_value(status);
  }
}

void UpdateManager::ProcessBatch(std::vector<WorkItem> items,
                                 lexpress::Vm* vm) {
  if (config_.saga_undo) {
    // Saga compensation reasons about ONE update sequence at a time;
    // merged units have no single pre-image to restore. Fall back to
    // the sequential path rather than guess.
    for (WorkItem& item : items) {
      Status status = ProcessItem(item, vm);
      if (item.done) item.done->set_value(status);
    }
    return;
  }

  // Normalize every popped item into the integrated schema so the
  // coalescer compares like with like: Path A items already are; Path B
  // items were translated on their device thread (prepared == true).
  std::vector<lexpress::UpdateDescriptor> descriptors;
  descriptors.reserve(items.size());
  for (const WorkItem& item : items) descriptors.push_back(item.descriptor);
  CoalesceResult folded =
      CoalesceBatch(descriptors, ldap_filter_->key_attr());
  if (folded.coalesced_away > 0) {
    MutexLock lock(&stats_mutex_);
    stats_.coalesced += folded.coalesced_away;
  }

  std::vector<UnitWork> units;
  units.reserve(folded.units.size());
  for (CoalescedUnit& folded_unit : folded.units) {
    UnitWork unit;
    unit.update = std::move(folded_unit.update);
    unit.constituents = std::move(folded_unit.constituents);
    unit.annihilated = folded_unit.annihilated;
    // A unit is Path A exactly when its FIRST constituent came from an
    // LTAP trigger (un-prepared "ldap"-schema item): the directory then
    // already reflects that operation. Merging never changes this — the
    // coalescer only folds a later item into an earlier unit, and the
    // first constituent decides what the directory has seen.
    const WorkItem& first = items[unit.constituents.front()];
    unit.ldap_current =
        !first.prepared && EqualsIgnoreCase(first.descriptor.schema, "ldap");
    units.push_back(std::move(unit));
  }

  // Wave partitioning: consecutive units touching DISJOINT entities
  // propagate together; a repeated entity starts the next wave so
  // per-entity ordering is preserved exactly.
  const std::string& key_attr = ldap_filter_->key_attr();
  size_t next = 0;
  while (next < units.size()) {
    if (queue_.closed()) {
      // Shutdown raced the batch: fail what we have not yet propagated,
      // exactly as Stop()'s drain fails items still in the queue.
      size_t drained = 0;
      for (; next < units.size(); ++next) {
        drained += units[next].constituents.size();
        SettleUnit(units[next], items,
                   Status::Unavailable("update manager is shut down"));
      }
      MutexLock lock(&stats_mutex_);
      stats_.shutdown_drained += drained;
      return;
    }
    std::set<std::string, CaseInsensitiveLess> wave_keys;
    std::vector<size_t> wave;
    for (; next < units.size(); ++next) {
      UnitWork& unit = units[next];
      if (unit.annihilated) {
        // Add+...+Delete folded to nothing: the entity never existed
        // as far as any repository is concerned. Settle as success.
        SettleUnit(unit, items, Status::Ok());
        continue;
      }
      std::vector<std::string> unit_keys;
      for (const std::string& key :
           {unit.update.old_record.GetFirst(key_attr),
            unit.update.new_record.GetFirst(key_attr)}) {
        if (!key.empty()) unit_keys.push_back(key);
      }
      bool conflicts = false;
      for (const std::string& key : unit_keys) {
        if (wave_keys.count(key) > 0) conflicts = true;
      }
      if (conflicts) break;  // Same entity again: next wave.
      for (const std::string& key : unit_keys) wave_keys.insert(key);
      wave.push_back(next);
    }
    if (!wave.empty()) PropagateWave(units, wave, items, vm);
  }
}

void UpdateManager::PropagateWave(std::vector<UnitWork>& units,
                                  const std::vector<size_t>& wave,
                                  std::vector<WorkItem>& items,
                                  lexpress::Vm* vm) {
  // One planned-and-alive propagation per unit in the wave.
  struct LiveUnit {
    UnitWork* unit;
    lexpress::UpdateDescriptor update;  // Hydrated, integrated schema.
    UpdatePlan plan;
    std::vector<DeviceResult> results;
    Status status = Status::Ok();
    bool dead = false;  // Directory write failed: skip device fan-out.
  };
  std::vector<LiveUnit> live;
  live.reserve(wave.size());
  for (size_t index : wave) {
    UnitWork& unit = units[index];
    LiveUnit lu;
    lu.unit = &unit;
    lu.update = unit.ldap_current ? unit.update
                                  : HydrateDeviceUpdate(unit.update);
    StatusOr<UpdatePlan> plan = PlanUpdate(lu.update, unit.ldap_current, vm);
    if (!plan.ok()) {
      HandleError(plan.status(), lu.update);
      SettleUnit(unit, items, plan.status());
      continue;
    }
    {
      MutexLock lock(&stats_mutex_);
      stats_.closure_iterations +=
          static_cast<uint64_t>(plan->closure_iterations);
    }
    lu.plan = std::move(*plan);
    live.push_back(std::move(lu));
  }
  if (live.empty()) return;

  // The emulated per-conversation processing cost is paid ONCE for the
  // whole wave — this sharing, together with the shared device
  // sessions below, is where batching buys its throughput.
  if (config_.artificial_processing_delay_micros > 0) {
    if (!SleepInterruptible(config_.artificial_processing_delay_micros)) {
      Status stopped = Status::Unavailable("update manager is shut down");
      for (LiveUnit& lu : live) SettleUnit(*lu.unit, items, stopped);
      return;
    }
    if (live.size() > 1) {
      MutexLock lock(&stats_mutex_);
      stats_.rtts_saved += live.size() - 1;
    }
  }

  // Phase 1 — directory writes, all under one LTAP session. A failed
  // view write aborts THAT unit's sequence (§4.4), not the wave.
  std::vector<lexpress::UpdateDescriptor> ldap_ops;
  std::vector<size_t> ldap_owner;
  for (size_t i = 0; i < live.size(); ++i) {
    for (const PlannedOp& op : live[i].plan.ops) {
      if (!EqualsIgnoreCase(op.repository, "ldap")) continue;
      ldap_ops.push_back(op.update);
      ldap_owner.push_back(i);
    }
  }
  if (!ldap_ops.empty()) {
    std::vector<ApplyResult> applied = ldap_filter_->ApplyBatch(ldap_ops);
    for (size_t i = 0; i < applied.size(); ++i) {
      if (applied[i].ok()) continue;
      LiveUnit& owner = live[ldap_owner[i]];
      HandleError(applied[i].status(), ldap_ops[i]);
      if (owner.status.ok()) owner.status = applied[i].status();
      owner.dead = true;
    }
  }

  // Phase 2 — device fan-out, one shared session (one emulated RTT)
  // per repository for the whole wave. Device-side failures are logged
  // and notified but do not fail the originating operation (§4.4).
  for (RepositoryFilter* filter : filters_) {
    std::vector<lexpress::UpdateDescriptor> updates;
    std::vector<size_t> owners;
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i].dead) continue;
      for (const PlannedOp& op : live[i].plan.ops) {
        if (!EqualsIgnoreCase(op.repository, filter->name())) continue;
        if (op.update.conditional) {
          // Reapplication to the originator (§5.4).
          if (!config_.reapply_to_originator) continue;
          MutexLock lock(&stats_mutex_);
          ++stats_.reapplications;
        }
        updates.push_back(op.update);
        owners.push_back(i);
      }
    }
    if (updates.empty()) continue;
    CircuitBreaker* breaker = BreakerFor(filter->name());
    if (breaker != nullptr &&
        !breaker->Allow(RealClock::Get()->NowMicros())) {
      // Open circuit: the whole wave fast-fails for this repository —
      // no administrative conversation is even opened. Each update is
      // logged replayably; the healthy repositories' fan-out below is
      // untouched, which is the breaker's whole point.
      {
        MutexLock lock(&stats_mutex_);
        stats_.breaker_open_skips += updates.size();
      }
      for (const lexpress::UpdateDescriptor& update : updates) {
        ApplyResult skipped = ApplyResult::SkippedOpenCircuit(filter->name());
        HandleFailure(filter->name(), skipped.outcome(), skipped.status(),
                      update);
      }
      continue;
    }
    std::vector<ApplyResult> applied = filter->ApplyBatch(updates);
    if (updates.size() > 1) {
      MutexLock lock(&stats_mutex_);
      stats_.rtts_saved += updates.size() - 1;
    }
    for (size_t i = 0; i < applied.size(); ++i) {
      if (breaker != nullptr) {
        // Feed the breaker in batch order so consecutive-failure
        // counting matches the sequential path exactly. A permanent
        // rejection means the device responded: proof of life.
        if (applied[i].outcome() == ApplyOutcome::kRetryable) {
          breaker->OnRetryableFailure(RealClock::Get()->NowMicros());
        } else {
          breaker->OnSuccess();
        }
      }
      if (!applied[i].ok()) {
        HandleFailure(filter->name(), applied[i].outcome(),
                      applied[i].status(), updates[i]);
        continue;
      }
      {
        MutexLock lock(&stats_mutex_);
        ++stats_.device_applies;
      }
      if (updates[i].op != lexpress::DescriptorOp::kDelete) {
        live[owners[i]].results.push_back(DeviceResult{
            filter, updates[i].new_record, std::move(*applied[i])});
      }
    }
  }

  // Phase 3 — §5.5 generated-information round, then settle.
  for (LiveUnit& lu : live) {
    if (!lu.dead && lu.update.op != lexpress::DescriptorOp::kDelete) {
      (void)BackfillGeneratedInfo(lu.update, lu.plan, lu.results);
    }
    SettleUnit(*lu.unit, items, lu.status);
  }
}

void UpdateManager::UndoApplied(
    const std::vector<std::pair<RepositoryFilter*,
                                lexpress::UpdateDescriptor>>& applied) {
  // Compensate in reverse order, saga-style (§4.4's planned "later
  // version", built as an extension here).
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    ApplyResult result = it->first->Apply(it->second);
    if (!result.ok()) {
      METACOMM_LOG(kWarning) << "saga undo failed at " << it->first->name()
                             << ": " << result.status().ToString();
      continue;
    }
    MutexLock lock(&stats_mutex_);
    ++stats_.undos;
  }
}

void UpdateManager::HandleError(const Status& error,
                                const lexpress::UpdateDescriptor& update) {
  // No replay target: the entry is audit-only (kPermanent, no
  // errorRepository), whatever the status code said.
  HandleFailure(/*repository=*/"", ApplyOutcome::kPermanent, error, update);
}

void UpdateManager::HandleFailure(const std::string& repository,
                                  ApplyOutcome outcome, const Status& error,
                                  const lexpress::UpdateDescriptor& update) {
  // Saga mode compensates the whole sequence on failure; replaying the
  // failed update later would undo the compensation, so its error
  // entry is audit-only.
  const std::string replay_repository =
      config_.saga_undo ? "" : repository;
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.errors;
  }
  METACOMM_LOG(kWarning) << "update failed: " << error.ToString() << " ("
                         << update.ToString() << ")";
  // "an error is logged into the directory, and a notification is sent
  // to the administrator. The administrator can browse through the
  // errors and manually fix the resulting inconsistencies" (§4.4).
  // Retryable failures additionally carry the serialized descriptor,
  // so "manually" is now optional: the repair worker replays them once
  // the repository recovers.
  if (!config_.error_base.empty()) {
    uint64_t seq = error_sequence_.fetch_add(1) + 1;
    StatusOr<ldap::Dn> base = ldap::Dn::Parse(config_.error_base);
    if (base.ok()) {
      ldap::Entry entry(
          base->Child(ldap::Rdn("cn", "error-" + std::to_string(seq))));
      entry.AddObjectClass("top");
      entry.AddObjectClass(kMetacommErrorClass);
      entry.SetOne("cn", "error-" + std::to_string(seq));
      entry.SetOne("errorText", error.ToString());
      entry.SetOne("errorTarget", update.schema);
      entry.SetOne("errorTime",
                   std::to_string(RealClock::Get()->NowMicros()));
      entry.SetOne("description", update.ToString());
      LoggedFailure failure;
      failure.sequence = seq;
      failure.repository = replay_repository;
      failure.outcome = outcome;
      failure.error = error;
      failure.update = update;
      EncodeFailure(failure, &entry);
      ldap::OpContext ctx;
      ctx.principal = "cn=metacomm";
      ctx.internal = true;
      Status logged = gateway_->Add(ctx, ldap::AddRequest{entry});
      if (!logged.ok()) {
        METACOMM_LOG(kWarning) << "error-log write failed: "
                               << logged.ToString();
      } else if (failure.replayable()) {
        MutexLock lock(&stats_mutex_);
        ++replay_backlog_[replay_repository];
      }
    }
  }
  // Copy under the lock, invoke outside it: worker threads reach here
  // while tests may concurrently swap the callback via
  // set_admin_callback (the unguarded read was a real race).
  AdminCallback callback;
  {
    MutexLock lock(&admin_mutex_);
    callback = admin_callback_;
  }
  if (callback) callback(error, update);
}

CircuitBreaker* UpdateManager::BreakerFor(
    const std::string& repository) const {
  auto it = breakers_.find(repository);
  return it == breakers_.end() ? nullptr : it->second.get();
}

CircuitBreaker* UpdateManager::breaker(const std::string& repository) const {
  return BreakerFor(repository);
}

ApplyResult UpdateManager::ApplyToRepository(
    RepositoryFilter* filter, const lexpress::UpdateDescriptor& update) {
  CircuitBreaker* breaker = BreakerFor(filter->name());
  if (breaker != nullptr &&
      !breaker->Allow(RealClock::Get()->NowMicros())) {
    {
      MutexLock lock(&stats_mutex_);
      ++stats_.breaker_open_skips;
    }
    return ApplyResult::SkippedOpenCircuit(filter->name());
  }
  ApplyResult result = filter->Apply(update);
  if (breaker != nullptr) {
    if (result.outcome() == ApplyOutcome::kRetryable) {
      breaker->OnRetryableFailure(RealClock::Get()->NowMicros());
    } else {
      // Applied, or permanently rejected — either way the device
      // responded, so the administrative link is alive.
      breaker->OnSuccess();
    }
  }
  return result;
}

void UpdateManager::RepairLoop() {
  // SleepInterruptible returns false the moment Stop() raises
  // stopping_, so shutdown never waits out a scan interval.
  while (SleepInterruptible(config_.repair_scan_interval_micros)) {
    Status status = RunRepairPass();
    if (!status.ok()) {
      METACOMM_LOG(kWarning) << "repair pass failed: "
                             << status.ToString();
    }
  }
}

Status UpdateManager::RunRepairPass() {
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.repair_passes;
  }
  if (config_.error_base.empty()) return Status::Ok();

  METACOMM_ASSIGN_OR_RETURN(ldap::Dn base,
                            ldap::Dn::Parse(config_.error_base));
  ldap::SearchRequest request;
  request.base = std::move(base);
  request.scope = ldap::Scope::kOneLevel;
  request.filter =
      ldap::Filter::Equality("objectClass", kMetacommErrorClass);
  ldap::OpContext ctx;
  ctx.principal = "cn=metacomm";
  ctx.internal = true;
  StatusOr<ldap::SearchResult> result = gateway_->Search(ctx, request);
  if (!result.ok()) {
    // No error container (or nothing logged yet): nothing to repair.
    if (result.status().code() == StatusCode::kNotFound) {
      return Status::Ok();
    }
    return result.status();
  }

  // Group the replayable backlog by repository, in errorSeq order.
  // Audit-only entries (no errorSeq, no errorRepository, or permanent
  // outcomes) stay in the log for the administrator.
  std::map<std::string, std::vector<std::pair<LoggedFailure, ldap::Dn>>,
           CaseInsensitiveLess>
      pending;
  for (ldap::Entry& entry : result->entries) {
    StatusOr<LoggedFailure> parsed = ParseErrorEntry(entry);
    if (!parsed.ok() || !parsed->replayable()) continue;
    if (FindFilter(parsed->repository) == nullptr) continue;
    pending[parsed->repository].emplace_back(std::move(*parsed),
                                             entry.dn());
  }

  Status first_error = Status::Ok();
  for (auto& [repository, items] : pending) {
    if (stopping()) break;
    RepositoryFilter* filter = FindFilter(repository);
    std::sort(items.begin(), items.end(),
              [](const std::pair<LoggedFailure, ldap::Dn>& a,
                 const std::pair<LoggedFailure, ldap::Dn>& b) {
                return a.first.sequence < b.first.sequence;
              });
    std::vector<LoggedFailure> failures;
    std::vector<ldap::Dn> entry_dns;
    failures.reserve(items.size());
    entry_dns.reserve(items.size());
    for (auto& [failure, dn] : items) {
      failures.push_back(std::move(failure));
      entry_dns.push_back(std::move(dn));
    }

    std::vector<ldap::Dn> replayed_dns;
    bool need_sync =
        ReplayRepository(filter, failures, entry_dns, &replayed_dns);
    if (need_sync && !stopping()) {
      // Replay could not converge (permanent rejection, or the
      // directory drifted past the logged images): fall back to full
      // resynchronization (§4.1), which subsumes the whole backlog.
      {
        MutexLock lock(&stats_mutex_);
        ++stats_.repair_syncs;
      }
      Status synced = Synchronize(repository);
      if (!synced.ok()) {
        if (first_error.ok()) first_error = synced;
        // Device still down: keep the backlog for the next pass.
        continue;
      }
      for (const ldap::Dn& dn : entry_dns) {
        DeleteErrorEntry(dn, repository);
      }
    } else {
      for (const ldap::Dn& dn : replayed_dns) {
        DeleteErrorEntry(dn, repository);
      }
    }
  }
  return first_error;
}

bool UpdateManager::ReplayRepository(
    RepositoryFilter* filter, const std::vector<LoggedFailure>& failures,
    const std::vector<ldap::Dn>& entry_dns,
    std::vector<ldap::Dn>* replayed_dns) {
  const std::string& ldap_key = filter->to_ldap().key_target_attr();
  // Convergence is checked once per entity, against the LAST replayed
  // update: intermediate replays legitimately disagree with the
  // directory's final image while the backlog drains.
  std::map<std::string, lexpress::UpdateDescriptor, CaseInsensitiveLess>
      last_by_key;
  for (size_t i = 0; i < failures.size(); ++i) {
    if (stopping()) return false;
    const LoggedFailure& failure = failures[i];

    // Serialize the replay against concurrent client writes via the
    // integrated entry's LTAP lock (best-effort: a record the
    // directory does not know yet has no entry to lock).
    uint64_t lock_session = gateway_->NewSession();
    std::optional<ldap::Dn> locked;
    if (!ldap_key.empty()) {
      const lexpress::Record& image =
          failure.update.new_record.attrs().empty()
              ? failure.update.old_record
              : failure.update.new_record;
      StatusOr<lexpress::Record> mapped =
          filter->to_ldap().MapRecord(image);
      if (mapped.ok()) {
        std::string key_value = mapped->GetFirst(ldap_key);
        if (!key_value.empty()) {
          StatusOr<std::optional<ldap::Entry>> entry =
              ldap_filter_->FindByAttr(ldap_key, key_value);
          if (entry.ok() && entry->has_value()) {
            Status lock_status =
                AcquireEntryLock((*entry)->dn(), lock_session);
            if (lock_status.ok()) locked = (*entry)->dn();
          }
        }
      }
    }
    struct Unlock {
      UpdateManager* um;
      std::optional<ldap::Dn>* dn;
      uint64_t session;
      ~Unlock() {
        if (dn->has_value()) um->gateway_->UnlockEntry(**dn, session);
      }
    } unlock{this, &locked, lock_session};

    // Replay conditionally (§5.4): the update may have partially
    // applied before the outage, or a later sync may have carried it.
    lexpress::UpdateDescriptor replay = failure.update;
    replay.conditional = true;
    ApplyResult result = ApplyToRepository(filter, replay);
    if (result.retryable()) {
      // Repository still down (or its circuit still open): leave this
      // and every later entry for the next pass — replay order within
      // the repository must hold.
      return false;
    }
    if (result.outcome() == ApplyOutcome::kPermanent) {
      METACOMM_LOG(kWarning)
          << filter->name() << ": replay of error-"
          << failure.sequence
          << " permanently rejected, falling back to sync: "
          << result.status().ToString();
      return true;
    }

    {
      MutexLock lock(&stats_mutex_);
      ++stats_.replayed;
    }
    BackfillFromReplay(filter, result.record());
    replayed_dns->push_back(entry_dns[i]);
    std::string key = replay.new_record.GetFirst(filter->key_attr());
    if (key.empty()) {
      key = replay.old_record.GetFirst(filter->key_attr());
    }
    if (!key.empty()) last_by_key[key] = std::move(replay);
  }
  for (const auto& [key, update] : last_by_key) {
    if (!ReplayConverged(filter, update)) {
      METACOMM_LOG(kWarning)
          << filter->name() << ": replayed backlog for key " << key
          << " did not converge, falling back to sync";
      return true;
    }
  }
  return false;
}

void UpdateManager::BackfillFromReplay(
    RepositoryFilter* filter, const lexpress::Record& device_result) {
  // Deletes return an empty record; nothing to backfill.
  if (device_result.attrs().empty()) return;
  const std::string& ldap_key = filter->to_ldap().key_target_attr();
  if (ldap_key.empty()) return;
  StatusOr<lexpress::Record> mapped =
      filter->to_ldap().MapRecord(device_result);
  if (!mapped.ok()) return;
  std::string key_value = mapped->GetFirst(ldap_key);
  if (key_value.empty()) return;
  StatusOr<std::optional<ldap::Entry>> found =
      ldap_filter_->FindByAttr(ldap_key, key_value);
  if (!found.ok() || !found->has_value()) return;

  // Fill directory gaps only. The logged update predates whatever the
  // directory holds now, so overwriting present values would regress
  // the integrated view from a stale image; absent attributes are the
  // §5.5 device-generated round the outage swallowed.
  lexpress::Record current = ldap_filter_->ToRecord(**found);
  lexpress::UpdateDescriptor upsert;
  upsert.op = lexpress::DescriptorOp::kModify;
  upsert.schema = "ldap";
  upsert.source = filter->name();
  upsert.conditional = true;
  upsert.old_record = current;
  upsert.new_record = current;
  bool changed = false;
  for (const auto& [attr, value] : mapped->attrs()) {
    if (current.Has(attr)) continue;
    upsert.new_record.Set(attr, value);
    upsert.explicit_attrs.insert(attr);
    changed = true;
  }
  if (!changed) return;
  upsert.explicit_attrs.erase(kLastUpdaterAttr);
  ApplyResult applied = ldap_filter_->Apply(upsert);
  if (!applied.ok()) {
    METACOMM_LOG(kWarning) << "replay backfill failed: "
                           << applied.status().ToString();
  }
}

bool UpdateManager::ReplayConverged(
    RepositoryFilter* filter, const lexpress::UpdateDescriptor& update) {
  const std::string& device_key_attr = filter->key_attr();
  std::string key = update.new_record.GetFirst(device_key_attr);
  if (key.empty()) key = update.old_record.GetFirst(device_key_attr);
  if (key.empty()) return true;  // Keyless update: nothing to check.

  StatusOr<std::optional<lexpress::Record>> device = filter->Fetch(key);
  if (!device.ok()) return false;
  if (update.op == lexpress::DescriptorOp::kDelete) {
    return !device->has_value();
  }
  if (!device->has_value()) return false;

  const std::string& ldap_key = filter->to_ldap().key_target_attr();
  if (ldap_key.empty()) return true;
  StatusOr<lexpress::Record> mapped =
      filter->to_ldap().MapRecord(**device);
  if (!mapped.ok()) return false;
  StatusOr<std::optional<ldap::Entry>> entry =
      ldap_filter_->FindByAttr(ldap_key, mapped->GetFirst(ldap_key));
  if (!entry.ok() || !entry->has_value()) return false;

  // Subset compare: every attribute the directory's image maps into
  // this repository's schema must match the device byte-for-byte.
  // Device-only attributes (never mapped to the directory) are out of
  // scope, and an attribute absent on both sides is converged.
  StatusOr<lexpress::Record> expectation =
      filter->from_ldap().MapRecord(ldap_filter_->ToRecord(**entry));
  if (!expectation.ok()) return false;
  for (const auto& [attr, value] : expectation->attrs()) {
    if (!(device->value().Get(attr) == value)) return false;
  }
  return true;
}

void UpdateManager::DeleteErrorEntry(const ldap::Dn& dn,
                                     const std::string& repository) {
  ldap::OpContext ctx;
  ctx.principal = "cn=metacomm";
  ctx.internal = true;
  Status status = gateway_->Delete(ctx, ldap::DeleteRequest{dn});
  if (!status.ok() && status.code() != StatusCode::kNotFound) {
    METACOMM_LOG(kWarning) << "error-log delete failed: "
                           << status.ToString();
    return;
  }
  MutexLock lock(&stats_mutex_);
  auto it = replay_backlog_.find(repository);
  if (it != replay_backlog_.end() && it->second > 0) --it->second;
}

Status UpdateManager::Synchronize(const std::string& device_name) {
  MutexLock sync_lock(&sync_mutex_);
  RepositoryFilter* filter = FindFilter(device_name);
  if (filter == nullptr) {
    return Status::NotFound("no filter for device: " + device_name);
  }
  // A Stop() *during* this synchronize interrupts it (the record loops
  // below bail on an epoch change), but a synchronize started after a
  // completed Stop() runs: resync after a UM halt is the §4.4 recovery
  // path and needs no workers.
  const uint64_t entry_epoch = stop_epoch();

  // Synchronize IS the administrative recovery path: re-admit traffic
  // to this repository unconditionally. If the device is still down,
  // the DumpAll below fails fast and the breaker re-opens on the next
  // propagation failures.
  if (CircuitBreaker* target_breaker = BreakerFor(device_name)) {
    target_breaker->ForceClose();
  }

  // Quiesce: synchronization "must be applied in isolation" (§5.1).
  METACOMM_RETURN_IF_ERROR(gateway_->Quiesce(um_session_));
  struct Unquiesce {
    ltap::LtapGateway* gateway;
    uint64_t session;
    ~Unquiesce() { gateway->Unquiesce(session); }
  } unquiesce{gateway_, um_session_};

  StatusOr<std::vector<lexpress::Record>> dump = filter->DumpAll();
  if (!dump.ok()) return dump.status();

  const std::string& device_key_attr = filter->key_attr();
  const std::string& ldap_key_of_device =
      filter->to_ldap().key_target_attr();

  // Device -> directory (and, through Propagate, to other devices that
  // share the data being synchronized).
  std::set<std::string> device_keys;
  Status first_error = Status::Ok();
  for (const lexpress::Record& record : *dump) {
    if (stop_epoch() != entry_epoch) {
      return Status::Unavailable("update manager is shut down");
    }
    device_keys.insert(record.GetFirst(device_key_attr));

    lexpress::UpdateDescriptor as_add;
    as_add.op = lexpress::DescriptorOp::kAdd;
    as_add.schema = filter->schema();
    as_add.source = filter->name();
    as_add.new_record = record;
    StatusOr<std::optional<lexpress::UpdateDescriptor>> translated =
        filter->to_ldap().Translate(as_add);
    if (!translated.ok() || !translated->has_value()) continue;
    lexpress::Record mapped = (*translated)->new_record;

    // Locate the existing directory entry via the device's key.
    std::optional<ldap::Entry> existing;
    if (!ldap_key_of_device.empty()) {
      StatusOr<std::optional<ldap::Entry>> found =
          ldap_filter_->FindByAttr(ldap_key_of_device,
                                   mapped.GetFirst(ldap_key_of_device));
      if (found.ok()) existing = *found;
    }

    lexpress::UpdateDescriptor upsert;
    upsert.schema = "ldap";
    upsert.source = filter->name();
    upsert.conditional = true;
    if (existing.has_value()) {
      upsert.op = lexpress::DescriptorOp::kModify;
      upsert.old_record = ldap_filter_->ToRecord(*existing);
      upsert.new_record = MergeRecords(upsert.old_record, mapped);
    } else {
      upsert.op = lexpress::DescriptorOp::kAdd;
      upsert.new_record = mapped;
    }
    for (const auto& [attr, value] : mapped.attrs()) {
      upsert.explicit_attrs.insert(attr);
    }
    upsert.explicit_attrs.erase(kLastUpdaterAttr);
    Status status = Propagate(upsert, /*ldap_current=*/false,
                              /*vm=*/nullptr);
    if (!status.ok() && first_error.ok()) first_error = status;
  }

  // Directory -> device: entries in this device's partition that the
  // device lost (disconnected operation, §4.4) are pushed back.
  StatusOr<std::vector<lexpress::Record>> directory =
      ldap_filter_->DumpAll();
  if (!directory.ok()) return directory.status();
  for (const lexpress::Record& ldap_record : *directory) {
    if (stop_epoch() != entry_epoch) {
      return Status::Unavailable("update manager is shut down");
    }
    lexpress::UpdateDescriptor as_add;
    as_add.op = lexpress::DescriptorOp::kAdd;
    as_add.schema = "ldap";
    as_add.source = "ldap";
    as_add.new_record = ldap_record;
    StatusOr<std::optional<lexpress::UpdateDescriptor>> translated =
        filter->from_ldap().Translate(as_add);
    if (!translated.ok() || !translated->has_value()) continue;
    lexpress::UpdateDescriptor device_add = std::move(**translated);
    std::string key = device_add.new_record.GetFirst(device_key_attr);
    if (key.empty() || device_keys.count(key) > 0) continue;
    device_add.conditional = true;  // Upsert semantics.
    ApplyResult applied = ApplyToRepository(filter, device_add);
    if (!applied.ok()) {
      HandleFailure(filter->name(), applied.outcome(), applied.status(),
                    device_add);
      if (first_error.ok()) first_error = applied.status();
    }
  }

  {
    MutexLock lock(&stats_mutex_);
    ++stats_.syncs;
  }
  return first_error;
}

Status UpdateManager::SynchronizeAll() {
  Status first_error = Status::Ok();
  for (RepositoryFilter* filter : filters_) {
    Status status = Synchronize(filter->name());
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

UpdateManager::Stats UpdateManager::stats() const {
  MutexLock lock(&stats_mutex_);
  Stats snapshot = stats_;
  for (size_t shard = 0; shard < snapshot.shards.size(); ++shard) {
    snapshot.shards[shard].depth = queue_.Depth(shard);
  }
  snapshot.repositories.reserve(filters_.size());
  for (RepositoryFilter* filter : filters_) {
    Stats::RepositoryStats repo;
    repo.name = filter->name();
    if (const CircuitBreaker* breaker = BreakerFor(filter->name())) {
      repo.breaker = breaker->snapshot();
    }
    repo.health = filter->Health();
    auto backlog = replay_backlog_.find(filter->name());
    repo.replay_backlog = backlog == replay_backlog_.end()
                              ? 0
                              : backlog->second;
    snapshot.repositories.push_back(std::move(repo));
  }
  return snapshot;
}

}  // namespace metacomm::core
