#ifndef METACOMM_CORE_REPOSITORY_FILTER_H_
#define METACOMM_CORE_REPOSITORY_FILTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "lexpress/mapping.h"
#include "lexpress/record.h"

namespace metacomm::core {

/// The typed per-item result of applying one update to one repository.
///
/// This replaces the old collapsed `StatusOr<Record>`: every apply now
/// carries an ApplyOutcome so the Update Manager can decide uniformly —
/// feed the circuit breaker, log a replayable error entry, or abort —
/// without re-deriving transience from status codes at every call site.
/// The accessors mirror StatusOr<Record> (ok()/status()/operator*) and
/// it converts implicitly from Status and Record, so the
/// METACOMM_RETURN_IF_ERROR / METACOMM_ASSIGN_OR_RETURN style of the
/// implementations keeps working unchanged.
class ApplyResult {
 public:
  /// Applied, empty record (deletes).
  ApplyResult() : outcome_(ApplyOutcome::kApplied) {}

  /// Applied with the repository's resulting record.
  ApplyResult(lexpress::Record record)  // NOLINT: deliberate conversion
      : outcome_(ApplyOutcome::kApplied), record_(std::move(record)) {}

  /// Failure, classified via ClassifyStatus (an OK status degenerates
  /// to an applied empty record).
  ApplyResult(Status status)  // NOLINT: deliberate conversion
      : outcome_(ClassifyStatus(status)), status_(std::move(status)) {}

  /// The update never reached the repository: its circuit was open.
  static ApplyResult SkippedOpenCircuit(const std::string& repository) {
    ApplyResult result;
    result.outcome_ = ApplyOutcome::kSkippedOpenCircuit;
    result.status_ = Status::Unavailable(
        repository + ": circuit open, update skipped");
    return result;
  }

  ApplyOutcome outcome() const { return outcome_; }
  bool ok() const { return outcome_ == ApplyOutcome::kApplied; }
  /// True when retrying (replaying) the same update can succeed.
  bool retryable() const {
    return outcome_ == ApplyOutcome::kRetryable ||
           outcome_ == ApplyOutcome::kSkippedOpenCircuit;
  }
  const Status& status() const { return status_; }

  /// Resulting record; only meaningful when ok().
  const lexpress::Record& record() const { return record_; }
  const lexpress::Record& operator*() const { return record_; }
  lexpress::Record& operator*() { return record_; }
  const lexpress::Record* operator->() const { return &record_; }
  lexpress::Record* operator->() { return &record_; }

 private:
  ApplyOutcome outcome_;
  Status status_;
  lexpress::Record record_;
};

/// A repository's health surface, consumed by the Update Manager, the
/// cn=um-health monitor subtree, and the fault-tolerance tests.
struct RepositoryHealth {
  /// False while the repository reports an active outage (manual
  /// disconnect or a scheduled fault-injection window).
  bool reachable = true;
  /// Mutating commands the repository has been asked to run.
  uint64_t commands = 0;
  /// Commands that failed with an injected fault.
  uint64_t injected_failures = 0;
};

/// A MetaComm filter: the per-repository wrapper combining a *protocol
/// converter* (speaks the repository's native interface) and a *mapper*
/// (the pair of lexpress mappings between the repository schema and the
/// integrated LDAP schema) — paper §4.1.
///
/// "This separation between protocol and mapping allows
/// protocol-specific software to be reused with varying schema": the
/// converter classes know nothing about mappings, and the mappings are
/// plain lexpress text swapped per instance.
class RepositoryFilter {
 public:
  virtual ~RepositoryFilter() = default;

  /// Repository instance name ("pbx1", "mp1"); doubles as the lexpress
  /// update source and LastUpdater value.
  virtual const std::string& name() const = 0;

  /// lexpress schema of this repository's records.
  virtual const std::string& schema() const = 0;

  /// Mapping repository-schema -> integrated LDAP schema.
  virtual const lexpress::Mapping& to_ldap() const = 0;

  /// Mapping integrated LDAP schema -> repository schema.
  virtual const lexpress::Mapping& from_ldap() const = 0;

  /// Applies a translated update descriptor (already in this
  /// repository's schema) through the protocol converter, honoring the
  /// descriptor's conditional flag (§5.4 reapply semantics). On success
  /// the result carries the repository's resulting record — which may
  /// contain device-generated information the Update Manager must
  /// propagate (§5.5); an empty record for deletes. On failure the
  /// outcome says whether the update is worth replaying.
  virtual ApplyResult Apply(const lexpress::UpdateDescriptor& update) = 0;

  /// Applies several already-translated updates over ONE repository
  /// conversation. Results are positional; a failing update does not
  /// stop the rest (the Update Manager settles per update). The
  /// default pays the per-command conversation cost for every update;
  /// device filters override it to share a single administrative
  /// session, paying the emulated link RTT once per batch.
  virtual std::vector<ApplyResult> ApplyBatch(
      const std::vector<lexpress::UpdateDescriptor>& updates) {
    std::vector<ApplyResult> results;
    results.reserve(updates.size());
    for (const lexpress::UpdateDescriptor& update : updates) {
      results.push_back(Apply(update));
    }
    return results;
  }

  /// Fetches the record with the given key value; nullopt when absent.
  virtual StatusOr<std::optional<lexpress::Record>> Fetch(
      const std::string& key) = 0;

  /// Full dump for synchronization (§4.1).
  virtual StatusOr<std::vector<lexpress::Record>> DumpAll() = 0;

  /// Name of the key attribute in this repository's schema.
  virtual const std::string& key_attr() const = 0;

  /// Reachability and fault telemetry. The default says "always
  /// healthy"; device filters surface their device's fault injector.
  virtual RepositoryHealth Health() const { return {}; }
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_REPOSITORY_FILTER_H_
