#ifndef METACOMM_CORE_REPOSITORY_FILTER_H_
#define METACOMM_CORE_REPOSITORY_FILTER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "lexpress/mapping.h"
#include "lexpress/record.h"

namespace metacomm::core {

/// A MetaComm filter: the per-repository wrapper combining a *protocol
/// converter* (speaks the repository's native interface) and a *mapper*
/// (the pair of lexpress mappings between the repository schema and the
/// integrated LDAP schema) — paper §4.1.
///
/// "This separation between protocol and mapping allows
/// protocol-specific software to be reused with varying schema": the
/// converter classes know nothing about mappings, and the mappings are
/// plain lexpress text swapped per instance.
class RepositoryFilter {
 public:
  virtual ~RepositoryFilter() = default;

  /// Repository instance name ("pbx1", "mp1"); doubles as the lexpress
  /// update source and LastUpdater value.
  virtual const std::string& name() const = 0;

  /// lexpress schema of this repository's records.
  virtual const std::string& schema() const = 0;

  /// Mapping repository-schema -> integrated LDAP schema.
  virtual const lexpress::Mapping& to_ldap() const = 0;

  /// Mapping integrated LDAP schema -> repository schema.
  virtual const lexpress::Mapping& from_ldap() const = 0;

  /// Applies a translated update descriptor (already in this
  /// repository's schema) through the protocol converter, honoring the
  /// descriptor's conditional flag (§5.4 reapply semantics). Returns
  /// the repository's resulting record — which may contain
  /// device-generated information the Update Manager must propagate
  /// (§5.5); returns an empty record for deletes.
  virtual StatusOr<lexpress::Record> Apply(
      const lexpress::UpdateDescriptor& update) = 0;

  /// Applies several already-translated updates over ONE repository
  /// conversation. Results are positional; a failing update does not
  /// stop the rest (the Update Manager settles per update). The
  /// default pays the per-command conversation cost for every update;
  /// device filters override it to share a single administrative
  /// session, paying the emulated link RTT once per batch.
  virtual std::vector<StatusOr<lexpress::Record>> ApplyBatch(
      const std::vector<lexpress::UpdateDescriptor>& updates) {
    std::vector<StatusOr<lexpress::Record>> results;
    results.reserve(updates.size());
    for (const lexpress::UpdateDescriptor& update : updates) {
      results.push_back(Apply(update));
    }
    return results;
  }

  /// Fetches the record with the given key value; nullopt when absent.
  virtual StatusOr<std::optional<lexpress::Record>> Fetch(
      const std::string& key) = 0;

  /// Full dump for synchronization (§4.1).
  virtual StatusOr<std::vector<lexpress::Record>> DumpAll() = 0;

  /// Name of the key attribute in this repository's schema.
  virtual const std::string& key_attr() const = 0;
};

}  // namespace metacomm::core

#endif  // METACOMM_CORE_REPOSITORY_FILTER_H_
