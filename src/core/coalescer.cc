#include "core/coalescer.h"

#include <map>
#include <utility>

#include "common/strings.h"

namespace metacomm::core {

namespace {

using lexpress::DescriptorOp;
using lexpress::UpdateDescriptor;

/// Updates from different originators (or with different reapply
/// semantics) must never fold into one: the §5.4 conditional machinery
/// keys off the source, and merging across sources would launder one
/// originator's change as another's.
bool SameProvenance(const UpdateDescriptor& a, const UpdateDescriptor& b) {
  return EqualsIgnoreCase(a.schema, b.schema) &&
         EqualsIgnoreCase(a.source, b.source) &&
         a.conditional == b.conditional;
}

/// Key the descriptor expects the entity to currently have: the old
/// image's key for modify/delete (what the repository still holds,
/// since nothing in the batch has been applied yet), the new image's
/// for add.
std::string IncomingKey(const UpdateDescriptor& d,
                        const std::string& key_attr) {
  if (d.op == DescriptorOp::kAdd) return d.new_record.GetFirst(key_attr);
  std::string key = d.old_record.GetFirst(key_attr);
  if (key.empty()) key = d.new_record.GetFirst(key_attr);
  return key;
}

/// Key the entity carries after the unit's effective update (tracks
/// rename chains: Modify(A->B) leaves the chain addressable as B).
std::string OutgoingKey(const UpdateDescriptor& d,
                        const std::string& key_attr) {
  if (d.op == DescriptorOp::kDelete) {
    return d.old_record.GetFirst(key_attr);
  }
  return d.new_record.GetFirst(key_attr);
}

/// Folds `next` into `unit` if a merge rule applies; false means
/// barrier (the caller starts a fresh unit).
bool TryMerge(CoalescedUnit& unit, const UpdateDescriptor& next) {
  UpdateDescriptor& u = unit.update;
  if (unit.annihilated) return false;     // Entity ended inside batch.
  if (u.op == DescriptorOp::kDelete) return false;  // Delete barrier.
  if (next.op == DescriptorOp::kAdd) return false;  // Add-after-X barrier.

  if (next.op == DescriptorOp::kModify) {
    // Add+Modify -> Add, Modify+Modify -> Modify: either way the
    // effective new image is the later one and the old image (absent
    // for Add) stays the batch-entry image the repository still holds.
    u.new_record = next.new_record;
    for (const std::string& attr : next.explicit_attrs) {
      u.explicit_attrs.insert(attr);
    }
    return true;
  }
  // next.op == kDelete.
  if (u.op == DescriptorOp::kAdd) {
    // Created and destroyed within the batch: nothing ever reaches the
    // repositories.
    unit.annihilated = true;
    return true;
  }
  // Modify+Delete -> Delete. The old image stays the unit's ORIGINAL
  // old image: the repository never saw the intermediate modify, so
  // the delete must target the key it still holds.
  u.op = DescriptorOp::kDelete;
  u.new_record = lexpress::Record(u.new_record.schema());
  return true;
}

}  // namespace

CoalesceResult CoalesceBatch(
    const std::vector<UpdateDescriptor>& batch,
    const std::string& key_attr) {
  CoalesceResult out;
  // Latest open unit per entity, addressed by the entity's CURRENT key
  // in its rename chain. A barrier replaces the map entry, so later
  // same-entity items extend the newest unit, never an older one.
  std::map<std::string, size_t, CaseInsensitiveLess> open;

  for (size_t i = 0; i < batch.size(); ++i) {
    const UpdateDescriptor& d = batch[i];
    const std::string in_key = IncomingKey(d, key_attr);

    if (!in_key.empty()) {
      auto it = open.find(in_key);
      if (it != open.end()) {
        CoalescedUnit& unit = out.units[it->second];
        if (SameProvenance(unit.update, d) && TryMerge(unit, d)) {
          unit.constituents.push_back(i);
          ++out.coalesced_away;
          if (unit.annihilated) {
            // The chain ended inside the batch; a later Add of the
            // same key starts a genuinely new entity.
            open.erase(it);
          } else {
            std::string out_key = OutgoingKey(unit.update, key_attr);
            if (!EqualsIgnoreCase(out_key, in_key)) {
              size_t unit_index = it->second;
              open.erase(it);
              if (!out_key.empty()) open[out_key] = unit_index;
            }
          }
          continue;
        }
      }
    }

    CoalescedUnit unit;
    unit.update = d;
    unit.constituents.push_back(i);
    out.units.push_back(std::move(unit));
    if (!in_key.empty()) {
      std::string out_key = OutgoingKey(d, key_attr);
      open[out_key.empty() ? in_key : out_key] = out.units.size() - 1;
    }
  }
  return out;
}

}  // namespace metacomm::core
