#ifndef METACOMM_CORE_MAPPING_GEN_H_
#define METACOMM_CORE_MAPPING_GEN_H_

#include <string>

namespace metacomm::core {

/// Parameters for one Definity PBX's mapping pair.
struct PbxMappingParams {
  /// Device instance name; becomes LastUpdater / target_name ("pbx1").
  std::string name = "pbx1";
  /// Dial-plan prefix of extensions this switch owns ("9").
  std::string extension_prefix;
  /// Prefix turning an extension into a full telephone number
  /// ("+1 908 582 "). telephoneNumber = phone_prefix + extension.
  std::string phone_prefix = "+1 908 582 ";
  /// Number of digits in an extension (used to slice telephoneNumber).
  int extension_digits = 4;
};

/// Parameters for one messaging platform's mapping pair.
struct MpMappingParams {
  std::string name = "mp1";
  /// Mailbox numbers equal the owner's extension: sliced from
  /// telephoneNumber with this many digits.
  int mailbox_digits = 4;
  /// Optional extension prefix restricting which phones get mailboxes
  /// on this platform (aligns a platform with a PBX's dial plan).
  std::string extension_prefix;
};

/// Generates the lexpress source for a PBX's two mappings (device ->
/// ldap and ldap -> device).
///
/// The paper found hand-writing closely related mappings "repetitive"
/// and built a GUI generating the description files (§5.4); these
/// generators are that component. The emitted text is ordinary
/// lexpress — callers may also write mappings by hand.
std::string GeneratePbxMappings(const PbxMappingParams& params);

/// Generates the lexpress source for a messaging platform's two
/// mappings.
std::string GenerateMpMappings(const MpMappingParams& params);

}  // namespace metacomm::core

#endif  // METACOMM_CORE_MAPPING_GEN_H_
