#ifndef METACOMM_CORE_ERROR_LOG_H_
#define METACOMM_CORE_ERROR_LOG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "ldap/entry.h"
#include "lexpress/record.h"

namespace metacomm::core {

/// One failed propagation, as recorded under cn=errors,o=Lucent.
///
/// The paper's error log holds "the cause of the error and the failed
/// update" so an administrator can recover (§4.4). PR 5 makes the
/// second half literal: retryable failures are serialized with the
/// complete update descriptor, and the repair worker replays them —
/// in sequence order — once the repository's circuit re-closes.
struct LoggedFailure {
  /// Global error sequence (monotonic; replay order within a
  /// repository follows it).
  uint64_t sequence = 0;
  /// Repository the update failed against; empty for failures that
  /// have no replay target (directory aborts, planning errors) —
  /// those entries are audit-only.
  std::string repository;
  /// Classification at failure time. Only kRetryable and
  /// kSkippedOpenCircuit failures are worth replaying.
  ApplyOutcome outcome = ApplyOutcome::kPermanent;
  /// The failure itself (mirrors the entry's errorText).
  Status error;
  /// The failed update, already translated to `repository`'s schema.
  lexpress::UpdateDescriptor update;

  /// True when the repair worker should replay this entry.
  bool replayable() const {
    return !repository.empty() &&
           (outcome == ApplyOutcome::kRetryable ||
            outcome == ApplyOutcome::kSkippedOpenCircuit);
  }
};

/// Serializes the replay payload of `failure` onto an error entry:
/// errorSeq, errorRepository, errorClass, errorOp, errorSource,
/// errorSchema, errorConditional, errorExplicitAttr, errorOldImage,
/// errorNewImage. Record images are encoded one attribute per value,
/// "attr=v1,v2" with '%'/','/'=' percent-escaped, so the descriptor
/// round-trips byte-identically through the directory. The caller owns
/// the human-facing attributes (cn, errorText, errorTarget, errorTime,
/// description, objectClass).
void EncodeFailure(const LoggedFailure& failure, ldap::Entry* entry);

/// Reconstructs a LoggedFailure from an error entry written by
/// EncodeFailure. Entries without errorSeq (the container itself, or
/// audit-only records from earlier releases) are rejected with
/// kInvalidArgument — the repair worker leaves them in place.
StatusOr<LoggedFailure> ParseErrorEntry(const ldap::Entry& entry);

/// Percent-escapes '%', ',' and '=' (the image-encoding
/// metacharacters). Exposed for tests.
std::string EscapeErrorToken(const std::string& raw);
StatusOr<std::string> UnescapeErrorToken(const std::string& escaped);

}  // namespace metacomm::core

#endif  // METACOMM_CORE_ERROR_LOG_H_
