#ifndef METACOMM_COMMON_THREAD_ANNOTATIONS_H_
#define METACOMM_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes.
///
/// These macros expand to Clang's `-Wthread-safety` attributes when
/// compiling with Clang and to nothing elsewhere, so the annotated tree
/// still builds unchanged under GCC/MSVC. Build with
/// `-DMETACOMM_THREAD_SAFETY_ANALYSIS=ON` (Clang only) to promote the
/// analysis to a hard error — see DESIGN.md "Static analysis".
///
/// Conventions used in this codebase:
///  - every mutex-protected member is declared `GUARDED_BY(mu_)`;
///  - private helpers that assume the lock is held are `REQUIRES(mu_)`
///    (or `REQUIRES_SHARED` for read-side helpers of a SharedMutex);
///  - public entry points that must NOT be called with the lock held
///    (they acquire it themselves) are `EXCLUDES(mu_)`;
///  - `NO_THREAD_SAFETY_ANALYSIS` is an escape hatch of last resort and
///    always carries a one-line justification comment.

#if defined(__clang__) && !defined(SWIG)
#define METACOMM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define METACOMM_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define CAPABILITY(x) METACOMM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime equals a capability hold.
#define SCOPED_CAPABILITY METACOMM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) METACOMM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define PT_GUARDED_BY(x) METACOMM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations.
#define ACQUIRED_BEFORE(...) \
  METACOMM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  METACOMM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared).
#define REQUIRES(...) \
  METACOMM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  METACOMM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared).
#define ACQUIRE(...) \
  METACOMM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  METACOMM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define RELEASE(...) \
  METACOMM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  METACOMM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  METACOMM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function conditionally acquires the capability; first argument is
/// the return value that signals success.
#define TRY_ACQUIRE(...) \
  METACOMM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  METACOMM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function must be called WITHOUT the capability held.
#define EXCLUDES(...) METACOMM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held.
#define ASSERT_CAPABILITY(x) METACOMM_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  METACOMM_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) METACOMM_THREAD_ANNOTATION(lock_returned(x))

/// Disables analysis for one function. Last resort; justify in a
/// comment at every use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  METACOMM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // METACOMM_COMMON_THREAD_ANNOTATIONS_H_
