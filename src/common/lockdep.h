#ifndef METACOMM_COMMON_LOCKDEP_H_
#define METACOMM_COMMON_LOCKDEP_H_

/// Runtime lock-order validator ("lockdep", after the Linux kernel's).
///
/// Compiled in when METACOMM_LOCKDEP=1 (the default for Debug, TSan
/// and RelWithDebInfo builds; Release and METACOMM_RELEASE_NATIVE
/// compile it out — common::Mutex then costs exactly a std::mutex).
///
/// Every common::Mutex / SharedMutex acquisition reports here before
/// blocking. Two structures back the checks:
///
///  - A thread-local held-lock stack: {instance, rank, class name} per
///    lock this thread currently holds, in acquisition order.
///  - A global acquisition-order graph keyed by lock-CLASS name pairs:
///    the edge "A" -> "B" means some thread once acquired class B
///    while holding class A. The backtrace of the acquisition that
///    first established each edge is stored with it.
///
/// A blocking acquisition aborts the process when it would
///  (a) re-acquire an instance the thread already holds,
///  (b) regress the rank order (new rank <= any held rank), or
///  (c) close a cycle in the class graph (belt and braces for locks
///      that share a rank across unrelated classes).
/// The report prints the live backtrace of the violating acquisition
/// AND the stored backtrace of the conflicting recorded order — the
/// "both acquisition stacks" a deadlock post-mortem needs — then
/// calls abort(), so death tests and CI both see it.
///
/// TryLock never blocks, so a successful try-acquire is pushed on the
/// held stack WITHOUT order checks (it cannot deadlock by itself), but
/// it still constrains every later blocking acquire on the thread.

#include <cstddef>
#include <cstdint>

#include "common/lock_rank.h"

#if METACOMM_LOCKDEP

namespace metacomm::lockdep {

/// Validates a blocking acquisition about to happen, records the
/// class-graph edges it implies, and pushes it on the held stack.
/// Aborts with a two-stack report on a violation.
void OnAcquire(const void* lock, LockRank rank, const char* name);

/// Records a successful non-blocking (try) acquisition: pushed on the
/// held stack, no order checks, no graph edges.
void OnTryAcquire(const void* lock, LockRank rank, const char* name);

/// Pops `lock` from the held stack (any position: unlock order is
/// not required to mirror lock order).
void OnRelease(const void* lock);

/// CondVar support: a wait releases the mutex inside the native wait
/// and reacquires it before returning. The reacquisition re-joins the
/// stack at the top without re-running order checks — the original
/// OnAcquire already validated this ordering, and any locks acquired
/// below it have been released (checked here).
void OnCvWaitBegin(const void* lock);
void OnCvWaitEnd(const void* lock, LockRank rank, const char* name);

/// Number of locks the calling thread currently holds (tests).
size_t HeldCount();

/// Total blocking acquisitions validated process-wide (tests; proves
/// the hooks are live in an instrumented run).
uint64_t CheckedAcquisitions();

/// Number of distinct class-order edges recorded so far (tests).
size_t RecordedEdges();

}  // namespace metacomm::lockdep

#endif  // METACOMM_LOCKDEP

#endif  // METACOMM_COMMON_LOCKDEP_H_
