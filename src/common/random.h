#ifndef METACOMM_COMMON_RANDOM_H_
#define METACOMM_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace metacomm {

/// Small deterministic PRNG (splitmix64 core) used by workload
/// generators and property tests so every run is reproducible from a
/// seed printed in the output.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) for bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Random ASCII digit string of `length` characters.
  std::string DigitString(size_t length);

  /// Picks a uniformly random element from a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_RANDOM_H_
