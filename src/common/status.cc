#include "common/status.h"

namespace metacomm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kConflict:
      return "CONFLICT";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kSchemaViolation:
      return "SCHEMA_VIOLATION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

const char* ApplyOutcomeName(ApplyOutcome outcome) {
  switch (outcome) {
    case ApplyOutcome::kApplied:
      return "applied";
    case ApplyOutcome::kRetryable:
      return "retryable";
    case ApplyOutcome::kPermanent:
      return "permanent";
    case ApplyOutcome::kSkippedOpenCircuit:
      return "skipped-open-circuit";
  }
  return "unknown";
}

std::optional<ApplyOutcome> ParseApplyOutcome(const std::string& text) {
  for (ApplyOutcome outcome :
       {ApplyOutcome::kApplied, ApplyOutcome::kRetryable,
        ApplyOutcome::kPermanent, ApplyOutcome::kSkippedOpenCircuit}) {
    if (text == ApplyOutcomeName(outcome)) return outcome;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace metacomm
