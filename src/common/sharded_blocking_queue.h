#ifndef METACOMM_COMMON_SHARDED_BLOCKING_QUEUE_H_
#define METACOMM_COMMON_SHARDED_BLOCKING_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace metacomm {

/// Sharded MPMC FIFO: the Update Manager's parallel update queue.
///
/// The single `BlockingQueue` serializes *everything* — the paper's
/// §4.4 global update queue. But the consistency argument only needs
/// updates to the SAME entry to apply in submission order; updates to
/// different entries commute. This queue keeps one strict FIFO per
/// shard and routes items by a caller-supplied key (the normalized
/// target DN), so one worker per shard yields per-key FIFO with
/// cross-key parallelism — the update-exchange concurrency model of
/// Youtopia (Kot & Koch) applied to the UM.
///
/// Unlike `BlockingQueue`, `Pop` does NOT drain after `Close`: close
/// means abort, and the owner reclaims unprocessed items via `Drain()`
/// to release their resources (entry locks, caller promises) instead
/// of leaking them — the shutdown story this queue exists to fix.
template <typename T>
class ShardedBlockingQueue {
 public:
  explicit ShardedBlockingQueue(size_t shard_count)
      : shards_(std::max<size_t>(1, shard_count)) {
    for (auto& shard : shards_) shard = std::make_unique<Shard>();
  }
  ShardedBlockingQueue(const ShardedBlockingQueue&) = delete;
  ShardedBlockingQueue& operator=(const ShardedBlockingQueue&) = delete;

  size_t shard_count() const { return shards_.size(); }

  /// Shard a string key (e.g. a normalized DN) routes to. Equal keys
  /// always land on the same shard — the per-entry FIFO guarantee.
  size_t ShardFor(std::string_view key) const {
    return std::hash<std::string_view>{}(key) % shards_.size();
  }

  /// Round-robin shard for keyless items (no target DN): they carry no
  /// ordering constraint, so spreading them balances the workers.
  size_t NextShard() {
    return round_robin_.fetch_add(1, std::memory_order_relaxed) %
           shards_.size();
  }

  /// Enqueues onto `shard` and wakes its worker. Returns false
  /// (dropping the item) when the queue is closed; the caller keeps
  /// ownership of any resources the item references.
  bool Push(size_t shard, T item) {
    Shard& s = *shards_[shard % shards_.size()];
    {
      MutexLock lock(&s.mutex);
      if (closed_.load(std::memory_order_acquire)) return false;
      s.queue.push_back(std::move(item));
    }
    s.cv.NotifyOne();
    return true;
  }

  /// Blocks until `shard` has an item or the queue is closed. Returns
  /// nullopt immediately on close — remaining items are left for
  /// Drain(), not handed to workers.
  std::optional<T> Pop(size_t shard) {
    Shard& s = *shards_[shard % shards_.size()];
    MutexLock lock(&s.mutex);
    while (s.queue.empty() && !closed_.load(std::memory_order_acquire)) {
      s.cv.Wait(lock);
    }
    if (closed_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(s.queue.front());
    s.queue.pop_front();
    return item;
  }

  /// Blocks like Pop, then drains up to `max_n` items from `shard` in
  /// one wakeup, preserving the shard's FIFO order. Returns an empty
  /// vector on close — like Pop, close means abort and the remaining
  /// items (including any the worker never saw) are left for Drain().
  /// `max_n < 1` is treated as 1.
  std::vector<T> PopBatch(size_t shard, size_t max_n) {
    max_n = std::max<size_t>(1, max_n);
    Shard& s = *shards_[shard % shards_.size()];
    MutexLock lock(&s.mutex);
    while (s.queue.empty() && !closed_.load(std::memory_order_acquire)) {
      s.cv.Wait(lock);
    }
    std::vector<T> items;
    if (closed_.load(std::memory_order_acquire)) return items;
    const size_t n = std::min(max_n, s.queue.size());
    items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      items.push_back(std::move(s.queue.front()));
      s.queue.pop_front();
    }
    return items;
  }

  /// Non-blocking pop from `shard`; nullopt when empty or closed.
  std::optional<T> TryPop(size_t shard) {
    Shard& s = *shards_[shard % shards_.size()];
    MutexLock lock(&s.mutex);
    if (s.queue.empty() || closed_.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    T item = std::move(s.queue.front());
    s.queue.pop_front();
    return item;
  }

  /// Non-blocking pop scanning every shard (synchronous Pump() mode).
  std::optional<T> TryPopAny() {
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::optional<T> item = TryPop(i);
      if (item.has_value()) return item;
    }
    return std::nullopt;
  }

  /// Marks the queue closed and wakes every waiter. Pushes are
  /// rejected and Pops return nullopt from now on.
  void Close() {
    closed_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      // Taking the lock orders Close against in-flight Push/Pop.
      MutexLock lock(&shard->mutex);
    }
    for (auto& shard : shards_) shard->cv.NotifyAll();
  }

  /// Removes and returns every undelivered item, in shard-then-FIFO
  /// order. Call after Close() (and after workers have exited) so the
  /// owner can release the items' resources.
  std::vector<T> Drain() {
    std::vector<T> items;
    for (auto& shard : shards_) {
      MutexLock lock(&shard->mutex);
      for (T& item : shard->queue) items.push_back(std::move(item));
      shard->queue.clear();
    }
    return items;
  }

  /// Re-admits pushes and pops after a Close (Stop/Start round-trips).
  /// Call only while no workers are blocked on the queue.
  void Reopen() { closed_.store(false, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Items currently queued on `shard`.
  size_t Depth(size_t shard) const {
    const Shard& s = *shards_[shard % shards_.size()];
    MutexLock lock(&s.mutex);
    return s.queue.size();
  }

  /// Items currently queued across all shards.
  size_t Size() const {
    size_t total = 0;
    for (size_t i = 0; i < shards_.size(); ++i) total += Depth(i);
    return total;
  }

  bool Empty() const { return Size() == 0; }

 private:
  struct Shard {
    mutable Mutex mutex{LockRank::kUmQueueShard, "um.queue.shard"};
    CondVar cv;
    std::deque<T> queue GUARDED_BY(mutex);
  };

  // unique_ptr keeps shards at stable addresses and avoids false
  // sharing of adjacent shard mutexes being the contention point.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> round_robin_{0};
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_SHARDED_BLOCKING_QUEUE_H_
