#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <limits>

namespace metacomm {

namespace {

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiLower);
  return out;
}

void ToLowerInto(std::string_view s, std::string* out) {
  out->resize(s.size());
  std::transform(s.begin(), s.end(), out->begin(), AsciiLower);
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiUpper);
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsSpace(s[begin])) ++begin;
  while (end > begin && IsSpace(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::string NormalizeSpace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // Suppress leading spaces.
  for (char c : s) {
    if (IsSpace(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

void NormalizeSpaceLowerInto(std::string_view s, std::string* out) {
  out->clear();
  bool in_space = true;  // Suppress leading spaces.
  for (char c : s) {
    if (IsSpace(c)) {
      if (!in_space) out->push_back(' ');
      in_space = true;
    } else {
      out->push_back(AsciiLower(c));
      in_space = false;
    }
  }
  if (!out->empty() && out->back() == ' ') out->pop_back();
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

bool EndsWithIgnoreCase(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         EqualsIgnoreCase(s.substr(s.size() - suffix.size()), suffix);
}

bool ContainsIgnoreCase(std::string_view s, std::string_view needle) {
  if (needle.empty()) return true;
  if (s.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= s.size(); ++i) {
    if (EqualsIgnoreCase(s.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      break;
    }
    pieces.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> pieces = Split(s, sep);
  for (std::string& p : pieces) p = Trim(p);
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string FormatPercentS(std::string_view fmt,
                           const std::vector<std::string>& args) {
  std::string out;
  size_t next_arg = 0;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] == '%' && i + 1 < fmt.size()) {
      if (fmt[i + 1] == 's') {
        if (next_arg < args.size()) out.append(args[next_arg]);
        ++next_arg;
        ++i;
        continue;
      }
      if (fmt[i + 1] == '%') {
        out.push_back('%');
        ++i;
        continue;
      }
    }
    out.push_back(fmt[i]);
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return c >= '0' && c <= '9';
  });
}

std::optional<uint64_t> ParseUint64(std::string_view s) {
  if (!IsAllDigits(s)) return std::nullopt;
  uint64_t value = 0;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  std::optional<uint64_t> value = ParseUint64(s);
  if (!value.has_value() ||
      *value > static_cast<uint64_t>(
                   std::numeric_limits<int64_t>::max())) {
    return std::nullopt;
  }
  return static_cast<int64_t>(*value);
}

std::optional<int64_t> ParseSignedInt64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s.front() == '+' || s.front() == '-') {
    negative = s.front() == '-';
    s.remove_prefix(1);
  }
  std::optional<uint64_t> magnitude = ParseUint64(s);
  if (!magnitude.has_value()) return std::nullopt;
  constexpr uint64_t kMaxPositive =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  if (negative) {
    // |INT64_MIN| = INT64_MAX + 1 is representable only when negated.
    if (*magnitude > kMaxPositive + 1) return std::nullopt;
    return static_cast<int64_t>(0 - *magnitude);
  }
  if (*magnitude > kMaxPositive) return std::nullopt;
  return static_cast<int64_t>(*magnitude);
}

std::optional<uint64_t> ParseHexUint64(std::string_view s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  uint64_t value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

namespace {

bool GlobMatchImpl(std::string_view pattern, std::string_view text,
                   bool fold_case) {
  // Iterative matcher with single-star backtracking.
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  auto eq = [fold_case](char a, char b) {
    return fold_case ? AsciiLower(a) == AsciiLower(b) : a == b;
  };
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || eq(pattern[p], text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace

bool GlobMatch(std::string_view pattern, std::string_view text) {
  return GlobMatchImpl(pattern, text, /*fold_case=*/false);
}

bool GlobMatchIgnoreCase(std::string_view pattern, std::string_view text) {
  return GlobMatchImpl(pattern, text, /*fold_case=*/true);
}

bool CaseInsensitiveLess::operator()(std::string_view a,
                                     std::string_view b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    char ca = AsciiLower(a[i]);
    char cb = AsciiLower(b[i]);
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

}  // namespace metacomm
