#ifndef METACOMM_COMMON_LOGGING_H_
#define METACOMM_COMMON_LOGGING_H_

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace metacomm {

/// Severity levels for the MetaComm logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns a short name for `level` ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

/// Process-wide logging configuration. The default sink writes to
/// stderr; tests install a capturing sink, benchmarks raise the
/// threshold to avoid measuring I/O.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Returns the process-wide logger.
  static Logger& Get();

  /// Drops messages below `level`. Atomic: Log() reads the threshold
  /// on its fast path without taking the sink mutex.
  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  /// Replaces the output sink. Passing nullptr restores stderr output.
  void set_sink(Sink sink) EXCLUDES(mutex_);

  /// Emits one message (already formatted) at `level`.
  void Log(LogLevel level, const std::string& message) EXCLUDES(mutex_);

 private:
  Logger();
  std::atomic<LogLevel> min_level_;
  // LOG() may run under any other lock in the system, so the sink
  // lock ranks innermost of all (kLogging).
  Mutex mutex_{LockRank::kLogging, "common.logging"};
  Sink sink_ GUARDED_BY(mutex_);
};

namespace internal_logging {

/// Stream-style message builder used by the METACOMM_LOG macro; emits on
/// destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace metacomm

/// Usage: METACOMM_LOG(kInfo) << "applied " << n << " updates";
#define METACOMM_LOG(level)                  \
  ::metacomm::internal_logging::LogMessage(  \
      ::metacomm::LogLevel::level)

#endif  // METACOMM_COMMON_LOGGING_H_
