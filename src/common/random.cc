#include "common/random.h"

namespace metacomm {

uint64_t Random::Next() {
  // splitmix64 (Steele, Lea, Flood 2014): tiny, fast, well distributed.
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Random::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Random::DigitString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('0' + Uniform(10)));
  }
  return out;
}

}  // namespace metacomm
