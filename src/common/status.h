#ifndef METACOMM_COMMON_STATUS_H_
#define METACOMM_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace metacomm {

/// Canonical error space used throughout MetaComm.
///
/// The integrated repositories (LDAP server, PBX, messaging platform) each
/// have their own error vocabularies; filters translate those into this
/// canonical space so the Update Manager can make uniform decisions
/// (retry, log-and-continue, abort).
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument was malformed (bad DN, bad filter, ...).
  kInvalidArgument,
  /// The referenced object does not exist (unknown DN, unknown extension).
  kNotFound,
  /// An object with the same key already exists (duplicate add).
  kAlreadyExists,
  /// The operation conflicts with concurrent activity (entry locked,
  /// gateway quiesced, optimistic check failed).
  kConflict,
  /// The caller is not allowed to perform the operation.
  kPermissionDenied,
  /// A repository rejected the operation for schema reasons (objectclass
  /// violation, unknown attribute, not-allowed-on-non-leaf).
  kSchemaViolation,
  /// The repository is unreachable (simulated network fault / disconnect).
  kUnavailable,
  /// The operation ran out of time or iterations (lexpress fixpoint cap,
  /// lock wait timeout).
  kDeadlineExceeded,
  /// An internal invariant was violated; indicates a MetaComm bug.
  kInternal,
  /// The feature is recognized but not implemented by this repository.
  kUnimplemented,
};

/// Returns a stable, human-readable name for `code` ("NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

/// Typed per-item outcome of applying one update to one repository —
/// the vocabulary the redesigned repository API (RepositoryFilter,
/// Device, Update Manager) speaks instead of a collapsed bare Status.
/// The split retryable/permanent drives both the circuit breaker and
/// the error-log repair worker: retryable failures are replayed once
/// the repository is back, permanent ones are audit-only.
enum class ApplyOutcome {
  /// The repository holds the update.
  kApplied,
  /// Transient repository-side failure (link down, timeout, contention,
  /// device-internal error): retrying the same update can succeed.
  kRetryable,
  /// The repository rejected the update (validation, schema, duplicate
  /// key): retrying verbatim will fail again.
  kPermanent,
  /// The update never reached the repository — its circuit breaker was
  /// open. Always replayable once the circuit closes.
  kSkippedOpenCircuit,
};

/// Stable name: "applied" / "retryable" / "permanent" / "skipped-open-circuit".
const char* ApplyOutcomeName(ApplyOutcome outcome);

/// Parses an ApplyOutcomeName back; nullopt for unknown text.
std::optional<ApplyOutcome> ParseApplyOutcome(const std::string& text);

/// A success-or-error result, modeled after absl::Status.
///
/// MetaComm is built without exceptions (the subsystems it glues together
/// have C-style error reporting, and half the interesting behaviour in the
/// paper *is* error handling), so every fallible operation returns a
/// Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error code.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status SchemaViolation(std::string msg) {
    return Status(StatusCode::kSchemaViolation, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Maps a Status onto the apply-outcome vocabulary. OK is kApplied;
/// kUnavailable / kDeadlineExceeded / kConflict / kInternal are
/// retryable (the repository or its link misbehaved, not the update);
/// everything else is permanent (the update itself was rejected).
inline ApplyOutcome ClassifyStatus(const Status& status) {
  if (status.ok()) return ApplyOutcome::kApplied;
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kConflict:
    case StatusCode::kInternal:
      return ApplyOutcome::kRetryable;
    default:
      return ApplyOutcome::kPermanent;
  }
}

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace metacomm

/// Propagates a non-OK Status from the enclosing function.
#define METACOMM_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::metacomm::Status _status = (expr);              \
    if (!_status.ok()) return _status;                \
  } while (false)

#define METACOMM_STATUS_CONCAT_INNER_(x, y) x##y
#define METACOMM_STATUS_CONCAT_(x, y) METACOMM_STATUS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a StatusOr<T>), propagating an error status, and
/// otherwise move-assigns the value into `lhs`.
#define METACOMM_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto METACOMM_STATUS_CONCAT_(_status_or_, __LINE__) = (rexpr);       \
  if (!METACOMM_STATUS_CONCAT_(_status_or_, __LINE__).ok())            \
    return METACOMM_STATUS_CONCAT_(_status_or_, __LINE__).status();    \
  lhs = std::move(METACOMM_STATUS_CONCAT_(_status_or_, __LINE__)).value()

#endif  // METACOMM_COMMON_STATUS_H_
