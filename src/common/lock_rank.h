#ifndef METACOMM_COMMON_LOCK_RANK_H_
#define METACOMM_COMMON_LOCK_RANK_H_

namespace metacomm {

/// The global lock-rank hierarchy: every common::Mutex / SharedMutex in
/// the tree is constructed with one of these ranks, and a thread may
/// only acquire a lock whose rank is STRICTLY GREATER than every lock
/// it already holds. Rank order therefore IS the permitted acquisition
/// order, outermost first — enforced at runtime by common/lockdep
/// (Debug/TSan/RelWithDebInfo builds) and mirrored in the
/// ACQUIRED_BEFORE annotations that Clang's -Wthread-safety-beta
/// checks at compile time. tools/metalint rejects any mutex
/// declaration that does not carry a rank.
///
/// The table encodes the nesting the system actually performs
/// (DESIGN.md "Lock hierarchy" documents each edge):
///
///   net          < harness < um.sync < ldap < ltap < um core
///                < devices < common utilities < logging
///
/// Load-bearing orderings, with the code path that creates each edge:
///  - kUmSync < everything from kLdapServerUsers up: Synchronize holds
///    sync_mutex_ across gateway quiesce, directory writes and device
///    fan-out (update_manager.cc).
///  - kLdapBackendWrite < kLdapChangelog: Backend::Commit notifies
///    replication listeners while still holding write_mutex_.
///  - kGatewayState < kGatewayStats: LtapGateway::EnterUpdate counts a
///    quiesce wait while holding the state lock.
///  - kGatewayState < kLeaf: Quiesce fires OnPersistentConnection
///    callbacks (test recorders) under the state lock.
///  - kUmStats < kUmQueueShard / kBreaker / kFaultInjector:
///    UpdateManager::stats() samples queue depths, breaker snapshots
///    and repository health while holding stats_mutex_.
///  - kUmSync < kUmShutdown: Synchronize reads stop_epoch() (the
///    shutdown lock) inside the sync critical section.
///
/// Same-rank nesting is a violation: if two locks of one rank must
/// ever nest, refine the table with a new rank between neighbours
/// (values are spaced for exactly that).
enum class LockRank : int {
  // --- 1xx: wire layer. Leaf locks in practice (handlers run with no
  //     net lock held), ranked outermost so a handler that ever did
  //     call back into the loop under a lock would be caught.
  kNetEventLoop = 100,    // net::EventLoop pending-task/callback map.
  kNetServerConns = 110,  // net::TcpServer connection table.

  // --- 15x: test/bench harness locks held across entire client
  //     operations (e.g. bench_gateway_vs_library's "library mode"
  //     serialization lock wraps whole gateway calls).
  kHarness = 150,

  // --- 2xx: Update Manager coordination locks that wrap whole
  //     multi-repository conversations.
  kUmSync = 200,  // UpdateManager::sync_mutex_ (one Synchronize at a time).

  // --- 3xx: LDAP store.
  kLdapServerUsers = 300,   // LdapServer bind table.
  kLdapBackendWrite = 310,  // Backend::write_mutex_ (COW writer lock).
  kLdapChangelog = 320,     // replication::Changelog record log.

  // --- 4xx: LTAP.
  kGatewayState = 400,  // LtapGateway quiesce / in-flight state.
  kGatewayStats = 410,  // LtapGateway counters.
  kLtapLockTable = 420, // ltap::LockTable entry-lock map.

  // --- 5xx: Update Manager core.
  kUmShutdown = 500,   // Stop()/sleep interruption plumbing.
  kUmAdmin = 510,      // Admin-callback slot.
  kUmStats = 520,      // Stats/replay-backlog counters.
  kUmQueueShard = 530, // ShardedBlockingQueue per-shard locks.
  kBreaker = 540,      // core::CircuitBreaker state.

  // --- 6xx: repository/device state, the innermost system data the
  //     UM reaches into while propagating.
  kDeviceRecords = 600,  // Device record maps (PBX stations, mailboxes).
  kFaultInjector = 610,  // devices::FaultInjector schedule state.

  // --- 9xx: innermost utilities, acquirable under anything above.
  kBlockingQueue = 900,  // Generic common::BlockingQueue instances.
  kLogging = 980,        // Logger sink lock: LOG() runs under any lock.
  kLeaf = 990,           // Ad-hoc leaf state in tests/benches.
};

/// Integer value of a rank, for diagnostics.
constexpr int LockRankValue(LockRank rank) {
  return static_cast<int>(rank);
}

}  // namespace metacomm

#endif  // METACOMM_COMMON_LOCK_RANK_H_
