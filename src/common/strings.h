#ifndef METACOMM_COMMON_STRINGS_H_
#define METACOMM_COMMON_STRINGS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace metacomm {

/// String helpers shared across the LDAP substrate, the lexpress VM and
/// the device protocol parsers. LDAP attribute handling is pervasively
/// case-insensitive (caseIgnoreMatch), so the case-folding helpers here
/// define *the* canonical folding used for DN normalization, attribute
/// name lookup and filter evaluation.

/// Returns `s` with ASCII letters lower-cased.
std::string ToLower(std::string_view s);

/// Writes lower(`s`) into `*out`, reusing its capacity. In-place
/// variant for hot paths that fold many strings in a loop.
void ToLowerInto(std::string_view s, std::string* out);

/// Returns `s` with ASCII letters upper-cased.
std::string ToUpper(std::string_view s);

/// Returns `s` without leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Returns `s` with runs of internal whitespace collapsed to single
/// spaces and leading/trailing whitespace removed. This is the
/// "insignificant space" handling LDAP matching rules prescribe.
std::string NormalizeSpace(std::string_view s);

/// Single-pass NormalizeSpace + ToLower written into `*out`, reusing
/// its capacity. This is the canonical key form of the LDAP equality
/// index; the in-place single scan avoids the two temporaries of
/// ToLower(NormalizeSpace(s)) on indexing/search hot paths.
void NormalizeSpaceLowerInto(std::string_view s, std::string* out);

/// Case-insensitive equality over ASCII.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` begins with `prefix`, ignoring ASCII case.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`, ignoring ASCII case. Allocation-free
/// (the lexpress suffix() builtin used to lower-case both operands into
/// temporaries per value per evaluation).
bool EndsWithIgnoreCase(std::string_view s, std::string_view suffix);

/// True if `needle` occurs anywhere in `s`, ignoring ASCII case.
/// Allocation-free; an empty needle matches everything.
bool ContainsIgnoreCase(std::string_view s, std::string_view needle);

/// Splits `s` on every occurrence of `sep`; an empty input yields one
/// empty piece, matching the behaviour of most split utilities.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits and trims each piece; empty pieces are kept.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-lite used by lexpress' format() builtin: each "%s" in `fmt` is
/// replaced by the next element of `args`; "%%" yields a literal '%'.
/// Surplus placeholders render as empty strings.
std::string FormatPercentS(std::string_view fmt,
                           const std::vector<std::string>& args);

/// True if all characters of non-empty `s` are ASCII digits.
bool IsAllDigits(std::string_view s);

/// Checked decimal parse of the complete string: nullopt unless `s` is
/// a non-empty run of ASCII digits (no sign, no surrounding space)
/// whose value fits the result type. The protocol parsers use these
/// instead of atoi/atoll, which silently saturate or overflow on long
/// digit strings.
std::optional<int64_t> ParseInt64(std::string_view s);
std::optional<uint64_t> ParseUint64(std::string_view s);

/// Like ParseInt64 but accepts one leading '+' or '-' (the lexpress
/// int() builtin's accepted syntax). Handles INT64_MIN exactly.
std::optional<int64_t> ParseSignedInt64(std::string_view s);

/// Checked hexadecimal parse of the complete string (no "0x" prefix,
/// no sign): nullopt unless `s` is 1..16 hex digits. Used by the
/// error-log unescaper instead of strtol.
std::optional<uint64_t> ParseHexUint64(std::string_view s);

/// Simple glob match supporting '*' (any run) and '?' (any one char).
/// Used by LDAP substring filters and lexpress patterns.
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Case-insensitive glob match.
bool GlobMatchIgnoreCase(std::string_view pattern, std::string_view text);

/// Functor pair for case-insensitive keyed containers
/// (std::map<std::string, V, CaseInsensitiveLess>).
struct CaseInsensitiveLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const;
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_STRINGS_H_
