#ifndef METACOMM_COMMON_CLOCK_H_
#define METACOMM_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace metacomm {

/// Abstract time source.
///
/// Convergence experiments (EXPERIMENTS.md, E3) measure the delay between
/// a direct device update and the instant all repositories agree again.
/// Running those deterministically requires a simulated clock; production
/// assembly uses RealClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Blocks (or simulates blocking) for `micros` microseconds.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  /// Returns a process-wide instance.
  static RealClock* Get();

  int64_t NowMicros() const override;
  void SleepMicros(int64_t micros) override;
};

/// Deterministic, manually advanced clock for tests and simulations.
/// Thread-safe: concurrent readers observe monotonic time.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_.load(); }

  /// SleepMicros on a simulated clock advances time instead of blocking.
  void SleepMicros(int64_t micros) override { Advance(micros); }

  /// Moves time forward by `micros` (must be non-negative).
  void Advance(int64_t micros) { now_.fetch_add(micros); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_CLOCK_H_
