#include "common/logging.h"

#include <cstdio>

#include "common/mutex.h"

namespace metacomm {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger* logger = new Logger;
  return *logger;
}

Logger::Logger() : min_level_(LogLevel::kWarning) {}

void Logger::set_sink(Sink sink) {
  MutexLock lock(&mutex_);
  sink_ = std::move(sink);
}

void Logger::Log(LogLevel level, const std::string& message) {
  // min_level_ is atomic so this check races benignly with
  // set_min_level instead of undefined-behavior racing (the old
  // plain-LogLevel read was the first real bug -Wthread-safety found).
  if (level < min_level_.load(std::memory_order_relaxed)) return;
  MutexLock lock(&mutex_);
  if (sink_) {
    sink_(level, message);
  } else {
    std::fprintf(stderr, "[metacomm %s] %s\n", LogLevelName(level),
                 message.c_str());
  }
}

}  // namespace metacomm
