#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace metacomm {

namespace {
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger* logger = new Logger;
  return *logger;
}

Logger::Logger() : min_level_(LogLevel::kWarning) {}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  sink_ = std::move(sink);
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < min_level_) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  if (sink_) {
    sink_(level, message);
  } else {
    std::fprintf(stderr, "[metacomm %s] %s\n", LogLevelName(level),
                 message.c_str());
  }
}

}  // namespace metacomm
