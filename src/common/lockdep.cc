#include "common/lockdep.h"

#if METACOMM_LOCKDEP

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <shared_mutex>  // The validator's own lock sits beneath the
                         // instrumented wrapper layer and must not
                         // recurse into it (metalint allowlists this
                         // file for exactly that reason).
#include <string>
#include <unordered_map>
#include <vector>

namespace metacomm::lockdep {
namespace {

constexpr int kMaxHeld = 32;    // Deepest legal nesting per thread.
constexpr int kMaxFrames = 24;  // Backtrace depth captured per edge.

struct Held {
  const void* lock;
  int rank;
  const char* name;
};

// Trivially-destructible TLS: lock activity during static/TLS
// destruction (e.g. a destructor that logs) must not touch a dead
// vector, so the stack is a flat array with no destructor at all.
struct HeldStack {
  Held entries[kMaxHeld];
  int count;
};
thread_local HeldStack tls_held;

std::atomic<uint64_t> g_checked{0};
std::atomic<size_t> g_edges{0};

struct EdgeInfo {
  void* frames[kMaxFrames];
  int frame_count = 0;
};

// Acquisition-order graph over lock-class names: graph["A"]["B"]
// exists iff some thread acquired class B while holding class A, and
// holds the backtrace of the acquisition that first created the edge.
struct Graph {
  std::shared_mutex mu;
  std::unordered_map<std::string,
                     std::unordered_map<std::string, EdgeInfo>>
      adj;
};

Graph& graph() {
  static Graph* g = new Graph();  // Leaked: outlives static dtors.
  return *g;
}

void PrintHeldLocks(const HeldStack& stack) {
  fprintf(stderr, "held locks (outermost first):\n");
  for (int i = 0; i < stack.count; ++i) {
    fprintf(stderr, "  #%d \"%s\" (rank %d) @ %p\n", i,
            stack.entries[i].name, stack.entries[i].rank,
            stack.entries[i].lock);
  }
}

void PrintLiveStack(const char* label) {
  void* frames[kMaxFrames];
  int n = backtrace(frames, kMaxFrames);
  fprintf(stderr, "\n%s:\n", label);
  fflush(stderr);
  backtrace_symbols_fd(frames, n, STDERR_FILENO);
}

// Prints the stored first-recording stack for edge from->to, if the
// edge exists. Returns true when a stack was printed.
bool PrintEdgeStack(const char* from, const char* to) {
  EdgeInfo info;
  {
    std::shared_lock<std::shared_mutex> g(graph().mu);
    auto it = graph().adj.find(from);
    if (it == graph().adj.end()) return false;
    auto jt = it->second.find(to);
    if (jt == it->second.end()) return false;
    info = jt->second;
  }
  fprintf(stderr,
          "\nconflicting prior order \"%s\" -> \"%s\" was first "
          "recorded at this acquisition stack:\n",
          from, to);
  fflush(stderr);
  backtrace_symbols_fd(info.frames, info.frame_count, STDERR_FILENO);
  return true;
}

[[noreturn]] void Abort() {
  fprintf(stderr,
          "======================================================\n");
  fflush(stderr);
  abort();
}

[[noreturn]] void ReportRecursive(const HeldStack& stack,
                                  const void* lock, const char* name) {
  fprintf(stderr,
          "\n==== metacomm lockdep: FATAL lock-order violation ====\n"
          "recursive acquisition: this thread already holds \"%s\" "
          "@ %p\n",
          name, lock);
  PrintHeldLocks(stack);
  PrintLiveStack("this (violating) acquisition stack");
  Abort();
}

[[noreturn]] void ReportRankRegression(const HeldStack& stack,
                                       const Held& held, int rank,
                                       const char* name) {
  fprintf(stderr,
          "\n==== metacomm lockdep: FATAL lock-order violation ====\n"
          "rank regression: acquiring \"%s\" (rank %d) while holding "
          "\"%s\" (rank %d)\n"
          "ranks must strictly increase from outermost to innermost; "
          "see src/common/lock_rank.h\n",
          name, rank, held.name, held.rank);
  PrintHeldLocks(stack);
  PrintLiveStack("this (violating) acquisition stack");
  if (!PrintEdgeStack(name, held.name)) {
    fprintf(stderr,
            "\n(no prior \"%s\" -> \"%s\" acquisition recorded in "
            "this process; the rank table itself forbids this "
            "order)\n",
            name, held.name);
  }
  Abort();
}

[[noreturn]] void ReportCycle(const HeldStack& stack, const Held& held,
                              int rank, const char* name,
                              const std::string& via) {
  fprintf(stderr,
          "\n==== metacomm lockdep: FATAL lock-order violation ====\n"
          "acquisition-graph cycle: acquiring \"%s\" (rank %d) while "
          "holding \"%s\" (rank %d), but the order \"%s\" ... -> "
          "\"%s\" is already recorded\n",
          name, rank, held.name, held.rank, name, held.name);
  PrintHeldLocks(stack);
  PrintLiveStack("this (violating) acquisition stack");
  if (!PrintEdgeStack(name, via.c_str())) {
    fprintf(stderr, "\n(stored stack for \"%s\" -> \"%s\" missing)\n",
            name, via.c_str());
  }
  Abort();
}

[[noreturn]] void ReportOverflow(const char* name) {
  fprintf(stderr,
          "\n==== metacomm lockdep: FATAL ====\n"
          "held-lock stack overflow (> %d) acquiring \"%s\"\n",
          kMaxHeld, name);
  PrintLiveStack("this acquisition stack");
  Abort();
}

void Push(const void* lock, LockRank rank, const char* name) {
  HeldStack& stack = tls_held;
  if (stack.count >= kMaxHeld) ReportOverflow(name);
  stack.entries[stack.count++] =
      Held{lock, LockRankValue(rank), name};
}

// Is `to` reachable from `from` in the class graph? Caller holds
// graph().mu (shared). On success *via receives from's first hop on
// the discovered path (for stack reporting).
bool Reachable(const std::string& from, const std::string& to,
               std::string* via) {
  std::deque<std::pair<std::string, std::string>> queue;  // node, first hop
  std::unordered_map<std::string, bool> seen;
  queue.emplace_back(from, "");
  seen[from] = true;
  while (!queue.empty()) {
    auto [node, hop] = queue.front();
    queue.pop_front();
    auto it = graph().adj.find(node);
    if (it == graph().adj.end()) continue;
    for (const auto& [next, info] : it->second) {
      (void)info;
      const std::string& first = hop.empty() ? next : hop;
      if (next == to) {
        *via = first;
        return true;
      }
      if (!seen[next]) {
        seen[next] = true;
        queue.emplace_back(next, first);
      }
    }
  }
  return false;
}

// Records held->name edges for every held lock, capturing a backtrace
// the first time each class pair is seen. Steady state (all edges
// known) takes only the shared lock and allocates nothing.
void RecordEdges(const HeldStack& stack, const char* name) {
  bool all_known = true;
  {
    std::shared_lock<std::shared_mutex> g(graph().mu);
    for (int i = 0; i < stack.count; ++i) {
      auto it = graph().adj.find(stack.entries[i].name);
      if (it == graph().adj.end() ||
          it->second.find(name) == it->second.end()) {
        all_known = false;
        break;
      }
    }
  }
  if (all_known) return;

  void* frames[kMaxFrames];
  int n = backtrace(frames, kMaxFrames);
  std::unique_lock<std::shared_mutex> g(graph().mu);
  for (int i = 0; i < stack.count; ++i) {
    EdgeInfo& info = graph().adj[stack.entries[i].name][name];
    if (info.frame_count == 0) {
      info.frame_count = n;
      std::memcpy(info.frames, frames, sizeof(void*) * n);
      g_edges.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace

void OnAcquire(const void* lock, LockRank rank, const char* name) {
  HeldStack& stack = tls_held;
  g_checked.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < stack.count; ++i) {
    if (stack.entries[i].lock == lock)
      ReportRecursive(stack, lock, name);
  }
  if (stack.count == 0) {
    Push(lock, rank, name);
    return;
  }
  const int value = LockRankValue(rank);
  for (int i = 0; i < stack.count; ++i) {
    if (stack.entries[i].rank >= value)
      ReportRankRegression(stack, stack.entries[i], value, name);
  }
  // Cycle check: would recording held -> name close a loop? Only
  // possible between classes whose ranks tie or were mis-assigned;
  // the rank check above already rejects same/descending ranks, so
  // this is a second line of defense for graph states imported by
  // try-locks (pushed unchecked) and future same-rank refinements.
  {
    std::shared_lock<std::shared_mutex> g(graph().mu);
    for (int i = 0; i < stack.count; ++i) {
      if (std::strcmp(stack.entries[i].name, name) == 0) continue;
      std::string via;
      if (Reachable(name, stack.entries[i].name, &via)) {
        g.unlock();
        ReportCycle(stack, stack.entries[i], value, name, via);
      }
    }
  }
  RecordEdges(stack, name);
  Push(lock, rank, name);
}

void OnTryAcquire(const void* lock, LockRank rank, const char* name) {
  // A successful try-lock cannot block, hence cannot deadlock by
  // itself: record it as held (it constrains later blocking
  // acquisitions) but run no order checks and add no edges.
  Push(lock, rank, name);
}

void OnRelease(const void* lock) {
  HeldStack& stack = tls_held;
  for (int i = stack.count - 1; i >= 0; --i) {
    if (stack.entries[i].lock == lock) {
      for (int j = i; j + 1 < stack.count; ++j)
        stack.entries[j] = stack.entries[j + 1];
      --stack.count;
      return;
    }
  }
  fprintf(stderr,
          "\n==== metacomm lockdep: FATAL ====\n"
          "releasing a lock this thread does not hold (@ %p)\n",
          lock);
  PrintHeldLocks(stack);
  PrintLiveStack("this release stack");
  Abort();
}

void OnCvWaitBegin(const void* lock) {
  HeldStack& stack = tls_held;
  if (stack.count == 0 ||
      stack.entries[stack.count - 1].lock != lock) {
    fprintf(stderr,
            "\n==== metacomm lockdep: FATAL ====\n"
            "condition wait on a lock that is not this thread's "
            "innermost held lock (@ %p)\n",
            lock);
    PrintHeldLocks(stack);
    PrintLiveStack("this wait stack");
    Abort();
  }
  --stack.count;
}

void OnCvWaitEnd(const void* lock, LockRank rank, const char* name) {
  // The wait reacquires the same lock the matching OnCvWaitBegin
  // popped; the original OnAcquire validated this ordering.
  Push(lock, rank, name);
}

size_t HeldCount() { return static_cast<size_t>(tls_held.count); }

uint64_t CheckedAcquisitions() {
  return g_checked.load(std::memory_order_relaxed);
}

size_t RecordedEdges() {
  return g_edges.load(std::memory_order_relaxed);
}

}  // namespace metacomm::lockdep

#endif  // METACOMM_LOCKDEP
