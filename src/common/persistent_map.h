#ifndef METACOMM_COMMON_PERSISTENT_MAP_H_
#define METACOMM_COMMON_PERSISTENT_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace metacomm {

/// An immutable, structurally shared ordered map from std::string to V.
///
/// This is the copy-on-write backbone of the snapshot-isolated
/// directory read path: every mutation returns a NEW map that shares
/// all untouched nodes with its parent, so a published snapshot stays
/// valid (and immutable) for as long as any reader holds it, while a
/// writer derives the next version in O(log n) node copies.
///
/// Implementation: a path-copying treap whose heap priorities are
/// derived from a hash of the key. That makes the tree shape a pure
/// function of the key SET — independent of insertion order — which
/// keeps the expected depth logarithmic without storing any balance
/// bookkeeping, and makes structurally equal snapshots byte-identical.
///
/// Thread safety: a PersistentMap value itself is a single shared_ptr;
/// distinct map values may be read concurrently without
/// synchronization (all reachable nodes are immutable). Publishing a
/// map from one thread to another requires the usual external
/// happens-before edge (the Backend publishes whole snapshots through
/// one atomic pointer).
template <typename V>
class PersistentMap {
 public:
  PersistentMap() = default;

  size_t size() const { return Count(root_); }
  bool empty() const { return root_ == nullptr; }

  /// Pointer to the value for `key`, or nullptr. The pointee lives as
  /// long as any map sharing the node does.
  const V* Find(std::string_view key) const {
    const Node* node = root_.get();
    while (node != nullptr) {
      if (key < node->key) {
        node = node->left.get();
      } else if (node->key < key) {
        node = node->right.get();
      } else {
        return &node->value;
      }
    }
    return nullptr;
  }

  /// Insert-or-assign; returns the derived map.
  PersistentMap Insert(std::string_view key, V value) const {
    NodePtr less, equal, greater;
    Split(root_, key, &less, &equal, &greater);
    NodePtr fresh = std::make_shared<Node>(
        Node{std::string(key), std::move(value), Priority(key), 1, nullptr,
             nullptr});
    return PersistentMap(Merge(Merge(less, fresh), greater));
  }

  /// Removes `key` if present; returns the derived map.
  PersistentMap Erase(std::string_view key) const {
    NodePtr less, equal, greater;
    Split(root_, key, &less, &equal, &greater);
    if (equal == nullptr) return *this;
    return PersistentMap(Merge(less, greater));
  }

  /// In-order traversal. `fn(key, value)` returns false to stop early;
  /// ForEach itself returns false when stopped.
  template <typename Fn>
  bool ForEach(Fn&& fn) const {
    return Walk(root_.get(), std::string_view(), fn);
  }

  /// In-order traversal starting at the first key >= `from` (the
  /// range-scan primitive behind prefix-indexed query plans).
  template <typename Fn>
  bool ForEachFrom(std::string_view from, Fn&& fn) const {
    return Walk(root_.get(), from, fn);
  }

 private:
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  struct Node {
    std::string key;
    V value;
    uint64_t priority;
    size_t count;  // Subtree size.
    NodePtr left;
    NodePtr right;
  };

  explicit PersistentMap(NodePtr root) : root_(std::move(root)) {}

  static size_t Count(const NodePtr& node) {
    return node == nullptr ? 0 : node->count;
  }

  /// FNV-1a; deterministic so equal key sets build equal trees.
  static uint64_t Priority(std::string_view key) {
    uint64_t h = 1469598103934665603ull;
    for (char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  static NodePtr WithChildren(const NodePtr& node, NodePtr left,
                              NodePtr right) {
    return std::make_shared<Node>(
        Node{node->key, node->value, node->priority,
             1 + Count(left) + Count(right), std::move(left),
             std::move(right)});
  }

  /// Partitions `node` into keys < `key`, the node == `key` (if any),
  /// and keys > `key`, copying only the nodes on the search path.
  static void Split(const NodePtr& node, std::string_view key,
                    NodePtr* less, NodePtr* equal, NodePtr* greater) {
    if (node == nullptr) {
      *less = *equal = *greater = nullptr;
      return;
    }
    if (key < node->key) {
      NodePtr sub_greater;
      Split(node->left, key, less, equal, &sub_greater);
      *greater = WithChildren(node, std::move(sub_greater), node->right);
    } else if (node->key < key) {
      NodePtr sub_less;
      Split(node->right, key, &sub_less, equal, greater);
      *less = WithChildren(node, node->left, std::move(sub_less));
    } else {
      *less = node->left;
      *equal = node;
      *greater = node->right;
    }
  }

  /// Joins two treaps; every key in `a` precedes every key in `b`.
  static NodePtr Merge(const NodePtr& a, const NodePtr& b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->priority >= b->priority) {
      return WithChildren(a, a->left, Merge(a->right, b));
    }
    return WithChildren(b, Merge(a, b->left), b->right);
  }

  template <typename Fn>
  static bool Walk(const Node* node, std::string_view from, Fn& fn) {
    if (node == nullptr) return true;
    // Keys below `from` (the whole left subtree included) are skipped
    // without descending into them.
    if (node->key < from) return Walk(node->right.get(), from, fn);
    if (!Walk(node->left.get(), from, fn)) return false;
    if (!fn(node->key, node->value)) return false;
    return Walk(node->right.get(), from, fn);
  }

  NodePtr root_;
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_PERSISTENT_MAP_H_
