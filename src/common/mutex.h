#ifndef METACOMM_COMMON_MUTEX_H_
#define METACOMM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/lockdep.h"
#include "common/thread_annotations.h"

// Lockdep hook shims: expand to the runtime-validator calls when
// METACOMM_LOCKDEP is on and to nothing otherwise, so the wrappers
// below read identically in both configurations and a Release-built
// Mutex is exactly a std::mutex.
#if METACOMM_LOCKDEP
#define METACOMM_LOCKDEP_HOOK(call) ::metacomm::lockdep::call
#else
#define METACOMM_LOCKDEP_HOOK(call) ((void)0)
#endif

namespace metacomm {

class CondVar;
class MutexLock;

/// Annotated wrapper over std::mutex. libstdc++'s std::mutex and
/// std::lock_guard carry no thread-safety attributes, so Clang's
/// analysis cannot see acquisitions through them; this wrapper is the
/// capability the whole tree locks with GUARDED_BY/REQUIRES against.
///
/// Every instance is constructed with a LockRank and a stable class
/// name (see common/lock_rank.h for the global hierarchy). In lockdep
/// builds each blocking acquisition is validated against the calling
/// thread's held-lock stack and the global acquisition-order graph; a
/// rank regression or cycle aborts with both acquisition stacks.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` identifies the lock CLASS in diagnostics and the
  /// acquisition-order graph; it must be a string literal (the
  /// pointer is retained, not copied).
  explicit Mutex(LockRank rank, const char* name)
#if METACOMM_LOCKDEP
      : rank_(rank), name_(name) {
  }
#else
  {
    (void)rank;
    (void)name;
  }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    METACOMM_LOCKDEP_HOOK(OnAcquire(this, rank_, name_));
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    METACOMM_LOCKDEP_HOOK(OnRelease(this));
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    METACOMM_LOCKDEP_HOOK(OnTryAcquire(this, rank_, name_));
    return true;
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if METACOMM_LOCKDEP
  // Set once at construction; not const-qualified so containing
  // objects stay asm-output-compatible (benchmark::DoNotOptimize).
  LockRank rank_;
  const char* name_;
#endif
};

/// RAII holder for Mutex; the scoped acquisition the analysis tracks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// Condition variable usable with MutexLock. Waits are expressed as
/// explicit `while (!cond) cv.Wait(lock);` loops in the caller — the
/// predicate is then checked in the annotated enclosing scope, where
/// the analysis can see the lock is held (a `cv.wait(lock, pred)`
/// lambda is analyzed as a separate, lock-less function and warns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex, waits, and reacquires.
  void Wait(MutexLock& lock) {
    Mutex* mu = lock.mu_;
    METACOMM_LOCKDEP_HOOK(OnCvWaitBegin(mu));
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
    METACOMM_LOCKDEP_HOOK(OnCvWaitEnd(mu, mu->rank_, mu->name_));
  }

  /// Waits until woken or `deadline`. Returns false on timeout.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    Mutex* mu = lock.mu_;
    METACOMM_LOCKDEP_HOOK(OnCvWaitBegin(mu));
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    METACOMM_LOCKDEP_HOOK(OnCvWaitEnd(mu, mu->rank_, mu->name_));
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated wrapper over std::shared_mutex. Shared (reader)
/// acquisitions run the same lockdep ordering checks as exclusive
/// ones: a reader blocking behind a writer deadlocks just as hard.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name)
#if METACOMM_LOCKDEP
      : rank_(rank), name_(name) {
  }
#else
  {
    (void)rank;
    (void)name;
  }
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    METACOMM_LOCKDEP_HOOK(OnAcquire(this, rank_, name_));
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    METACOMM_LOCKDEP_HOOK(OnRelease(this));
  }
  void LockShared() ACQUIRE_SHARED() {
    METACOMM_LOCKDEP_HOOK(OnAcquire(this, rank_, name_));
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    METACOMM_LOCKDEP_HOOK(OnRelease(this));
  }

 private:
  std::shared_mutex mu_;
#if METACOMM_LOCKDEP
  // Set once at construction; not const-qualified so containing
  // objects stay asm-output-compatible (benchmark::DoNotOptimize).
  LockRank rank_;
  const char* name_;
#endif
};

/// RAII exclusive (writer) hold on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared (reader) hold on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_MUTEX_H_
