#ifndef METACOMM_COMMON_MUTEX_H_
#define METACOMM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace metacomm {

class CondVar;
class MutexLock;

/// Annotated wrapper over std::mutex. libstdc++'s std::mutex and
/// std::lock_guard carry no thread-safety attributes, so Clang's
/// analysis cannot see acquisitions through them; this wrapper is the
/// capability the whole tree locks with GUARDED_BY/REQUIRES against.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII holder for Mutex; the scoped acquisition the analysis tracks.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// Condition variable usable with MutexLock. Waits are expressed as
/// explicit `while (!cond) cv.Wait(lock);` loops in the caller — the
/// predicate is then checked in the annotated enclosing scope, where
/// the analysis can see the lock is held (a `cv.wait(lock, pred)`
/// lambda is analyzed as a separate, lock-less function and warns).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex, waits, and reacquires.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until woken or `deadline`. Returns false on timeout.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> native(lock.mu_->mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Annotated wrapper over std::shared_mutex (the Backend's
/// readers-writer DIT lock).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) hold on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared (reader) hold on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_MUTEX_H_
