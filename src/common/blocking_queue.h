#ifndef METACOMM_COMMON_BLOCKING_QUEUE_H_
#define METACOMM_COMMON_BLOCKING_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace metacomm {

/// Unbounded MPMC FIFO used for the Update Manager's global update queue.
///
/// The queue is the serialization point of MetaComm: the order in which
/// descriptors leave this queue *is* the global update order that the
/// reapplication technique (paper §4.4) enforces on every repository.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueues an item and wakes one waiter. Returns false (dropping
  /// the item) when the queue is closed.
  bool Push(T item) EXCLUDES(mutex_) {
    {
      MutexLock lock(&mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed.
  /// Returns nullopt only when closed and drained.
  std::optional<T> Pop() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    while (queue_.empty() && !closed_) cv_.Wait(lock);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> TryPop() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  /// Marks the queue closed; Pop() drains remaining items then returns
  /// nullopt. Push after Close is ignored.
  void Close() EXCLUDES(mutex_) {
    {
      MutexLock lock(&mutex_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return closed_;
  }

  size_t Size() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return queue_.size();
  }

  bool Empty() const EXCLUDES(mutex_) { return Size() == 0; }

 private:
  mutable Mutex mutex_{LockRank::kBlockingQueue,
                       "common.blocking_queue"};
  CondVar cv_;
  std::deque<T> queue_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace metacomm

#endif  // METACOMM_COMMON_BLOCKING_QUEUE_H_
