#ifndef METACOMM_COMMON_ATOMIC_SHARED_PTR_H_
#define METACOMM_COMMON_ATOMIC_SHARED_PTR_H_

#include <atomic>
#include <memory>
#include <utility>

namespace metacomm::common {

/// A concurrently replaceable `shared_ptr<T>` publication slot.
///
/// Functionally `std::atomic<std::shared_ptr<T>>`, which libstdc++ also
/// implements with an embedded spin bit (it is not lock-free either).
/// We carry our own because GCC 12's `_Sp_atomic::load` releases that
/// bit with `memory_order_relaxed`, leaving the guarded pointer read
/// unordered against the next store's write — a data race under the
/// memory model that ThreadSanitizer rightly reports. This cell is the
/// same design with acquire/release on the bit, so the guarded section
/// is properly ordered and TSan-clean.
///
/// The bit is held only for the duration of a `shared_ptr` copy or swap
/// (a refcount bump and two word moves) — never across any caller work
/// — so readers cannot be blocked behind a writer's critical section.
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> value)
      : value_(std::move(value)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// Returns a reference-holding copy of the current value.
  std::shared_ptr<T> load() const {
    Lock();
    std::shared_ptr<T> copy = value_;
    Unlock();
    return copy;
  }

  /// Publishes `next`. The previous value's reference is dropped after
  /// the bit is released, so a final destruction runs outside it.
  void store(std::shared_ptr<T> next) {
    Lock();
    value_.swap(next);
    Unlock();
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> value_;
};

}  // namespace metacomm::common

#endif  // METACOMM_COMMON_ATOMIC_SHARED_PTR_H_
