#include "common/clock.h"

#include <chrono>
#include <thread>

namespace metacomm {

RealClock* RealClock::Get() {
  static RealClock* clock = new RealClock;
  return clock;
}

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepMicros(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace metacomm
