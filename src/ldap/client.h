#ifndef METACOMM_LDAP_CLIENT_H_
#define METACOMM_LDAP_CLIENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ldap/service.h"

namespace metacomm::ldap {

/// Ergonomic client over any LdapService (server or LTAP gateway).
///
/// This is what "any tool that can perform LDAP updates" looks like in
/// this codebase: the Web-Based Administration stand-ins in examples/
/// are built on it, and so is the LDAP filter's protocol converter.
class Client {
 public:
  /// `service` must outlive the client.
  explicit Client(LdapService* service) : service_(service) {}

  /// Simple bind; subsequent operations carry the bound principal.
  Status Bind(std::string_view dn, std::string password);

  /// Resets to anonymous.
  void Unbind();

  /// Marks this client's operations as UM-internal (bypasses LTAP
  /// trigger processing; see OpContext::internal).
  void set_internal(bool internal) { context_.internal = internal; }

  void set_session_id(uint64_t id) { context_.session_id = id; }
  const OpContext& context() const { return context_; }

  /// Adds an entry built from `dn` and (attribute, value) pairs;
  /// repeated attribute names accumulate values.
  Status Add(std::string_view dn,
             const std::vector<std::pair<std::string, std::string>>& avas);

  /// Adds a fully formed entry.
  Status Add(const Entry& entry);

  Status Delete(std::string_view dn);

  /// Replaces one attribute with a single value.
  Status Replace(std::string_view dn, std::string_view attribute,
                 std::string value);

  /// Replaces one attribute with a value set (empty removes it).
  Status ReplaceAll(std::string_view dn, std::string_view attribute,
                    std::vector<std::string> values);

  /// General modify.
  Status Modify(std::string_view dn, std::vector<Modification> mods);

  /// Renames the entry's RDN, e.g. new_rdn = "cn=Pat Smith".
  Status ModifyRdn(std::string_view dn, std::string_view new_rdn,
                   bool delete_old_rdn = true);

  /// Fetches one entry by DN.
  StatusOr<Entry> Get(std::string_view dn);

  /// Subtree search from `base` with an RFC 2254 filter string.
  StatusOr<std::vector<Entry>> Search(std::string_view base,
                                      std::string_view filter,
                                      Scope scope = Scope::kSubtree);

  /// LDAP Compare.
  StatusOr<bool> Compare(std::string_view dn, std::string_view attribute,
                         std::string_view value);

 private:
  LdapService* service_;
  OpContext context_;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_CLIENT_H_
