#include "ldap/query_planner.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"

namespace metacomm::ldap {

namespace {

using CandidateList = std::vector<std::pair<std::string, Dn>>;

void SortUniqueByDn(CandidateList* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  candidates->erase(
      std::unique(candidates->begin(), candidates->end(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first;
                  }),
      candidates->end());
}

void AppendPostings(const Backend::Postings& postings, CandidateList* out) {
  postings.ForEach([out](const std::string& norm_dn, const Dn& dn) {
    out->emplace_back(norm_dn, dn);
    return true;
  });
}

/// Sorted-by-norm-DN intersection; pairs with equal keys carry equal
/// DNs, so either side's Dn works.
CandidateList Intersect(const CandidateList& a, const CandidateList& b) {
  CandidateList out;
  out.reserve(std::min(a.size(), b.size()));
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      out.push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return out;
}

/// nullopt = unindexable; an empty list is a valid (provably empty)
/// plan — e.g. equality on a value no entry carries.
std::optional<CandidateList> PlanNode(const Backend::AttrIndex& index,
                                      const Filter& filter) {
  switch (filter.kind()) {
    case Filter::Kind::kEquality: {
      // The lexpress closure turns every propagation into a burst of
      // indexed equality searches, so this probe is hot: reuse scratch
      // keys instead of materializing fresh strings per call.
      thread_local std::string probe;
      ToLowerInto(filter.attribute(), &probe);
      const Backend::ValueIndex* values = index.Find(probe);
      CandidateList out;
      if (values == nullptr) return out;  // No entry has the attribute.
      NormalizeSpaceLowerInto(filter.value(), &probe);
      const Backend::Postings* postings = values->Find(probe);
      if (postings == nullptr) return out;
      AppendPostings(*postings, &out);
      return out;  // Postings iterate in norm-DN order: already sorted.
    }
    case Filter::Kind::kSubstring: {
      // Indexable when the pattern opens with a literal prefix. Any
      // value glob-matching "p*..." starts with p char-for-char
      // (case-insensitively), so its normalized index key starts with
      // the normalized prefix — an ordered range scan over the value
      // keys covers every possible match.
      const std::string& pattern = filter.value();
      std::string prefix;
      // The literal prefix stops at the FIRST wildcard of either kind
      // ('?' matches any one char, so it breaks literality too).
      NormalizeSpaceLowerInto(pattern.substr(0, pattern.find_first_of("*?")),
                              &prefix);
      if (prefix.empty()) return std::nullopt;
      thread_local std::string attr_key;
      ToLowerInto(filter.attribute(), &attr_key);
      const Backend::ValueIndex* values = index.Find(attr_key);
      CandidateList out;
      if (values == nullptr) return out;
      values->ForEachFrom(
          prefix, [&](const std::string& value_key,
                      const Backend::Postings& postings) {
            if (value_key.compare(0, prefix.size(), prefix) != 0) {
              return false;  // Past the prefix range: stop the scan.
            }
            AppendPostings(postings, &out);
            return true;
          });
      SortUniqueByDn(&out);
      return out;
    }
    case Filter::Kind::kAnd: {
      // Intersect every indexable child, smallest first; unindexable
      // children are enforced later by full re-evaluation.
      std::vector<CandidateList> parts;
      for (const Filter& child : filter.children()) {
        std::optional<CandidateList> part = PlanNode(index, child);
        if (part.has_value()) parts.push_back(std::move(*part));
      }
      if (parts.empty()) return std::nullopt;
      std::sort(parts.begin(), parts.end(),
                [](const CandidateList& a, const CandidateList& b) {
                  return a.size() < b.size();
                });
      CandidateList out = std::move(parts.front());
      for (size_t i = 1; i < parts.size() && !out.empty(); ++i) {
        out = Intersect(out, parts[i]);
      }
      return out;
    }
    case Filter::Kind::kOr: {
      CandidateList out;
      for (const Filter& child : filter.children()) {
        std::optional<CandidateList> part = PlanNode(index, child);
        if (!part.has_value()) return std::nullopt;
        out.insert(out.end(), std::make_move_iterator(part->begin()),
                   std::make_move_iterator(part->end()));
      }
      SortUniqueByDn(&out);
      return out;
    }
    case Filter::Kind::kNot:
    case Filter::Kind::kPresent:
    case Filter::Kind::kGreaterOrEqual:
    case Filter::Kind::kLessOrEqual:
    case Filter::Kind::kApprox:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

QueryPlan PlanFilter(const Backend::AttrIndex& index, const Filter& filter) {
  QueryPlan plan;
  std::optional<CandidateList> candidates = PlanNode(index, filter);
  if (candidates.has_value()) {
    plan.indexed = true;
    plan.candidates = std::move(*candidates);
  }
  return plan;
}

bool TreeOrderLess(const Dn& a, const Dn& b) {
  const std::vector<Rdn>& ra = a.rdns();
  const std::vector<Rdn>& rb = b.rdns();
  size_t common = std::min(ra.size(), rb.size());
  // RDNs are stored leaf-first; compare from the root side.
  for (size_t i = 1; i <= common; ++i) {
    std::string ka = ra[ra.size() - i].Normalized();
    std::string kb = rb[rb.size() - i].Normalized();
    if (ka != kb) return ka < kb;
  }
  return ra.size() < rb.size();  // Ancestors precede descendants.
}

}  // namespace metacomm::ldap
