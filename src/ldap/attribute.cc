#include "ldap/attribute.h"

namespace metacomm::ldap {

Attribute::Attribute(std::string name, std::vector<std::string> values)
    : name_(std::move(name)) {
  for (std::string& v : values) AddValue(std::move(v));
}

const std::string& Attribute::FirstValue() const {
  static const std::string* empty = new std::string;
  return values_.empty() ? *empty : values_.front();
}

bool Attribute::HasValue(std::string_view value) const {
  for (const std::string& v : values_) {
    if (EqualsIgnoreCase(v, value)) return true;
  }
  return false;
}

bool Attribute::AddValue(std::string value) {
  if (HasValue(value)) return false;
  values_.push_back(std::move(value));
  return true;
}

bool Attribute::RemoveValue(std::string_view value) {
  for (auto it = values_.begin(); it != values_.end(); ++it) {
    if (EqualsIgnoreCase(*it, value)) {
      values_.erase(it);
      return true;
    }
  }
  return false;
}

void Attribute::SetValues(std::vector<std::string> values) {
  values_.clear();
  for (std::string& v : values) AddValue(std::move(v));
}

bool operator==(const Attribute& a, const Attribute& b) {
  if (!EqualsIgnoreCase(a.name_, b.name_)) return false;
  if (a.values_.size() != b.values_.size()) return false;
  // Set semantics: order-insensitive comparison.
  for (const std::string& v : a.values_) {
    if (!b.HasValue(v)) return false;
  }
  return true;
}

}  // namespace metacomm::ldap
