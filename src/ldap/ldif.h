#ifndef METACOMM_LDAP_LDIF_H_
#define METACOMM_LDAP_LDIF_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ldap/entry.h"
#include "ldap/operations.h"

namespace metacomm::ldap {

/// One LDIF change record ("changetype: ..."). Content records (no
/// changetype) are represented as kAdd with the full entry.
struct LdifRecord {
  UpdateOp op = UpdateOp::kAdd;
  Entry entry;                       // For kAdd: the full entry.
  Dn dn;                             // Target DN for all ops.
  std::vector<Modification> mods;    // For kModify.
  Rdn new_rdn;                       // For kModifyRdn.
  bool delete_old_rdn = true;        // For kModifyRdn.
};

/// Parses LDIF text (RFC 2849 subset: folded lines, '#' comments,
/// base64 values via '::', content and change records).
StatusOr<std::vector<LdifRecord>> ParseLdif(std::string_view text);

/// Serializes entries as LDIF content records.
std::string ToLdif(const std::vector<Entry>& entries);

/// Serializes one entry as an LDIF content record.
std::string ToLdif(const Entry& entry);

/// Base64 helpers (exposed for tests and the wire protocol).
std::string Base64Encode(std::string_view data);
StatusOr<std::string> Base64Decode(std::string_view encoded);

/// Renders one LDIF "attr: value" line, switching to the base64 form
/// ("attr:: ...") when the value demands it (leading space/colon/<,
/// trailing space, or non-printable characters).
std::string ToLdifLine(std::string_view attribute, std::string_view value);

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_LDIF_H_
