#include "ldap/dn.h"

#include <algorithm>

#include "common/strings.h"

namespace metacomm::ldap {

namespace {

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

/// Strips insignificant outer spaces from a DN piece WITHOUT eating an
/// escaped trailing space ("cn=x\ " keeps its final space; naive
/// trimming would leave a dangling backslash).
std::string_view TrimOuterSpaces(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && s[begin] == ' ') ++begin;
  size_t end = s.size();
  while (end > begin && s[end - 1] == ' ') {
    size_t backslashes = 0;
    size_t i = end - 1;
    while (i > begin && s[i - 1] == '\\') {
      ++backslashes;
      --i;
    }
    if (backslashes % 2 == 1) break;  // Escaped: significant.
    --end;
  }
  return s.substr(begin, end - begin);
}

bool NeedsEscape(char c) {
  switch (c) {
    case ',':
    case '+':
    case '"':
    case '\\':
    case '<':
    case '>':
    case ';':
    case '=':
      return true;
    default:
      return false;
  }
}

/// Splits `text` on unescaped occurrences of `sep`, preserving escapes
/// in the returned pieces (they are decoded later).
StatusOr<std::vector<std::string>> SplitUnescaped(std::string_view text,
                                                  char sep) {
  std::vector<std::string> pieces;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        return Status::InvalidArgument("dangling escape in DN");
      }
      current.push_back(c);
      current.push_back(text[++i]);
      continue;
    }
    if (c == sep) {
      pieces.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  pieces.push_back(current);
  return pieces;
}

/// Decodes backslash escapes and strips insignificant outer whitespace.
StatusOr<std::string> DecodeValue(std::string_view raw) {
  // Leading/trailing unescaped spaces are insignificant.
  size_t begin = 0;
  size_t end = raw.size();
  while (begin < end && raw[begin] == ' ') ++begin;
  while (end > begin && raw[end - 1] == ' ' &&
         (end < 2 || raw[end - 2] != '\\')) {
    --end;
  }
  std::string_view v = raw.substr(begin, end - begin);
  std::string out;
  out.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    char c = v[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 1 >= v.size()) {
      return Status::InvalidArgument("dangling escape in DN value");
    }
    char next = v[i + 1];
    if (IsHexDigit(next) && i + 2 < v.size() && IsHexDigit(v[i + 2])) {
      out.push_back(
          static_cast<char>(HexValue(next) * 16 + HexValue(v[i + 2])));
      i += 2;
    } else {
      out.push_back(next);
      ++i;
    }
  }
  return out;
}

}  // namespace

std::string EscapeDnValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    char c = value[i];
    bool escape = NeedsEscape(c);
    // Leading space or '#', and trailing space, must be escaped.
    if (c == ' ' && (i == 0 || i + 1 == value.size())) escape = true;
    if (c == '#' && i == 0) escape = true;
    if (escape) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

Rdn::Rdn(std::string attribute, std::string value) {
  AddAva(std::move(attribute), std::move(value));
}

void Rdn::AddAva(std::string attribute, std::string value) {
  avas_.push_back(Ava{std::move(attribute), std::move(value)});
  std::sort(avas_.begin(), avas_.end(), [](const Ava& a, const Ava& b) {
    return CaseInsensitiveLess()(a.attribute, b.attribute);
  });
}

StatusOr<Rdn> Rdn::Parse(std::string_view text) {
  METACOMM_ASSIGN_OR_RETURN(std::vector<std::string> parts,
                            SplitUnescaped(text, '+'));
  Rdn rdn;
  for (const std::string& part : parts) {
    // Find the first unescaped '='.
    size_t eq = std::string::npos;
    for (size_t i = 0; i < part.size(); ++i) {
      if (part[i] == '\\') {
        ++i;
        continue;
      }
      if (part[i] == '=') {
        eq = i;
        break;
      }
    }
    if (eq == std::string::npos) {
      return Status::InvalidArgument("RDN component lacks '=': " + part);
    }
    std::string attribute = Trim(part.substr(0, eq));
    if (attribute.empty()) {
      return Status::InvalidArgument("RDN has empty attribute: " + part);
    }
    METACOMM_ASSIGN_OR_RETURN(std::string value,
                              DecodeValue(std::string_view(part).substr(eq + 1)));
    if (value.empty()) {
      return Status::InvalidArgument("RDN has empty value: " + part);
    }
    rdn.AddAva(std::move(attribute), std::move(value));
  }
  if (rdn.empty()) return Status::InvalidArgument("empty RDN");
  return rdn;
}

std::string Rdn::ValueOf(std::string_view attribute) const {
  for (const Ava& ava : avas_) {
    if (EqualsIgnoreCase(ava.attribute, attribute)) return ava.value;
  }
  return "";
}

std::string Rdn::ToString() const {
  std::string out;
  for (size_t i = 0; i < avas_.size(); ++i) {
    if (i > 0) out.push_back('+');
    out += avas_[i].attribute;
    out.push_back('=');
    out += EscapeDnValue(avas_[i].value);
  }
  return out;
}

std::string Rdn::Normalized() const {
  std::string out;
  for (size_t i = 0; i < avas_.size(); ++i) {
    if (i > 0) out.push_back('+');
    out += ToLower(avas_[i].attribute);
    out.push_back('=');
    out += EscapeDnValue(ToLower(NormalizeSpace(avas_[i].value)));
  }
  return out;
}

StatusOr<Dn> Dn::Parse(std::string_view text) {
  std::string_view trimmed = TrimOuterSpaces(text);
  if (trimmed.empty()) return Dn::Root();
  METACOMM_ASSIGN_OR_RETURN(std::vector<std::string> parts,
                            SplitUnescaped(trimmed, ','));
  std::vector<Rdn> rdns;
  rdns.reserve(parts.size());
  for (const std::string& part : parts) {
    METACOMM_ASSIGN_OR_RETURN(Rdn rdn,
                              Rdn::Parse(TrimOuterSpaces(part)));
    rdns.push_back(std::move(rdn));
  }
  return Dn(std::move(rdns));
}

Dn Dn::Parent() const {
  if (rdns_.empty()) return Dn();
  return Dn(std::vector<Rdn>(rdns_.begin() + 1, rdns_.end()));
}

Dn Dn::Child(Rdn rdn) const {
  std::vector<Rdn> rdns;
  rdns.reserve(rdns_.size() + 1);
  rdns.push_back(std::move(rdn));
  rdns.insert(rdns.end(), rdns_.begin(), rdns_.end());
  return Dn(std::move(rdns));
}

Dn Dn::WithLeaf(Rdn rdn) const {
  std::vector<Rdn> rdns = rdns_;
  if (rdns.empty()) {
    rdns.push_back(std::move(rdn));
  } else {
    rdns.front() = std::move(rdn);
  }
  return Dn(std::move(rdns));
}

bool Dn::IsWithin(const Dn& ancestor) const {
  if (ancestor.rdns_.size() > rdns_.size()) return false;
  size_t offset = rdns_.size() - ancestor.rdns_.size();
  for (size_t i = 0; i < ancestor.rdns_.size(); ++i) {
    if (!(rdns_[offset + i] == ancestor.rdns_[i])) return false;
  }
  return true;
}

std::string Dn::ToString() const {
  std::string out;
  for (size_t i = 0; i < rdns_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += rdns_[i].ToString();
  }
  return out;
}

std::string Dn::Normalized() const {
  std::string out;
  for (size_t i = 0; i < rdns_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += rdns_[i].Normalized();
  }
  return out;
}

}  // namespace metacomm::ldap
