#include "ldap/ldif.h"

#include "common/strings.h"

namespace metacomm::ldap {

namespace {

constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// True when an LDIF value needs base64 encoding (leading space/colon/<,
/// or non-printable characters).
bool NeedsBase64(std::string_view value) {
  if (value.empty()) return false;
  if (value.front() == ' ' || value.front() == ':' || value.front() == '<') {
    return true;
  }
  if (value.back() == ' ') return true;
  for (char c : value) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (uc < 0x20 || uc >= 0x7f) return true;
  }
  return false;
}

/// Unfolds LDIF physical lines into logical lines: a line starting with
/// a single space continues the previous line. Comments are dropped.
std::vector<std::string> UnfoldLines(std::string_view text) {
  std::vector<std::string> logical;
  for (std::string& raw : Split(text, '\n')) {
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    if (!raw.empty() && raw.front() == ' ') {
      if (!logical.empty()) logical.back() += raw.substr(1);
      continue;
    }
    if (!raw.empty() && raw.front() == '#') continue;
    logical.push_back(std::move(raw));
  }
  return logical;
}

struct LdifLine {
  std::string attribute;
  std::string value;
};

StatusOr<LdifLine> ParseLine(const std::string& line) {
  size_t colon = line.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("LDIF line lacks ':': " + line);
  }
  LdifLine out;
  out.attribute = Trim(line.substr(0, colon));
  if (colon + 1 < line.size() && line[colon + 1] == ':') {
    // Base64 value.
    METACOMM_ASSIGN_OR_RETURN(out.value,
                              Base64Decode(Trim(line.substr(colon + 2))));
  } else {
    std::string_view rest(line);
    rest.remove_prefix(colon + 1);
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    out.value = std::string(rest);
  }
  return out;
}

}  // namespace

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 2 < data.size()) {
    uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                 static_cast<unsigned char>(data[i + 2]);
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out.push_back(kBase64Chars[(n >> 6) & 63]);
    out.push_back(kBase64Chars[n & 63]);
    i += 3;
  }
  size_t remaining = data.size() - i;
  if (remaining == 1) {
    uint32_t n = static_cast<unsigned char>(data[i]) << 16;
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out += "==";
  } else if (remaining == 2) {
    uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                 (static_cast<unsigned char>(data[i + 1]) << 8);
    out.push_back(kBase64Chars[(n >> 18) & 63]);
    out.push_back(kBase64Chars[(n >> 12) & 63]);
    out.push_back(kBase64Chars[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

StatusOr<std::string> Base64Decode(std::string_view encoded) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  std::string out;
  uint32_t buffer = 0;
  int bits = 0;
  for (char c : encoded) {
    if (c == '=' || c == '\n' || c == '\r' || c == ' ') continue;
    int v = value_of(c);
    if (v < 0) {
      return Status::InvalidArgument("bad base64 character");
    }
    buffer = (buffer << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((buffer >> bits) & 0xff));
    }
  }
  return out;
}

StatusOr<std::vector<LdifRecord>> ParseLdif(std::string_view text) {
  std::vector<std::string> lines = UnfoldLines(text);
  std::vector<LdifRecord> records;

  // Group logical lines into blank-line-separated blocks.
  std::vector<std::vector<LdifLine>> blocks;
  std::vector<LdifLine> current;
  for (const std::string& line : lines) {
    if (Trim(line).empty()) {
      if (!current.empty()) blocks.push_back(std::move(current));
      current.clear();
      continue;
    }
    if (EqualsIgnoreCase(Trim(line), "version: 1")) continue;
    if (Trim(line) == "-") {
      // Separator line inside a modify record; it has no colon, so it
      // is represented as attribute "-" with no value.
      current.push_back(LdifLine{"-", ""});
      continue;
    }
    METACOMM_ASSIGN_OR_RETURN(LdifLine parsed, ParseLine(line));
    current.push_back(std::move(parsed));
  }
  if (!current.empty()) blocks.push_back(std::move(current));

  for (const std::vector<LdifLine>& block : blocks) {
    if (!EqualsIgnoreCase(block.front().attribute, "dn")) {
      return Status::InvalidArgument("LDIF record must start with dn:");
    }
    METACOMM_ASSIGN_OR_RETURN(Dn dn, Dn::Parse(block.front().value));

    // Determine changetype (default: content record == add).
    std::string changetype = "add";
    size_t body_start = 1;
    if (block.size() > 1 &&
        EqualsIgnoreCase(block[1].attribute, "changetype")) {
      changetype = ToLower(block[1].value);
      body_start = 2;
    }

    LdifRecord record;
    record.dn = dn;
    if (changetype == "add") {
      record.op = UpdateOp::kAdd;
      record.entry = Entry(dn);
      for (size_t i = body_start; i < block.size(); ++i) {
        record.entry.AddValue(block[i].attribute, block[i].value);
      }
    } else if (changetype == "delete") {
      record.op = UpdateOp::kDelete;
    } else if (changetype == "modify") {
      record.op = UpdateOp::kModify;
      // Body: op lines (add/delete/replace: attr), value lines, "-".
      size_t i = body_start;
      while (i < block.size()) {
        const LdifLine& head = block[i];
        Modification mod;
        if (EqualsIgnoreCase(head.attribute, "add")) {
          mod.type = Modification::Type::kAdd;
        } else if (EqualsIgnoreCase(head.attribute, "delete")) {
          mod.type = Modification::Type::kDelete;
        } else if (EqualsIgnoreCase(head.attribute, "replace")) {
          mod.type = Modification::Type::kReplace;
        } else if (head.attribute == "-") {
          ++i;
          continue;
        } else {
          return Status::InvalidArgument("bad modify op: " +
                                         head.attribute);
        }
        mod.attribute = head.value;
        ++i;
        while (i < block.size() &&
               EqualsIgnoreCase(block[i].attribute, mod.attribute)) {
          mod.values.push_back(block[i].value);
          ++i;
        }
        // Skip the separator if present. ("-" parses as attribute "-"
        // with an empty value because it contains no colon — handle
        // both spellings.)
        if (i < block.size() && Trim(block[i].attribute) == "-") ++i;
        record.mods.push_back(std::move(mod));
      }
    } else if (changetype == "modrdn" || changetype == "moddn") {
      record.op = UpdateOp::kModifyRdn;
      for (size_t i = body_start; i < block.size(); ++i) {
        if (EqualsIgnoreCase(block[i].attribute, "newrdn")) {
          METACOMM_ASSIGN_OR_RETURN(record.new_rdn,
                                    Rdn::Parse(block[i].value));
        } else if (EqualsIgnoreCase(block[i].attribute, "deleteoldrdn")) {
          record.delete_old_rdn = block[i].value != "0";
        }
      }
      if (record.new_rdn.empty()) {
        return Status::InvalidArgument("modrdn without newrdn");
      }
    } else {
      return Status::InvalidArgument("unsupported changetype: " +
                                     changetype);
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string ToLdifLine(std::string_view attribute, std::string_view value) {
  std::string out(attribute);
  if (NeedsBase64(value)) {
    out += ":: " + Base64Encode(value) + "\n";
  } else {
    out += ": ";
    out += value;
    out += "\n";
  }
  return out;
}

std::string ToLdif(const Entry& entry) {
  std::string out = "dn: " + entry.dn().ToString() + "\n";
  for (const auto& [name, attr] : entry.attributes()) {
    for (const std::string& value : attr.values()) {
      out += ToLdifLine(name, value);
    }
  }
  return out;
}

std::string ToLdif(const std::vector<Entry>& entries) {
  std::string out;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += "\n";
    out += ToLdif(entries[i]);
  }
  return out;
}

}  // namespace metacomm::ldap
