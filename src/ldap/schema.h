#ifndef METACOMM_LDAP_SCHEMA_H_
#define METACOMM_LDAP_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "ldap/entry.h"

namespace metacomm::ldap {

/// Value syntaxes. LDAP typing is intentionally weak (paper §5.3): the
/// syntax check is the *only* typing the directory performs, and most
/// attributes are plain case-ignore strings.
enum class AttributeSyntax {
  kDirectoryString,  // Case-insensitive UTF-8/ASCII string.
  kInteger,          // Optional sign + digits.
  kBoolean,          // TRUE / FALSE.
  kTelephoneNumber,  // Digits plus printable separators (+, -, space).
  kDn,               // Must parse as a DN.
};

/// Definition of an attribute type.
struct AttributeTypeDef {
  std::string name;
  /// Alternative names resolving to the same attribute (e.g. cn /
  /// commonName).
  std::vector<std::string> aliases;
  AttributeSyntax syntax = AttributeSyntax::kDirectoryString;
  bool single_valued = false;
  /// Attributes maintained by the system (e.g. MetaComm's LastUpdater
  /// bookkeeping is user-modifiable by design; createTimestamp is not).
  bool no_user_modification = false;
};

/// Kind of an object class.
enum class ObjectClassKind { kAbstract, kStructural, kAuxiliary };

/// Definition of an object class: its superior, mandatory (MUST) and
/// optional (MAY) attributes.
struct ObjectClassDef {
  std::string name;
  ObjectClassKind kind = ObjectClassKind::kStructural;
  /// Name of the superior class ("top" for roots); empty only for top.
  std::string superior;
  std::vector<std::string> must;
  std::vector<std::string> may;
};

/// The directory schema: attribute types plus object classes, with
/// entry validation.
///
/// Two properties the paper leans on are enforced here:
///  * Auxiliary classes cannot declare MUST attributes (§5.2) — which
///    is why "person has auxiliary class definityUser" only means the
///    person *may* use a PBX, an anomaly MetaComm lives with.
///  * Attributes not allowed by any of an entry's classes are rejected
///    (objectClassViolation), which forces per-device attribute names.
class Schema {
 public:
  Schema() = default;

  /// Registers an attribute type. Fails on duplicate names/aliases.
  Status AddAttributeType(AttributeTypeDef def);

  /// Registers an object class. Fails if the superior is unknown, if a
  /// MUST/MAY attribute is undefined, or if an auxiliary class declares
  /// MUST attributes.
  Status AddObjectClass(ObjectClassDef def);

  /// Looks up an attribute type by name or alias; nullptr if unknown.
  const AttributeTypeDef* FindAttribute(std::string_view name) const;

  /// Looks up an object class; nullptr if unknown.
  const ObjectClassDef* FindObjectClass(std::string_view name) const;

  /// Validates a complete entry: known classes, exactly one structural
  /// chain, all MUST present, every attribute allowed by some class and
  /// syntax-valid, RDN attributes present in the entry.
  Status ValidateEntry(const Entry& entry) const;

  /// Validates a single value against an attribute's syntax.
  Status ValidateValue(const AttributeTypeDef& def,
                       std::string_view value) const;

  /// Collects MUST/MAY sets over the entry's classes and all their
  /// superiors. Unknown classes yield an error.
  Status CollectConstraints(const Entry& entry,
                            std::vector<std::string>* must,
                            std::vector<std::string>* may) const;

  /// All registered attribute names plus their aliases, in registry
  /// order. Feeds tooling that needs the attribute universe (e.g.
  /// lexpress_check --builtin-schemas for unknown-attribute analysis).
  std::vector<std::string> AttributeNames() const;

  /// Builds the standard subset of X.500/inetOrgPerson schema that
  /// MetaComm extends: top, person, organizationalPerson,
  /// inetOrgPerson, organization, organizationalUnit, plus operational
  /// attributes. See core/integrated_schema.h for the MetaComm
  /// extensions.
  static Schema Standard();

 private:
  /// True if `may_or_must` (already collected) allows `attribute`.
  static bool Allows(const std::vector<std::string>& allowed,
                     std::string_view attribute);

  std::map<std::string, AttributeTypeDef, CaseInsensitiveLess> attributes_;
  /// Alias -> canonical attribute name.
  std::map<std::string, std::string, CaseInsensitiveLess> aliases_;
  std::map<std::string, ObjectClassDef, CaseInsensitiveLess> classes_;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_SCHEMA_H_
