#include "ldap/replication.h"

namespace metacomm::ldap {

void Changelog::Attach(Backend* backend) {
  backend->AddListener([this](const ChangeRecord& record) {
    MutexLock lock(&mutex_);
    records_.push_back(record);
  });
}

std::vector<ChangeRecord> Changelog::ChangesAfter(
    uint64_t after_sequence) const {
  MutexLock lock(&mutex_);
  std::vector<ChangeRecord> out;
  for (const ChangeRecord& record : records_) {
    if (record.sequence > after_sequence) out.push_back(record);
  }
  return out;
}

uint64_t Changelog::LastSequence() const {
  MutexLock lock(&mutex_);
  return records_.empty() ? 0 : records_.back().sequence;
}

void Changelog::TrimThrough(uint64_t sequence) {
  MutexLock lock(&mutex_);
  while (!records_.empty() && records_.front().sequence <= sequence) {
    records_.pop_front();
  }
}

size_t Changelog::Size() const {
  MutexLock lock(&mutex_);
  return records_.size();
}

Status ReplicationConsumer::ApplyRecord(const ChangeRecord& record) {
  switch (record.op) {
    case UpdateOp::kAdd: {
      Status status = replica_->Add(*record.new_entry);
      if (status.code() == StatusCode::kAlreadyExists) {
        // Converge by overwriting: replace all attributes.
        std::vector<Modification> mods;
        for (const auto& [name, attr] : record.new_entry->attributes()) {
          Modification mod;
          mod.type = Modification::Type::kReplace;
          mod.attribute = name;
          mod.values = attr.values();
          mods.push_back(std::move(mod));
        }
        return replica_->Modify(record.dn, mods);
      }
      return status;
    }
    case UpdateOp::kDelete: {
      Status status = replica_->Delete(record.dn);
      if (status.code() == StatusCode::kNotFound) return Status::Ok();
      return status;
    }
    case UpdateOp::kModify: {
      // Replay as full replacement of the new image's attributes to
      // stay convergent even if the replica diverged.
      if (!record.new_entry.has_value()) {
        return Status::Internal("modify record without new entry");
      }
      if (!replica_->Exists(record.dn)) {
        return replica_->Add(*record.new_entry);
      }
      std::vector<Modification> mods;
      for (const auto& [name, attr] : record.new_entry->attributes()) {
        Modification mod;
        mod.type = Modification::Type::kReplace;
        mod.attribute = name;
        mod.values = attr.values();
        mods.push_back(std::move(mod));
      }
      // Remove attributes that vanished.
      StatusOr<Entry> current = replica_->Get(record.dn);
      if (current.ok()) {
        for (const auto& [name, attr] : current->attributes()) {
          if (record.new_entry->attributes().find(name) ==
              record.new_entry->attributes().end()) {
            Modification mod;
            mod.type = Modification::Type::kReplace;
            mod.attribute = name;
            mods.push_back(std::move(mod));
          }
        }
      }
      return replica_->Modify(record.dn, mods);
    }
    case UpdateOp::kModifyRdn: {
      if (!record.new_dn.has_value()) {
        return Status::Internal("modifyrdn record without new dn");
      }
      Status status = replica_->ModifyRdn(
          record.dn, record.new_dn->leaf(), /*delete_old_rdn=*/true);
      if (status.code() == StatusCode::kNotFound &&
          record.new_entry.has_value()) {
        return replica_->Add(*record.new_entry);
      }
      return status;
    }
  }
  return Status::Internal("unknown change op");
}

StatusOr<size_t> ReplicationConsumer::PullFrom(const Changelog& changelog) {
  std::vector<ChangeRecord> changes = changelog.ChangesAfter(cookie_);
  size_t applied = 0;
  for (const ChangeRecord& record : changes) {
    METACOMM_RETURN_IF_ERROR(ApplyRecord(record));
    cookie_ = record.sequence;
    ++applied;
  }
  return applied;
}

}  // namespace metacomm::ldap
