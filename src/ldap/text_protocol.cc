#include "ldap/text_protocol.h"

#include "common/strings.h"
#include "ldap/ldif.h"
#include "ldap/result.h"

namespace metacomm::ldap {

namespace {

/// RESULT is a single-line frame, but a Status message can carry
/// newlines (e.g. a multi-line parse diagnostic quoted verbatim). An
/// unescaped newline would split the RESULT line in two and
/// desynchronize the client, which parses replies as
/// first-line/remainder. Escape backslash first so the encoding is
/// invertible; UnescapeResultMessage restores the original text.
std::string EscapeResultMessage(std::string_view message) {
  std::string out;
  out.reserve(message.size());
  for (char c : message) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeResultMessage(std::string_view message) {
  std::string out;
  out.reserve(message.size());
  for (size_t i = 0; i < message.size(); ++i) {
    if (message[i] != '\\' || i + 1 == message.size()) {
      out.push_back(message[i]);
      continue;
    }
    switch (message[++i]) {
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default:  // Unknown escape: keep both characters verbatim.
        out.push_back('\\');
        out.push_back(message[i]);
    }
  }
  return out;
}

/// "RESULT <code> <message>".
std::string ResultLine(const Status& status) {
  return "RESULT " +
         std::to_string(static_cast<int>(StatusToResult(status))) + " " +
         EscapeResultMessage(status.ok() ? "success" : status.ToString()) +
         "\n";
}

/// Extracts "key: value" from a request line; empty when absent.
std::string HeaderValue(const std::vector<std::string>& lines,
                        std::string_view key) {
  for (const std::string& line : lines) {
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (EqualsIgnoreCase(Trim(line.substr(0, colon)), key)) {
      return Trim(line.substr(colon + 1));
    }
  }
  return "";
}

/// The request body after the first line (used for LDIF payloads).
std::string Body(const std::string& request) {
  size_t newline = request.find('\n');
  if (newline == std::string::npos) return "";
  return request.substr(newline + 1);
}

Status ParseResultLine(const std::string& line) {
  // "RESULT <code> <message...>". The message is everything after the
  // single space following the code, verbatim — re-splitting it on
  // spaces would collapse runs of spaces the server sent.
  constexpr std::string_view kPrefix = "RESULT ";
  if (!StartsWith(line, kPrefix)) {
    return Status::Internal("malformed protocol reply: " + line);
  }
  size_t code_end = line.find(' ', kPrefix.size());
  std::string_view code_text =
      code_end == std::string::npos
          ? std::string_view(line).substr(kPrefix.size())
          : std::string_view(line).substr(kPrefix.size(),
                                          code_end - kPrefix.size());
  // Checked parse: a run of digits longer than the int range must be
  // rejected, not silently wrapped the way atoi would.
  std::optional<int64_t> code = ParseInt64(code_text);
  if (!code.has_value() || *code > 127) {
    return Status::Internal("malformed result code: " + line);
  }
  std::string message =
      code_end == std::string::npos
          ? std::string()
          : UnescapeResultMessage(
                std::string_view(line).substr(code_end + 1));
  if (*code == 0) return Status::Ok();
  return ResultToStatus(static_cast<ResultCode>(*code), std::move(message));
}

}  // namespace

std::string BusyReply() {
  return ResultLine(Status::Conflict("busy"));  // StatusToResult -> 51.
}

std::string FramingErrorReply() {
  return ResultLine(Status::InvalidArgument("wire framing violation"));
}

TextProtocolHandler::TextProtocolHandler(LdapService* service)
    : service_(service) {}

std::string TextProtocolHandler::Handle(const std::string& request) {
  std::vector<std::string> lines = Split(request, '\n');
  if (lines.empty() || Trim(lines[0]).empty()) {
    return ResultLine(Status::InvalidArgument("empty request"));
  }
  std::string first = Trim(lines[0]);
  std::string verb = ToUpper(Split(first, ' ').front());
  // The first line may carry a header after the verb
  // ("DELETE dn: cn=X"); strip the verb so HeaderValue sees it.
  lines[0] = verb.size() < first.size()
                 ? Trim(first.substr(verb.size()))
                 : std::string();

  if (verb == "BIND") {
    StatusOr<Dn> dn = Dn::Parse(HeaderValue(lines, "dn"));
    if (!dn.ok()) return ResultLine(dn.status());
    BindRequest bind{*dn, HeaderValue(lines, "password")};
    StatusOr<std::string> principal = service_->Bind(bind);
    if (!principal.ok()) return ResultLine(principal.status());
    context_.principal = *principal;
    return ResultLine(Status::Ok());
  }
  if (verb == "UNBIND") {
    context_.principal.clear();
    return ResultLine(Status::Ok());
  }
  if (verb == "ADD") {
    StatusOr<std::vector<LdifRecord>> records = ParseLdif(Body(request));
    if (!records.ok()) return ResultLine(records.status());
    if (records->size() != 1 ||
        (*records)[0].op != UpdateOp::kAdd) {
      return ResultLine(
          Status::InvalidArgument("ADD expects one LDIF content record"));
    }
    return ResultLine(
        service_->Add(context_, AddRequest{(*records)[0].entry}));
  }
  if (verb == "DELETE") {
    StatusOr<Dn> dn = Dn::Parse(HeaderValue(lines, "dn"));
    if (!dn.ok()) return ResultLine(dn.status());
    return ResultLine(service_->Delete(context_, DeleteRequest{*dn}));
  }
  if (verb == "MODIFY") {
    StatusOr<std::vector<LdifRecord>> records = ParseLdif(Body(request));
    if (!records.ok()) return ResultLine(records.status());
    if (records->size() != 1 ||
        (*records)[0].op != UpdateOp::kModify) {
      return ResultLine(Status::InvalidArgument(
          "MODIFY expects one LDIF changetype:modify record"));
    }
    return ResultLine(service_->Modify(
        context_, ModifyRequest{(*records)[0].dn, (*records)[0].mods}));
  }
  if (verb == "MODRDN") {
    StatusOr<Dn> dn = Dn::Parse(HeaderValue(lines, "dn"));
    if (!dn.ok()) return ResultLine(dn.status());
    StatusOr<Rdn> rdn = Rdn::Parse(HeaderValue(lines, "newrdn"));
    if (!rdn.ok()) return ResultLine(rdn.status());
    ModifyRdnRequest rename;
    rename.dn = *dn;
    rename.new_rdn = *rdn;
    rename.delete_old_rdn = HeaderValue(lines, "deleteoldrdn") != "0";
    return ResultLine(service_->ModifyRdn(context_, rename));
  }
  if (verb == "SEARCH") {
    StatusOr<Dn> base = Dn::Parse(HeaderValue(lines, "base"));
    if (!base.ok()) return ResultLine(base.status());
    SearchRequest search;
    search.base = *base;
    std::string scope = ToLower(HeaderValue(lines, "scope"));
    if (scope == "base") {
      search.scope = Scope::kBase;
    } else if (scope == "one") {
      search.scope = Scope::kOneLevel;
    } else if (scope.empty() || scope == "sub") {
      search.scope = Scope::kSubtree;
    } else {
      return ResultLine(Status::InvalidArgument("bad scope: " + scope));
    }
    std::string filter_text = HeaderValue(lines, "filter");
    if (!filter_text.empty()) {
      StatusOr<Filter> filter = Filter::Parse(filter_text);
      if (!filter.ok()) return ResultLine(filter.status());
      search.filter = std::move(*filter);
    }
    std::string attrs = HeaderValue(lines, "attrs");
    if (!attrs.empty()) {
      for (std::string& attr : SplitAndTrim(attrs, ',')) {
        if (!attr.empty()) search.attributes.push_back(std::move(attr));
      }
    }
    std::string limit = HeaderValue(lines, "limit");
    if (!limit.empty()) {
      // Checked parse: atoll on a long digit string would silently
      // overflow into a bogus (possibly zero/negative) limit.
      std::optional<int64_t> parsed = ParseInt64(limit);
      if (!parsed.has_value()) {
        return ResultLine(
            Status::InvalidArgument("bad limit: " + limit));
      }
      search.size_limit = static_cast<size_t>(*parsed);
    }
    StatusOr<SearchResult> result = service_->Search(context_, search);
    if (!result.ok()) return ResultLine(result.status());
    std::string out = ResultLine(Status::Ok());
    out += ToLdif(result->entries);
    return out;
  }
  if (verb == "COMPARE") {
    StatusOr<Dn> dn = Dn::Parse(HeaderValue(lines, "dn"));
    if (!dn.ok()) return ResultLine(dn.status());
    CompareRequest compare;
    compare.dn = *dn;
    compare.attribute = HeaderValue(lines, "attr");
    compare.value = HeaderValue(lines, "value");
    Status status = service_->Compare(context_, compare);
    // Compare is three-valued on the wire, as in LDAP proper: result
    // code 6 (compareTrue) or 5 (compareFalse) — detected via the
    // canonical marker, not by matching the message text.
    if (status.ok()) {
      return "RESULT " +
             std::to_string(static_cast<int>(ResultCode::kCompareTrue)) +
             " compare true\nTRUE\n";
    }
    if (IsCompareFalse(status)) {
      return ResultLine(status) + "FALSE\n";
    }
    return ResultLine(status);
  }
  return ResultLine(Status::InvalidArgument("unknown verb: " + verb));
}

TextProtocolClient::TextProtocolClient(Transport transport)
    : transport_(std::move(transport)) {}

StatusOr<std::string> TextProtocolClient::Roundtrip(
    const std::string& request) {
  std::string reply = transport_(request);
  size_t newline = reply.find('\n');
  std::string first =
      newline == std::string::npos ? reply : reply.substr(0, newline);
  METACOMM_RETURN_IF_ERROR(ParseResultLine(first));
  return newline == std::string::npos ? std::string()
                                      : reply.substr(newline + 1);
}

Status TextProtocolClient::Add(const OpContext& ctx,
                               const AddRequest& request) {
  (void)ctx;  // Authentication state lives in the handler's session.
  return Roundtrip("ADD\n" + ToLdif(request.entry)).status();
}

Status TextProtocolClient::Delete(const OpContext& ctx,
                                  const DeleteRequest& request) {
  (void)ctx;
  return Roundtrip("DELETE dn: " + request.dn.ToString() + "\n").status();
}

Status TextProtocolClient::Modify(const OpContext& ctx,
                                  const ModifyRequest& request) {
  (void)ctx;
  std::string body = "MODIFY\ndn: " + request.dn.ToString() +
                     "\nchangetype: modify\n";
  for (const Modification& mod : request.mods) {
    switch (mod.type) {
      case Modification::Type::kAdd:
        body += "add: " + mod.attribute + "\n";
        break;
      case Modification::Type::kDelete:
        body += "delete: " + mod.attribute + "\n";
        break;
      case Modification::Type::kReplace:
        body += "replace: " + mod.attribute + "\n";
        break;
    }
    for (const std::string& value : mod.values) {
      body += ToLdifLine(mod.attribute, value);
    }
    body += "-\n";
  }
  return Roundtrip(body).status();
}

Status TextProtocolClient::ModifyRdn(const OpContext& ctx,
                                     const ModifyRdnRequest& request) {
  (void)ctx;
  return Roundtrip("MODRDN dn: " + request.dn.ToString() +
                   "\nnewrdn: " + request.new_rdn.ToString() +
                   "\ndeleteoldrdn: " +
                   (request.delete_old_rdn ? "1" : "0") + "\n")
      .status();
}

StatusOr<SearchResult> TextProtocolClient::Search(
    const OpContext& ctx, const SearchRequest& request) {
  (void)ctx;
  std::string message = "SEARCH base: " + request.base.ToString() + "\n";
  switch (request.scope) {
    case Scope::kBase:
      message += "scope: base\n";
      break;
    case Scope::kOneLevel:
      message += "scope: one\n";
      break;
    case Scope::kSubtree:
      message += "scope: sub\n";
      break;
  }
  message += "filter: " + request.filter.ToString() + "\n";
  if (!request.attributes.empty()) {
    message += "attrs: " + Join(request.attributes, ",") + "\n";
  }
  if (request.size_limit > 0) {
    message += "limit: " + std::to_string(request.size_limit) + "\n";
  }
  METACOMM_ASSIGN_OR_RETURN(std::string body, Roundtrip(message));
  SearchResult result;
  if (Trim(body).empty()) return result;
  METACOMM_ASSIGN_OR_RETURN(std::vector<LdifRecord> records,
                            ParseLdif(body));
  result.entries.reserve(records.size());
  for (LdifRecord& record : records) {
    result.entries.push_back(std::move(record.entry));
  }
  return result;
}

Status TextProtocolClient::Compare(const OpContext& ctx,
                                   const CompareRequest& request) {
  (void)ctx;
  // A compareFalse reply (RESULT 5) surfaces from Roundtrip as the
  // canonical CompareFalseStatus() — the marker travels as a result
  // code, so no message-string matching happens on either side.
  METACOMM_ASSIGN_OR_RETURN(
      std::string body,
      Roundtrip("COMPARE dn: " + request.dn.ToString() + "\nattr: " +
                request.attribute + "\nvalue: " + request.value + "\n"));
  if (Trim(body) == "TRUE") return Status::Ok();
  if (Trim(body) == "FALSE") return CompareFalseStatus();
  return Status::Internal("malformed COMPARE reply: " + body);
}

void TextProtocolClient::Unbind() {
  // Fire-and-forget: the handler clears its session principal; the
  // reply is RESULT 0.
  (void)Roundtrip("UNBIND\n");
}

StatusOr<std::string> TextProtocolClient::Bind(const BindRequest& request) {
  METACOMM_RETURN_IF_ERROR(
      Roundtrip("BIND dn: " + request.dn.ToString() + "\npassword: " +
                request.password + "\n")
          .status());
  return request.dn.ToString();
}

}  // namespace metacomm::ldap
