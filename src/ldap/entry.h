#ifndef METACOMM_LDAP_ENTRY_H_
#define METACOMM_LDAP_ENTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "ldap/attribute.h"
#include "ldap/dn.h"

namespace metacomm::ldap {

/// A directory entry: a DN plus a set of attributes.
///
/// Every entry carries an objectClass attribute listing its structural
/// class chain plus any auxiliary classes. MetaComm's integrated schema
/// (paper §5.2) attaches one auxiliary class per integrated device to
/// the person entry, so "uses a PBX" is expressed by adding
/// `definityUser` to objectClass and populating its (all-optional)
/// attributes.
class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn) : dn_(std::move(dn)) {}

  const Dn& dn() const { return dn_; }
  void set_dn(Dn dn) { dn_ = std::move(dn); }

  const AttributeMap& attributes() const { return attributes_; }
  AttributeMap& mutable_attributes() { return attributes_; }

  /// True if the attribute exists with at least one value.
  bool Has(std::string_view attribute) const;

  /// All values of `attribute` (empty vector if absent).
  std::vector<std::string> GetAll(std::string_view attribute) const;

  /// First value of `attribute`, or "" if absent.
  std::string GetFirst(std::string_view attribute) const;

  /// Replaces the values of `attribute` (creating it if needed); an
  /// empty value set removes the attribute.
  void Set(std::string_view attribute, std::vector<std::string> values);

  /// Convenience single-value Set.
  void SetOne(std::string_view attribute, std::string value);

  /// Adds one value; returns false if it was already present.
  bool AddValue(std::string_view attribute, std::string value);

  /// Removes one value; drops the attribute when it becomes empty.
  /// Returns false if the value was absent.
  bool RemoveValue(std::string_view attribute, std::string_view value);

  /// Removes the whole attribute; returns false if absent.
  bool Remove(std::string_view attribute);

  /// True if objectClass contains `object_class` (case-insensitive).
  bool HasObjectClass(std::string_view object_class) const;

  /// Appends an objectClass value if not present.
  void AddObjectClass(std::string object_class);

  /// Entries are equal when DNs match and attribute sets match
  /// (set semantics per attribute).
  friend bool operator==(const Entry& a, const Entry& b);

  /// Multi-line human-readable form (LDIF-like) for logs and tests.
  std::string ToString() const;

 private:
  Dn dn_;
  AttributeMap attributes_;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_ENTRY_H_
