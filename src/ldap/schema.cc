#include "ldap/schema.h"

#include <algorithm>

#include "ldap/dn.h"

namespace metacomm::ldap {

Status Schema::AddAttributeType(AttributeTypeDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("attribute type needs a name");
  }
  if (attributes_.count(def.name) || aliases_.count(def.name)) {
    return Status::AlreadyExists("attribute type exists: " + def.name);
  }
  for (const std::string& alias : def.aliases) {
    if (attributes_.count(alias) || aliases_.count(alias)) {
      return Status::AlreadyExists("attribute alias exists: " + alias);
    }
  }
  std::string name = def.name;
  for (const std::string& alias : def.aliases) {
    aliases_.emplace(alias, name);
  }
  attributes_.emplace(name, std::move(def));
  return Status::Ok();
}

Status Schema::AddObjectClass(ObjectClassDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("object class needs a name");
  }
  if (classes_.count(def.name)) {
    return Status::AlreadyExists("object class exists: " + def.name);
  }
  if (!def.superior.empty() && !classes_.count(def.superior)) {
    return Status::NotFound("unknown superior class: " + def.superior);
  }
  if (def.superior.empty() && !EqualsIgnoreCase(def.name, "top")) {
    return Status::InvalidArgument("only 'top' may lack a superior: " +
                                   def.name);
  }
  // Paper §5.2: auxiliary classes cannot have mandatory attributes.
  if (def.kind == ObjectClassKind::kAuxiliary && !def.must.empty()) {
    return Status::SchemaViolation(
        "auxiliary class may not declare MUST attributes: " + def.name);
  }
  for (const std::string& attr : def.must) {
    if (FindAttribute(attr) == nullptr) {
      return Status::NotFound("MUST references unknown attribute: " + attr);
    }
  }
  for (const std::string& attr : def.may) {
    if (FindAttribute(attr) == nullptr) {
      return Status::NotFound("MAY references unknown attribute: " + attr);
    }
  }
  classes_.emplace(def.name, std::move(def));
  return Status::Ok();
}

const AttributeTypeDef* Schema::FindAttribute(std::string_view name) const {
  auto it = attributes_.find(name);
  if (it != attributes_.end()) return &it->second;
  auto alias_it = aliases_.find(name);
  if (alias_it != aliases_.end()) {
    auto canon = attributes_.find(alias_it->second);
    if (canon != attributes_.end()) return &canon->second;
  }
  return nullptr;
}

const ObjectClassDef* Schema::FindObjectClass(std::string_view name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Schema::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size() + aliases_.size());
  for (const auto& [name, def] : attributes_) names.push_back(name);
  for (const auto& [alias, canonical] : aliases_) names.push_back(alias);
  return names;
}

Status Schema::ValidateValue(const AttributeTypeDef& def,
                             std::string_view value) const {
  switch (def.syntax) {
    case AttributeSyntax::kDirectoryString:
      if (value.empty()) {
        return Status::SchemaViolation("empty value for " + def.name);
      }
      return Status::Ok();
    case AttributeSyntax::kInteger: {
      std::string_view digits = value;
      if (!digits.empty() && (digits[0] == '-' || digits[0] == '+')) {
        digits.remove_prefix(1);
      }
      if (!IsAllDigits(digits)) {
        return Status::SchemaViolation("not an integer value for " +
                                       def.name + ": " + std::string(value));
      }
      return Status::Ok();
    }
    case AttributeSyntax::kBoolean:
      if (EqualsIgnoreCase(value, "TRUE") ||
          EqualsIgnoreCase(value, "FALSE")) {
        return Status::Ok();
      }
      return Status::SchemaViolation("not a boolean value for " + def.name);
    case AttributeSyntax::kTelephoneNumber: {
      if (value.empty()) {
        return Status::SchemaViolation("empty telephone number");
      }
      bool has_digit = false;
      for (char c : value) {
        if (c >= '0' && c <= '9') {
          has_digit = true;
        } else if (c != '+' && c != '-' && c != ' ' && c != '(' &&
                   c != ')' && c != '.') {
          return Status::SchemaViolation(
              "bad telephoneNumber character in " + std::string(value));
        }
      }
      if (!has_digit) {
        return Status::SchemaViolation("telephoneNumber without digits");
      }
      return Status::Ok();
    }
    case AttributeSyntax::kDn: {
      StatusOr<Dn> dn = Dn::Parse(value);
      if (!dn.ok()) return Status::SchemaViolation("bad DN value");
      return Status::Ok();
    }
  }
  return Status::Internal("unknown syntax");
}

Status Schema::CollectConstraints(const Entry& entry,
                                  std::vector<std::string>* must,
                                  std::vector<std::string>* may) const {
  std::vector<std::string> classes = entry.GetAll("objectClass");
  if (classes.empty()) {
    return Status::SchemaViolation("entry has no objectClass: " +
                                   entry.dn().ToString());
  }
  for (const std::string& cls : classes) {
    const ObjectClassDef* def = FindObjectClass(cls);
    if (def == nullptr) {
      return Status::SchemaViolation("unknown object class: " + cls);
    }
    // Walk the superior chain, accumulating constraints.
    while (def != nullptr) {
      must->insert(must->end(), def->must.begin(), def->must.end());
      may->insert(may->end(), def->may.begin(), def->may.end());
      def = def->superior.empty() ? nullptr
                                  : FindObjectClass(def->superior);
    }
  }
  return Status::Ok();
}

bool Schema::Allows(const std::vector<std::string>& allowed,
                    std::string_view attribute) {
  return std::any_of(allowed.begin(), allowed.end(),
                     [attribute](const std::string& a) {
                       return EqualsIgnoreCase(a, attribute);
                     });
}

Status Schema::ValidateEntry(const Entry& entry) const {
  std::vector<std::string> classes = entry.GetAll("objectClass");
  if (classes.empty()) {
    return Status::SchemaViolation("entry has no objectClass: " +
                                   entry.dn().ToString());
  }
  // Exactly one structural chain: at least one structural class, and
  // all structural classes must lie on one superior chain.
  std::vector<const ObjectClassDef*> structural;
  for (const std::string& cls : classes) {
    const ObjectClassDef* def = FindObjectClass(cls);
    if (def == nullptr) {
      return Status::SchemaViolation("unknown object class: " + cls);
    }
    if (def->kind == ObjectClassKind::kStructural) {
      structural.push_back(def);
    }
  }
  if (structural.empty()) {
    return Status::SchemaViolation("entry has no structural class: " +
                                   entry.dn().ToString());
  }
  for (const ObjectClassDef* a : structural) {
    for (const ObjectClassDef* b : structural) {
      if (a == b) continue;
      // One must be an ancestor of the other.
      bool related = false;
      for (const ObjectClassDef* cur = a; cur != nullptr;
           cur = cur->superior.empty() ? nullptr
                                       : FindObjectClass(cur->superior)) {
        if (EqualsIgnoreCase(cur->name, b->name)) {
          related = true;
          break;
        }
      }
      for (const ObjectClassDef* cur = b; !related && cur != nullptr;
           cur = cur->superior.empty() ? nullptr
                                       : FindObjectClass(cur->superior)) {
        if (EqualsIgnoreCase(cur->name, a->name)) related = true;
      }
      if (!related) {
        return Status::SchemaViolation(
            "entry mixes unrelated structural classes: " + a->name +
            " and " + b->name);
      }
    }
  }

  std::vector<std::string> must, may;
  METACOMM_RETURN_IF_ERROR(CollectConstraints(entry, &must, &may));

  // Every MUST attribute present.
  for (const std::string& m : must) {
    if (!entry.Has(m)) {
      return Status::SchemaViolation("missing mandatory attribute '" + m +
                                     "' in " + entry.dn().ToString());
    }
  }

  // Every attribute allowed and syntax-valid.
  for (const auto& [name, attr] : entry.attributes()) {
    if (EqualsIgnoreCase(name, "objectClass")) continue;
    const AttributeTypeDef* def = FindAttribute(name);
    if (def == nullptr) {
      return Status::SchemaViolation("undefined attribute type: " + name);
    }
    if (!Allows(must, def->name) && !Allows(may, def->name)) {
      // Also check aliases: constraints may reference an alias.
      bool allowed = false;
      for (const std::string& alias : def->aliases) {
        if (Allows(must, alias) || Allows(may, alias)) allowed = true;
      }
      if (!allowed) {
        return Status::SchemaViolation(
            "attribute '" + name + "' not allowed by object classes of " +
            entry.dn().ToString());
      }
    }
    if (def->single_valued && attr.size() > 1) {
      return Status::SchemaViolation("attribute '" + name +
                                     "' is single-valued");
    }
    for (const std::string& value : attr.values()) {
      METACOMM_RETURN_IF_ERROR(ValidateValue(*def, value));
    }
  }

  // RDN attributes must appear in the entry with the RDN value.
  if (!entry.dn().IsRoot()) {
    for (const Ava& ava : entry.dn().leaf().avas()) {
      auto it = entry.attributes().find(ava.attribute);
      if (it == entry.attributes().end() ||
          !it->second.HasValue(ava.value)) {
        return Status::SchemaViolation(
            "RDN attribute/value not present in entry: " + ava.attribute +
            "=" + ava.value);
      }
    }
  }
  return Status::Ok();
}

Schema Schema::Standard() {
  Schema schema;
  auto attr = [&schema](std::string name, AttributeSyntax syntax,
                        bool single, std::vector<std::string> aliases =
                                         {}) {
    AttributeTypeDef def;
    def.name = std::move(name);
    def.syntax = syntax;
    def.single_valued = single;
    def.aliases = std::move(aliases);
    Status s = schema.AddAttributeType(std::move(def));
    (void)s;  // Standard() definitions are statically correct.
  };

  const auto kStr = AttributeSyntax::kDirectoryString;
  const auto kTel = AttributeSyntax::kTelephoneNumber;

  attr("objectClass", kStr, false);
  attr("cn", kStr, false, {"commonName"});
  attr("sn", kStr, false, {"surname"});
  attr("givenName", kStr, false);
  attr("uid", kStr, false, {"userid"});
  attr("mail", kStr, false, {"rfc822Mailbox"});
  attr("o", kStr, false, {"organizationName"});
  attr("ou", kStr, false, {"organizationalUnitName"});
  attr("title", kStr, false);
  attr("description", kStr, false);
  attr("telephoneNumber", kTel, false);
  attr("facsimileTelephoneNumber", kTel, false);
  attr("roomNumber", kStr, false);
  attr("employeeNumber", kStr, true);
  attr("employeeType", kStr, false);
  attr("departmentNumber", kStr, false);
  attr("displayName", kStr, true);
  attr("userPassword", kStr, false);
  attr("seeAlso", AttributeSyntax::kDn, false);
  attr("postalAddress", kStr, false);
  attr("l", kStr, false, {"localityName"});
  attr("st", kStr, false, {"stateOrProvinceName"});
  attr("street", kStr, false, {"streetAddress"});
  attr("creatorsName", kStr, true);
  attr("createTimestamp", kStr, true);
  attr("modifyTimestamp", kStr, true);

  auto cls = [&schema](std::string name, ObjectClassKind kind,
                       std::string superior,
                       std::vector<std::string> must,
                       std::vector<std::string> may) {
    ObjectClassDef def;
    def.name = std::move(name);
    def.kind = kind;
    def.superior = std::move(superior);
    def.must = std::move(must);
    def.may = std::move(may);
    Status s = schema.AddObjectClass(std::move(def));
    (void)s;
  };

  cls("top", ObjectClassKind::kAbstract, "", {"objectClass"}, {});
  cls("organization", ObjectClassKind::kStructural, "top", {"o"},
      {"description", "telephoneNumber", "postalAddress", "l", "st",
       "street"});
  cls("organizationalUnit", ObjectClassKind::kStructural, "top", {"ou"},
      {"description", "telephoneNumber", "postalAddress", "l", "st",
       "street"});
  cls("person", ObjectClassKind::kStructural, "top", {"cn", "sn"},
      {"userPassword", "telephoneNumber", "seeAlso", "description"});
  cls("organizationalPerson", ObjectClassKind::kStructural, "person", {},
      {"title", "ou", "roomNumber", "postalAddress", "l", "st", "street",
       "facsimileTelephoneNumber"});
  cls("inetOrgPerson", ObjectClassKind::kStructural,
      "organizationalPerson", {},
      {"givenName", "uid", "mail", "employeeNumber", "employeeType",
       "departmentNumber", "displayName"});
  return schema;
}

}  // namespace metacomm::ldap
