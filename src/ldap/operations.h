#ifndef METACOMM_LDAP_OPERATIONS_H_
#define METACOMM_LDAP_OPERATIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ldap/dn.h"
#include "ldap/entry.h"
#include "ldap/filter.h"

namespace metacomm::ldap {

/// Per-operation caller context. Real LDAP carries this in the bind
/// state of a connection; we pass it explicitly.
struct OpContext {
  /// Authenticated principal (DN string), empty for anonymous.
  std::string principal;
  /// Session identifier; LTAP uses it to correlate persistent
  /// connections (paper §5.1) and to tell its own internal writes apart
  /// from client writes.
  uint64_t session_id = 0;
  /// Set on writes issued by the Update Manager while it already holds
  /// the LTAP entry lock; such writes bypass trigger processing and
  /// locking (they *are* the trigger processing).
  bool internal = false;
};

/// LDAP Add: creates one leaf entry (paper §2: "create ... a single
/// leaf node").
struct AddRequest {
  Entry entry;
};

/// LDAP Delete: removes one leaf entry.
struct DeleteRequest {
  Dn dn;
};

/// One component of a Modify request.
struct Modification {
  enum class Type {
    kAdd,      // Add values to an attribute.
    kDelete,   // Delete specific values, or the attribute when empty.
    kReplace,  // Replace all values (empty set removes the attribute).
  };
  Type type = Type::kReplace;
  std::string attribute;
  std::vector<std::string> values;
};

/// LDAP Modify: atomically applies a sequence of modifications to one
/// entry. Atomic per entry — this is the *only* atomicity the
/// directory offers, the constraint that shaped MetaComm's integrated
/// schema (paper §5.1/5.2).
struct ModifyRequest {
  Dn dn;
  std::vector<Modification> mods;
};

/// LDAP ModifyRDN (ModifyDN restricted to leaf renames, as in the
/// paper): changes the RDN of an entry, optionally retiring the old RDN
/// value(s) from the entry.
struct ModifyRdnRequest {
  Dn dn;
  Rdn new_rdn;
  bool delete_old_rdn = true;
};

/// Search scope.
enum class Scope { kBase, kOneLevel, kSubtree };

/// LDAP Search.
struct SearchRequest {
  Dn base;
  Scope scope = Scope::kSubtree;
  Filter filter = Filter::MatchAll();
  /// Attributes to return; empty means all user attributes.
  std::vector<std::string> attributes;
  /// 0 means no limit.
  size_t size_limit = 0;
};

/// Search result: matching entries (projected onto the requested
/// attributes) in no particular order.
struct SearchResult {
  std::vector<Entry> entries;
};

/// LDAP Compare: does `dn` have `attribute` = `value`?
struct CompareRequest {
  Dn dn;
  std::string attribute;
  std::string value;
};

/// LDAP simple Bind.
struct BindRequest {
  Dn dn;
  std::string password;
};

/// Discriminator for update notifications and descriptors.
enum class UpdateOp { kAdd, kModify, kDelete, kModifyRdn };

/// Returns "add" / "modify" / "delete" / "modifyrdn".
inline const char* UpdateOpName(UpdateOp op) {
  switch (op) {
    case UpdateOp::kAdd:
      return "add";
    case UpdateOp::kModify:
      return "modify";
    case UpdateOp::kDelete:
      return "delete";
    case UpdateOp::kModifyRdn:
      return "modifyrdn";
  }
  return "?";
}

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_OPERATIONS_H_
