#ifndef METACOMM_LDAP_QUERY_PLANNER_H_
#define METACOMM_LDAP_QUERY_PLANNER_H_

#include <string>
#include <utility>
#include <vector>

#include "ldap/backend.h"
#include "ldap/filter.h"

namespace metacomm::ldap {

/// Outcome of planning a search filter against a snapshot's value
/// index.
struct QueryPlan {
  /// True when the filter resolved to a candidate DN set; false means
  /// the filter has no indexable anchor and the caller must scan the
  /// subtree.
  bool indexed = false;
  /// Candidate entries, deduplicated and sorted by normalized DN. A
  /// SUPERSET of the matching entries (substring prefixes and AND
  /// intersections over-approximate): the executor re-evaluates the
  /// full filter against every candidate, so planned and scanned
  /// searches return identical results.
  std::vector<std::pair<std::string, Dn>> candidates;
};

/// Plans `filter` against the ordered value index of a snapshot.
///
/// Indexable atoms:
///  * equality — exact posting-list lookup;
///  * substring with a literal prefix ("+1 908 582 4*") — ordered
///    range scan over the value keys, union of the covered postings.
/// Compositions:
///  * AND is indexable when at least one child is: the candidate set
///    is the intersection of every indexable child (unindexable
///    children are enforced by re-evaluation);
///  * OR is indexable only when every child is: the union.
/// Presence, >=, <=, ~= and NOT never anchor a plan: their matching
/// rules (numeric-aware ordering, phonetic folding, complements) do
/// not align with the index's normalized lexicographic key order.
QueryPlan PlanFilter(const Backend::AttrIndex& index, const Filter& filter);

/// True when `a` precedes `b` in subtree-scan (pre-)order: ancestors
/// before descendants, siblings ordered by normalized RDN. Sorting
/// planner candidates with this yields exactly the entry order a
/// subtree scan produces.
bool TreeOrderLess(const Dn& a, const Dn& b);

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_QUERY_PLANNER_H_
