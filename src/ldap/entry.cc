#include "ldap/entry.h"

namespace metacomm::ldap {

bool Entry::Has(std::string_view attribute) const {
  auto it = attributes_.find(attribute);
  return it != attributes_.end() && !it->second.empty();
}

std::vector<std::string> Entry::GetAll(std::string_view attribute) const {
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) return {};
  return it->second.values();
}

std::string Entry::GetFirst(std::string_view attribute) const {
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) return "";
  return it->second.FirstValue();
}

void Entry::Set(std::string_view attribute,
                std::vector<std::string> values) {
  if (values.empty()) {
    Remove(attribute);
    return;
  }
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) {
    Attribute attr{std::string(attribute), std::move(values)};
    attributes_.emplace(std::string(attribute), std::move(attr));
  } else {
    it->second.SetValues(std::move(values));
  }
}

void Entry::SetOne(std::string_view attribute, std::string value) {
  Set(attribute, {std::move(value)});
}

bool Entry::AddValue(std::string_view attribute, std::string value) {
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) {
    Attribute attr{std::string(attribute)};
    attr.AddValue(std::move(value));
    attributes_.emplace(std::string(attribute), std::move(attr));
    return true;
  }
  return it->second.AddValue(std::move(value));
}

bool Entry::RemoveValue(std::string_view attribute,
                        std::string_view value) {
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) return false;
  bool removed = it->second.RemoveValue(value);
  if (removed && it->second.empty()) attributes_.erase(it);
  return removed;
}

bool Entry::Remove(std::string_view attribute) {
  auto it = attributes_.find(attribute);
  if (it == attributes_.end()) return false;
  attributes_.erase(it);
  return true;
}

bool Entry::HasObjectClass(std::string_view object_class) const {
  auto it = attributes_.find("objectClass");
  if (it == attributes_.end()) return false;
  return it->second.HasValue(object_class);
}

void Entry::AddObjectClass(std::string object_class) {
  AddValue("objectClass", std::move(object_class));
}

bool operator==(const Entry& a, const Entry& b) {
  if (!(a.dn_ == b.dn_)) return false;
  if (a.attributes_.size() != b.attributes_.size()) return false;
  for (const auto& [name, attr] : a.attributes_) {
    auto it = b.attributes_.find(name);
    if (it == b.attributes_.end() || !(it->second == attr)) return false;
  }
  return true;
}

std::string Entry::ToString() const {
  std::string out = "dn: " + dn_.ToString() + "\n";
  for (const auto& [name, attr] : attributes_) {
    for (const std::string& value : attr.values()) {
      out += name + ": " + value + "\n";
    }
  }
  return out;
}

}  // namespace metacomm::ldap
