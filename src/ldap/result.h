#ifndef METACOMM_LDAP_RESULT_H_
#define METACOMM_LDAP_RESULT_H_

#include "common/status.h"

namespace metacomm::ldap {

/// LDAPv3 result codes (RFC 2251 §4.1.10) — the subset our server emits.
/// The numeric values match the protocol so traces read like real LDAP.
enum class ResultCode {
  kSuccess = 0,
  kOperationsError = 1,
  kProtocolError = 2,
  kTimeLimitExceeded = 3,
  kSizeLimitExceeded = 4,
  kCompareFalse = 5,
  kCompareTrue = 6,
  kNoSuchAttribute = 16,
  kUndefinedAttributeType = 17,
  kConstraintViolation = 19,
  kAttributeOrValueExists = 20,
  kNoSuchObject = 32,
  kInvalidDnSyntax = 34,
  kInvalidCredentials = 49,
  kInsufficientAccessRights = 50,
  kBusy = 51,
  kUnavailable = 52,
  kUnwillingToPerform = 53,
  kNamingViolation = 64,
  kObjectClassViolation = 65,
  kNotAllowedOnNonLeaf = 66,
  kNotAllowedOnRdn = 67,
  kEntryAlreadyExists = 68,
  kOther = 80,
};

/// The canonical Status carrying a compareFalse outcome. LDAP's
/// compare is three-valued (true / false / error) while Status is
/// two-valued, so "false" travels as a distinguished NotFound. All
/// construction and detection goes through these two helpers — the
/// wire protocol maps it to/from ResultCode::kCompareFalse and nothing
/// outside this header depends on the message text.
inline Status CompareFalseStatus() {
  return Status::NotFound("compare false");
}

/// True if `status` is the CompareFalseStatus() marker.
inline bool IsCompareFalse(const Status& status) {
  return status.code() == StatusCode::kNotFound &&
         status.message() == "compare false";
}

/// Maps an LDAP result code into MetaComm's canonical Status space.
inline Status ResultToStatus(ResultCode code, std::string message) {
  switch (code) {
    case ResultCode::kSuccess:
    case ResultCode::kCompareTrue:
      return Status::Ok();
    case ResultCode::kCompareFalse:
      return CompareFalseStatus();
    case ResultCode::kNoSuchObject:
    case ResultCode::kNoSuchAttribute:
      return Status::NotFound(std::move(message));
    case ResultCode::kEntryAlreadyExists:
    case ResultCode::kAttributeOrValueExists:
      return Status::AlreadyExists(std::move(message));
    case ResultCode::kInvalidDnSyntax:
    case ResultCode::kProtocolError:
    case ResultCode::kUndefinedAttributeType:
      return Status::InvalidArgument(std::move(message));
    case ResultCode::kObjectClassViolation:
    case ResultCode::kNamingViolation:
    case ResultCode::kConstraintViolation:
    case ResultCode::kNotAllowedOnNonLeaf:
    case ResultCode::kNotAllowedOnRdn:
      return Status::SchemaViolation(std::move(message));
    case ResultCode::kInvalidCredentials:
    case ResultCode::kInsufficientAccessRights:
      return Status::PermissionDenied(std::move(message));
    case ResultCode::kBusy:
      return Status::Conflict(std::move(message));
    case ResultCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case ResultCode::kTimeLimitExceeded:
    case ResultCode::kSizeLimitExceeded:
      return Status::DeadlineExceeded(std::move(message));
    default:
      return Status::Internal(std::move(message));
  }
}

/// Maps a canonical Status back onto the closest LDAP result code —
/// the inverse direction, used by the wire protocol.
inline ResultCode StatusToResult(const Status& status) {
  if (IsCompareFalse(status)) return ResultCode::kCompareFalse;
  switch (status.code()) {
    case StatusCode::kOk:
      return ResultCode::kSuccess;
    case StatusCode::kInvalidArgument:
      return ResultCode::kProtocolError;
    case StatusCode::kNotFound:
      return ResultCode::kNoSuchObject;
    case StatusCode::kAlreadyExists:
      return ResultCode::kEntryAlreadyExists;
    case StatusCode::kConflict:
      return ResultCode::kBusy;
    case StatusCode::kPermissionDenied:
      return ResultCode::kInsufficientAccessRights;
    case StatusCode::kSchemaViolation:
      return ResultCode::kObjectClassViolation;
    case StatusCode::kUnavailable:
      return ResultCode::kUnavailable;
    case StatusCode::kDeadlineExceeded:
      return ResultCode::kTimeLimitExceeded;
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
      return ResultCode::kOther;
  }
  return ResultCode::kOther;
}

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_RESULT_H_
