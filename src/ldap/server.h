#ifndef METACOMM_LDAP_SERVER_H_
#define METACOMM_LDAP_SERVER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "ldap/access.h"
#include "ldap/backend.h"
#include "ldap/schema.h"
#include "ldap/service.h"

namespace metacomm::ldap {

/// Server configuration.
struct ServerConfig {
  /// When false (default), write operations require a non-empty
  /// authenticated principal. MetaComm's "very simple security
  /// mechanism" (paper §7) is exactly this bind-based check.
  bool allow_anonymous_writes = false;
  /// Optional subtree ACLs (the paper's future-work security model).
  /// When set, it replaces the bind-based check above: reads require
  /// kRead on each entry (non-readable entries silently drop out of
  /// search results, as in production directories), writes require
  /// kWrite on the target. Internal (Update Manager) operations
  /// bypass ACLs — MetaComm is the integration layer, not a client.
  std::optional<AccessControl> acl;
};

/// A standalone LDAP directory server: schema-validated backend plus
/// simple-bind authentication.
///
/// This is the materialized-view store of MetaComm. In a deployment the
/// LTAP gateway sits in front of it and clients talk to the gateway;
/// the server itself never initiates anything (LDAP servers have no
/// triggers — the gap LTAP fills, paper §4.3).
class LdapServer : public LdapService {
 public:
  explicit LdapServer(Schema schema, ServerConfig config = {});

  /// Registers a bindable principal with a password.
  void AddUser(const Dn& dn, std::string password) EXCLUDES(users_mutex_);

  /// Direct access to the underlying tree (used by replication, the
  /// synchronizer's bulk loads, and tests).
  Backend& backend() { return backend_; }
  const Backend& backend() const { return backend_; }

  const Schema& schema() const { return schema_; }

  // LdapService:
  Status Add(const OpContext& ctx, const AddRequest& request) override;
  Status Delete(const OpContext& ctx, const DeleteRequest& request) override;
  Status Modify(const OpContext& ctx, const ModifyRequest& request) override;
  Status ModifyRdn(const OpContext& ctx,
                   const ModifyRdnRequest& request) override;
  StatusOr<SearchResult> Search(const OpContext& ctx,
                                const SearchRequest& request) override;
  Status Compare(const OpContext& ctx,
                 const CompareRequest& request) override;
  StatusOr<std::string> Bind(const BindRequest& request) override;

 private:
  Status CheckWriteAccess(const OpContext& ctx, const Dn& target) const;

  Schema schema_;
  ServerConfig config_;
  Backend backend_;
  Mutex users_mutex_{LockRank::kLdapServerUsers, "ldap.server.users"};
  // normalized DN -> password
  std::map<std::string, std::string> users_ GUARDED_BY(users_mutex_);
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_SERVER_H_
