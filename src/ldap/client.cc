#include "ldap/client.h"

#include "ldap/result.h"

namespace metacomm::ldap {

Status Client::Bind(std::string_view dn, std::string password) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(dn));
  BindRequest request{std::move(parsed), std::move(password)};
  METACOMM_ASSIGN_OR_RETURN(std::string principal,
                            service_->Bind(request));
  context_.principal = std::move(principal);
  return Status::Ok();
}

void Client::Unbind() {
  service_->Unbind();
  context_.principal.clear();
}

Status Client::Add(
    std::string_view dn,
    const std::vector<std::pair<std::string, std::string>>& avas) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(dn));
  Entry entry(std::move(parsed));
  for (const auto& [attribute, value] : avas) {
    entry.AddValue(attribute, value);
  }
  return Add(entry);
}

Status Client::Add(const Entry& entry) {
  return service_->Add(context_, AddRequest{entry});
}

Status Client::Delete(std::string_view dn) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(dn));
  return service_->Delete(context_, DeleteRequest{std::move(parsed)});
}

Status Client::Replace(std::string_view dn, std::string_view attribute,
                       std::string value) {
  return ReplaceAll(dn, attribute, {std::move(value)});
}

Status Client::ReplaceAll(std::string_view dn, std::string_view attribute,
                          std::vector<std::string> values) {
  Modification mod;
  mod.type = Modification::Type::kReplace;
  mod.attribute = std::string(attribute);
  mod.values = std::move(values);
  return Modify(dn, {std::move(mod)});
}

Status Client::Modify(std::string_view dn, std::vector<Modification> mods) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(dn));
  return service_->Modify(context_,
                          ModifyRequest{std::move(parsed), std::move(mods)});
}

Status Client::ModifyRdn(std::string_view dn, std::string_view new_rdn,
                         bool delete_old_rdn) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(dn));
  METACOMM_ASSIGN_OR_RETURN(Rdn rdn, Rdn::Parse(new_rdn));
  ModifyRdnRequest request;
  request.dn = std::move(parsed);
  request.new_rdn = std::move(rdn);
  request.delete_old_rdn = delete_old_rdn;
  return service_->ModifyRdn(context_, request);
}

StatusOr<Entry> Client::Get(std::string_view dn) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(dn));
  SearchRequest request;
  request.base = std::move(parsed);
  request.scope = Scope::kBase;
  METACOMM_ASSIGN_OR_RETURN(SearchResult result,
                            service_->Search(context_, request));
  if (result.entries.empty()) {
    return Status::NotFound("no such object: " + std::string(dn));
  }
  return result.entries.front();
}

StatusOr<std::vector<Entry>> Client::Search(std::string_view base,
                                            std::string_view filter,
                                            Scope scope) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(base));
  METACOMM_ASSIGN_OR_RETURN(Filter parsed_filter, Filter::Parse(filter));
  SearchRequest request;
  request.base = std::move(parsed);
  request.scope = scope;
  request.filter = std::move(parsed_filter);
  METACOMM_ASSIGN_OR_RETURN(SearchResult result,
                            service_->Search(context_, request));
  return std::move(result.entries);
}

StatusOr<bool> Client::Compare(std::string_view dn,
                               std::string_view attribute,
                               std::string_view value) {
  METACOMM_ASSIGN_OR_RETURN(Dn parsed, Dn::Parse(dn));
  CompareRequest request;
  request.dn = std::move(parsed);
  request.attribute = std::string(attribute);
  request.value = std::string(value);
  Status status = service_->Compare(context_, request);
  if (status.ok()) return true;
  if (IsCompareFalse(status)) return false;
  return status;
}

}  // namespace metacomm::ldap
