#ifndef METACOMM_LDAP_PERSISTENCE_H_
#define METACOMM_LDAP_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "ldap/backend.h"

namespace metacomm::ldap {

/// LDIF-file persistence for the in-memory directory.
///
/// The 2000-era deployment pattern (and still OpenLDAP's bootstrap
/// path): the DIT is exported to and re-imported from LDIF. MetaComm
/// uses this for the UM-crash story — after a restart, the directory
/// is reloaded and Synchronize() reconciles it with the devices
/// (paper §4.4/§5.1).

/// Writes every entry of `backend` (parents before children) to
/// `path` as LDIF content records.
Status SaveToLdifFile(const Backend& backend, const std::string& path);

/// Loads LDIF content records from `path` into `backend` via Add, in
/// file order. Entries that already exist are skipped (idempotent
/// reload); change records are rejected.
StatusOr<size_t> LoadFromLdifFile(Backend* backend,
                                  const std::string& path);

/// In-memory variants (exposed for tests and tooling).
std::string ExportLdif(const Backend& backend);
StatusOr<size_t> ImportLdif(Backend* backend, const std::string& text);

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_PERSISTENCE_H_
