#include "ldap/filter.h"

#include "common/strings.h"

namespace metacomm::ldap {

namespace {

/// Recursive-descent parser over the RFC 2254 grammar.
class FilterParser {
 public:
  explicit FilterParser(std::string_view text) : text_(text) {}

  StatusOr<Filter> Parse() {
    METACOMM_ASSIGN_OR_RETURN(Filter f, ParseFilter());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters in filter: " +
                                     std::string(text_.substr(pos_)));
    }
    return f;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Filter> ParseFilter() {
    // Depth guard: adversarial inputs like "(((((..." must fail
    // cleanly instead of exhausting the stack.
    if (++depth_ > kMaxDepth) {
      return Status::InvalidArgument("filter nesting too deep");
    }
    SkipSpace();
    if (!Consume('(')) {
      return Status::InvalidArgument("filter must start with '('");
    }
    METACOMM_ASSIGN_OR_RETURN(Filter f, ParseBody());
    if (!Consume(')')) {
      return Status::InvalidArgument("filter missing ')'");
    }
    --depth_;
    return f;
  }

  StatusOr<Filter> ParseBody() {
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated filter");
    }
    char c = text_[pos_];
    if (c == '&' || c == '|') {
      ++pos_;
      std::vector<Filter> children;
      SkipSpace();
      while (pos_ < text_.size() && text_[pos_] == '(') {
        METACOMM_ASSIGN_OR_RETURN(Filter child, ParseFilter());
        children.push_back(std::move(child));
        SkipSpace();
      }
      if (children.empty()) {
        return Status::InvalidArgument("empty and/or filter");
      }
      return c == '&' ? Filter::And(std::move(children))
                      : Filter::Or(std::move(children));
    }
    if (c == '!') {
      ++pos_;
      METACOMM_ASSIGN_OR_RETURN(Filter child, ParseFilter());
      return Filter::Not(std::move(child));
    }
    return ParseSimple();
  }

  StatusOr<Filter> ParseSimple() {
    // attribute [~<>]? = value
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '=' &&
           text_[pos_] != ')' && text_[pos_] != '~' &&
           text_[pos_] != '<' && text_[pos_] != '>') {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated simple filter");
    }
    std::string attribute = Trim(text_.substr(start, pos_ - start));
    if (attribute.empty()) {
      return Status::InvalidArgument("filter with empty attribute");
    }

    Filter::Kind kind = Filter::Kind::kEquality;
    char op = text_[pos_];
    if (op == '~' || op == '<' || op == '>') {
      ++pos_;
      if (!Consume('=')) {
        return Status::InvalidArgument("expected '=' after ~/</>");
      }
      kind = op == '~'   ? Filter::Kind::kApprox
             : op == '<' ? Filter::Kind::kLessOrEqual
                         : Filter::Kind::kGreaterOrEqual;
    } else if (!Consume('=')) {
      return Status::InvalidArgument("expected '=' in filter");
    }

    // Value runs to the matching ')'. Handle RFC 2254 backslash-hex
    // escapes (\2a etc.).
    std::string value;
    bool has_star = false;
    while (pos_ < text_.size() && text_[pos_] != ')') {
      char vc = text_[pos_];
      if (vc == '\\' && pos_ + 2 < text_.size()) {
        auto hex = [](char h) -> int {
          if (h >= '0' && h <= '9') return h - '0';
          if (h >= 'a' && h <= 'f') return h - 'a' + 10;
          if (h >= 'A' && h <= 'F') return h - 'A' + 10;
          return -1;
        };
        int hi = hex(text_[pos_ + 1]);
        int lo = hex(text_[pos_ + 2]);
        if (hi >= 0 && lo >= 0) {
          value.push_back(static_cast<char>(hi * 16 + lo));
          pos_ += 3;
          continue;
        }
      }
      if (vc == '*') has_star = true;
      value.push_back(vc);
      ++pos_;
    }

    // Presence/substring forms require LITERAL stars; an escaped \2a
    // is an ordinary value character.
    if (kind == Filter::Kind::kEquality && has_star) {
      if (value == "*") return Filter::Present(std::move(attribute));
      return Filter::Substring(std::move(attribute), std::move(value));
    }
    switch (kind) {
      case Filter::Kind::kEquality:
        return Filter::Equality(std::move(attribute), std::move(value));
      case Filter::Kind::kApprox:
        return Filter::Approx(std::move(attribute), std::move(value));
      case Filter::Kind::kGreaterOrEqual:
        return Filter::GreaterOrEqual(std::move(attribute),
                                      std::move(value));
      case Filter::Kind::kLessOrEqual:
        return Filter::LessOrEqual(std::move(attribute), std::move(value));
      default:
        return Status::Internal("unreachable filter kind");
    }
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

/// Escapes *, (, ), \ and NUL for round-tripping filter values.
std::string EscapeFilterValue(std::string_view value, bool keep_stars) {
  std::string out;
  for (char c : value) {
    switch (c) {
      case '*':
        if (keep_stars) {
          out.push_back(c);
        } else {
          out += "\\2a";
        }
        break;
      case '(':
        out += "\\28";
        break;
      case ')':
        out += "\\29";
        break;
      case '\\':
        out += "\\5c";
        break;
      case '\0':
        out += "\\00";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Numeric-aware ordering comparison: if both sides are integers,
/// compare numerically, else lexicographically case-insensitive.
int OrderCompare(std::string_view a, std::string_view b) {
  if (IsAllDigits(a) && IsAllDigits(b)) {
    // Compare as numbers: longer digit string (sans leading zeros) wins.
    auto strip = [](std::string_view s) {
      size_t i = 0;
      while (i + 1 < s.size() && s[i] == '0') ++i;
      return s.substr(i);
    };
    std::string_view sa = strip(a), sb = strip(b);
    if (sa.size() != sb.size()) return sa.size() < sb.size() ? -1 : 1;
    if (sa == sb) return 0;
    return sa < sb ? -1 : 1;
  }
  std::string la = ToLower(a), lb = ToLower(b);
  if (la == lb) return 0;
  return la < lb ? -1 : 1;
}

}  // namespace

StatusOr<Filter> Filter::Parse(std::string_view text) {
  std::string trimmed = Trim(text);
  if (trimmed.empty()) return MatchAll();
  // Tolerate a bare "attr=value" without parentheses, as many LDAP
  // tools do.
  if (trimmed.front() != '(') trimmed = "(" + trimmed + ")";
  return FilterParser(trimmed).Parse();
}

Filter Filter::Equality(std::string attribute, std::string value) {
  Filter f;
  f.kind_ = Kind::kEquality;
  f.attribute_ = std::move(attribute);
  f.value_ = std::move(value);
  return f;
}

Filter Filter::Present(std::string attribute) {
  Filter f;
  f.kind_ = Kind::kPresent;
  f.attribute_ = std::move(attribute);
  return f;
}

Filter Filter::Substring(std::string attribute, std::string pattern) {
  Filter f;
  f.kind_ = Kind::kSubstring;
  f.attribute_ = std::move(attribute);
  f.value_ = std::move(pattern);
  return f;
}

Filter Filter::GreaterOrEqual(std::string attribute, std::string value) {
  Filter f;
  f.kind_ = Kind::kGreaterOrEqual;
  f.attribute_ = std::move(attribute);
  f.value_ = std::move(value);
  return f;
}

Filter Filter::LessOrEqual(std::string attribute, std::string value) {
  Filter f;
  f.kind_ = Kind::kLessOrEqual;
  f.attribute_ = std::move(attribute);
  f.value_ = std::move(value);
  return f;
}

Filter Filter::Approx(std::string attribute, std::string value) {
  Filter f;
  f.kind_ = Kind::kApprox;
  f.attribute_ = std::move(attribute);
  f.value_ = std::move(value);
  return f;
}

Filter Filter::And(std::vector<Filter> children) {
  Filter f;
  f.kind_ = Kind::kAnd;
  f.children_ = std::move(children);
  return f;
}

Filter Filter::Or(std::vector<Filter> children) {
  Filter f;
  f.kind_ = Kind::kOr;
  f.children_ = std::move(children);
  return f;
}

Filter Filter::Not(Filter child) {
  Filter f;
  f.kind_ = Kind::kNot;
  f.children_.push_back(std::move(child));
  return f;
}

Filter Filter::MatchAll() { return Present("objectClass"); }

bool Filter::Matches(const Entry& entry) const {
  switch (kind_) {
    case Kind::kAnd:
      for (const Filter& c : children_) {
        if (!c.Matches(entry)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Filter& c : children_) {
        if (c.Matches(entry)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_.front().Matches(entry);
    case Kind::kPresent:
      return entry.Has(attribute_);
    case Kind::kEquality: {
      auto it = entry.attributes().find(attribute_);
      if (it == entry.attributes().end()) return false;
      for (const std::string& v : it->second.values()) {
        if (EqualsIgnoreCase(NormalizeSpace(v), NormalizeSpace(value_))) {
          return true;
        }
      }
      return false;
    }
    case Kind::kApprox: {
      // Approximate match folded to space- and case-insensitive
      // equality (real servers use phonetic algorithms; this suffices
      // for the directory behaviour MetaComm relies on).
      auto it = entry.attributes().find(attribute_);
      if (it == entry.attributes().end()) return false;
      std::string want = ToLower(ReplaceAll(value_, " ", ""));
      for (const std::string& v : it->second.values()) {
        if (ToLower(ReplaceAll(v, " ", "")) == want) return true;
      }
      return false;
    }
    case Kind::kSubstring: {
      auto it = entry.attributes().find(attribute_);
      if (it == entry.attributes().end()) return false;
      for (const std::string& v : it->second.values()) {
        if (GlobMatchIgnoreCase(value_, v)) return true;
      }
      return false;
    }
    case Kind::kGreaterOrEqual:
    case Kind::kLessOrEqual: {
      auto it = entry.attributes().find(attribute_);
      if (it == entry.attributes().end()) return false;
      for (const std::string& v : it->second.values()) {
        int cmp = OrderCompare(v, value_);
        if (kind_ == Kind::kGreaterOrEqual ? cmp >= 0 : cmp <= 0) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

std::string Filter::ToString() const {
  switch (kind_) {
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = kind_ == Kind::kAnd ? "(&" : "(|";
      for (const Filter& c : children_) out += c.ToString();
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "(!" + children_.front().ToString() + ")";
    case Kind::kPresent:
      return "(" + attribute_ + "=*)";
    case Kind::kEquality:
      return "(" + attribute_ + "=" +
             EscapeFilterValue(value_, /*keep_stars=*/false) + ")";
    case Kind::kSubstring:
      return "(" + attribute_ + "=" +
             EscapeFilterValue(value_, /*keep_stars=*/true) + ")";
    case Kind::kGreaterOrEqual:
      return "(" + attribute_ + ">=" +
             EscapeFilterValue(value_, /*keep_stars=*/false) + ")";
    case Kind::kLessOrEqual:
      return "(" + attribute_ + "<=" +
             EscapeFilterValue(value_, /*keep_stars=*/false) + ")";
    case Kind::kApprox:
      return "(" + attribute_ + "~=" +
             EscapeFilterValue(value_, /*keep_stars=*/false) + ")";
  }
  return "";
}

}  // namespace metacomm::ldap
