#include "ldap/backend.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/clock.h"
#include "common/strings.h"
#include "ldap/query_planner.h"

namespace metacomm::ldap {

namespace {

using TreeNodePtr = std::shared_ptr<const Backend::TreeNode>;

Entry Project(const Entry& entry,
              const std::vector<std::string>& attributes) {
  if (attributes.empty()) return entry;
  Entry out(entry.dn());
  for (const std::string& name : attributes) {
    auto it = entry.attributes().find(name);
    if (it != entry.attributes().end()) {
      out.Set(it->second.name(), it->second.values());
    }
  }
  return out;
}

/// Adds (or removes) index postings for one attribute of one entry,
/// deriving the new index layers by copy-on-write. Empty postings and
/// empty value maps are erased so absent attributes stay absent.
void IndexValues(Backend::AttrIndex* index, const std::string& norm_dn,
                 const Dn& dn, std::string_view name,
                 const std::vector<std::string>& values, bool insert) {
  // Scratch keys reused across every value of the attribute.
  thread_local std::string attr_key;
  thread_local std::string value_key;
  ToLowerInto(name, &attr_key);
  const Backend::ValueIndex* found = index->Find(attr_key);
  if (found == nullptr && !insert) return;
  Backend::ValueIndex value_index =
      found != nullptr ? *found : Backend::ValueIndex();
  for (const std::string& value : values) {
    NormalizeSpaceLowerInto(value, &value_key);
    const Backend::Postings* existing = value_index.Find(value_key);
    if (insert) {
      Backend::Postings postings =
          existing != nullptr ? *existing : Backend::Postings();
      value_index = value_index.Insert(value_key, postings.Insert(norm_dn, dn));
    } else {
      if (existing == nullptr) continue;
      Backend::Postings postings = existing->Erase(norm_dn);
      value_index = postings.empty()
                        ? value_index.Erase(value_key)
                        : value_index.Insert(value_key, std::move(postings));
    }
  }
  *index = value_index.empty() ? index->Erase(attr_key)
                               : index->Insert(attr_key, std::move(value_index));
}

void IndexEntry(Backend::AttrIndex* index, const Entry& entry, bool insert) {
  std::string norm_dn = entry.dn().Normalized();
  for (const auto& [name, attr] : entry.attributes()) {
    IndexValues(index, norm_dn, entry.dn(), name, attr.values(), insert);
  }
}

void ReindexSubtree(Backend::AttrIndex* index,
                    const Backend::TreeNode* node, bool insert) {
  IndexEntry(index, node->entry, insert);
  node->children.ForEach(
      [index, insert](const std::string&, const TreeNodePtr& child) {
        ReindexSubtree(index, child.get(), insert);
        return true;
      });
}

/// Deep-copies `node` rebasing its DN (and its descendants') under
/// `new_dn` — the ModifyRDN subtree rewrite, expressed as fresh
/// immutable nodes instead of in-place mutation.
TreeNodePtr CloneWithNewDn(const Backend::TreeNode& node, const Dn& new_dn) {
  auto fresh = std::make_shared<Backend::TreeNode>();
  fresh->entry = node.entry;
  fresh->entry.set_dn(new_dn);
  node.children.ForEach(
      [&fresh, &new_dn](const std::string& key, const TreeNodePtr& child) {
        fresh->children = fresh->children.Insert(
            key,
            CloneWithNewDn(*child, new_dn.Child(child->entry.dn().leaf())));
        return true;
      });
  return fresh;
}

/// Path-copies from `node` down to the entry named by `rdns[size-1-i]..`
/// and grafts `replacement` there (nullptr erases it). Every node on
/// the path must exist; siblings off the path are shared, not copied.
TreeNodePtr ReplaceAt(const TreeNodePtr& node, const std::vector<Rdn>& rdns,
                      size_t i, const TreeNodePtr& replacement) {
  if (i == rdns.size()) return replacement;
  std::string key = rdns[rdns.size() - 1 - i].Normalized();
  const TreeNodePtr* child = node->children.Find(key);
  TreeNodePtr new_child = ReplaceAt(*child, rdns, i + 1, replacement);
  auto fresh = std::make_shared<Backend::TreeNode>();
  fresh->entry = node->entry;
  fresh->children = new_child == nullptr ? node->children.Erase(key)
                                         : node->children.Insert(key, new_child);
  return fresh;
}

TreeNodePtr ReplaceAt(const TreeNodePtr& root, const Dn& dn,
                      const TreeNodePtr& replacement) {
  return ReplaceAt(root, dn.rdns(), 0, replacement);
}

void CollectScan(const Backend::TreeNode* node, const SearchRequest& request,
                 std::vector<Entry>* out, Status* limit_status) {
  if (!limit_status->ok()) return;
  if (request.size_limit > 0 && out->size() >= request.size_limit) {
    *limit_status = Status::DeadlineExceeded("size limit exceeded");
    return;
  }
  if (request.filter.Matches(node->entry)) {
    out->push_back(Project(node->entry, request.attributes));
  }
  node->children.ForEach(
      [&](const std::string&, const TreeNodePtr& child) {
        CollectScan(child.get(), request, out, limit_status);
        return limit_status->ok();
      });
}

}  // namespace

Backend::Backend(const Schema* schema) : schema_(schema) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->root = std::make_shared<TreeNode>();
  snapshot->published_micros = RealClock::Get()->NowMicros();
  snapshot_.store(std::move(snapshot));
}

const Backend::TreeNode* Backend::FindNode(const Snapshot& snapshot,
                                           const Dn& dn) {
  // Walk from the root; DN rdns are leaf-first, so iterate backwards.
  const TreeNode* node = snapshot.root.get();
  const auto& rdns = dn.rdns();
  for (auto it = rdns.rbegin(); it != rdns.rend(); ++it) {
    const TreeNodePtr* child = node->children.Find(it->Normalized());
    if (child == nullptr) return nullptr;
    node = child->get();
  }
  return node;
}

void Backend::ForEachEntry(const Snapshot& snapshot,
                           const std::function<bool(const Entry&)>& fn) {
  // BFS guarantees parents precede children.
  std::deque<const TreeNode*> frontier{snapshot.root.get()};
  bool stopped = false;
  while (!frontier.empty() && !stopped) {
    const TreeNode* node = frontier.front();
    frontier.pop_front();
    node->children.ForEach(
        [&](const std::string&, const TreeNodePtr& child) {
          if (!fn(child->entry)) {
            stopped = true;
            return false;
          }
          frontier.push_back(child.get());
          return true;
        });
  }
}

Backend::SnapshotPtr Backend::GetSnapshot() const {
  return snapshot_.load();
}

Backend::SnapshotPtr Backend::WriterSnapshot() const {
  // Writers serialize on write_mutex_, which orders their stores; the
  // cell's acquire/release pairs Commit with the unlocked readers.
  return snapshot_.load();
}

void Backend::Commit(Snapshot snapshot, ChangeRecord record) {
  record.sequence = ++sequence_;
  snapshot.version = sequence_;
  snapshot.published_micros = RealClock::Get()->NowMicros();
  snapshot_.store(std::make_shared<const Snapshot>(std::move(snapshot)));
  for (const Listener& listener : listeners_) {
    listener(record);
  }
}

Status Backend::Add(const Entry& entry) {
  if (entry.dn().IsRoot()) {
    return Status::InvalidArgument("cannot add the root DSE");
  }
  if (schema_ != nullptr) {
    METACOMM_RETURN_IF_ERROR(schema_->ValidateEntry(entry));
  }
  MutexLock lock(&write_mutex_);
  SnapshotPtr current = WriterSnapshot();
  Dn parent_dn = entry.dn().Parent();
  const TreeNode* parent = FindNode(*current, parent_dn);
  if (parent == nullptr) {
    return Status::NotFound("parent does not exist: " + parent_dn.ToString());
  }
  std::string key = entry.dn().leaf().Normalized();
  if (parent->children.Find(key) != nullptr) {
    return Status::AlreadyExists("entry already exists: " +
                                 entry.dn().ToString());
  }
  auto leaf = std::make_shared<TreeNode>();
  leaf->entry = entry;
  auto new_parent = std::make_shared<TreeNode>();
  new_parent->entry = parent->entry;
  new_parent->children = parent->children.Insert(key, std::move(leaf));

  Snapshot next;
  next.root = ReplaceAt(current->root, parent_dn, std::move(new_parent));
  next.index = current->index;
  IndexEntry(&next.index, entry, /*insert=*/true);
  next.entry_count = current->entry_count + 1;

  ChangeRecord record;
  record.op = UpdateOp::kAdd;
  record.dn = entry.dn();
  record.new_entry = entry;
  Commit(std::move(next), std::move(record));
  return Status::Ok();
}

Status Backend::Delete(const Dn& dn) {
  if (dn.IsRoot()) {
    return Status::InvalidArgument("cannot delete the root DSE");
  }
  MutexLock lock(&write_mutex_);
  SnapshotPtr current = WriterSnapshot();
  const TreeNode* parent = FindNode(*current, dn.Parent());
  if (parent == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  const TreeNodePtr* node = parent->children.Find(dn.leaf().Normalized());
  if (node == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  if (!(*node)->children.empty()) {
    return Status::SchemaViolation("not allowed on non-leaf: " +
                                   dn.ToString());
  }
  Entry old_entry = (*node)->entry;

  Snapshot next;
  next.root = ReplaceAt(current->root, dn, nullptr);
  next.index = current->index;
  IndexEntry(&next.index, old_entry, /*insert=*/false);
  next.entry_count = current->entry_count - 1;

  ChangeRecord record;
  record.op = UpdateOp::kDelete;
  record.dn = dn;
  record.old_entry = std::move(old_entry);
  Commit(std::move(next), std::move(record));
  return Status::Ok();
}

Status Backend::ApplyMods(const Rdn& rdn,
                          const std::vector<Modification>& mods,
                          Entry* entry) const {
  for (const Modification& mod : mods) {
    // RDN attribute protection: an operation may not remove or replace
    // a value that names the entry. (Adding extra values is fine.)
    bool is_rdn_attr = false;
    std::string rdn_value;
    for (const Ava& ava : rdn.avas()) {
      if (EqualsIgnoreCase(ava.attribute, mod.attribute)) {
        is_rdn_attr = true;
        rdn_value = ava.value;
      }
    }
    switch (mod.type) {
      case Modification::Type::kAdd:
        if (mod.values.empty()) {
          return Status::InvalidArgument("modify/add with no values: " +
                                         mod.attribute);
        }
        for (const std::string& v : mod.values) {
          entry->AddValue(mod.attribute, v);
        }
        break;
      case Modification::Type::kDelete:
        if (mod.values.empty()) {
          if (is_rdn_attr) {
            return Status::SchemaViolation("not allowed on RDN: " +
                                           mod.attribute);
          }
          if (!entry->Remove(mod.attribute)) {
            return Status::NotFound("no such attribute: " + mod.attribute);
          }
        } else {
          for (const std::string& v : mod.values) {
            if (is_rdn_attr && EqualsIgnoreCase(v, rdn_value)) {
              return Status::SchemaViolation("not allowed on RDN: " +
                                             mod.attribute + "=" + v);
            }
            if (!entry->RemoveValue(mod.attribute, v)) {
              return Status::NotFound("no such value: " + mod.attribute +
                                      "=" + v);
            }
          }
        }
        break;
      case Modification::Type::kReplace: {
        if (is_rdn_attr) {
          // Replacement must retain the RDN value.
          bool keeps = std::any_of(
              mod.values.begin(), mod.values.end(),
              [&rdn_value](const std::string& v) {
                return EqualsIgnoreCase(v, rdn_value);
              });
          if (!keeps) {
            return Status::SchemaViolation("not allowed on RDN: " +
                                           mod.attribute);
          }
        }
        entry->Set(mod.attribute, mod.values);
        break;
      }
    }
  }
  return Status::Ok();
}

Status Backend::Modify(const Dn& dn, const std::vector<Modification>& mods) {
  MutexLock lock(&write_mutex_);
  SnapshotPtr current = WriterSnapshot();
  const TreeNode* node = FindNode(*current, dn);
  if (node == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  Entry updated = node->entry;
  METACOMM_RETURN_IF_ERROR(ApplyMods(dn.leaf(), mods, &updated));
  if (schema_ != nullptr) {
    METACOMM_RETURN_IF_ERROR(schema_->ValidateEntry(updated));
  }
  Entry old_entry = node->entry;

  auto replacement = std::make_shared<TreeNode>();
  replacement->entry = updated;
  replacement->children = node->children;

  Snapshot next;
  next.root = ReplaceAt(current->root, dn, std::move(replacement));
  next.index = current->index;
  // Reindex only the attributes the mods actually changed — the COW
  // index pays per touched value, so skipping unchanged attributes
  // keeps Modify cost proportional to the modification.
  std::string norm_dn = dn.Normalized();
  const AttributeMap& before = old_entry.attributes();
  const AttributeMap& after = updated.attributes();
  for (const auto& [name, attr] : before) {
    auto it = after.find(name);
    if (it == after.end() || it->second.values() != attr.values()) {
      IndexValues(&next.index, norm_dn, dn, name, attr.values(),
                  /*insert=*/false);
    }
  }
  for (const auto& [name, attr] : after) {
    auto it = before.find(name);
    if (it == before.end() || it->second.values() != attr.values()) {
      IndexValues(&next.index, norm_dn, dn, name, attr.values(),
                  /*insert=*/true);
    }
  }
  next.entry_count = current->entry_count;

  ChangeRecord record;
  record.op = UpdateOp::kModify;
  record.dn = dn;
  record.old_entry = std::move(old_entry);
  record.new_entry = std::move(updated);
  Commit(std::move(next), std::move(record));
  return Status::Ok();
}

Status Backend::ModifyRdn(const Dn& dn, const Rdn& new_rdn,
                          bool delete_old_rdn) {
  if (dn.IsRoot()) {
    return Status::InvalidArgument("cannot rename the root DSE");
  }
  MutexLock lock(&write_mutex_);
  SnapshotPtr current = WriterSnapshot();
  Dn parent_dn = dn.Parent();
  const TreeNode* parent = FindNode(*current, parent_dn);
  if (parent == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  std::string old_key = dn.leaf().Normalized();
  const TreeNodePtr* node = parent->children.Find(old_key);
  if (node == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  std::string new_key = new_rdn.Normalized();
  if (new_key != old_key && parent->children.Find(new_key) != nullptr) {
    return Status::AlreadyExists("sibling already exists: " +
                                 new_rdn.ToString());
  }

  // Build the post-rename entry.
  Entry updated = (*node)->entry;
  Dn new_dn = dn.WithLeaf(new_rdn);
  updated.set_dn(new_dn);
  for (const Ava& ava : new_rdn.avas()) {
    updated.AddValue(ava.attribute, ava.value);
  }
  if (delete_old_rdn) {
    for (const Ava& old_ava : dn.leaf().avas()) {
      // Keep values that also appear in the new RDN.
      bool kept = std::any_of(new_rdn.avas().begin(), new_rdn.avas().end(),
                              [&old_ava](const Ava& n) {
                                return EqualsIgnoreCase(n.attribute,
                                                        old_ava.attribute) &&
                                       EqualsIgnoreCase(n.value,
                                                        old_ava.value);
                              });
      if (!kept) updated.RemoveValue(old_ava.attribute, old_ava.value);
    }
  }
  if (schema_ != nullptr) {
    METACOMM_RETURN_IF_ERROR(schema_->ValidateEntry(updated));
  }

  Entry old_entry = (*node)->entry;

  Snapshot next;
  next.index = current->index;
  // De-index the whole subtree (descendant DNs change too), rebuild it
  // under the new DN, then re-index the rebuilt copy.
  ReindexSubtree(&next.index, node->get(), /*insert=*/false);
  auto renamed = std::make_shared<TreeNode>();
  renamed->entry = updated;
  (*node)->children.ForEach(
      [&renamed, &new_dn](const std::string& key, const TreeNodePtr& child) {
        renamed->children = renamed->children.Insert(
            key,
            CloneWithNewDn(*child, new_dn.Child(child->entry.dn().leaf())));
        return true;
      });
  ReindexSubtree(&next.index, renamed.get(), /*insert=*/true);

  auto new_parent = std::make_shared<TreeNode>();
  new_parent->entry = parent->entry;
  new_parent->children =
      parent->children.Erase(old_key).Insert(new_key, std::move(renamed));
  next.root = ReplaceAt(current->root, parent_dn, std::move(new_parent));
  next.entry_count = current->entry_count;

  ChangeRecord record;
  record.op = UpdateOp::kModifyRdn;
  record.dn = dn;
  record.new_dn = new_dn;
  record.old_entry = std::move(old_entry);
  record.new_entry = std::move(updated);
  Commit(std::move(next), std::move(record));
  return Status::Ok();
}

StatusOr<Entry> Backend::Get(const Dn& dn) const {
  read_stats_.gets.fetch_add(1, std::memory_order_relaxed);
  SnapshotPtr snapshot = GetSnapshot();
  const TreeNode* node = FindNode(*snapshot, dn);
  if (node == nullptr || dn.IsRoot()) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  return node->entry;
}

bool Backend::Exists(const Dn& dn) const {
  read_stats_.exists.fetch_add(1, std::memory_order_relaxed);
  SnapshotPtr snapshot = GetSnapshot();
  return !dn.IsRoot() && FindNode(*snapshot, dn) != nullptr;
}

size_t Backend::Size() const {
  return GetSnapshot()->entry_count;
}

StatusOr<SearchResult> Backend::Search(const SearchRequest& request) const {
  read_stats_.searches.fetch_add(1, std::memory_order_relaxed);
  SnapshotPtr snapshot = GetSnapshot();
  const TreeNode* base = FindNode(*snapshot, request.base);
  if (base == nullptr) {
    return Status::NotFound("no such object: " + request.base.ToString());
  }
  SearchResult result;
  switch (request.scope) {
    case Scope::kBase:
      if (!request.base.IsRoot() && request.filter.Matches(base->entry)) {
        result.entries.push_back(Project(base->entry, request.attributes));
      }
      break;
    case Scope::kOneLevel: {
      Status limit_status = Status::Ok();
      base->children.ForEach(
          [&](const std::string&, const TreeNodePtr& child) {
            if (!request.filter.Matches(child->entry)) return true;
            if (request.size_limit > 0 &&
                result.entries.size() >= request.size_limit) {
              limit_status = Status::DeadlineExceeded("size limit exceeded");
              return false;
            }
            result.entries.push_back(
                Project(child->entry, request.attributes));
            return true;
          });
      if (!limit_status.ok()) return limit_status;
      break;
    }
    case Scope::kSubtree: {
      QueryPlan plan = PlanFilter(snapshot->index, request.filter);
      if (plan.indexed) {
        read_stats_.indexed_plans.fetch_add(1, std::memory_order_relaxed);
        read_stats_.candidates_examined.fetch_add(
            plan.candidates.size(), std::memory_order_relaxed);
        // Emit in subtree-scan order so planned and scanned searches
        // are indistinguishable to callers.
        std::sort(plan.candidates.begin(), plan.candidates.end(),
                  [](const auto& a, const auto& b) {
                    return TreeOrderLess(a.second, b.second);
                  });
        uint64_t matched = 0;
        for (const auto& [norm_dn, dn] : plan.candidates) {
          if (!dn.IsWithin(request.base)) continue;
          const TreeNode* node = FindNode(*snapshot, dn);
          if (node == nullptr || !request.filter.Matches(node->entry)) {
            continue;
          }
          ++matched;
          if (request.size_limit > 0 &&
              result.entries.size() >= request.size_limit) {
            read_stats_.candidates_matched.fetch_add(
                matched, std::memory_order_relaxed);
            return Status::DeadlineExceeded("size limit exceeded");
          }
          result.entries.push_back(Project(node->entry, request.attributes));
        }
        read_stats_.candidates_matched.fetch_add(matched,
                                                 std::memory_order_relaxed);
      } else {
        read_stats_.scan_plans.fetch_add(1, std::memory_order_relaxed);
        Status limit_status = Status::Ok();
        if (request.base.IsRoot()) {
          // The virtual root is not a real entry: search its subtrees.
          base->children.ForEach(
              [&](const std::string&, const TreeNodePtr& child) {
                CollectScan(child.get(), request, &result.entries,
                            &limit_status);
                return limit_status.ok();
              });
        } else {
          CollectScan(base, request, &result.entries, &limit_status);
        }
        if (!limit_status.ok()) return limit_status;
      }
      break;
    }
  }
  return result;
}

void Backend::AddListener(Listener listener) {
  MutexLock lock(&write_mutex_);
  listeners_.push_back(std::move(listener));
}

std::vector<Entry> Backend::DumpAll() const {
  SnapshotPtr snapshot = GetSnapshot();
  std::vector<Entry> out;
  out.reserve(snapshot->entry_count);
  ForEachEntry(*snapshot, [&out](const Entry& entry) {
    out.push_back(entry);
    return true;
  });
  return out;
}

uint64_t Backend::ChangeCount() const {
  return GetSnapshot()->version;
}

Backend::ReadStats Backend::read_stats() const {
  ReadStats stats;
  stats.searches = read_stats_.searches.load(std::memory_order_relaxed);
  stats.gets = read_stats_.gets.load(std::memory_order_relaxed);
  stats.exists = read_stats_.exists.load(std::memory_order_relaxed);
  stats.indexed_plans =
      read_stats_.indexed_plans.load(std::memory_order_relaxed);
  stats.scan_plans = read_stats_.scan_plans.load(std::memory_order_relaxed);
  stats.candidates_examined =
      read_stats_.candidates_examined.load(std::memory_order_relaxed);
  stats.candidates_matched =
      read_stats_.candidates_matched.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace metacomm::ldap
