#include "ldap/backend.h"

#include <algorithm>


#include "common/strings.h"

namespace metacomm::ldap {

Backend::Node* Backend::FindNode(const Dn& dn) const {
  // Walk from the root; DN rdns are leaf-first, so iterate backwards.
  const Node* node = &root_;
  const auto& rdns = dn.rdns();
  for (auto it = rdns.rbegin(); it != rdns.rend(); ++it) {
    auto child = node->children.find(it->Normalized());
    if (child == node->children.end()) return nullptr;
    node = child->second.get();
  }
  return const_cast<Node*>(node);
}

Status Backend::Add(const Entry& entry) {
  if (entry.dn().IsRoot()) {
    return Status::InvalidArgument("cannot add the root DSE");
  }
  if (schema_ != nullptr) {
    METACOMM_RETURN_IF_ERROR(schema_->ValidateEntry(entry));
  }
  WriterMutexLock lock(&mutex_);
  Node* parent = FindNode(entry.dn().Parent());
  if (parent == nullptr) {
    return Status::NotFound("parent does not exist: " +
                            entry.dn().Parent().ToString());
  }
  std::string key = entry.dn().leaf().Normalized();
  if (parent->children.count(key) > 0) {
    return Status::AlreadyExists("entry already exists: " +
                                 entry.dn().ToString());
  }
  auto node = std::make_unique<Node>();
  node->entry = entry;
  parent->children.emplace(key, std::move(node));
  IndexEntry(entry, /*insert=*/true);

  ChangeRecord record;
  record.sequence = ++sequence_;
  record.op = UpdateOp::kAdd;
  record.dn = entry.dn();
  record.new_entry = entry;
  Notify(std::move(record));
  return Status::Ok();
}

Status Backend::Delete(const Dn& dn) {
  if (dn.IsRoot()) {
    return Status::InvalidArgument("cannot delete the root DSE");
  }
  WriterMutexLock lock(&mutex_);
  Node* parent = FindNode(dn.Parent());
  if (parent == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  auto it = parent->children.find(dn.leaf().Normalized());
  if (it == parent->children.end()) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  if (!it->second->children.empty()) {
    return Status::SchemaViolation("not allowed on non-leaf: " +
                                   dn.ToString());
  }
  Entry old_entry = it->second->entry;
  IndexEntry(old_entry, /*insert=*/false);
  parent->children.erase(it);

  ChangeRecord record;
  record.sequence = ++sequence_;
  record.op = UpdateOp::kDelete;
  record.dn = dn;
  record.old_entry = std::move(old_entry);
  Notify(std::move(record));
  return Status::Ok();
}

Status Backend::ApplyMods(const Rdn& rdn,
                          const std::vector<Modification>& mods,
                          Entry* entry) const {
  for (const Modification& mod : mods) {
    // RDN attribute protection: an operation may not remove or replace
    // a value that names the entry. (Adding extra values is fine.)
    bool is_rdn_attr = false;
    std::string rdn_value;
    for (const Ava& ava : rdn.avas()) {
      if (EqualsIgnoreCase(ava.attribute, mod.attribute)) {
        is_rdn_attr = true;
        rdn_value = ava.value;
      }
    }
    switch (mod.type) {
      case Modification::Type::kAdd:
        if (mod.values.empty()) {
          return Status::InvalidArgument("modify/add with no values: " +
                                         mod.attribute);
        }
        for (const std::string& v : mod.values) {
          entry->AddValue(mod.attribute, v);
        }
        break;
      case Modification::Type::kDelete:
        if (mod.values.empty()) {
          if (is_rdn_attr) {
            return Status::SchemaViolation("not allowed on RDN: " +
                                           mod.attribute);
          }
          if (!entry->Remove(mod.attribute)) {
            return Status::NotFound("no such attribute: " + mod.attribute);
          }
        } else {
          for (const std::string& v : mod.values) {
            if (is_rdn_attr && EqualsIgnoreCase(v, rdn_value)) {
              return Status::SchemaViolation("not allowed on RDN: " +
                                             mod.attribute + "=" + v);
            }
            if (!entry->RemoveValue(mod.attribute, v)) {
              return Status::NotFound("no such value: " + mod.attribute +
                                      "=" + v);
            }
          }
        }
        break;
      case Modification::Type::kReplace: {
        if (is_rdn_attr) {
          // Replacement must retain the RDN value.
          bool keeps = std::any_of(
              mod.values.begin(), mod.values.end(),
              [&rdn_value](const std::string& v) {
                return EqualsIgnoreCase(v, rdn_value);
              });
          if (!keeps) {
            return Status::SchemaViolation("not allowed on RDN: " +
                                           mod.attribute);
          }
        }
        entry->Set(mod.attribute, mod.values);
        break;
      }
    }
  }
  return Status::Ok();
}

Status Backend::Modify(const Dn& dn, const std::vector<Modification>& mods) {
  WriterMutexLock lock(&mutex_);
  Node* node = FindNode(dn);
  if (node == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  Entry updated = node->entry;
  METACOMM_RETURN_IF_ERROR(ApplyMods(dn.leaf(), mods, &updated));
  if (schema_ != nullptr) {
    METACOMM_RETURN_IF_ERROR(schema_->ValidateEntry(updated));
  }
  Entry old_entry = node->entry;
  IndexEntry(old_entry, /*insert=*/false);
  node->entry = updated;
  IndexEntry(node->entry, /*insert=*/true);

  ChangeRecord record;
  record.sequence = ++sequence_;
  record.op = UpdateOp::kModify;
  record.dn = dn;
  record.old_entry = std::move(old_entry);
  record.new_entry = node->entry;
  Notify(std::move(record));
  return Status::Ok();
}

Status Backend::ModifyRdn(const Dn& dn, const Rdn& new_rdn,
                          bool delete_old_rdn) {
  if (dn.IsRoot()) {
    return Status::InvalidArgument("cannot rename the root DSE");
  }
  WriterMutexLock lock(&mutex_);
  Node* parent = FindNode(dn.Parent());
  if (parent == nullptr) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  auto it = parent->children.find(dn.leaf().Normalized());
  if (it == parent->children.end()) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  std::string new_key = new_rdn.Normalized();
  if (new_key != dn.leaf().Normalized() &&
      parent->children.count(new_key) > 0) {
    return Status::AlreadyExists("sibling already exists: " +
                                 new_rdn.ToString());
  }

  // Build the post-rename entry.
  Node* node = it->second.get();
  Entry updated = node->entry;
  Dn new_dn = dn.WithLeaf(new_rdn);
  updated.set_dn(new_dn);
  for (const Ava& ava : new_rdn.avas()) {
    updated.AddValue(ava.attribute, ava.value);
  }
  if (delete_old_rdn) {
    for (const Ava& old_ava : dn.leaf().avas()) {
      // Keep values that also appear in the new RDN.
      bool kept = std::any_of(new_rdn.avas().begin(), new_rdn.avas().end(),
                              [&old_ava](const Ava& n) {
                                return EqualsIgnoreCase(n.attribute,
                                                        old_ava.attribute) &&
                                       EqualsIgnoreCase(n.value,
                                                        old_ava.value);
                              });
      if (!kept) updated.RemoveValue(old_ava.attribute, old_ava.value);
    }
  }
  if (schema_ != nullptr) {
    METACOMM_RETURN_IF_ERROR(schema_->ValidateEntry(updated));
  }

  Entry old_entry = node->entry;

  // De-index the whole subtree (descendant DNs change too).
  ReindexSubtree(node, /*insert=*/false);
  node->entry = updated;
  RewriteDns(node, new_dn);
  ReindexSubtree(node, /*insert=*/true);

  // Re-key under the parent.
  std::unique_ptr<Node> owned = std::move(it->second);
  parent->children.erase(it);
  parent->children.emplace(new_key, std::move(owned));

  ChangeRecord record;
  record.sequence = ++sequence_;
  record.op = UpdateOp::kModifyRdn;
  record.dn = dn;
  record.new_dn = new_dn;
  record.old_entry = std::move(old_entry);
  record.new_entry = updated;
  Notify(std::move(record));
  return Status::Ok();
}

void Backend::RewriteDns(Node* node, const Dn& new_dn) {
  node->entry.set_dn(new_dn);
  for (auto& [key, child] : node->children) {
    RewriteDns(child.get(), new_dn.Child(child->entry.dn().leaf()));
  }
}

StatusOr<Entry> Backend::Get(const Dn& dn) const {
  ReaderMutexLock lock(&mutex_);
  Node* node = FindNode(dn);
  if (node == nullptr || dn.IsRoot()) {
    return Status::NotFound("no such object: " + dn.ToString());
  }
  return node->entry;
}

bool Backend::Exists(const Dn& dn) const {
  ReaderMutexLock lock(&mutex_);
  return !dn.IsRoot() && FindNode(dn) != nullptr;
}

size_t Backend::Size() const {
  ReaderMutexLock lock(&mutex_);
  size_t count = 0;
  // Iterative DFS over the tree.
  std::vector<const Node*> stack{&root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& [key, child] : node->children) {
      ++count;
      stack.push_back(child.get());
    }
  }
  return count;
}

Entry Backend::Project(const Entry& entry,
                       const std::vector<std::string>& attributes) {
  if (attributes.empty()) return entry;
  Entry out(entry.dn());
  for (const std::string& name : attributes) {
    auto it = entry.attributes().find(name);
    if (it != entry.attributes().end()) {
      out.Set(it->second.name(), it->second.values());
    }
  }
  return out;
}

void Backend::CollectMatches(const Node* node, const SearchRequest& request,
                             size_t depth_remaining,
                             std::vector<Entry>* out,
                             Status* limit_status) const {
  if (!limit_status->ok()) return;
  if (request.size_limit > 0 && out->size() >= request.size_limit) {
    *limit_status = Status::DeadlineExceeded("size limit exceeded");
    return;
  }
  if (request.filter.Matches(node->entry)) {
    out->push_back(Project(node->entry, request.attributes));
  }
  if (depth_remaining == 0) return;
  for (const auto& [key, child] : node->children) {
    CollectMatches(child.get(), request, depth_remaining - 1, out,
                   limit_status);
  }
}

StatusOr<SearchResult> Backend::Search(const SearchRequest& request) const {
  ReaderMutexLock lock(&mutex_);
  Node* base = FindNode(request.base);
  if (base == nullptr) {
    return Status::NotFound("no such object: " + request.base.ToString());
  }
  SearchResult result;
  Status limit_status = Status::Ok();

  // Fast path: subtree search with a top-level equality filter uses the
  // equality index.
  if (request.scope == Scope::kSubtree &&
      request.filter.kind() == Filter::Kind::kEquality) {
    // Lexpress closure turns every propagation into a burst of indexed
    // searches, so this path is hot: normalize the probes into one
    // reused scratch buffer instead of materializing fresh key strings
    // per call (the maps have transparent comparators).
    thread_local std::string probe;
    ToLowerInto(request.filter.attribute(), &probe);
    auto attr_it = index_.find(probe);
    if (attr_it != index_.end()) {
      NormalizeSpaceLowerInto(request.filter.value(), &probe);
      auto value_it = attr_it->second.find(probe);
      if (value_it != attr_it->second.end()) {
        for (const auto& [norm_dn, dn] : value_it->second) {
          if (!dn.IsWithin(request.base)) continue;
          Node* node = FindNode(dn);
          if (node != nullptr && request.filter.Matches(node->entry)) {
            if (request.size_limit > 0 &&
                result.entries.size() >= request.size_limit) {
              return Status::DeadlineExceeded("size limit exceeded");
            }
            result.entries.push_back(
                Project(node->entry, request.attributes));
          }
        }
      }
      return result;
    }
  }

  switch (request.scope) {
    case Scope::kBase:
      if (!request.base.IsRoot() && request.filter.Matches(base->entry)) {
        result.entries.push_back(Project(base->entry, request.attributes));
      }
      break;
    case Scope::kOneLevel:
      for (const auto& [key, child] : base->children) {
        if (request.filter.Matches(child->entry)) {
          if (request.size_limit > 0 &&
              result.entries.size() >= request.size_limit) {
            return Status::DeadlineExceeded("size limit exceeded");
          }
          result.entries.push_back(
              Project(child->entry, request.attributes));
        }
      }
      break;
    case Scope::kSubtree: {
      if (request.base.IsRoot()) {
        // The virtual root is not a real entry: search its subtrees.
        for (const auto& [key, child] : base->children) {
          CollectMatches(child.get(), request, SIZE_MAX - 1, &result.entries,
                         &limit_status);
        }
      } else {
        CollectMatches(base, request, SIZE_MAX - 1, &result.entries,
                       &limit_status);
      }
      if (!limit_status.ok()) return limit_status;
      break;
    }
  }
  return result;
}

void Backend::IndexEntry(const Entry& entry, bool insert) {
  std::string norm_dn = entry.dn().Normalized();
  // Scratch keys reused across every attribute/value of the entry.
  std::string attr_key;
  std::string value_key;
  for (const auto& [name, attr] : entry.attributes()) {
    ToLowerInto(name, &attr_key);
    for (const std::string& value : attr.values()) {
      NormalizeSpaceLowerInto(value, &value_key);
      if (insert) {
        index_[attr_key][value_key].emplace(norm_dn, entry.dn());
      } else {
        auto attr_it = index_.find(attr_key);
        if (attr_it == index_.end()) continue;
        auto value_it = attr_it->second.find(value_key);
        if (value_it == attr_it->second.end()) continue;
        value_it->second.erase(norm_dn);
        if (value_it->second.empty()) attr_it->second.erase(value_it);
      }
    }
  }
}

void Backend::ReindexSubtree(Node* node, bool insert) {
  IndexEntry(node->entry, insert);
  for (auto& [key, child] : node->children) {
    ReindexSubtree(child.get(), insert);
  }
}

void Backend::AddListener(Listener listener) {
  WriterMutexLock lock(&mutex_);
  listeners_.push_back(std::move(listener));
}

void Backend::Notify(ChangeRecord record) {
  for (const Listener& listener : listeners_) {
    listener(record);
  }
}

std::vector<Entry> Backend::DumpAll() const {
  ReaderMutexLock lock(&mutex_);
  std::vector<Entry> out;
  // BFS guarantees parents precede children.
  std::vector<const Node*> frontier{&root_};
  while (!frontier.empty()) {
    std::vector<const Node*> next;
    for (const Node* node : frontier) {
      for (const auto& [key, child] : node->children) {
        out.push_back(child->entry);
        next.push_back(child.get());
      }
    }
    frontier = std::move(next);
  }
  return out;
}

uint64_t Backend::ChangeCount() const {
  ReaderMutexLock lock(&mutex_);
  return sequence_;
}

}  // namespace metacomm::ldap
