#ifndef METACOMM_LDAP_REPLICATION_H_
#define METACOMM_LDAP_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ldap/backend.h"

namespace metacomm::ldap {

/// Supplier-side changelog for LDAP replication.
///
/// "LDAP servers make extensive use of replication to make directory
/// information highly available" (paper §2) with relaxed write-write
/// consistency: replicas converge to the same attribute values after a
/// delay. This changelog records committed backend changes; consumers
/// pull everything after their cookie and apply it in order.
class Changelog {
 public:
  /// Attaches to `backend`, recording every subsequent change.
  /// The changelog must outlive the backend's use of the listener.
  void Attach(Backend* backend);

  /// Changes with sequence strictly greater than `after_sequence`.
  std::vector<ChangeRecord> ChangesAfter(uint64_t after_sequence) const
      EXCLUDES(mutex_);

  /// Highest recorded sequence (0 when empty).
  uint64_t LastSequence() const EXCLUDES(mutex_);

  /// Drops records up to and including `sequence` (log trimming).
  void TrimThrough(uint64_t sequence) EXCLUDES(mutex_);

  size_t Size() const EXCLUDES(mutex_);

 private:
  // Commit notifies listeners while still holding the backend write
  // lock, so the changelog must rank after ldap.backend.write.
  mutable Mutex mutex_{LockRank::kLdapChangelog, "ldap.changelog"};
  std::deque<ChangeRecord> records_ GUARDED_BY(mutex_);
};

/// Consumer: applies supplier changes to a replica backend.
///
/// Apply is idempotent in the epidemic-replication sense (paper cites
/// Demers et al.): re-applied adds become overwrites, deletes of
/// missing entries succeed — so replaying an overlapping window still
/// converges.
class ReplicationConsumer {
 public:
  /// `replica` must outlive the consumer.
  explicit ReplicationConsumer(Backend* replica) : replica_(replica) {}

  /// Pulls from `changelog` everything after the stored cookie and
  /// applies it. Returns the number of records applied.
  StatusOr<size_t> PullFrom(const Changelog& changelog);

  /// Applies a single change record (exposed for tests).
  Status ApplyRecord(const ChangeRecord& record);

  uint64_t cookie() const { return cookie_; }

 private:
  Backend* replica_;
  uint64_t cookie_ = 0;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_REPLICATION_H_
