#include "ldap/server.h"

#include "ldap/result.h"

namespace metacomm::ldap {

LdapServer::LdapServer(Schema schema, ServerConfig config)
    : schema_(std::move(schema)),
      config_(config),
      backend_(&schema_) {}

void LdapServer::AddUser(const Dn& dn, std::string password) {
  MutexLock lock(&users_mutex_);
  users_[dn.Normalized()] = std::move(password);
}

Status LdapServer::CheckWriteAccess(const OpContext& ctx,
                                    const Dn& target) const {
  if (ctx.internal) return Status::Ok();  // The Update Manager.
  if (config_.acl.has_value()) {
    if (!config_.acl->CanWrite(ctx.principal, target)) {
      return Status::PermissionDenied("insufficient access to " +
                                      target.ToString());
    }
    return Status::Ok();
  }
  if (config_.allow_anonymous_writes) return Status::Ok();
  if (ctx.principal.empty()) {
    return Status::PermissionDenied("writes require an authenticated bind");
  }
  return Status::Ok();
}

Status LdapServer::Add(const OpContext& ctx, const AddRequest& request) {
  METACOMM_RETURN_IF_ERROR(CheckWriteAccess(ctx, request.entry.dn()));
  return backend_.Add(request.entry);
}

Status LdapServer::Delete(const OpContext& ctx,
                          const DeleteRequest& request) {
  METACOMM_RETURN_IF_ERROR(CheckWriteAccess(ctx, request.dn));
  return backend_.Delete(request.dn);
}

Status LdapServer::Modify(const OpContext& ctx,
                          const ModifyRequest& request) {
  METACOMM_RETURN_IF_ERROR(CheckWriteAccess(ctx, request.dn));
  return backend_.Modify(request.dn, request.mods);
}

Status LdapServer::ModifyRdn(const OpContext& ctx,
                             const ModifyRdnRequest& request) {
  METACOMM_RETURN_IF_ERROR(CheckWriteAccess(ctx, request.dn));
  return backend_.ModifyRdn(request.dn, request.new_rdn,
                            request.delete_old_rdn);
}

StatusOr<SearchResult> LdapServer::Search(const OpContext& ctx,
                                          const SearchRequest& request) {
  METACOMM_ASSIGN_OR_RETURN(SearchResult result,
                            backend_.Search(request));
  // With ACLs, entries the principal may not read silently drop out
  // of the result, like production directory servers behave.
  if (config_.acl.has_value() && !ctx.internal) {
    std::vector<Entry> visible;
    visible.reserve(result.entries.size());
    for (Entry& entry : result.entries) {
      if (config_.acl->CanRead(ctx.principal, entry.dn())) {
        visible.push_back(std::move(entry));
      }
    }
    result.entries = std::move(visible);
  }
  return result;
}

Status LdapServer::Compare(const OpContext& ctx,
                           const CompareRequest& request) {
  if (config_.acl.has_value() && !ctx.internal &&
      !config_.acl->CanCompare(ctx.principal, request.dn)) {
    return Status::PermissionDenied("insufficient access to " +
                                    request.dn.ToString());
  }
  METACOMM_ASSIGN_OR_RETURN(Entry entry, backend_.Get(request.dn));
  auto it = entry.attributes().find(request.attribute);
  if (it == entry.attributes().end()) {
    return Status::NotFound("no such attribute: " + request.attribute);
  }
  if (it->second.HasValue(request.value)) return Status::Ok();
  return CompareFalseStatus();
}

StatusOr<std::string> LdapServer::Bind(const BindRequest& request) {
  if (request.dn.IsRoot() && request.password.empty()) {
    return std::string();  // Anonymous bind.
  }
  MutexLock lock(&users_mutex_);
  auto it = users_.find(request.dn.Normalized());
  if (it == users_.end() || it->second != request.password) {
    return Status::PermissionDenied("invalid credentials");
  }
  return request.dn.ToString();
}

}  // namespace metacomm::ldap
