#ifndef METACOMM_LDAP_BACKEND_H_
#define METACOMM_LDAP_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/atomic_shared_ptr.h"
#include "common/mutex.h"
#include "common/persistent_map.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ldap/entry.h"
#include "ldap/operations.h"
#include "ldap/schema.h"

namespace metacomm::ldap {

/// A committed change, as observed by backend listeners (the
/// replication changelog and test instrumentation).
struct ChangeRecord {
  uint64_t sequence = 0;
  UpdateOp op = UpdateOp::kAdd;
  Dn dn;                          // DN before the change.
  std::optional<Dn> new_dn;       // For kModifyRdn: DN after rename.
  std::optional<Entry> old_entry; // Absent for kAdd.
  std::optional<Entry> new_entry; // Absent for kDelete.
};

/// In-memory Directory Information Tree with LDAP update semantics.
///
/// The backend enforces exactly the directory behaviour MetaComm has to
/// cope with (paper §2, §5.1, §5.3):
///  * every update touches a single entry and is atomic;
///  * there is no way to group updates into a transaction;
///  * Modify cannot touch RDN attribute values — that needs ModifyRDN,
///    so "rename + change extension" is inherently two operations;
///  * deletes apply to leaves only.
///
/// Concurrency model — snapshot isolation (RCU-style):
///  * The entire directory state (entry tree + value index) lives in an
///    immutable Snapshot published through one atomic shared_ptr.
///  * Readers (Get/Exists/Search/DumpAll/Size/ChangeCount) load the
///    current snapshot and never take a mutex: they cannot block
///    behind writers, and they observe a single consistent version for
///    the whole operation.
///  * Writers serialize on `write_mutex_`, derive the next version by
///    copy-on-write (persistent maps share all untouched structure),
///    and publish it with one pointer swap. Old snapshots are freed by
///    shared_ptr refcounting once the last reader drops them.
///
/// The value index keeps ordered keys, so subtree searches are planned
/// (see ldap/query_planner.h): equality and prefix-substring atoms —
/// including under and/or composition — resolve to candidate DN sets
/// before any entry is touched, and only unindexable filters fall back
/// to the subtree scan.
class Backend {
 public:
  using Listener = std::function<void(const ChangeRecord&)>;

  /// One immutable node of a published tree version.
  struct TreeNode {
    Entry entry;
    // Normalized child RDN -> node. Ordered, so iteration is
    // deterministic (stable search results, stable dumps).
    PersistentMap<std::shared_ptr<const TreeNode>> children;
  };

  /// Equality/ordered index layers: lower(attr) -> normalized value ->
  /// normalized DN -> DN. All layers are persistent maps, so a writer
  /// touches O(log n) nodes per indexed value and the ordered middle
  /// layer supports range scans for prefix plans.
  using Postings = PersistentMap<Dn>;
  using ValueIndex = PersistentMap<Postings>;
  using AttrIndex = PersistentMap<ValueIndex>;

  /// One immutable published version of the whole directory.
  struct Snapshot {
    /// Sequence number of the last change folded in (== ChangeCount).
    uint64_t version = 0;
    /// Virtual root; root->entry has the empty DN.
    std::shared_ptr<const TreeNode> root;
    AttrIndex index;
    size_t entry_count = 0;
    /// RealClock micros at publication (drives monitor snapshot age).
    int64_t published_micros = 0;
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  /// Read-side counters. Loads are lock-free; see read_stats().
  struct ReadStats {
    uint64_t searches = 0;
    uint64_t gets = 0;
    uint64_t exists = 0;
    /// Subtree searches answered from an index-derived candidate set.
    uint64_t indexed_plans = 0;
    /// Subtree searches that fell back to the full scan.
    uint64_t scan_plans = 0;
    /// Candidate entries examined by indexed plans.
    uint64_t candidates_examined = 0;
    /// Candidates that actually matched the filter.
    uint64_t candidates_matched = 0;
  };

  /// `schema` may be nullptr to run schema-less (some unit tests and
  /// the raw-directory baselines do this); when set, every resulting
  /// entry is validated before commit. The schema must outlive the
  /// backend.
  explicit Backend(const Schema* schema = nullptr);

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Adds a leaf entry. The parent must exist, except for depth-1
  /// entries which act as directory suffixes.
  Status Add(const Entry& entry) EXCLUDES(write_mutex_);

  /// Deletes a leaf entry.
  Status Delete(const Dn& dn) EXCLUDES(write_mutex_);

  /// Applies a modification sequence to one entry atomically. Rejects
  /// changes that would remove an RDN attribute value
  /// (kNotAllowedOnRdn semantics).
  Status Modify(const Dn& dn, const std::vector<Modification>& mods)
      EXCLUDES(write_mutex_);

  /// Renames a leaf entry. Descendant DNs are rewritten.
  Status ModifyRdn(const Dn& dn, const Rdn& new_rdn, bool delete_old_rdn)
      EXCLUDES(write_mutex_);

  /// Returns a copy of the entry at `dn`. Lock-free.
  StatusOr<Entry> Get(const Dn& dn) const;

  /// True if an entry exists at `dn`. Lock-free.
  bool Exists(const Dn& dn) const;

  /// Search over the tree. Lock-free: runs entirely on one snapshot.
  StatusOr<SearchResult> Search(const SearchRequest& request) const;

  /// Number of entries. Lock-free (maintained per snapshot).
  size_t Size() const;

  /// Registers a post-commit listener. Listeners run under the
  /// backend's write mutex (so they observe changes in commit order)
  /// and must not write back into the backend; snapshot reads are
  /// safe.
  void AddListener(Listener listener) EXCLUDES(write_mutex_);

  /// Snapshot of every entry, parents before children (suitable for
  /// reloading via Add). Lock-free.
  std::vector<Entry> DumpAll() const;

  /// Number of committed changes so far. Lock-free.
  uint64_t ChangeCount() const;

  /// The current published version. Readers that need multiple
  /// consistent lookups (LDIF export, the query planner tests) hold
  /// one snapshot and resolve everything against it.
  SnapshotPtr GetSnapshot() const;

  /// Point-in-time copy of the read-side counters.
  ReadStats read_stats() const;

  /// Finds the node for `dn` in `snapshot`; nullptr when absent.
  static const TreeNode* FindNode(const Snapshot& snapshot, const Dn& dn);

  /// Visits every entry of `snapshot`, parents before children.
  /// `fn(entry)` returns false to stop.
  static void ForEachEntry(const Snapshot& snapshot,
                           const std::function<bool(const Entry&)>& fn);

 private:
  using TreeNodePtr = std::shared_ptr<const TreeNode>;

  /// Applies `mods` to `entry` (already a copy). Also enforces
  /// RDN-attribute protection using `rdn`. Touches no guarded state.
  Status ApplyMods(const Rdn& rdn, const std::vector<Modification>& mods,
                   Entry* entry) const;

  /// Current snapshot as seen by the write path (writers are the only
  /// mutators, so this is also the parent of the next version).
  SnapshotPtr WriterSnapshot() const REQUIRES(write_mutex_);

  /// Publishes `snapshot` (stamping version/time) as the new current
  /// version and notifies listeners with `record`.
  void Commit(Snapshot snapshot, ChangeRecord record)
      REQUIRES(write_mutex_);

  const Schema* schema_;

  /// Serializes the write path; never taken by readers. Listeners
  /// (the replication changelog) fire under it, so everything they
  /// lock must rank after kLdapBackendWrite.
  mutable Mutex write_mutex_{LockRank::kLdapBackendWrite,
                             "ldap.backend.write"};
  /// The published version. Readers copy the pointer through a cell
  /// whose spin bit covers only the refcount bump (see
  /// common/atomic_shared_ptr.h) — writers swap the pointer, they
  /// never lock readers out of the snapshot they hold.
  common::AtomicSharedPtr<const Snapshot> snapshot_;
  std::vector<Listener> listeners_ GUARDED_BY(write_mutex_);
  uint64_t sequence_ GUARDED_BY(write_mutex_) = 0;

  /// Read counters; relaxed atomics so the read path stays lock-free.
  struct AtomicReadStats {
    std::atomic<uint64_t> searches{0};
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> exists{0};
    std::atomic<uint64_t> indexed_plans{0};
    std::atomic<uint64_t> scan_plans{0};
    std::atomic<uint64_t> candidates_examined{0};
    std::atomic<uint64_t> candidates_matched{0};
  };
  mutable AtomicReadStats read_stats_;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_BACKEND_H_
