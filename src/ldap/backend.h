#ifndef METACOMM_LDAP_BACKEND_H_
#define METACOMM_LDAP_BACKEND_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ldap/entry.h"
#include "ldap/operations.h"
#include "ldap/schema.h"

namespace metacomm::ldap {

/// A committed change, as observed by backend listeners (the
/// replication changelog and test instrumentation).
struct ChangeRecord {
  uint64_t sequence = 0;
  UpdateOp op = UpdateOp::kAdd;
  Dn dn;                          // DN before the change.
  std::optional<Dn> new_dn;       // For kModifyRdn: DN after rename.
  std::optional<Entry> old_entry; // Absent for kAdd.
  std::optional<Entry> new_entry; // Absent for kDelete.
};

/// In-memory Directory Information Tree with LDAP update semantics.
///
/// The backend enforces exactly the directory behaviour MetaComm has to
/// cope with (paper §2, §5.1, §5.3):
///  * every update touches a single entry and is atomic;
///  * there is no way to group updates into a transaction;
///  * Modify cannot touch RDN attribute values — that needs ModifyRDN,
///    so "rename + change extension" is inherently two operations;
///  * deletes apply to leaves only.
///
/// A per-attribute equality index accelerates subtree searches; the
/// whole tree is guarded by a readers-writer lock, so the heavily
/// read-oriented LDAP workloads the paper mentions scale across reader
/// threads.
class Backend {
 public:
  using Listener = std::function<void(const ChangeRecord&)>;

  /// `schema` may be nullptr to run schema-less (some unit tests and
  /// the raw-directory baselines do this); when set, every resulting
  /// entry is validated before commit. The schema must outlive the
  /// backend.
  explicit Backend(const Schema* schema = nullptr) : schema_(schema) {}

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Adds a leaf entry. The parent must exist, except for depth-1
  /// entries which act as directory suffixes.
  Status Add(const Entry& entry) EXCLUDES(mutex_);

  /// Deletes a leaf entry.
  Status Delete(const Dn& dn) EXCLUDES(mutex_);

  /// Applies a modification sequence to one entry atomically. Rejects
  /// changes that would remove an RDN attribute value
  /// (kNotAllowedOnRdn semantics).
  Status Modify(const Dn& dn, const std::vector<Modification>& mods)
      EXCLUDES(mutex_);

  /// Renames a leaf entry. Descendant DNs are rewritten.
  Status ModifyRdn(const Dn& dn, const Rdn& new_rdn, bool delete_old_rdn)
      EXCLUDES(mutex_);

  /// Returns a copy of the entry at `dn`.
  StatusOr<Entry> Get(const Dn& dn) const EXCLUDES(mutex_);

  /// True if an entry exists at `dn`.
  bool Exists(const Dn& dn) const EXCLUDES(mutex_);

  /// Search over the tree.
  StatusOr<SearchResult> Search(const SearchRequest& request) const
      EXCLUDES(mutex_);

  /// Number of entries.
  size_t Size() const EXCLUDES(mutex_);

  /// Registers a post-commit listener. Listeners run under the
  /// backend's exclusive lock (so they observe changes in commit
  /// order) and must not call back into the backend.
  void AddListener(Listener listener) EXCLUDES(mutex_);

  /// Snapshot of every entry, parents before children (suitable for
  /// reloading via Add).
  std::vector<Entry> DumpAll() const EXCLUDES(mutex_);

  /// Number of committed changes so far.
  uint64_t ChangeCount() const EXCLUDES(mutex_);

 private:
  struct Node {
    Entry entry;
    // Normalized child RDN -> node. Ordered map gives deterministic
    // iteration (stable search results, stable dumps).
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  /// Finds the node for `dn`; nullptr when absent. Requires at least a
  /// shared hold (writers hold exclusive, which satisfies it).
  Node* FindNode(const Dn& dn) const REQUIRES_SHARED(mutex_);

  /// Applies `mods` to `entry` (already a copy). Also enforces
  /// RDN-attribute protection using `rdn`. Touches no guarded state.
  Status ApplyMods(const Rdn& rdn, const std::vector<Modification>& mods,
                   Entry* entry) const;

  void IndexEntry(const Entry& entry, bool insert) REQUIRES(mutex_);
  void ReindexSubtree(Node* node, bool insert) REQUIRES(mutex_);

  /// Rewrites the DNs of `node` and descendants to live under
  /// `new_parent_dn`. Caller handles indexes.
  void RewriteDns(Node* node, const Dn& new_dn) REQUIRES(mutex_);

  void CollectMatches(const Node* node, const SearchRequest& request,
                      size_t depth_remaining, std::vector<Entry>* out,
                      Status* limit_status) const REQUIRES_SHARED(mutex_);

  void Notify(ChangeRecord record) REQUIRES(mutex_);

  static Entry Project(const Entry& entry,
                       const std::vector<std::string>& attributes);

  const Schema* schema_;
  mutable SharedMutex mutex_;
  // Virtual root; root_.entry has the empty DN.
  Node root_ GUARDED_BY(mutex_);
  // Equality index: lower(attr) -> normalized value -> normalized DNs.
  // Transparent comparators so the Search fast path and IndexEntry can
  // probe with string_views over reused scratch buffers instead of
  // materializing a fresh key string per lookup.
  using DnByNormDn = std::map<std::string, Dn, std::less<>>;
  using ValueIndex = std::map<std::string, DnByNormDn, std::less<>>;
  std::map<std::string, ValueIndex, std::less<>> index_ GUARDED_BY(mutex_);
  std::vector<Listener> listeners_ GUARDED_BY(mutex_);
  uint64_t sequence_ GUARDED_BY(mutex_) = 0;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_BACKEND_H_
