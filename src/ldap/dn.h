#ifndef METACOMM_LDAP_DN_H_
#define METACOMM_LDAP_DN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace metacomm::ldap {

/// One attribute/value assertion inside an RDN, e.g. cn=John Doe.
struct Ava {
  std::string attribute;
  std::string value;

  friend bool operator==(const Ava&, const Ava&) = default;
};

/// A Relative Distinguished Name: the name of an entry relative to its
/// parent. Usually a single AVA ("cn=John Doe"); LDAP also allows
/// multi-valued RDNs joined with '+' ("cn=John+employeeNumber=42").
class Rdn {
 public:
  Rdn() = default;

  /// Convenience constructor for the common single-AVA case.
  Rdn(std::string attribute, std::string value);

  /// Parses an RDN string ("cn=John Doe" or "cn=J\, Doe+ou=X").
  static StatusOr<Rdn> Parse(std::string_view text);

  const std::vector<Ava>& avas() const { return avas_; }
  bool empty() const { return avas_.empty(); }

  /// Appends an AVA. AVAs are kept sorted by attribute name so that the
  /// normalized form is canonical regardless of input order.
  void AddAva(std::string attribute, std::string value);

  /// Returns the value for `attribute` (case-insensitive), or empty.
  std::string ValueOf(std::string_view attribute) const;

  /// String form with proper escaping, e.g. "cn=Doe\, John".
  std::string ToString() const;

  /// Canonical matching form: attribute names lower-cased, values
  /// space-normalized and lower-cased (LDAP caseIgnoreMatch).
  std::string Normalized() const;

  friend bool operator==(const Rdn& a, const Rdn& b) {
    return a.Normalized() == b.Normalized();
  }

 private:
  std::vector<Ava> avas_;
};

/// A Distinguished Name: the full path of an entry from the root of the
/// directory tree, leaf first — "cn=John Doe, o=Marketing, o=Lucent"
/// names the entry John Doe under Marketing under Lucent (paper §2).
class Dn {
 public:
  Dn() = default;

  /// Constructs from RDNs in leaf-first order.
  explicit Dn(std::vector<Rdn> rdns) : rdns_(std::move(rdns)) {}

  /// Parses an LDAP string DN. Handles backslash escapes of the special
  /// characters , + " \ < > ; = and hex pairs (\2C), plus escaped
  /// leading/trailing spaces and leading '#'.
  static StatusOr<Dn> Parse(std::string_view text);

  /// The root of the tree (zero RDNs).
  static Dn Root() { return Dn(); }

  const std::vector<Rdn>& rdns() const { return rdns_; }
  bool IsRoot() const { return rdns_.empty(); }
  size_t depth() const { return rdns_.size(); }

  /// Leaf RDN; must not be called on the root.
  const Rdn& leaf() const { return rdns_.front(); }

  /// DN of the parent entry; parent of the root is the root.
  Dn Parent() const;

  /// Returns this DN extended with `rdn` as a new leaf (a child's DN).
  Dn Child(Rdn rdn) const;

  /// Returns the DN with the leaf RDN replaced (ModifyRDN semantics).
  Dn WithLeaf(Rdn rdn) const;

  /// True if this DN equals `ancestor` or lies beneath it.
  bool IsWithin(const Dn& ancestor) const;

  /// String form, e.g. "cn=John Doe,o=Marketing,o=Lucent".
  std::string ToString() const;

  /// Canonical matching form used as a map key (see Rdn::Normalized).
  std::string Normalized() const;

  friend bool operator==(const Dn& a, const Dn& b) {
    return a.Normalized() == b.Normalized();
  }

 private:
  std::vector<Rdn> rdns_;  // Leaf first.
};

/// Escapes a single AVA value per RFC 2253 for embedding in a DN string.
std::string EscapeDnValue(std::string_view value);

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_DN_H_
