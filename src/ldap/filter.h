#ifndef METACOMM_LDAP_FILTER_H_
#define METACOMM_LDAP_FILTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ldap/entry.h"

namespace metacomm::ldap {

/// An LDAP search filter (RFC 2254 string representation), e.g.
///   (&(objectClass=inetOrgPerson)(telephoneNumber=+1 908 582 9*))
///
/// Supported constructs: and &, or |, not !, equality =, substring
/// (with * wildcards), presence =*, >=, <=, and approximate ~= (folded
/// to a space/case-insensitive equality here).
class Filter {
 public:
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kEquality,
    kSubstring,
    kPresent,
    kGreaterOrEqual,
    kLessOrEqual,
    kApprox,
  };

  /// Parses an RFC 2254 filter string.
  static StatusOr<Filter> Parse(std::string_view text);

  /// Leaf constructors.
  static Filter Equality(std::string attribute, std::string value);
  static Filter Present(std::string attribute);
  static Filter Substring(std::string attribute, std::string pattern);
  static Filter GreaterOrEqual(std::string attribute, std::string value);
  static Filter LessOrEqual(std::string attribute, std::string value);
  static Filter Approx(std::string attribute, std::string value);

  /// Composite constructors.
  static Filter And(std::vector<Filter> children);
  static Filter Or(std::vector<Filter> children);
  static Filter Not(Filter child);

  /// Matches every entry: (objectClass=*).
  static Filter MatchAll();

  Kind kind() const { return kind_; }
  const std::string& attribute() const { return attribute_; }
  const std::string& value() const { return value_; }
  const std::vector<Filter>& children() const { return children_; }

  /// Evaluates the filter against `entry`.
  bool Matches(const Entry& entry) const;

  /// Serializes back to RFC 2254 text.
  std::string ToString() const;

 private:
  Filter() = default;

  Kind kind_ = Kind::kPresent;
  std::string attribute_;
  std::string value_;  // For kSubstring this is the glob pattern.
  std::vector<Filter> children_;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_FILTER_H_
