#ifndef METACOMM_LDAP_TEXT_PROTOCOL_H_
#define METACOMM_LDAP_TEXT_PROTOCOL_H_

#include <functional>
#include <string>

#include "ldap/service.h"

namespace metacomm::ldap {

/// A textual LDAP wire protocol (LDIF-flavoured, one request per
/// message) so that clients can reach the directory over an actual
/// protocol boundary — just as the device simulators are driven over
/// their proprietary command protocols. LDAPv3 proper is BER-encoded;
/// this carries the same operations with the same result codes in a
/// readable form.
///
/// Requests:
///   BIND dn: <dn>\npassword: <pw>
///   UNBIND
///   ADD\n<LDIF content record>
///   DELETE dn: <dn>
///   MODIFY\n<LDIF changetype:modify record>
///   MODRDN dn: <dn>\nnewrdn: <rdn>\ndeleteoldrdn: 0|1
///   SEARCH base: <dn>\nscope: base|one|sub\nfilter: <rfc2254>
///     [\nattrs: a,b,c][\nlimit: N]
///   COMPARE dn: <dn>\nattr: <name>\nvalue: <value>
///
/// Responses:
///   RESULT <numeric ldap code> <message>
/// followed, for SEARCH, by one LDIF block per entry separated by
/// blank lines, and for COMPARE by "TRUE"/"FALSE" on its own line.

/// Canonical reply a wire server sheds load with — "RESULT 51 ...
/// busy" (LDAP busy). Configured as net::TcpServerConfig::busy_reply
/// so both admission-control sheds and connection-budget sheds speak
/// the protocol's own vocabulary.
std::string BusyReply();

/// Canonical reply sent before tearing down a connection whose byte
/// stream violated the wire framing — "RESULT 2 ..." (protocolError).
std::string FramingErrorReply();

/// Server side: parses requests, runs them against a wrapped
/// LdapService (normally the LTAP gateway), serializes responses.
/// One handler instance per connection — it carries the bind state.
class TextProtocolHandler {
 public:
  /// `service` is not owned and must outlive the handler.
  explicit TextProtocolHandler(LdapService* service);

  /// Handles one request message, returns the response message.
  std::string Handle(const std::string& request);

  const OpContext& context() const { return context_; }

 private:
  LdapService* service_;
  OpContext context_;
};

/// Client side: an LdapService implementation that serializes every
/// operation, pushes it through `transport` (any function carrying a
/// request message to a handler and returning the response — an
/// in-process channel here, a socket in a networked deployment), and
/// parses the reply.
class TextProtocolClient : public LdapService {
 public:
  using Transport = std::function<std::string(const std::string&)>;

  explicit TextProtocolClient(Transport transport);

  Status Add(const OpContext& ctx, const AddRequest& request) override;
  Status Delete(const OpContext& ctx,
                const DeleteRequest& request) override;
  Status Modify(const OpContext& ctx,
                const ModifyRequest& request) override;
  Status ModifyRdn(const OpContext& ctx,
                   const ModifyRdnRequest& request) override;
  StatusOr<SearchResult> Search(const OpContext& ctx,
                                const SearchRequest& request) override;
  Status Compare(const OpContext& ctx,
                 const CompareRequest& request) override;
  StatusOr<std::string> Bind(const BindRequest& request) override;
  void Unbind() override;

 private:
  /// Sends and splits the reply into the RESULT line and the body.
  StatusOr<std::string> Roundtrip(const std::string& request);

  Transport transport_;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_TEXT_PROTOCOL_H_
