#include "ldap/persistence.h"

#include <cstdio>

#include "ldap/ldif.h"

namespace metacomm::ldap {

std::string ExportLdif(const Backend& backend) {
  // Stream straight off one published snapshot: the export is
  // internally consistent without blocking writers for its duration,
  // and skips materializing the intermediate entry vector.
  Backend::SnapshotPtr snapshot = backend.GetSnapshot();
  std::string out;
  bool first = true;
  Backend::ForEachEntry(*snapshot, [&out, &first](const Entry& entry) {
    if (!first) out += "\n";
    first = false;
    out += ToLdif(entry);
    return true;
  });
  return out;
}

StatusOr<size_t> ImportLdif(Backend* backend, const std::string& text) {
  METACOMM_ASSIGN_OR_RETURN(std::vector<LdifRecord> records,
                            ParseLdif(text));
  size_t loaded = 0;
  for (const LdifRecord& record : records) {
    if (record.op != UpdateOp::kAdd) {
      return Status::InvalidArgument(
          "directory files hold content records only; found changetype " +
          std::string(UpdateOpName(record.op)) + " for " +
          record.dn.ToString());
    }
    Status status = backend->Add(record.entry);
    if (status.code() == StatusCode::kAlreadyExists) continue;
    METACOMM_RETURN_IF_ERROR(status);
    ++loaded;
  }
  return loaded;
}

Status SaveToLdifFile(const Backend& backend, const std::string& path) {
  std::string text = ExportLdif(backend);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Unavailable("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), file);
  int close_result = std::fclose(file);
  if (written != text.size() || close_result != 0) {
    return Status::Unavailable("short write to " + path);
  }
  return Status::Ok();
}

StatusOr<size_t> LoadFromLdifFile(Backend* backend,
                                  const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return ImportLdif(backend, text);
}

}  // namespace metacomm::ldap
