#ifndef METACOMM_LDAP_ACCESS_H_
#define METACOMM_LDAP_ACCESS_H_

#include <string>
#include <vector>

#include "ldap/dn.h"

namespace metacomm::ldap {

/// Access levels, ordered: each level implies the ones below it.
enum class AccessLevel {
  kNone = 0,
  kCompare = 1,  // Compare assertions only.
  kRead = 2,     // Search/read entries.
  kWrite = 3,    // Add/modify/rename/delete.
};

/// Who a rule applies to.
enum class AccessSubject {
  kAnyone,         // Including anonymous.
  kAuthenticated,  // Any non-empty principal.
  kSelf,           // Principal whose DN equals the target entry.
  kDn,             // A specific principal DN.
  kSubtree,        // Principals under a DN (groups-by-location).
};

/// One access rule: grant `level` on the subtree at `target` to
/// `subject`. First matching rule wins (OpenLDAP-style ACI ordering,
/// most specific first by convention).
struct AccessRule {
  Dn target;  // Root DN means "the whole directory".
  AccessSubject subject = AccessSubject::kAnyone;
  /// Meaningful for kDn (exact) and kSubtree (ancestor).
  Dn subject_dn;
  AccessLevel level = AccessLevel::kRead;
};

/// Subtree-scoped access control for the directory server — the
/// "more sophisticated security model" the paper lists as future work
/// (§7; the shipped system used LTAP's very simple model, which in
/// this codebase is the bind-required-for-writes check).
///
/// Evaluation: the FIRST rule whose target contains the entry and
/// whose subject matches the principal decides. With no matching rule
/// the default applies (deny unless default_level says otherwise).
class AccessControl {
 public:
  AccessControl() = default;

  /// Appends a rule (ordered evaluation).
  void AddRule(AccessRule rule);

  /// Convenience constructors for common policies.
  static AccessRule Grant(AccessLevel level, AccessSubject subject,
                          Dn target, Dn subject_dn = Dn());

  void set_default_level(AccessLevel level) { default_level_ = level; }
  AccessLevel default_level() const { return default_level_; }

  /// Highest level `principal` (a DN string; empty = anonymous) holds
  /// on `entry_dn`.
  AccessLevel LevelFor(const std::string& principal,
                       const Dn& entry_dn) const;

  bool CanRead(const std::string& principal, const Dn& entry_dn) const {
    return LevelFor(principal, entry_dn) >= AccessLevel::kRead;
  }
  bool CanWrite(const std::string& principal, const Dn& entry_dn) const {
    return LevelFor(principal, entry_dn) >= AccessLevel::kWrite;
  }
  bool CanCompare(const std::string& principal,
                  const Dn& entry_dn) const {
    return LevelFor(principal, entry_dn) >= AccessLevel::kCompare;
  }

  bool empty() const { return rules_.empty(); }

 private:
  std::vector<AccessRule> rules_;
  AccessLevel default_level_ = AccessLevel::kNone;
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_ACCESS_H_
