#include "ldap/access.h"

namespace metacomm::ldap {

void AccessControl::AddRule(AccessRule rule) {
  rules_.push_back(std::move(rule));
}

AccessRule AccessControl::Grant(AccessLevel level, AccessSubject subject,
                                Dn target, Dn subject_dn) {
  AccessRule rule;
  rule.level = level;
  rule.subject = subject;
  rule.target = std::move(target);
  rule.subject_dn = std::move(subject_dn);
  return rule;
}

AccessLevel AccessControl::LevelFor(const std::string& principal,
                                    const Dn& entry_dn) const {
  StatusOr<Dn> principal_dn = Dn::Parse(principal);
  for (const AccessRule& rule : rules_) {
    if (!entry_dn.IsWithin(rule.target)) continue;
    bool matches = false;
    switch (rule.subject) {
      case AccessSubject::kAnyone:
        matches = true;
        break;
      case AccessSubject::kAuthenticated:
        matches = !principal.empty();
        break;
      case AccessSubject::kSelf:
        matches = principal_dn.ok() && !principal.empty() &&
                  *principal_dn == entry_dn;
        break;
      case AccessSubject::kDn:
        matches = principal_dn.ok() && !principal.empty() &&
                  *principal_dn == rule.subject_dn;
        break;
      case AccessSubject::kSubtree:
        matches = principal_dn.ok() && !principal.empty() &&
                  principal_dn->IsWithin(rule.subject_dn);
        break;
    }
    if (matches) return rule.level;
  }
  return default_level_;
}

}  // namespace metacomm::ldap
