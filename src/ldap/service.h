#ifndef METACOMM_LDAP_SERVICE_H_
#define METACOMM_LDAP_SERVICE_H_

#include "common/status.h"
#include "ldap/operations.h"

namespace metacomm::ldap {

/// The LDAP service interface: everything a client (or the LTAP
/// gateway) can ask of a directory.
///
/// Both LdapServer and ltap::LtapGateway implement this interface —
/// LTAP "works as a gateway that pretends to be an LDAP server" (paper
/// §4.3), so any code written against LdapService can be pointed at
/// either without change. That interchangeability is load-bearing: the
/// WBA, the LDAP filter and all examples talk to whichever service the
/// deployment wires in.
class LdapService {
 public:
  virtual ~LdapService() = default;

  /// Creates a new leaf entry.
  virtual Status Add(const OpContext& ctx, const AddRequest& request) = 0;

  /// Deletes a leaf entry.
  virtual Status Delete(const OpContext& ctx,
                        const DeleteRequest& request) = 0;

  /// Modifies non-RDN attributes of one entry, atomically.
  virtual Status Modify(const OpContext& ctx,
                        const ModifyRequest& request) = 0;

  /// Renames an entry (leaf RDN change).
  virtual Status ModifyRdn(const OpContext& ctx,
                           const ModifyRdnRequest& request) = 0;

  /// Runs a search.
  virtual StatusOr<SearchResult> Search(const OpContext& ctx,
                                        const SearchRequest& request) = 0;

  /// Compares one attribute value. OK means "true"; a false outcome is
  /// the canonical CompareFalseStatus() marker from ldap/result.h
  /// (detect with IsCompareFalse, never by matching message text).
  virtual Status Compare(const OpContext& ctx,
                         const CompareRequest& request) = 0;

  /// Authenticates; on success fills ctx-style principal via return.
  virtual StatusOr<std::string> Bind(const BindRequest& request) = 0;

  /// Discards authentication state held by the service session, if
  /// any. Stateless services (the server and gateway authenticate per
  /// OpContext) need nothing; session-holding transports such as
  /// TextProtocolClient forward this over the wire so the remote
  /// handler's bind state is actually dropped.
  virtual void Unbind() {}
};

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_SERVICE_H_
