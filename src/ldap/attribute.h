#ifndef METACOMM_LDAP_ATTRIBUTE_H_
#define METACOMM_LDAP_ATTRIBUTE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"

namespace metacomm::ldap {

/// A named, set-valued LDAP attribute.
///
/// LDAP attributes are weakly typed (every value is a string here, as in
/// the directory the paper integrates with) and set-valued: duplicate
/// values — compared case-insensitively, per caseIgnoreMatch — are not
/// allowed. The paper (§5.3) complains that sets of *atomic* values
/// cannot correlate related fields; we reproduce exactly that
/// limitation.
class Attribute {
 public:
  Attribute() = default;
  explicit Attribute(std::string name) : name_(std::move(name)) {}
  Attribute(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& values() const { return values_; }
  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }

  /// First value, or empty string if none. LDAP imposes no value order;
  /// we preserve insertion order and "first" is a MetaComm convention
  /// used when a single-valued view of the attribute is needed.
  const std::string& FirstValue() const;

  /// True if `value` is present (case-insensitive).
  bool HasValue(std::string_view value) const;

  /// Adds `value`; returns false (and does nothing) if already present.
  bool AddValue(std::string value);

  /// Removes `value` (case-insensitive); returns false if absent.
  bool RemoveValue(std::string_view value);

  /// Replaces all values.
  void SetValues(std::vector<std::string> values);

  friend bool operator==(const Attribute& a, const Attribute& b);

 private:
  std::string name_;
  std::vector<std::string> values_;
};

/// Attribute container keyed case-insensitively by attribute name.
using AttributeMap = std::map<std::string, Attribute, CaseInsensitiveLess>;

}  // namespace metacomm::ldap

#endif  // METACOMM_LDAP_ATTRIBUTE_H_
