#ifndef METACOMM_DEVICES_MESSAGING_PLATFORM_H_
#define METACOMM_DEVICES_MESSAGING_PLATFORM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "devices/device.h"

namespace metacomm::devices {

/// Configuration of one simulated voice Messaging Platform.
struct MpConfig {
  /// Instance name, e.g. "mp1".
  std::string name = "mp1";
  /// Prefix of generated subscriber ids ("SUB" -> SUB000001, ...).
  std::string subscriber_id_prefix = "SUB";
  /// Emulated administration-link round-trip per command (0 = direct
  /// call). One LatencyEmulator session pays this once for a whole
  /// command batch.
  int64_t command_rtt_micros = 0;
};

/// Simulated voice messaging platform (Octel/Intuity style).
///
/// Mailbox records live in the "mp" lexpress schema with fields:
///   MailboxNumber   (key; digits — normally the phone extension)
///   SubscriberName  (required)
///   SubscriberId    (device-GENERATED unique id; cannot be set by the
///                    caller — this is the "device-generated
///                    information" of paper §5.5 that must flow back
///                    into the directory after the add)
///   Pin, Greeting, EmailAddress (optional)
///
/// The administration surface is a keyword protocol, deliberately
/// unlike the PBX's OSSI (heterogeneity is the point):
///   ADD MAILBOX 4567 SubscriberName="John Doe" Pin=0000
///   MODIFY MAILBOX 4567 Greeting="standard"
///   DELETE MAILBOX 4567
///   SHOW MAILBOX 4567
///   LIST MAILBOXES
class MessagingPlatform : public Device {
 public:
  explicit MessagingPlatform(MpConfig config);

  const std::string& name() const override { return config_.name; }
  const std::string& schema() const override { return schema_; }

  StatusOr<std::string> ExecuteCommand(const std::string& command) override;
  StatusOr<lexpress::Record> GetRecord(const std::string& key) override;

  /// Adds a mailbox; any caller-supplied SubscriberId is ignored and a
  /// fresh one generated. The notification's new_record carries the
  /// generated id so MetaComm can propagate it.
  Status AddRecord(const lexpress::Record& record) override;

  Status ModifyRecord(const std::string& key,
                      const lexpress::Record& record,
                      const std::vector<std::string>& clear_fields)
      override;
  Status DeleteRecord(const std::string& key) override;
  StatusOr<std::vector<lexpress::Record>> DumpAll() override;
  void SetNotificationHandler(NotificationHandler handler) override;
  FaultInjector& faults() override { return faults_; }
  LatencyEmulator& latency() override { return latency_; }

  size_t MailboxCount() const;

 private:
  Status CheckMutationAllowed();
  Status ValidateMailbox(const lexpress::Record& record) const;
  void Notify(lexpress::DescriptorOp op, lexpress::Record old_record,
              lexpress::Record new_record) EXCLUDES(mutex_);
  std::string GenerateSubscriberId() REQUIRES(mutex_);

  MpConfig config_;
  std::string schema_ = "mp";
  mutable Mutex mutex_{LockRank::kDeviceRecords,
                       "devices.messaging_platform"};
  // by MailboxNumber
  std::map<std::string, lexpress::Record> mailboxes_ GUARDED_BY(mutex_);
  NotificationHandler handler_ GUARDED_BY(mutex_);
  FaultInjector faults_;
  LatencyEmulator latency_;
  uint64_t next_subscriber_ GUARDED_BY(mutex_) = 1;
};

}  // namespace metacomm::devices

#endif  // METACOMM_DEVICES_MESSAGING_PLATFORM_H_
