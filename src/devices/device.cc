#include "devices/device.h"

#include <iterator>

#include "common/clock.h"

namespace metacomm::devices {

void FaultInjector::ScheduleOutage(uint64_t after_commands,
                                   uint64_t length_commands) {
  uint64_t seen = mutations_seen_.load();
  MutexLock lock(&mutex_);
  outages_.emplace_back(seen + after_commands,
                        seen + after_commands + length_commands);
}

void FaultInjector::set_error_probability(double p) {
  MutexLock lock(&mutex_);
  error_probability_ = p;
}

void FaultInjector::set_error_code(StatusCode code) {
  MutexLock lock(&mutex_);
  error_code_ = code;
}

void FaultInjector::set_seed(uint64_t seed) {
  MutexLock lock(&mutex_);
  rng_.seed(seed);
}

Status FaultInjector::Fail(const std::string& device_name, StatusCode code,
                           const char* what) {
  injected_failures_.fetch_add(1);
  int64_t stall = fail_latency_micros_.load();
  if (stall > 0) RealClock::Get()->SleepMicros(stall);
  return Status(code, device_name + ": " + what);
}

Status FaultInjector::OnMutation(const std::string& device_name) {
  uint64_t seq = mutations_seen_.fetch_add(1);
  if (disconnected_.load()) {
    return Fail(device_name, StatusCode::kUnavailable, "link down");
  }
  bool in_window = false;
  {
    MutexLock lock(&mutex_);
    for (const auto& [start, end] : outages_) {
      if (seq >= start && seq < end) {
        in_window = true;
        break;
      }
    }
  }
  if (in_window) {
    return Fail(device_name, StatusCode::kUnavailable,
                "link down (scheduled outage)");
  }
  if (ConsumeFailure()) {
    return Fail(device_name,
                static_cast<StatusCode>(fail_next_code_.load()),
                "injected transient fault");
  }
  bool random_fail = false;
  StatusCode random_code = StatusCode::kUnavailable;
  {
    MutexLock lock(&mutex_);
    if (error_probability_ > 0.0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      if (uniform(rng_) < error_probability_) {
        random_fail = true;
        random_code = error_code_;
      }
    }
  }
  if (random_fail) {
    // Fail() may stall (fail-latency injection); the lock is dropped.
    return Fail(device_name, random_code, "injected random fault");
  }
  return Status::Ok();
}

bool FaultInjector::ReadBlocked() const {
  if (disconnected_.load()) return true;
  uint64_t seen = mutations_seen_.load();
  MutexLock lock(&mutex_);
  for (const auto& [start, end] : outages_) {
    if (seen >= start && seen < end) return true;
  }
  return false;
}

CommandResult CommandResult::From(StatusOr<std::string> reply) {
  CommandResult result;
  if (reply.ok()) {
    result.outcome = ApplyOutcome::kApplied;
    result.reply = std::move(reply).value();
  } else {
    result.status = reply.status();
    result.outcome = ClassifyStatus(result.status);
  }
  return result;
}

thread_local std::vector<const LatencyEmulator*>
    LatencyEmulator::open_sessions_;

bool LatencyEmulator::InSession() const {
  for (const LatencyEmulator* open : open_sessions_) {
    if (open == this) return true;
  }
  return false;
}

void LatencyEmulator::Charge() {
  int64_t rtt = rtt_micros();
  if (rtt <= 0) return;
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  RealClock::Get()->SleepMicros(rtt);
}

void LatencyEmulator::OnCommand() {
  if (InSession()) return;
  Charge();
}

LatencyEmulator::SessionScope::SessionScope(LatencyEmulator* emulator)
    : emulator_(emulator) {
  if (emulator_ == nullptr) return;
  // An already-open outer session covers this one; only the outermost
  // scope pays (and registers) the round-trip.
  if (!emulator_->InSession()) {
    emulator_->Charge();
    open_sessions_.push_back(emulator_);
    opened_ = true;
  }
}

LatencyEmulator::SessionScope::~SessionScope() {
  if (!opened_) return;
  for (auto it = open_sessions_.rbegin(); it != open_sessions_.rend();
       ++it) {
    if (*it == emulator_) {
      open_sessions_.erase(std::next(it).base());
      break;
    }
  }
}

std::vector<CommandResult> Device::ExecuteBatch(
    const std::vector<std::string>& commands) {
  LatencyEmulator::SessionScope session(&latency());
  std::vector<CommandResult> results;
  results.reserve(commands.size());
  for (const std::string& command : commands) {
    results.push_back(Execute(command));
  }
  return results;
}

}  // namespace metacomm::devices
