#include "devices/device.h"

#include <iterator>

#include "common/clock.h"

namespace metacomm::devices {

thread_local std::vector<const LatencyEmulator*>
    LatencyEmulator::open_sessions_;

bool LatencyEmulator::InSession() const {
  for (const LatencyEmulator* open : open_sessions_) {
    if (open == this) return true;
  }
  return false;
}

void LatencyEmulator::Charge() {
  int64_t rtt = rtt_micros();
  if (rtt <= 0) return;
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  RealClock::Get()->SleepMicros(rtt);
}

void LatencyEmulator::OnCommand() {
  if (InSession()) return;
  Charge();
}

LatencyEmulator::SessionScope::SessionScope(LatencyEmulator* emulator)
    : emulator_(emulator) {
  if (emulator_ == nullptr) return;
  // An already-open outer session covers this one; only the outermost
  // scope pays (and registers) the round-trip.
  if (!emulator_->InSession()) {
    emulator_->Charge();
    open_sessions_.push_back(emulator_);
    opened_ = true;
  }
}

LatencyEmulator::SessionScope::~SessionScope() {
  if (!opened_) return;
  for (auto it = open_sessions_.rbegin(); it != open_sessions_.rend();
       ++it) {
    if (*it == emulator_) {
      open_sessions_.erase(std::next(it).base());
      break;
    }
  }
}

std::vector<StatusOr<std::string>> Device::ExecuteBatch(
    const std::vector<std::string>& commands) {
  LatencyEmulator::SessionScope session(&latency());
  std::vector<StatusOr<std::string>> results;
  results.reserve(commands.size());
  for (const std::string& command : commands) {
    results.push_back(ExecuteCommand(command));
  }
  return results;
}

}  // namespace metacomm::devices
