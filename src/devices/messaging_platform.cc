#include "devices/messaging_platform.h"

#include <cstdio>

#include "common/strings.h"

namespace metacomm::devices {

namespace {

const char* const kMailboxFields[] = {"SubscriberName", "Pin", "Greeting",
                                      "EmailAddress"};

bool IsMailboxField(std::string_view field) {
  for (const char* known : kMailboxFields) {
    if (EqualsIgnoreCase(field, known)) return true;
  }
  return false;
}

/// Parses `Key="quoted value"` / `Key=value` assignments after the
/// first `skip` words of a command line.
StatusOr<lexpress::Record> ParseAssignments(const std::string& command,
                                            size_t start_pos,
                                            const std::string& schema) {
  lexpress::Record record(schema);
  size_t i = start_pos;
  while (i < command.size()) {
    while (i < command.size() && command[i] == ' ') ++i;
    if (i >= command.size()) break;
    size_t eq = command.find('=', i);
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected Key=value at: " +
                                     command.substr(i));
    }
    std::string key = Trim(command.substr(i, eq - i));
    std::string value;
    i = eq + 1;
    if (i < command.size() && command[i] == '"') {
      ++i;
      size_t close = command.find('"', i);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated quoted value");
      }
      value = command.substr(i, close - i);
      i = close + 1;
    } else {
      size_t end = command.find(' ', i);
      if (end == std::string::npos) end = command.size();
      value = command.substr(i, end - i);
      i = end;
    }
    record.SetOne(key, value);
  }
  return record;
}

}  // namespace

MessagingPlatform::MessagingPlatform(MpConfig config)
    : config_(std::move(config)) {
  latency_.set_rtt_micros(config_.command_rtt_micros);
}

Status MessagingPlatform::CheckMutationAllowed() {
  // One gate for the whole fault schedule: manual disconnect,
  // scheduled outage windows, flaky FailNext sequences, probabilistic
  // errors, and injected timeout stalls.
  return faults_.OnMutation(config_.name);
}

Status MessagingPlatform::ValidateMailbox(
    const lexpress::Record& record) const {
  std::string number = record.GetFirst("MailboxNumber");
  if (number.empty() || !IsAllDigits(number)) {
    return Status::InvalidArgument(config_.name +
                                   ": MailboxNumber must be digits");
  }
  if (record.GetFirst("SubscriberName").empty()) {
    return Status::InvalidArgument(config_.name +
                                   ": mailbox requires SubscriberName");
  }
  std::string pin = record.GetFirst("Pin");
  if (!pin.empty() && (!IsAllDigits(pin) || pin.size() < 4)) {
    return Status::InvalidArgument(config_.name +
                                   ": Pin must be at least 4 digits");
  }
  for (const auto& [field, value] : record.attrs()) {
    if (EqualsIgnoreCase(field, "MailboxNumber") ||
        EqualsIgnoreCase(field, "SubscriberId") ||
        IsMailboxField(field)) {
      continue;
    }
    return Status::InvalidArgument(config_.name + ": unknown field '" +
                                   field + "'");
  }
  return Status::Ok();
}

std::string MessagingPlatform::GenerateSubscriberId() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu",
                config_.subscriber_id_prefix.c_str(),
                static_cast<unsigned long long>(next_subscriber_++));
  return buf;
}

void MessagingPlatform::Notify(lexpress::DescriptorOp op,
                               lexpress::Record old_record,
                               lexpress::Record new_record) {
  if (faults_.drop_notifications()) return;
  NotificationHandler handler;
  {
    MutexLock lock(&mutex_);
    handler = handler_;
  }
  if (!handler) return;
  DeviceNotification notification;
  notification.op = op;
  notification.old_record = std::move(old_record);
  notification.new_record = std::move(new_record);
  notification.device_name = config_.name;
  handler(notification);
}

Status MessagingPlatform::AddRecord(const lexpress::Record& record) {
  latency_.OnCommand();
  METACOMM_RETURN_IF_ERROR(CheckMutationAllowed());
  lexpress::Record mailbox = record;
  mailbox.set_schema(schema_);
  METACOMM_RETURN_IF_ERROR(ValidateMailbox(mailbox));
  std::string number = mailbox.GetFirst("MailboxNumber");
  {
    MutexLock lock(&mutex_);
    if (mailboxes_.count(number) > 0) {
      return Status::AlreadyExists(config_.name + ": mailbox " + number +
                                   " exists");
    }
    // The platform owns subscriber ids; caller-supplied values are
    // discarded (device-generated information, §5.5).
    mailbox.SetOne("SubscriberId", GenerateSubscriberId());
    mailboxes_.emplace(number, mailbox);
  }
  Notify(lexpress::DescriptorOp::kAdd, lexpress::Record(schema_), mailbox);
  return Status::Ok();
}

Status MessagingPlatform::ModifyRecord(
    const std::string& key, const lexpress::Record& record,
    const std::vector<std::string>& clear_fields) {
  latency_.OnCommand();
  METACOMM_RETURN_IF_ERROR(CheckMutationAllowed());
  lexpress::Record old_record(schema_);
  lexpress::Record new_record = record;
  new_record.set_schema(schema_);
  {
    MutexLock lock(&mutex_);
    auto it = mailboxes_.find(key);
    if (it == mailboxes_.end()) {
      return Status::NotFound(config_.name + ": mailbox " + key +
                              " not found");
    }
    old_record = it->second;
    for (const auto& [field, value] : old_record.attrs()) {
      if (!new_record.Has(field)) new_record.Set(field, value);
    }
    for (const std::string& field : clear_fields) {
      if (EqualsIgnoreCase(field, "MailboxNumber") ||
          EqualsIgnoreCase(field, "SubscriberId")) {
        continue;
      }
      new_record.Remove(field);
    }
    if (new_record.GetFirst("MailboxNumber").empty()) {
      new_record.SetOne("MailboxNumber", key);
    }
    // SubscriberId is immutable.
    new_record.Set("SubscriberId", old_record.Get("SubscriberId"));
    METACOMM_RETURN_IF_ERROR(ValidateMailbox(new_record));
    std::string new_key = new_record.GetFirst("MailboxNumber");
    if (new_key != key && mailboxes_.count(new_key) > 0) {
      return Status::AlreadyExists(config_.name + ": mailbox " + new_key +
                                   " exists");
    }
    mailboxes_.erase(it);
    mailboxes_.emplace(new_key, new_record);
  }
  Notify(lexpress::DescriptorOp::kModify, old_record, new_record);
  return Status::Ok();
}

Status MessagingPlatform::DeleteRecord(const std::string& key) {
  latency_.OnCommand();
  METACOMM_RETURN_IF_ERROR(CheckMutationAllowed());
  lexpress::Record old_record(schema_);
  {
    MutexLock lock(&mutex_);
    auto it = mailboxes_.find(key);
    if (it == mailboxes_.end()) {
      return Status::NotFound(config_.name + ": mailbox " + key +
                              " not found");
    }
    old_record = it->second;
    mailboxes_.erase(it);
  }
  Notify(lexpress::DescriptorOp::kDelete, old_record,
         lexpress::Record(schema_));
  return Status::Ok();
}

StatusOr<lexpress::Record> MessagingPlatform::GetRecord(
    const std::string& key) {
  latency_.OnCommand();
  if (faults_.ReadBlocked()) {
    return Status::Unavailable(config_.name + ": platform unreachable");
  }
  MutexLock lock(&mutex_);
  auto it = mailboxes_.find(key);
  if (it == mailboxes_.end()) {
    return Status::NotFound(config_.name + ": mailbox " + key +
                            " not found");
  }
  return it->second;
}

StatusOr<std::vector<lexpress::Record>> MessagingPlatform::DumpAll() {
  latency_.OnCommand();
  if (faults_.ReadBlocked()) {
    return Status::Unavailable(config_.name + ": platform unreachable");
  }
  MutexLock lock(&mutex_);
  std::vector<lexpress::Record> out;
  out.reserve(mailboxes_.size());
  for (const auto& [key, record] : mailboxes_) out.push_back(record);
  return out;
}

void MessagingPlatform::SetNotificationHandler(NotificationHandler handler) {
  MutexLock lock(&mutex_);
  handler_ = std::move(handler);
}

size_t MessagingPlatform::MailboxCount() const {
  MutexLock lock(&mutex_);
  return mailboxes_.size();
}

StatusOr<std::string> MessagingPlatform::ExecuteCommand(
    const std::string& command) {
  // One command = one administrative round-trip; the typed operations
  // the command dispatches to below ride this session for free.
  LatencyEmulator::SessionScope rtt_session(&latency_);
  std::string trimmed = Trim(command);
  std::vector<std::string> head = Split(trimmed, ' ');
  if (head.size() < 2) {
    return Status::InvalidArgument(config_.name + ": bad command");
  }
  const std::string& verb = head[0];

  if (EqualsIgnoreCase(verb, "LIST")) {
    if (faults_.ReadBlocked()) {
      return Status::Unavailable(config_.name + ": platform unreachable");
    }
    std::string out;
    MutexLock lock(&mutex_);
    for (const auto& [key, record] : mailboxes_) {
      out += key + " " + record.GetFirst("SubscriberId") + " " +
             record.GetFirst("SubscriberName") + "\n";
    }
    return out;
  }

  if (!EqualsIgnoreCase(head[1], "MAILBOX") || head.size() < 3) {
    return Status::InvalidArgument(
        config_.name + ": usage: <ADD|MODIFY|DELETE|SHOW> MAILBOX <num>");
  }
  const std::string& number = head[2];

  // Offset of the text after "<VERB> MAILBOX <num>".
  size_t after = verb.size() + 1 + head[1].size() + 1 + number.size();

  if (EqualsIgnoreCase(verb, "SHOW")) {
    METACOMM_ASSIGN_OR_RETURN(lexpress::Record record, GetRecord(number));
    std::string out;
    for (const auto& [field, value] : record.attrs()) {
      out += field + "=" + (value.empty() ? "" : value.front()) + "\n";
    }
    return out;
  }
  if (EqualsIgnoreCase(verb, "DELETE")) {
    METACOMM_RETURN_IF_ERROR(DeleteRecord(number));
    return std::string("OK");
  }

  METACOMM_ASSIGN_OR_RETURN(
      lexpress::Record record,
      ParseAssignments(trimmed, std::min(after, trimmed.size()), schema_));
  // The addressed mailbox is the record's number unless the command
  // explicitly renumbers it (MODIFY ... MailboxNumber=<new>).
  if (record.GetFirst("MailboxNumber").empty()) {
    record.SetOne("MailboxNumber", number);
  }

  // An assignment with an empty value ("Greeting=") clears the field.
  std::vector<std::string> clears;
  std::vector<std::string> to_remove;
  for (const auto& [field, value] : record.attrs()) {
    if (!value.empty() && value.front().empty()) {
      clears.push_back(field);
      to_remove.push_back(field);
    }
  }
  for (const std::string& field : to_remove) record.Remove(field);

  if (EqualsIgnoreCase(verb, "ADD")) {
    METACOMM_RETURN_IF_ERROR(AddRecord(record));
    // Reply carries the generated id, like the real platform's
    // confirmation screen.
    METACOMM_ASSIGN_OR_RETURN(lexpress::Record stored, GetRecord(number));
    return "OK SubscriberId=" + stored.GetFirst("SubscriberId");
  }
  if (EqualsIgnoreCase(verb, "MODIFY")) {
    METACOMM_RETURN_IF_ERROR(ModifyRecord(number, record, clears));
    return std::string("OK");
  }
  return Status::InvalidArgument(config_.name + ": unknown verb '" + verb +
                                 "'");
}

}  // namespace metacomm::devices
