#ifndef METACOMM_DEVICES_DEVICE_H_
#define METACOMM_DEVICES_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "lexpress/record.h"

namespace metacomm::devices {

/// A change committed at a device, reported to whoever registered for
/// notifications (normally the device's MetaComm filter).
///
/// "The update is noted during transaction commit at the device and a
/// notification is sent to the appropriate device filter" (paper §4.4).
/// Old and new record images are included because partitioning
/// constraints need both sides (§4.2).
struct DeviceNotification {
  lexpress::DescriptorOp op = lexpress::DescriptorOp::kModify;
  /// Schema-tagged images in the device's native schema.
  lexpress::Record old_record;
  lexpress::Record new_record;
  /// Name of the device instance emitting the notification.
  std::string device_name;
};

/// Simulated fault state shared by the device simulators. MetaComm's
/// recovery story (resynchronization after "catastrophic communication
/// or storage errors", §4) is exercised by flipping these switches.
class FaultInjector {
 public:
  /// Device unreachable: every command fails with kUnavailable.
  void set_disconnected(bool disconnected) {
    disconnected_.store(disconnected);
  }
  bool disconnected() const { return disconnected_.load(); }

  /// Notifications silently dropped (models lost change callbacks —
  /// the reason the Update Manager needs resync, §4.4).
  void set_drop_notifications(bool drop) { drop_notifications_.store(drop); }
  bool drop_notifications() const { return drop_notifications_.load(); }

  /// The next `n` mutating commands fail with kInternal (models
  /// transient device errors that abort an update mid-sequence).
  void FailNext(int n) { fail_next_.store(n); }

  /// Consumes one pending injected failure; true if one fired.
  bool ConsumeFailure() {
    int current = fail_next_.load();
    while (current > 0) {
      if (fail_next_.compare_exchange_weak(current, current - 1)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<bool> disconnected_{false};
  std::atomic<bool> drop_notifications_{false};
  std::atomic<int> fail_next_{0};
};

/// Emulated administrative-link latency for a device simulator.
///
/// The paper's devices sit behind slow administration links (ossi
/// scripts to the Definity, per-session Messaging Platform commands);
/// each command normally pays one round-trip. A *session* models one
/// administrative conversation: the opener pays a single RTT and every
/// command issued on the same thread while the session is open rides
/// it for free — which is what makes batched propagation pay the link
/// cost once per batch instead of once per update.
class LatencyEmulator {
 public:
  void set_rtt_micros(int64_t rtt_micros) { rtt_micros_.store(rtt_micros); }
  int64_t rtt_micros() const { return rtt_micros_.load(); }

  /// Charges one round-trip, unless this thread already holds an open
  /// session on this emulator (the session paid when it opened).
  void OnCommand();

  /// Total round-trips actually charged (telemetry: commands minus
  /// session savings).
  uint64_t round_trips() const { return round_trips_.load(); }

  /// RAII administrative session: pays one RTT on open; commands on
  /// this thread are then free until the scope closes. Nests safely.
  class SessionScope {
   public:
    explicit SessionScope(LatencyEmulator* emulator);
    ~SessionScope();
    SessionScope(const SessionScope&) = delete;
    SessionScope& operator=(const SessionScope&) = delete;

   private:
    LatencyEmulator* emulator_;
    bool opened_ = false;
  };

 private:
  bool InSession() const;
  void Charge();

  std::atomic<int64_t> rtt_micros_{0};
  std::atomic<uint64_t> round_trips_{0};
  // Emulators this thread holds open sessions on (defined in device.cc).
  static thread_local std::vector<const LatencyEmulator*> open_sessions_;
};

/// Common interface over the simulated legacy devices.
///
/// Devices have two faces:
///  * a *proprietary command interface* (ExecuteCommand) — the path a
///    device administrator uses, producing direct device updates;
///  * typed record accessors used by the filter's protocol converter
///    and by the synchronizer's full dumps.
/// Both converge on the same internal store and both emit
/// notifications, exactly because "the devices must be usable with or
/// without MetaComm" (§4.4).
class Device {
 public:
  using NotificationHandler =
      std::function<void(const DeviceNotification&)>;

  virtual ~Device() = default;

  /// Instance name, e.g. "pbx1". Used as the lexpress update source
  /// and as the LastUpdater value.
  virtual const std::string& name() const = 0;

  /// lexpress schema this device's records use, e.g. "pbx".
  virtual const std::string& schema() const = 0;

  /// Runs one proprietary command; returns the device's textual reply.
  virtual StatusOr<std::string> ExecuteCommand(const std::string& command) = 0;

  /// Runs several proprietary commands over ONE administrative session:
  /// the emulated link RTT (see `latency()`) is paid once for the whole
  /// batch instead of once per command. Results are positional; a
  /// failing command does not stop the rest.
  virtual std::vector<StatusOr<std::string>> ExecuteBatch(
      const std::vector<std::string>& commands);

  /// Fetches the record with the given key value.
  virtual StatusOr<lexpress::Record> GetRecord(const std::string& key) = 0;

  /// Typed mutations used by the filter's protocol converter.
  virtual Status AddRecord(const lexpress::Record& record) = 0;

  /// Change-command semantics: fields present in `record` are set,
  /// fields named in `clear_fields` are removed, all other fields
  /// keep their values (legacy merge behaviour).
  virtual Status ModifyRecord(const std::string& key,
                              const lexpress::Record& record,
                              const std::vector<std::string>&
                                  clear_fields) = 0;
  virtual Status DeleteRecord(const std::string& key) = 0;

  /// Every record; "if a repository is to be synchronized ... the API
  /// must also provide a method to retrieve all relevant data" (§4.1).
  virtual StatusOr<std::vector<lexpress::Record>> DumpAll() = 0;

  /// Registers the change-notification callback (one per device).
  virtual void SetNotificationHandler(NotificationHandler handler) = 0;

  /// Fault-injection controls.
  virtual FaultInjector& faults() = 0;

  /// Emulated administrative-link latency controls.
  virtual LatencyEmulator& latency() = 0;
};

}  // namespace metacomm::devices

#endif  // METACOMM_DEVICES_DEVICE_H_
