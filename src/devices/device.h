#ifndef METACOMM_DEVICES_DEVICE_H_
#define METACOMM_DEVICES_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "lexpress/record.h"

namespace metacomm::devices {

/// A change committed at a device, reported to whoever registered for
/// notifications (normally the device's MetaComm filter).
///
/// "The update is noted during transaction commit at the device and a
/// notification is sent to the appropriate device filter" (paper §4.4).
/// Old and new record images are included because partitioning
/// constraints need both sides (§4.2).
struct DeviceNotification {
  lexpress::DescriptorOp op = lexpress::DescriptorOp::kModify;
  /// Schema-tagged images in the device's native schema.
  lexpress::Record old_record;
  lexpress::Record new_record;
  /// Name of the device instance emitting the notification.
  std::string device_name;
};

/// Simulated fault state shared by the device simulators. MetaComm's
/// recovery story (error logging, circuit breaking, resynchronization
/// after "catastrophic communication or storage errors", §4) is
/// exercised through this injector: beyond the original manual
/// switches it drives scripted outage windows, flaky
/// fails-N-then-succeeds sequences, probabilistic per-command errors,
/// and injected command timeouts — on every device that routes its
/// mutations through OnMutation().
class FaultInjector {
 public:
  // ---- Manual switches (the original API) --------------------------

  /// Device unreachable: every command fails with kUnavailable.
  void set_disconnected(bool disconnected) {
    disconnected_.store(disconnected);
  }
  bool disconnected() const { return disconnected_.load(); }

  /// Notifications silently dropped (models lost change callbacks —
  /// the reason the Update Manager needs resync, §4.4).
  void set_drop_notifications(bool drop) { drop_notifications_.store(drop); }
  bool drop_notifications() const { return drop_notifications_.load(); }

  /// The next `n` mutating commands fail, then the device recovers
  /// (flaky behaviour). The one-argument form keeps the original
  /// kInternal flavour; the two-argument form types the failure.
  void FailNext(int n) { FailNext(n, StatusCode::kInternal); }
  void FailNext(int n, StatusCode code) {
    fail_next_code_.store(static_cast<int>(code));
    fail_next_.store(n);
  }

  /// Consumes one pending FailNext slot; true if one fired. Exposed
  /// for devices with bespoke failure text; OnMutation() calls it.
  bool ConsumeFailure() {
    int current = fail_next_.load();
    while (current > 0) {
      if (fail_next_.compare_exchange_weak(current, current - 1)) {
        return true;
      }
    }
    return false;
  }

  // ---- Scripted / probabilistic schedules --------------------------

  /// Schedules a full outage covering the mutation-command window
  /// [seen + after, seen + after + length): those commands fail with
  /// kUnavailable, where `seen` is the mutation count at call time.
  /// Windows may be stacked; reads are refused while a window is
  /// active but do not advance it.
  void ScheduleOutage(uint64_t after_commands, uint64_t length_commands)
      EXCLUDES(mutex_);

  /// Each mutating command independently fails with probability `p`
  /// (code from set_error_code, default kUnavailable). Deterministic
  /// under set_seed.
  void set_error_probability(double p) EXCLUDES(mutex_);
  void set_error_code(StatusCode code) EXCLUDES(mutex_);
  void set_seed(uint64_t seed) EXCLUDES(mutex_);

  /// Stall injected before a *failing* command returns — models an
  /// administrative link that times out instead of failing fast. This
  /// is the cost the Update Manager's circuit breaker exists to avoid.
  void set_fail_latency_micros(int64_t micros) {
    fail_latency_micros_.store(micros);
  }
  int64_t fail_latency_micros() const { return fail_latency_micros_.load(); }

  // ---- Device hooks ------------------------------------------------

  /// Central mutation gate: counts the command, evaluates the fault
  /// schedule, and returns the injected failure (or OK). `device_name`
  /// prefixes the diagnostic. Devices call this from their
  /// mutation-allowed check AFTER their own disconnected() fast path.
  Status OnMutation(const std::string& device_name) EXCLUDES(mutex_);

  /// True while reads should be refused: manual disconnect or an
  /// active scheduled outage window. Does not consume a command slot.
  bool ReadBlocked() const EXCLUDES(mutex_);

  /// True while the device is observably down (ReadBlocked alias with
  /// telemetry-friendly naming).
  bool outage_active() const { return ReadBlocked(); }

  // ---- Telemetry (feeds RepositoryFilter::Health) ------------------

  /// Mutating commands that reached the injector.
  uint64_t mutations_seen() const { return mutations_seen_.load(); }
  /// Commands that failed with an injected fault.
  uint64_t injected_failures() const { return injected_failures_.load(); }

 private:
  Status Fail(const std::string& device_name, StatusCode code,
              const char* what);

  std::atomic<bool> disconnected_{false};
  std::atomic<bool> drop_notifications_{false};
  std::atomic<int> fail_next_{0};
  std::atomic<int> fail_next_code_{static_cast<int>(StatusCode::kInternal)};
  std::atomic<int64_t> fail_latency_micros_{0};
  std::atomic<uint64_t> mutations_seen_{0};
  std::atomic<uint64_t> injected_failures_{0};

  mutable Mutex mutex_{LockRank::kFaultInjector,
                       "devices.fault_injector"};
  /// Outage windows in absolute mutation counts [start, end).
  std::vector<std::pair<uint64_t, uint64_t>> outages_ GUARDED_BY(mutex_);
  double error_probability_ GUARDED_BY(mutex_) = 0.0;
  StatusCode error_code_ GUARDED_BY(mutex_) = StatusCode::kUnavailable;
  std::mt19937_64 rng_ GUARDED_BY(mutex_){0xfa17ed};
};

/// Emulated administrative-link latency for a device simulator.
///
/// The paper's devices sit behind slow administration links (ossi
/// scripts to the Definity, per-session Messaging Platform commands);
/// each command normally pays one round-trip. A *session* models one
/// administrative conversation: the opener pays a single RTT and every
/// command issued on the same thread while the session is open rides
/// it for free — which is what makes batched propagation pay the link
/// cost once per batch instead of once per update.
class LatencyEmulator {
 public:
  void set_rtt_micros(int64_t rtt_micros) { rtt_micros_.store(rtt_micros); }
  int64_t rtt_micros() const { return rtt_micros_.load(); }

  /// Charges one round-trip, unless this thread already holds an open
  /// session on this emulator (the session paid when it opened).
  void OnCommand();

  /// Total round-trips actually charged (telemetry: commands minus
  /// session savings).
  uint64_t round_trips() const { return round_trips_.load(); }

  /// RAII administrative session: pays one RTT on open; commands on
  /// this thread are then free until the scope closes. Nests safely.
  class SessionScope {
   public:
    explicit SessionScope(LatencyEmulator* emulator);
    ~SessionScope();
    SessionScope(const SessionScope&) = delete;
    SessionScope& operator=(const SessionScope&) = delete;

   private:
    LatencyEmulator* emulator_;
    bool opened_ = false;
  };

 private:
  bool InSession() const;
  void Charge();

  std::atomic<int64_t> rtt_micros_{0};
  std::atomic<uint64_t> round_trips_{0};
  // Emulators this thread holds open sessions on (defined in device.cc).
  static thread_local std::vector<const LatencyEmulator*> open_sessions_;
};

/// The typed outcome of one proprietary device command — the
/// device-level face of the ApplyOutcome vocabulary. Replaces the old
/// collapsed StatusOr<string> in batch interfaces so callers can tell
/// a down device (retryable, worth replaying) from a rejected command
/// (permanent) without parsing status codes.
struct CommandResult {
  ApplyOutcome outcome = ApplyOutcome::kApplied;
  Status status;      // Ok iff outcome == kApplied.
  std::string reply;  // The device's textual reply when applied.

  bool ok() const { return outcome == ApplyOutcome::kApplied; }
  bool retryable() const { return outcome == ApplyOutcome::kRetryable; }

  static CommandResult From(StatusOr<std::string> reply);
};

/// Common interface over the simulated legacy devices.
///
/// Devices have two faces:
///  * a *proprietary command interface* (ExecuteCommand) — the path a
///    device administrator uses, producing direct device updates;
///  * typed record accessors used by the filter's protocol converter
///    and by the synchronizer's full dumps.
/// Both converge on the same internal store and both emit
/// notifications, exactly because "the devices must be usable with or
/// without MetaComm" (§4.4).
class Device {
 public:
  using NotificationHandler =
      std::function<void(const DeviceNotification&)>;

  virtual ~Device() = default;

  /// Instance name, e.g. "pbx1". Used as the lexpress update source
  /// and as the LastUpdater value.
  virtual const std::string& name() const = 0;

  /// lexpress schema this device's records use, e.g. "pbx".
  virtual const std::string& schema() const = 0;

  /// Runs one proprietary command; returns the device's textual reply.
  /// This is the raw administrator-facing wire interface; Execute()
  /// wraps it with the typed outcome vocabulary.
  virtual StatusOr<std::string> ExecuteCommand(const std::string& command) = 0;

  /// Runs one proprietary command, classifying the result: a down
  /// device yields kRetryable, a rejected command kPermanent.
  CommandResult Execute(const std::string& command) {
    return CommandResult::From(ExecuteCommand(command));
  }

  /// Runs several proprietary commands over ONE administrative session:
  /// the emulated link RTT (see `latency()`) is paid once for the whole
  /// batch instead of once per command. Results are positional and
  /// typed; a failing command does not stop the rest.
  virtual std::vector<CommandResult> ExecuteBatch(
      const std::vector<std::string>& commands);

  /// Fetches the record with the given key value.
  virtual StatusOr<lexpress::Record> GetRecord(const std::string& key) = 0;

  /// Typed mutations used by the filter's protocol converter.
  virtual Status AddRecord(const lexpress::Record& record) = 0;

  /// Change-command semantics: fields present in `record` are set,
  /// fields named in `clear_fields` are removed, all other fields
  /// keep their values (legacy merge behaviour).
  virtual Status ModifyRecord(const std::string& key,
                              const lexpress::Record& record,
                              const std::vector<std::string>&
                                  clear_fields) = 0;
  virtual Status DeleteRecord(const std::string& key) = 0;

  /// Every record; "if a repository is to be synchronized ... the API
  /// must also provide a method to retrieve all relevant data" (§4.1).
  virtual StatusOr<std::vector<lexpress::Record>> DumpAll() = 0;

  /// Registers the change-notification callback (one per device).
  virtual void SetNotificationHandler(NotificationHandler handler) = 0;

  /// Fault-injection controls.
  virtual FaultInjector& faults() = 0;

  /// Emulated administrative-link latency controls.
  virtual LatencyEmulator& latency() = 0;
};

}  // namespace metacomm::devices

#endif  // METACOMM_DEVICES_DEVICE_H_
