#include "devices/definity_pbx.h"

#include <algorithm>

#include "common/strings.h"

namespace metacomm::devices {

namespace {

/// Station fields the switch understands, beyond the Extension key.
const char* const kStationFields[] = {"Name",         "Room", "Cos",
                                      "CoveragePath", "SetType", "Port"};

bool IsStationField(std::string_view field) {
  for (const char* known : kStationFields) {
    if (EqualsIgnoreCase(field, known)) return true;
  }
  return false;
}

/// Splits an OSSI command line into words; double quotes group words.
StatusOr<std::vector<std::string>> TokenizeCommand(
    const std::string& command) {
  std::vector<std::string> words;
  std::string current;
  bool in_quotes = false;
  bool have_word = false;
  for (char c : command) {
    if (c == '"') {
      in_quotes = !in_quotes;
      have_word = true;
      continue;
    }
    if (!in_quotes && (c == ' ' || c == '\t')) {
      if (have_word) {
        words.push_back(current);
        current.clear();
        have_word = false;
      }
      continue;
    }
    current.push_back(c);
    have_word = true;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unbalanced quotes in command");
  }
  if (have_word) words.push_back(current);
  return words;
}

}  // namespace

DefinityPbx::DefinityPbx(PbxConfig config) : config_(std::move(config)) {
  latency_.set_rtt_micros(config_.command_rtt_micros);
}

bool DefinityPbx::AcceptsExtension(const std::string& extension) const {
  if (config_.extension_prefixes.empty()) return true;
  return std::any_of(config_.extension_prefixes.begin(),
                     config_.extension_prefixes.end(),
                     [&extension](const std::string& prefix) {
                       return StartsWith(extension, prefix);
                     });
}

Status DefinityPbx::CheckMutationAllowed() {
  // One gate for the whole fault schedule: manual disconnect,
  // scheduled outage windows, flaky FailNext sequences, probabilistic
  // errors, and injected timeout stalls.
  return faults_.OnMutation(config_.name);
}

Status DefinityPbx::ValidateStation(const lexpress::Record& record) const {
  std::string extension = record.GetFirst("Extension");
  if (extension.empty()) {
    return Status::InvalidArgument(config_.name +
                                   ": station requires Extension");
  }
  if (!IsAllDigits(extension) || extension.size() < 3 ||
      extension.size() > 6) {
    return Status::InvalidArgument(config_.name + ": bad extension '" +
                                   extension + "' (3-6 digits)");
  }
  if (!AcceptsExtension(extension)) {
    return Status::InvalidArgument(config_.name + ": extension " +
                                   extension + " outside dial plan");
  }
  if (record.GetFirst("Name").empty()) {
    return Status::InvalidArgument(config_.name +
                                   ": station requires Name");
  }
  std::string cos = record.GetFirst("Cos");
  if (!cos.empty()) {
    if (!IsAllDigits(cos) || cos.size() > 1 || cos[0] > '7') {
      return Status::InvalidArgument(config_.name + ": bad Cos '" + cos +
                                     "' (0-7)");
    }
  }
  for (const auto& [field, value] : record.attrs()) {
    if (!EqualsIgnoreCase(field, "Extension") && !IsStationField(field)) {
      return Status::InvalidArgument(config_.name + ": unknown field '" +
                                     field + "'");
    }
    if (value.size() > 1) {
      return Status::InvalidArgument(config_.name + ": field '" + field +
                                     "' cannot hold multiple values");
    }
  }
  return Status::Ok();
}

void DefinityPbx::Notify(lexpress::DescriptorOp op,
                         lexpress::Record old_record,
                         lexpress::Record new_record) {
  if (faults_.drop_notifications()) return;
  NotificationHandler handler;
  {
    MutexLock lock(&mutex_);
    handler = handler_;
  }
  if (!handler) return;
  DeviceNotification notification;
  notification.op = op;
  notification.old_record = std::move(old_record);
  notification.new_record = std::move(new_record);
  notification.device_name = config_.name;
  handler(notification);
}

Status DefinityPbx::AddRecord(const lexpress::Record& record) {
  latency_.OnCommand();
  METACOMM_RETURN_IF_ERROR(CheckMutationAllowed());
  lexpress::Record station = record;
  station.set_schema(schema_);
  if (station.GetFirst("Cos").empty()) station.SetOne("Cos", "1");
  METACOMM_RETURN_IF_ERROR(ValidateStation(station));
  std::string extension = station.GetFirst("Extension");
  {
    MutexLock lock(&mutex_);
    if (stations_.count(extension) > 0) {
      return Status::AlreadyExists(config_.name + ": extension " +
                                   extension + " already administered");
    }
    stations_.emplace(extension, station);
  }
  Notify(lexpress::DescriptorOp::kAdd, lexpress::Record(schema_), station);
  return Status::Ok();
}

Status DefinityPbx::ModifyRecord(
    const std::string& key, const lexpress::Record& record,
    const std::vector<std::string>& clear_fields) {
  latency_.OnCommand();
  METACOMM_RETURN_IF_ERROR(CheckMutationAllowed());
  lexpress::Record old_record(schema_);
  lexpress::Record new_record = record;
  new_record.set_schema(schema_);
  {
    MutexLock lock(&mutex_);
    auto it = stations_.find(key);
    if (it == stations_.end()) {
      return Status::NotFound(config_.name + ": extension " + key +
                              " not administered");
    }
    old_record = it->second;
    // Merge: fields absent from the request keep their old values
    // (change-station semantics touch only listed fields), except
    // fields explicitly cleared with an empty value.
    for (const auto& [field, value] : old_record.attrs()) {
      if (!new_record.Has(field)) new_record.Set(field, value);
    }
    for (const std::string& field : clear_fields) {
      if (EqualsIgnoreCase(field, "Extension")) continue;
      new_record.Remove(field);
    }
    if (new_record.GetFirst("Extension").empty()) {
      new_record.SetOne("Extension", key);
    }
    METACOMM_RETURN_IF_ERROR(ValidateStation(new_record));
    std::string new_key = new_record.GetFirst("Extension");
    if (new_key != key && stations_.count(new_key) > 0) {
      return Status::AlreadyExists(config_.name + ": extension " + new_key +
                                   " already administered");
    }
    stations_.erase(it);
    stations_.emplace(new_key, new_record);
  }
  Notify(lexpress::DescriptorOp::kModify, old_record, new_record);
  return Status::Ok();
}

Status DefinityPbx::DeleteRecord(const std::string& key) {
  latency_.OnCommand();
  METACOMM_RETURN_IF_ERROR(CheckMutationAllowed());
  lexpress::Record old_record(schema_);
  {
    MutexLock lock(&mutex_);
    auto it = stations_.find(key);
    if (it == stations_.end()) {
      return Status::NotFound(config_.name + ": extension " + key +
                              " not administered");
    }
    old_record = it->second;
    stations_.erase(it);
  }
  Notify(lexpress::DescriptorOp::kDelete, old_record,
         lexpress::Record(schema_));
  return Status::Ok();
}

StatusOr<lexpress::Record> DefinityPbx::GetRecord(const std::string& key) {
  latency_.OnCommand();
  if (faults_.ReadBlocked()) {
    return Status::Unavailable(config_.name + ": link down");
  }
  MutexLock lock(&mutex_);
  auto it = stations_.find(key);
  if (it == stations_.end()) {
    return Status::NotFound(config_.name + ": extension " + key +
                            " not administered");
  }
  return it->second;
}

StatusOr<std::vector<lexpress::Record>> DefinityPbx::DumpAll() {
  latency_.OnCommand();
  if (faults_.ReadBlocked()) {
    return Status::Unavailable(config_.name + ": link down");
  }
  MutexLock lock(&mutex_);
  std::vector<lexpress::Record> out;
  out.reserve(stations_.size());
  for (const auto& [key, record] : stations_) out.push_back(record);
  return out;
}

void DefinityPbx::SetNotificationHandler(NotificationHandler handler) {
  MutexLock lock(&mutex_);
  handler_ = std::move(handler);
}

size_t DefinityPbx::StationCount() const {
  MutexLock lock(&mutex_);
  return stations_.size();
}

StatusOr<std::string> DefinityPbx::ExecuteCommand(
    const std::string& command) {
  // One command = one administrative round-trip; the typed operations
  // the command dispatches to below ride this session for free.
  LatencyEmulator::SessionScope rtt_session(&latency_);
  METACOMM_ASSIGN_OR_RETURN(std::vector<std::string> words,
                            TokenizeCommand(command));
  if (words.empty()) {
    return Status::InvalidArgument(config_.name + ": empty command");
  }
  const std::string& verb = words[0];

  if (EqualsIgnoreCase(verb, "list")) {
    if (words.size() < 2 || !EqualsIgnoreCase(words[1], "station")) {
      return Status::InvalidArgument(config_.name + ": usage: list station");
    }
    if (faults_.ReadBlocked()) {
      return Status::Unavailable(config_.name + ": link down");
    }
    std::string out;
    MutexLock lock(&mutex_);
    for (const auto& [key, record] : stations_) {
      out += key + " " + record.GetFirst("Name") + "\n";
    }
    return out;
  }

  if (words.size() < 3 || !EqualsIgnoreCase(words[1], "station")) {
    return Status::InvalidArgument(
        config_.name + ": usage: <add|change|remove|display> station <ext>");
  }
  const std::string& extension = words[2];

  if (EqualsIgnoreCase(verb, "display")) {
    METACOMM_ASSIGN_OR_RETURN(lexpress::Record record,
                              GetRecord(extension));
    std::string out;
    for (const auto& [field, value] : record.attrs()) {
      out += field + ": " + (value.empty() ? "" : value.front()) + "\n";
    }
    return out;
  }

  if (EqualsIgnoreCase(verb, "remove")) {
    METACOMM_RETURN_IF_ERROR(DeleteRecord(extension));
    return std::string("command successfully completed");
  }

  // add / change take "Field value" pairs; an empty quoted value
  // ("") on change clears the field.
  lexpress::Record record(schema_);
  record.SetOne("Extension", extension);
  std::vector<std::string> clears;
  for (size_t i = 3; i + 1 < words.size(); i += 2) {
    if (words[i + 1].empty()) {
      clears.push_back(words[i]);
    } else {
      record.SetOne(words[i], words[i + 1]);
    }
  }
  if ((words.size() - 3) % 2 != 0) {
    return Status::InvalidArgument(config_.name +
                                   ": field without value in command");
  }

  if (EqualsIgnoreCase(verb, "add")) {
    METACOMM_RETURN_IF_ERROR(AddRecord(record));
    return std::string("command successfully completed");
  }
  if (EqualsIgnoreCase(verb, "change")) {
    METACOMM_RETURN_IF_ERROR(ModifyRecord(extension, record, clears));
    return std::string("command successfully completed");
  }
  return Status::InvalidArgument(config_.name + ": unknown command verb '" +
                                 verb + "'");
}

}  // namespace metacomm::devices
