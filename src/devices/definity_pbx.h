#ifndef METACOMM_DEVICES_DEFINITY_PBX_H_
#define METACOMM_DEVICES_DEFINITY_PBX_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "devices/device.h"

namespace metacomm::devices {

/// Configuration of one simulated Definity PBX.
struct PbxConfig {
  /// Instance name, e.g. "pbx1".
  std::string name = "pbx1";
  /// Extension prefixes this switch manages; empty accepts any
  /// extension. Mirrors the paper's example of a PBX that "accepts
  /// updates for phone numbers beginning with +1 908-582-9..." — the
  /// device itself enforces its dial-plan partition.
  std::vector<std::string> extension_prefixes;
  /// Emulated administration-link round-trip per command (0 = direct
  /// call). One LatencyEmulator session pays this once for a whole
  /// command batch.
  int64_t command_rtt_micros = 0;
};

/// Simulated Lucent Definity PBX.
///
/// Station records live in the "pbx" lexpress schema with fields:
///   Extension  (key; 3-6 digit dial-plan number)
///   Name       (display name; required)
///   Room       (optional)
///   Cos        (class of service, integer 0..7; default "1")
///   CoveragePath, SetType, Port (optional)
///
/// The administration surface is an OSSI-flavored line protocol:
///   add station 4567 Name "John Doe" Room 2C-401
///   change station 4567 Room 2C-402
///   remove station 4567
///   display station 4567
///   list station
/// Field values with spaces are double-quoted. Every command is atomic;
/// there are no transactions, triggers, or typed columns beyond the
/// per-field checks above — the weaknesses §5.1 works around.
class DefinityPbx : public Device {
 public:
  explicit DefinityPbx(PbxConfig config);

  const std::string& name() const override { return config_.name; }
  const std::string& schema() const override { return schema_; }

  StatusOr<std::string> ExecuteCommand(const std::string& command) override;
  StatusOr<lexpress::Record> GetRecord(const std::string& key) override;
  Status AddRecord(const lexpress::Record& record) override;
  Status ModifyRecord(const std::string& key,
                      const lexpress::Record& record,
                      const std::vector<std::string>& clear_fields)
      override;
  Status DeleteRecord(const std::string& key) override;
  StatusOr<std::vector<lexpress::Record>> DumpAll() override;
  void SetNotificationHandler(NotificationHandler handler) override;
  FaultInjector& faults() override { return faults_; }
  LatencyEmulator& latency() override { return latency_; }

  /// Number of stations configured.
  size_t StationCount() const;

  /// True if the extension falls inside this switch's dial plan.
  bool AcceptsExtension(const std::string& extension) const;

 private:
  /// Checks connectivity and injected failures for a mutating command.
  Status CheckMutationAllowed();

  /// Field-level validation (the only "typing" the device has).
  Status ValidateStation(const lexpress::Record& record) const;

  void Notify(lexpress::DescriptorOp op, lexpress::Record old_record,
              lexpress::Record new_record) EXCLUDES(mutex_);

  PbxConfig config_;
  std::string schema_ = "pbx";
  mutable Mutex mutex_{LockRank::kDeviceRecords,
                       "devices.definity_pbx"};
  // by Extension
  std::map<std::string, lexpress::Record> stations_ GUARDED_BY(mutex_);
  NotificationHandler handler_ GUARDED_BY(mutex_);
  FaultInjector faults_;
  LatencyEmulator latency_;
};

}  // namespace metacomm::devices

#endif  // METACOMM_DEVICES_DEFINITY_PBX_H_
