#ifndef METACOMM_LEXPRESS_COMPILER_H_
#define METACOMM_LEXPRESS_COMPILER_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "lexpress/ast.h"
#include "lexpress/bytecode.h"

namespace metacomm::lexpress {

/// A compiled `map`/`key` rule.
struct CompiledRule {
  bool is_key = false;
  std::string target_attr;
  /// Guard program; empty means unconditional.
  Program guard;
  /// Value program; never empty.
  Program value;
  /// Source attributes the rule reads (guard + value). Drives the
  /// dependency graph for transitive closure and cycle analysis.
  std::set<std::string, CaseInsensitiveLess> source_attrs;
  /// True when the rule is a plain unguarded copy of one attribute —
  /// such edges always converge in cycles (the attribute just gets
  /// copied back unchanged), so cycle analysis treats them as benign.
  bool identity = false;
  /// Slot of the single attribute an identity rule copies, resolved by
  /// Mapping::Compile; -1 for non-identity rules (or before slot
  /// resolution). Lets evaluation copy straight out of the RecordView
  /// without entering the VM at all — identity copies are the most
  /// common rule shape in deployment description files.
  int32_t direct_slot = -1;
  int line = 0;
};

/// Compiles one expression (exposed for tests and for compiling
/// partition predicates).
StatusOr<Program> CompileExpr(const Expr& expr,
                              const std::vector<TableDef>& tables);

/// Collects the attribute names an expression reads.
void CollectAttrRefs(const Expr& expr,
                     std::set<std::string, CaseInsensitiveLess>* out);

/// Compiles one rule against the mapping's tables.
StatusOr<CompiledRule> CompileRule(const MapRule& rule,
                                   const std::vector<TableDef>& tables);

/// Interns every attribute `program` reads into `slots` and fills
/// program->attr_slots, enabling the VM's slot-resolved fast path.
/// Mapping::Compile runs this over all rule and partition programs
/// with the mapping's own SlotMap.
void ResolveSlots(SlotMap* slots, Program* program);

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_COMPILER_H_
