#include "lexpress/record.h"

#include <algorithm>

namespace metacomm::lexpress {

bool Record::Has(std::string_view attr) const {
  auto it = attrs_.find(attr);
  return it != attrs_.end() && !it->second.empty();
}

const Value& Record::Get(std::string_view attr) const {
  static const Value* empty = new Value;
  auto it = attrs_.find(attr);
  return it == attrs_.end() ? *empty : it->second;
}

std::string Record::GetFirst(std::string_view attr) const {
  const Value& v = Get(attr);
  return v.empty() ? "" : v.front();
}

void Record::Set(std::string_view attr, Value value) {
  if (value.empty()) {
    Remove(attr);
    return;
  }
  attrs_[std::string(attr)] = std::move(value);
}

void Record::SetOne(std::string_view attr, std::string value) {
  Set(attr, Value{std::move(value)});
}

void Record::Remove(std::string_view attr) {
  auto it = attrs_.find(attr);
  if (it != attrs_.end()) attrs_.erase(it);
}

namespace {

bool ValueSetsEqual(const Value& a, const Value& b) {
  if (a.size() != b.size()) return false;
  for (const std::string& va : a) {
    bool found = std::any_of(b.begin(), b.end(), [&va](const std::string& vb) {
      return EqualsIgnoreCase(va, vb);
    });
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool operator==(const Record& a, const Record& b) {
  if (!EqualsIgnoreCase(a.schema_, b.schema_)) return false;
  if (a.attrs_.size() != b.attrs_.size()) return false;
  for (const auto& [name, value] : a.attrs_) {
    auto it = b.attrs_.find(name);
    if (it == b.attrs_.end() || !ValueSetsEqual(value, it->second)) {
      return false;
    }
  }
  return true;
}

std::string Record::ToString() const {
  std::string out = schema_ + "{";
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += name + "=[" + Join(value, ",") + "]";
  }
  out += "}";
  return out;
}

const char* DescriptorOpName(DescriptorOp op) {
  switch (op) {
    case DescriptorOp::kAdd:
      return "add";
    case DescriptorOp::kModify:
      return "modify";
    case DescriptorOp::kDelete:
      return "delete";
  }
  return "?";
}

std::string UpdateDescriptor::ToString() const {
  std::string out = std::string(DescriptorOpName(op)) + "@" + schema;
  out += " source=" + (source.empty() ? "?" : source);
  if (conditional) out += " conditional";
  out += " old=" + old_record.ToString();
  out += " new=" + new_record.ToString();
  return out;
}

}  // namespace metacomm::lexpress
