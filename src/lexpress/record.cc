#include "lexpress/record.h"

#include <algorithm>

namespace metacomm::lexpress {

const Value& EmptyValue() {
  static const Value* empty = new Value;
  return *empty;
}

uint32_t SlotMap::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  uint32_t slot = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), slot);
  return slot;
}

std::optional<uint32_t> SlotMap::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void RecordView::Reset(const Record& record, const SlotMap& slots) {
  slots_.assign(slots.size(), &EmptyValue());
  // Record attributes and the slot index are sorted by the same
  // comparator, so one merge walk resolves everything: O(attrs + slots)
  // comparisons instead of a map lookup per attribute.
  CaseInsensitiveLess less;
  auto ir = record.attrs().begin();
  auto is = slots.index().begin();
  while (ir != record.attrs().end() && is != slots.index().end()) {
    if (less(ir->first, is->first)) {
      ++ir;
    } else if (less(is->first, ir->first)) {
      ++is;
    } else {
      slots_[is->second] = &ir->second;
      ++ir;
      ++is;
    }
  }
}

Record::Record(std::string schema, AttrMap attrs)
    : schema_(std::move(schema)), attrs_(std::move(attrs)) {
  attrs_.erase(std::remove_if(attrs_.begin(), attrs_.end(),
                              [](const AttrMap::value_type& entry) {
                                return entry.second.empty();
                              }),
               attrs_.end());
  auto name_less = [](const AttrMap::value_type& a,
                      const AttrMap::value_type& b) {
    return CaseInsensitiveLess()(a.first, b.first);
  };
  // Builders that append in order (Mapping::MapRecord walks its groups
  // in target order) pay one linear verification pass, nothing more.
  if (!std::is_sorted(attrs_.begin(), attrs_.end(), name_less)) {
    std::stable_sort(attrs_.begin(), attrs_.end(), name_less);
  }
  // Later entries win, matching what Set-ing them in order would do.
  auto out = attrs_.begin();
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (out != attrs_.begin() &&
        EqualsIgnoreCase(std::prev(out)->first, it->first)) {
      *std::prev(out) = std::move(*it);
    } else {
      if (out != it) *out = std::move(*it);
      ++out;
    }
  }
  attrs_.erase(out, attrs_.end());
}

Record::AttrMap::iterator Record::LowerBound(std::string_view attr) {
  return std::lower_bound(
      attrs_.begin(), attrs_.end(), attr,
      [](const AttrMap::value_type& entry, std::string_view name) {
        return CaseInsensitiveLess()(entry.first, name);
      });
}

Record::AttrMap::const_iterator Record::Find(std::string_view attr) const {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), attr,
      [](const AttrMap::value_type& entry, std::string_view name) {
        return CaseInsensitiveLess()(entry.first, name);
      });
  if (it == attrs_.end() || !EqualsIgnoreCase(it->first, attr)) {
    return attrs_.end();
  }
  return it;
}

bool Record::Has(std::string_view attr) const {
  auto it = Find(attr);
  return it != attrs_.end() && !it->second.empty();
}

const Value& Record::Get(std::string_view attr) const {
  auto it = Find(attr);
  return it == attrs_.end() ? EmptyValue() : it->second;
}

std::string Record::GetFirst(std::string_view attr) const {
  const Value& v = Get(attr);
  return v.empty() ? "" : v.front();
}

void Record::Set(std::string_view attr, Value value) {
  if (value.empty()) {
    Remove(attr);
    return;
  }
  auto it = LowerBound(attr);
  if (it != attrs_.end() && EqualsIgnoreCase(it->first, attr)) {
    it->second = std::move(value);
    return;
  }
  attrs_.emplace(it, std::string(attr), std::move(value));
}

void Record::SetOne(std::string_view attr, std::string value) {
  Set(attr, Value{std::move(value)});
}

void Record::Remove(std::string_view attr) {
  auto it = LowerBound(attr);
  if (it != attrs_.end() && EqualsIgnoreCase(it->first, attr)) {
    attrs_.erase(it);
  }
}

namespace {

bool ValueSetsEqual(const Value& a, const Value& b) {
  if (a.size() != b.size()) return false;
  for (const std::string& va : a) {
    bool found = std::any_of(b.begin(), b.end(), [&va](const std::string& vb) {
      return EqualsIgnoreCase(va, vb);
    });
    if (!found) return false;
  }
  return true;
}

}  // namespace

std::set<std::string, CaseInsensitiveLess> ChangedAttrs(const Record& a,
                                                        const Record& b) {
  // Exact (ordered, case-sensitive) value comparison, deliberately
  // stricter than the set-equality Records compare with: a rule's
  // OUTPUT can be case- and order-sensitive (concat, first, join), so
  // "unchanged" must mean bit-identical input for the skipped
  // re-evaluation to be provably identical too. Stricter only costs a
  // spurious re-evaluation; looser would change results.
  //
  // Both attribute lists are sorted by the same comparator, so one
  // linear merge walk finds every difference.
  std::set<std::string, CaseInsensitiveLess> changed;
  CaseInsensitiveLess less;
  auto ia = a.attrs().begin();
  auto ib = b.attrs().begin();
  while (ia != a.attrs().end() && ib != b.attrs().end()) {
    if (less(ia->first, ib->first)) {
      changed.insert(ia->first);
      ++ia;
    } else if (less(ib->first, ia->first)) {
      changed.insert(ib->first);
      ++ib;
    } else {
      if (!(ia->second == ib->second)) changed.insert(ia->first);
      ++ia;
      ++ib;
    }
  }
  for (; ia != a.attrs().end(); ++ia) changed.insert(ia->first);
  for (; ib != b.attrs().end(); ++ib) changed.insert(ib->first);
  return changed;
}

bool operator==(const Record& a, const Record& b) {
  if (!EqualsIgnoreCase(a.schema_, b.schema_)) return false;
  if (a.attrs_.size() != b.attrs_.size()) return false;
  // Same comparator, same size: equal records pair up positionally.
  for (size_t i = 0; i < a.attrs_.size(); ++i) {
    if (!EqualsIgnoreCase(a.attrs_[i].first, b.attrs_[i].first) ||
        !ValueSetsEqual(a.attrs_[i].second, b.attrs_[i].second)) {
      return false;
    }
  }
  return true;
}

std::string Record::ToString() const {
  std::string out = schema_ + "{";
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += name + "=[" + Join(value, ",") + "]";
  }
  out += "}";
  return out;
}

const char* DescriptorOpName(DescriptorOp op) {
  switch (op) {
    case DescriptorOp::kAdd:
      return "add";
    case DescriptorOp::kModify:
      return "modify";
    case DescriptorOp::kDelete:
      return "delete";
  }
  return "?";
}

std::string UpdateDescriptor::ToString() const {
  std::string out = std::string(DescriptorOpName(op)) + "@" + schema;
  out += " source=" + (source.empty() ? "?" : source);
  if (conditional) out += " conditional";
  out += " old=" + old_record.ToString();
  out += " new=" + new_record.ToString();
  return out;
}

}  // namespace metacomm::lexpress
