#ifndef METACOMM_LEXPRESS_AST_H_
#define METACOMM_LEXPRESS_AST_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.h"

namespace metacomm::lexpress {

/// Expression AST. Predicates are expressions too: boolean builtins
/// (and/or/not/present/prefix/matches/==/!=) return the strings "true"
/// or "false", and a guard holds when its expression is truthy. One
/// node kind keeps the compiler and VM small.
struct Expr {
  enum class Kind {
    kLiteral,  // String or integer literal; `text` is the value.
    kAttrRef,  // Reference to a source attribute; `text` is its name.
    kCall,     // Builtin call; `text` is the function name.
  };

  Kind kind = Kind::kLiteral;
  std::string text;
  std::vector<Expr> args;  // Only for kCall.

  static Expr Literal(std::string value) {
    Expr e;
    e.kind = Kind::kLiteral;
    e.text = std::move(value);
    return e;
  }
  static Expr AttrRef(std::string name) {
    Expr e;
    e.kind = Kind::kAttrRef;
    e.text = std::move(name);
    return e;
  }
  static Expr Call(std::string function, std::vector<Expr> args) {
    Expr e;
    e.kind = Kind::kCall;
    e.text = std::move(function);
    e.args = std::move(args);
    return e;
  }
};

/// One `map`/`key` rule: evaluate `expr` over the source record and
/// store it into `target_attr`, if the optional `when` guard holds.
/// Multiple rules for one target attribute are "alternate attribute
/// mappings" (paper §4.2): the first applicable rule wins.
struct MapRule {
  bool is_key = false;
  Expr expr;
  std::string target_attr;
  std::optional<Expr> guard;
  int line = 0;
};

/// A `table` block: the "table translations of attributes" of §4.2.
struct TableDef {
  std::string name;
  std::map<std::string, std::string, CaseInsensitiveLess> entries;
  std::optional<std::string> default_value;
};

/// One parsed `mapping` block.
struct MappingDecl {
  std::string name;
  std::string source_schema;
  std::string target_schema;
  /// option <name> = <value>; — recognized options:
  ///   target_name: repository instance the mapping feeds ("pbx1");
  ///   originator:  source attribute naming the update's origin
  ///                (paper §5.4's Originator characteristic);
  ///   allow_cycles: "true" defers cycle errors to runtime fixpoint
  ///                detection.
  std::map<std::string, std::string, CaseInsensitiveLess> options;
  /// partition when <pred>; — evaluated over old and new source
  /// records to route the update (add/modify/delete/skip, §4.2).
  std::optional<Expr> partition;
  std::vector<TableDef> tables;
  std::vector<MapRule> rules;
  int line = 0;
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_AST_H_
