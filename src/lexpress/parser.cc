#include "lexpress/parser.h"

#include "lexpress/lexer.h"

namespace metacomm::lexpress {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::vector<MappingDecl>> ParseFile() {
    std::vector<MappingDecl> mappings;
    while (!AtEnd()) {
      METACOMM_ASSIGN_OR_RETURN(MappingDecl decl, ParseMapping());
      mappings.push_back(std::move(decl));
    }
    if (mappings.empty()) {
      return Status::InvalidArgument("lexpress source declares no mappings");
    }
    return mappings;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool CheckIdent(std::string_view word) const {
    return Peek().kind == TokenKind::kIdentifier &&
           EqualsIgnoreCase(Peek().text, word);
  }

  bool MatchIdent(std::string_view word) {
    if (!CheckIdent(word)) return false;
    Advance();
    return true;
  }

  Status ErrorHere(const std::string& message) const {
    const Token& t = Peek();
    return Status::InvalidArgument(
        "lexpress parse error at " + std::to_string(t.line) + ":" +
        std::to_string(t.column) + ": " + message + " (found " +
        TokenKindName(t.kind) +
        (t.text.empty() ? "" : " '" + t.text + "'") + ")");
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return ErrorHere(std::string("expected ") + TokenKindName(kind));
    }
    Advance();
    return Status::Ok();
  }

  StatusOr<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected identifier");
    }
    return Advance().text;
  }

  StatusOr<std::string> ExpectString() {
    if (Peek().kind != TokenKind::kString) {
      return ErrorHere("expected string literal");
    }
    return Advance().text;
  }

  StatusOr<MappingDecl> ParseMapping() {
    MappingDecl decl;
    decl.line = Peek().line;
    if (!MatchIdent("mapping")) return ErrorHere("expected 'mapping'");
    METACOMM_ASSIGN_OR_RETURN(decl.name, ExpectIdent());
    if (!MatchIdent("from")) return ErrorHere("expected 'from'");
    METACOMM_ASSIGN_OR_RETURN(decl.source_schema, ExpectIdent());
    if (!MatchIdent("to")) return ErrorHere("expected 'to'");
    METACOMM_ASSIGN_OR_RETURN(decl.target_schema, ExpectIdent());
    METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kLeftBrace));

    while (Peek().kind != TokenKind::kRightBrace) {
      if (AtEnd()) return ErrorHere("unterminated mapping block");
      if (CheckIdent("option")) {
        METACOMM_RETURN_IF_ERROR(ParseOption(&decl));
      } else if (CheckIdent("partition")) {
        METACOMM_RETURN_IF_ERROR(ParsePartition(&decl));
      } else if (CheckIdent("table")) {
        METACOMM_RETURN_IF_ERROR(ParseTable(&decl));
      } else if (CheckIdent("map") || CheckIdent("key")) {
        METACOMM_RETURN_IF_ERROR(ParseRule(&decl));
      } else {
        return ErrorHere(
            "expected 'option', 'partition', 'table', 'map' or 'key'");
      }
    }
    METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kRightBrace));
    return decl;
  }

  Status ParseOption(MappingDecl* decl) {
    Advance();  // 'option'
    METACOMM_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kEquals));
    const Token& value = Peek();
    if (value.kind != TokenKind::kString &&
        value.kind != TokenKind::kIdentifier &&
        value.kind != TokenKind::kInteger) {
      return ErrorHere("expected option value");
    }
    decl->options[name] = Advance().text;
    return Expect(TokenKind::kSemicolon);
  }

  Status ParsePartition(MappingDecl* decl) {
    Advance();  // 'partition'
    if (!MatchIdent("when")) return ErrorHere("expected 'when'");
    METACOMM_ASSIGN_OR_RETURN(Expr pred, ParsePred());
    if (decl->partition.has_value()) {
      // Multiple partition clauses AND together.
      decl->partition =
          Expr::Call("and", {*std::move(decl->partition), std::move(pred)});
    } else {
      decl->partition = std::move(pred);
    }
    return Expect(TokenKind::kSemicolon);
  }

  Status ParseTable(MappingDecl* decl) {
    Advance();  // 'table'
    TableDef table;
    METACOMM_ASSIGN_OR_RETURN(table.name, ExpectIdent());
    METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kLeftBrace));
    while (Peek().kind != TokenKind::kRightBrace) {
      if (AtEnd()) return ErrorHere("unterminated table block");
      if (MatchIdent("default")) {
        METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
        METACOMM_ASSIGN_OR_RETURN(std::string value, ExpectString());
        table.default_value = std::move(value);
      } else {
        METACOMM_ASSIGN_OR_RETURN(std::string from, ExpectString());
        METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
        METACOMM_ASSIGN_OR_RETURN(std::string to, ExpectString());
        table.entries[from] = std::move(to);
      }
      METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    }
    METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kRightBrace));
    decl->tables.push_back(std::move(table));
    return Status::Ok();
  }

  Status ParseRule(MappingDecl* decl) {
    MapRule rule;
    rule.line = Peek().line;
    rule.is_key = CheckIdent("key");
    Advance();  // 'map' or 'key'
    // Full predicate grammar is allowed on the value side too, so
    // boolean-valued rules like `map present(x) -> flag` work.
    METACOMM_ASSIGN_OR_RETURN(rule.expr, ParsePred());
    METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    METACOMM_ASSIGN_OR_RETURN(rule.target_attr, ExpectIdent());
    if (MatchIdent("when")) {
      METACOMM_ASSIGN_OR_RETURN(Expr guard, ParsePred());
      rule.guard = std::move(guard);
    }
    METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    decl->rules.push_back(std::move(rule));
    return Status::Ok();
  }

  // pred := andp ('or' andp)*
  StatusOr<Expr> ParsePred() {
    // Depth guard against pathological nesting ("(((((...").
    if (++depth_ > kMaxDepth) {
      return Status::InvalidArgument(
          "lexpress: expression nesting too deep");
    }
    struct DepthGuard {
      int* depth;
      ~DepthGuard() { --*depth; }
    } guard{&depth_};
    METACOMM_ASSIGN_OR_RETURN(Expr left, ParseAnd());
    while (MatchIdent("or")) {
      METACOMM_ASSIGN_OR_RETURN(Expr right, ParseAnd());
      left = Expr::Call("or", {std::move(left), std::move(right)});
    }
    return left;
  }

  StatusOr<Expr> ParseAnd() {
    METACOMM_ASSIGN_OR_RETURN(Expr left, ParseNot());
    while (MatchIdent("and")) {
      METACOMM_ASSIGN_OR_RETURN(Expr right, ParseNot());
      left = Expr::Call("and", {std::move(left), std::move(right)});
    }
    return left;
  }

  StatusOr<Expr> ParseNot() {
    if (MatchIdent("not")) {
      METACOMM_ASSIGN_OR_RETURN(Expr inner, ParseNot());
      return Expr::Call("not", {std::move(inner)});
    }
    return ParseCompare();
  }

  StatusOr<Expr> ParseCompare() {
    METACOMM_ASSIGN_OR_RETURN(Expr left, ParseExpr());
    if (Peek().kind == TokenKind::kEqualsEquals) {
      Advance();
      METACOMM_ASSIGN_OR_RETURN(Expr right, ParseExpr());
      return Expr::Call("eq", {std::move(left), std::move(right)});
    }
    if (Peek().kind == TokenKind::kNotEquals) {
      Advance();
      METACOMM_ASSIGN_OR_RETURN(Expr right, ParseExpr());
      return Expr::Call("ne", {std::move(left), std::move(right)});
    }
    return left;
  }

  StatusOr<Expr> ParseExpr() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString:
      case TokenKind::kInteger:
        return Expr::Literal(Advance().text);
      case TokenKind::kLeftParen: {
        Advance();
        METACOMM_ASSIGN_OR_RETURN(Expr inner, ParsePred());
        METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
        return inner;
      }
      case TokenKind::kIdentifier: {
        std::string name = Advance().text;
        if (Peek().kind == TokenKind::kLeftParen) {
          Advance();
          std::vector<Expr> args;
          if (Peek().kind != TokenKind::kRightParen) {
            while (true) {
              METACOMM_ASSIGN_OR_RETURN(Expr arg, ParsePred());
              args.push_back(std::move(arg));
              if (Peek().kind == TokenKind::kComma) {
                Advance();
                continue;
              }
              break;
            }
          }
          METACOMM_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
          return Expr::Call(std::move(name), std::move(args));
        }
        return Expr::AttrRef(std::move(name));
      }
      default:
        return ErrorHere("expected expression");
    }
  }

  static constexpr int kMaxDepth = 128;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<std::vector<MappingDecl>> ParseMappings(std::string_view source) {
  METACOMM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseFile();
}

}  // namespace metacomm::lexpress
