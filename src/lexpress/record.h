#ifndef METACOMM_LEXPRESS_RECORD_H_
#define METACOMM_LEXPRESS_RECORD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"

namespace metacomm::lexpress {

/// Every lexpress value is a list of strings: LDAP attributes are
/// set-valued and weakly typed, and the devices' fields are strings,
/// so the canonical data model is multi-valued strings. Most builtins
/// operate elementwise; aggregates (join, first, ...) collapse lists.
using Value = std::vector<std::string>;

/// A schema-tagged flat record: lexpress' canonical representation of
/// one object in one repository. Filters convert between this form and
/// their repository's native form (LDAP entry, PBX station, mailbox).
class Record {
 public:
  /// Attributes, sorted case-insensitively by name. A flat sorted
  /// vector rather than a node-based map: records are built once and
  /// then copied and iterated constantly (every Translate materializes
  /// two of them), and the flat layout makes a copy one contiguous
  /// allocation instead of one tree node per attribute.
  using AttrMap = std::vector<std::pair<std::string, Value>>;

  Record() = default;
  explicit Record(std::string schema) : schema_(std::move(schema)) {}

  /// Bulk construction: adopts `attrs` wholesale (in any order), drops
  /// empty value lists, sorts once. Equivalent to Set-ing every entry
  /// in sequence (later duplicates win) but without the per-insert
  /// binary search and shifting — the fast path for code that
  /// materializes a whole record at once, like Mapping::MapRecord.
  Record(std::string schema, AttrMap attrs);

  const std::string& schema() const { return schema_; }
  void set_schema(std::string schema) { schema_ = std::move(schema); }

  const AttrMap& attrs() const { return attrs_; }

  bool Has(std::string_view attr) const;

  /// All values (empty when absent).
  const Value& Get(std::string_view attr) const;

  /// First value or "".
  std::string GetFirst(std::string_view attr) const;

  /// Sets the value list; an empty list removes the attribute.
  void Set(std::string_view attr, Value value);

  /// Single-value convenience.
  void SetOne(std::string_view attr, std::string value);

  void Remove(std::string_view attr);

  bool empty() const { return attrs_.empty(); }
  size_t size() const { return attrs_.size(); }

  /// Records are equal when schema and all attribute value lists match
  /// (value lists compare as sets, case-insensitively).
  friend bool operator==(const Record& a, const Record& b);

  /// "schema{attr=[v1,v2], ...}" for logs and test failures.
  std::string ToString() const;

 private:
  /// First entry not ordered before `attr`.
  AttrMap::iterator LowerBound(std::string_view attr);
  AttrMap::const_iterator Find(std::string_view attr) const;

  std::string schema_;
  AttrMap attrs_;  // Sorted by CaseInsensitiveLess over the name.
};

/// The canonical empty value list (what Record::Get returns for an
/// absent attribute). Lets slot machinery hand out stable pointers for
/// missing attributes without materializing empty lists.
const Value& EmptyValue();

/// A per-mapping interning table of attribute names. Built once at
/// Mapping::Compile time: every attribute an expression reads is
/// assigned a dense slot index, so the VM's kLoadAttr resolves to an
/// array index instead of a case-insensitive map lookup per
/// instruction.
class SlotMap {
 public:
  /// Returns the slot of `name`, interning it on first sight.
  uint32_t Intern(std::string_view name);

  /// Slot of `name`, or nullopt when no expression reads it.
  std::optional<uint32_t> Find(std::string_view name) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// Interned names, indexed by slot.
  const std::vector<std::string>& names() const { return names_; }

  /// Name -> slot, iterable in case-insensitive name order. Record
  /// attributes are sorted by the same comparator, so RecordView::Reset
  /// resolves every attribute with one merge walk instead of a map
  /// lookup per attribute.
  const std::map<std::string, uint32_t, CaseInsensitiveLess>& index() const {
    return index_;
  }

 private:
  std::map<std::string, uint32_t, CaseInsensitiveLess> index_;
  std::vector<std::string> names_;
};

/// A flat, slot-indexed view of one Record: slots_[i] points at the
/// value list of the attribute SlotMap assigned slot i (EmptyValue()
/// when the record lacks it). Built once per Translate/MapRecord in
/// O(record attrs), then every kLoadAttr is one indexed load. Owns no
/// values — the viewed record must outlive every use. Reusable: Reset
/// keeps the slot vector's capacity across calls.
class RecordView {
 public:
  void Reset(const Record& record, const SlotMap& slots);

  /// Repoints one slot (e.g. at the value of the same attribute in a
  /// different record). Lets a Modify reuse the old-image view: only
  /// the dirty slots differ, and for those `value` must outlive the
  /// view's next use just like the record Reset was given.
  void Patch(uint32_t slot, const Value& value) { slots_[slot] = &value; }

  const Value& at(uint32_t slot) const { return *slots_[slot]; }
  size_t size() const { return slots_.size(); }

 private:
  std::vector<const Value*> slots_;
};

/// Attributes whose value lists differ between `a` and `b` (present in
/// one but not the other, or not exactly equal — ordered and
/// case-sensitive, see the implementation note). This is the "dirty
/// attribute" set of a Modify: rules reading none of these evaluate
/// bit-identically on both records.
std::set<std::string, CaseInsensitiveLess> ChangedAttrs(const Record& a,
                                                        const Record& b);

/// The kind of a canonical update.
enum class DescriptorOp { kAdd, kModify, kDelete };

/// Returns "add" / "modify" / "delete".
const char* DescriptorOpName(DescriptorOp op);

/// A lexpress update descriptor — the canonical form in which every
/// change travels through MetaComm (paper §4.1: "When a filter receives
/// a change notification from its associated repository, it creates a
/// lexpress update descriptor of the change").
///
/// Key changes (renames) are represented as kModify descriptors whose
/// old and new records disagree on the key attribute; the LDAP filter
/// turns those into the ModifyRDN/Modify pair of §5.1.
struct UpdateDescriptor {
  DescriptorOp op = DescriptorOp::kModify;
  /// Name of the schema both records are expressed in.
  std::string schema;
  /// Image before the update. Empty for kAdd.
  Record old_record;
  /// Image after the update. Empty for kDelete.
  Record new_record;
  /// Attributes the client set explicitly (as opposed to values derived
  /// by mapping closure). Governs conflict resolution: explicitly set
  /// attributes are never overwritten by the closure (paper §4.2).
  std::set<std::string, CaseInsensitiveLess> explicit_attrs;
  /// Name of the repository where the update originated ("pbx1",
  /// "mp1", "ldap"). Drives Originator/conditional processing (§5.4).
  std::string source;
  /// True when this update is being *re*applied to the repository that
  /// originated it: failures are recovered differently (§5.4 — a
  /// conditional modify that fails falls back to add).
  bool conditional = false;

  /// The record that describes the object after this update (new image
  /// except for deletes).
  const Record& EffectiveRecord() const {
    return op == DescriptorOp::kDelete ? old_record : new_record;
  }

  std::string ToString() const;
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_RECORD_H_
