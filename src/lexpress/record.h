#ifndef METACOMM_LEXPRESS_RECORD_H_
#define METACOMM_LEXPRESS_RECORD_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"

namespace metacomm::lexpress {

/// Every lexpress value is a list of strings: LDAP attributes are
/// set-valued and weakly typed, and the devices' fields are strings,
/// so the canonical data model is multi-valued strings. Most builtins
/// operate elementwise; aggregates (join, first, ...) collapse lists.
using Value = std::vector<std::string>;

/// A schema-tagged flat record: lexpress' canonical representation of
/// one object in one repository. Filters convert between this form and
/// their repository's native form (LDAP entry, PBX station, mailbox).
class Record {
 public:
  Record() = default;
  explicit Record(std::string schema) : schema_(std::move(schema)) {}

  const std::string& schema() const { return schema_; }
  void set_schema(std::string schema) { schema_ = std::move(schema); }

  using AttrMap = std::map<std::string, Value, CaseInsensitiveLess>;
  const AttrMap& attrs() const { return attrs_; }

  bool Has(std::string_view attr) const;

  /// All values (empty when absent).
  const Value& Get(std::string_view attr) const;

  /// First value or "".
  std::string GetFirst(std::string_view attr) const;

  /// Sets the value list; an empty list removes the attribute.
  void Set(std::string_view attr, Value value);

  /// Single-value convenience.
  void SetOne(std::string_view attr, std::string value);

  void Remove(std::string_view attr);

  bool empty() const { return attrs_.empty(); }
  size_t size() const { return attrs_.size(); }

  /// Records are equal when schema and all attribute value lists match
  /// (value lists compare as sets, case-insensitively).
  friend bool operator==(const Record& a, const Record& b);

  /// "schema{attr=[v1,v2], ...}" for logs and test failures.
  std::string ToString() const;

 private:
  std::string schema_;
  AttrMap attrs_;
};

/// The kind of a canonical update.
enum class DescriptorOp { kAdd, kModify, kDelete };

/// Returns "add" / "modify" / "delete".
const char* DescriptorOpName(DescriptorOp op);

/// A lexpress update descriptor — the canonical form in which every
/// change travels through MetaComm (paper §4.1: "When a filter receives
/// a change notification from its associated repository, it creates a
/// lexpress update descriptor of the change").
///
/// Key changes (renames) are represented as kModify descriptors whose
/// old and new records disagree on the key attribute; the LDAP filter
/// turns those into the ModifyRDN/Modify pair of §5.1.
struct UpdateDescriptor {
  DescriptorOp op = DescriptorOp::kModify;
  /// Name of the schema both records are expressed in.
  std::string schema;
  /// Image before the update. Empty for kAdd.
  Record old_record;
  /// Image after the update. Empty for kDelete.
  Record new_record;
  /// Attributes the client set explicitly (as opposed to values derived
  /// by mapping closure). Governs conflict resolution: explicitly set
  /// attributes are never overwritten by the closure (paper §4.2).
  std::set<std::string, CaseInsensitiveLess> explicit_attrs;
  /// Name of the repository where the update originated ("pbx1",
  /// "mp1", "ldap"). Drives Originator/conditional processing (§5.4).
  std::string source;
  /// True when this update is being *re*applied to the repository that
  /// originated it: failures are recovered differently (§5.4 — a
  /// conditional modify that fails falls back to add).
  bool conditional = false;

  /// The record that describes the object after this update (new image
  /// except for deletes).
  const Record& EffectiveRecord() const {
    return op == DescriptorOp::kDelete ? old_record : new_record;
  }

  std::string ToString() const;
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_RECORD_H_
