#ifndef METACOMM_LEXPRESS_LEXER_H_
#define METACOMM_LEXPRESS_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace metacomm::lexpress {

/// Token kinds of the lexpress mapping language.
enum class TokenKind {
  kIdentifier,   // mapping, key, attribute names, function names, ...
  kString,       // "double-quoted", with \" and \\ escapes
  kInteger,      // [-]digits
  kArrow,        // ->
  kLeftBrace,    // {
  kRightBrace,   // }
  kLeftParen,    // (
  kRightParen,   // )
  kComma,        // ,
  kSemicolon,    // ;
  kEquals,       // =
  kEqualsEquals, // ==
  kNotEquals,    // !=
  kEnd,          // end of input
};

/// One token with source position for error messages.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // Identifier/string content or literal spelling.
  int line = 1;
  int column = 1;
};

/// Tokenizes lexpress source. Comments run from '#' to end of line.
/// Keywords are not distinguished here — the parser matches identifier
/// text, so mapping names may reuse words like "table" freely where
/// unambiguous.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

/// Returns a printable name for a token kind (for diagnostics).
const char* TokenKindName(TokenKind kind);

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_LEXER_H_
