#include "lexpress/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "lexpress/closure.h"
#include "lexpress/compiler.h"
#include "lexpress/mapping.h"
#include "lexpress/parser.h"

namespace metacomm::lexpress {

namespace {

/// The conventional origin-marker attribute (core/mapping_gen stamps
/// it; §5.4's LastUpdater characteristic).
constexpr const char* kLastUpdater = "LastUpdater";

// ---------------------------------------------------------------------
// Partition predicate structure
//
// Partitions are analyzed structurally, as a disjunction of
// conjunctions of atoms. Only atoms the analysis understands
// (prefix/eq/present over one attribute, boolean literals) take part
// in satisfiability and disjointness reasoning; everything else
// becomes kOther, which is never used to *prove* anything — the
// analysis only reports what it can prove, so kOther makes it silent,
// not wrong.
// ---------------------------------------------------------------------

struct Atom {
  enum class Kind { kPrefix, kEq, kPresent, kTrue, kFalse, kOther };
  Kind kind = Kind::kOther;
  std::string attr;   // For kPrefix/kEq/kPresent.
  std::string value;  // For kPrefix/kEq.
};

using Conj = std::vector<Atom>;

struct Dnf {
  std::vector<Conj> conjs;
};

Dnf ToDnf(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral: {
      Atom a;
      a.kind = (expr.text.empty() || EqualsIgnoreCase(expr.text, "false"))
                   ? Atom::Kind::kFalse
                   : Atom::Kind::kTrue;
      return {{{a}}};
    }
    case Expr::Kind::kAttrRef: {
      // An attribute used as a predicate is truthy iff non-empty.
      Atom a;
      a.kind = Atom::Kind::kPresent;
      a.attr = expr.text;
      return {{{a}}};
    }
    case Expr::Kind::kCall:
      break;
  }
  const std::string& fn = expr.text;
  if (EqualsIgnoreCase(fn, "or")) {
    Dnf out;
    for (const Expr& arg : expr.args) {
      Dnf sub = ToDnf(arg);
      out.conjs.insert(out.conjs.end(), sub.conjs.begin(), sub.conjs.end());
    }
    return out;
  }
  if (EqualsIgnoreCase(fn, "and")) {
    Dnf out{{Conj{}}};
    for (const Expr& arg : expr.args) {
      Dnf sub = ToDnf(arg);
      Dnf next;
      for (const Conj& a : out.conjs) {
        for (const Conj& b : sub.conjs) {
          Conj merged = a;
          merged.insert(merged.end(), b.begin(), b.end());
          next.conjs.push_back(std::move(merged));
        }
      }
      out = std::move(next);
    }
    return out;
  }
  if (EqualsIgnoreCase(fn, "not") && expr.args.size() == 1) {
    Dnf sub = ToDnf(expr.args[0]);
    Atom a;
    if (sub.conjs.size() == 1 && sub.conjs[0].size() == 1) {
      Atom::Kind k = sub.conjs[0][0].kind;
      if (k == Atom::Kind::kTrue) {
        a.kind = Atom::Kind::kFalse;
        return {{{a}}};
      }
      if (k == Atom::Kind::kFalse) {
        a.kind = Atom::Kind::kTrue;
        return {{{a}}};
      }
    }
    a.kind = Atom::Kind::kOther;
    return {{{a}}};
  }
  if ((EqualsIgnoreCase(fn, "prefix") || EqualsIgnoreCase(fn, "eq")) &&
      expr.args.size() == 2) {
    const Expr* ref = nullptr;
    const Expr* lit = nullptr;
    for (const Expr& arg : expr.args) {
      if (arg.kind == Expr::Kind::kAttrRef) ref = &arg;
      if (arg.kind == Expr::Kind::kLiteral) lit = &arg;
    }
    // eq is symmetric; prefix(attr, "p") has the attribute first.
    if (ref != nullptr && lit != nullptr &&
        (EqualsIgnoreCase(fn, "eq") ||
         expr.args[0].kind == Expr::Kind::kAttrRef)) {
      Atom a;
      a.kind = EqualsIgnoreCase(fn, "prefix") ? Atom::Kind::kPrefix
                                              : Atom::Kind::kEq;
      a.attr = ref->text;
      a.value = lit->text;
      return {{{a}}};
    }
  }
  if (EqualsIgnoreCase(fn, "present") && expr.args.size() == 1 &&
      expr.args[0].kind == Expr::Kind::kAttrRef) {
    Atom a;
    a.kind = Atom::Kind::kPresent;
    a.attr = expr.args[0].text;
    return {{{a}}};
  }
  Atom a;
  a.kind = Atom::Kind::kOther;
  return {{{a}}};
}

bool IsPrefixOf(const std::string& shorter, const std::string& longer) {
  return longer.compare(0, shorter.size(), shorter) == 0;
}

/// True when `a` and `b` provably cannot hold of one value of the same
/// attribute.
bool AtomsConflict(const Atom& a, const Atom& b) {
  using K = Atom::Kind;
  if (a.kind == K::kPrefix && b.kind == K::kPrefix) {
    return !IsPrefixOf(a.value, b.value) && !IsPrefixOf(b.value, a.value);
  }
  if (a.kind == K::kEq && b.kind == K::kEq) return a.value != b.value;
  if (a.kind == K::kEq && b.kind == K::kPrefix) {
    return !IsPrefixOf(b.value, a.value);
  }
  if (a.kind == K::kPrefix && b.kind == K::kEq) {
    return !IsPrefixOf(a.value, b.value);
  }
  return false;  // kPresent/kTrue/kOther never prove a conflict.
}

/// True when the conjunction provably accepts no record.
bool ConjUnsat(const Conj& conj) {
  for (size_t i = 0; i < conj.size(); ++i) {
    if (conj[i].kind == Atom::Kind::kFalse) return true;
    for (size_t j = i + 1; j < conj.size(); ++j) {
      if (!conj[i].attr.empty() &&
          EqualsIgnoreCase(conj[i].attr, conj[j].attr) &&
          AtomsConflict(conj[i], conj[j])) {
        return true;
      }
    }
  }
  return false;
}

bool ConjHasOther(const Conj& conj) {
  return std::any_of(conj.begin(), conj.end(), [](const Atom& a) {
    return a.kind == Atom::Kind::kOther;
  });
}

/// Overlap verdict for one pair of conjunctions.
enum class PairVerdict {
  kDisjoint,      // Provably no record satisfies both.
  kOverlapping,   // Provably comparable and compatible.
  kIncomparable,  // Nothing can be concluded.
};

bool ConjUnconstrained(const Conj& conj) {
  return std::all_of(conj.begin(), conj.end(), [](const Atom& a) {
    return a.kind == Atom::Kind::kTrue;
  });
}

PairVerdict ComparePair(const Conj& a, const Conj& b) {
  if (ConjUnsat(a) || ConjUnsat(b)) return PairVerdict::kDisjoint;
  bool shared_attr = false;
  for (const Atom& x : a) {
    if (x.attr.empty()) continue;
    for (const Atom& y : b) {
      if (y.attr.empty() || !EqualsIgnoreCase(x.attr, y.attr)) continue;
      shared_attr = true;
      if (AtomsConflict(x, y)) return PairVerdict::kDisjoint;
    }
  }
  if (ConjHasOther(a) || ConjHasOther(b)) return PairVerdict::kIncomparable;
  // Both sides fully understood and compatible. Claim an overlap only
  // when it is provable: they argue about a common attribute, or one
  // side accepts everything. Constraints over disjoint attribute sets
  // stay incomparable — partitions routinely restate one condition
  // over two attributes (extension prefix vs phone prefix), and those
  // cross terms are not evidence of a conflict.
  if (shared_attr || ConjUnconstrained(a) || ConjUnconstrained(b)) {
    return PairVerdict::kOverlapping;
  }
  return PairVerdict::kIncomparable;
}

/// Whether `expr` always evaluates to a non-empty string (used for
/// dead-rule shadowing). Boolean builtins return "true"/"false", which
/// are non-empty.
bool AlwaysNonEmpty(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return !expr.text.empty();
    case Expr::Kind::kAttrRef:
      return false;
    case Expr::Kind::kCall:
      break;
  }
  const std::string& fn = expr.text;
  for (const char* boolean :
       {"and", "or", "not", "eq", "ne", "present", "absent", "prefix",
        "suffix", "matches", "contains"}) {
    if (EqualsIgnoreCase(fn, boolean)) return true;
  }
  if (EqualsIgnoreCase(fn, "concat") || EqualsIgnoreCase(fn, "default")) {
    return std::any_of(expr.args.begin(), expr.args.end(), AlwaysNonEmpty);
  }
  for (const char* transparent : {"upper", "lower", "trim", "normalize"}) {
    if (EqualsIgnoreCase(fn, transparent) && expr.args.size() == 1) {
      return AlwaysNonEmpty(expr.args[0]);
    }
  }
  return false;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string DescribeInstance(const Mapping& m) {
  return m.target_name().empty() ? m.target_schema()
                                 : m.target_name() + " (" +
                                       m.target_schema() + ")";
}

}  // namespace

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = std::to_string(line) + ": ";
  out += DiagSeverityName(severity);
  out += ": [" + rule_id + "] " + message;
  if (!mapping.empty()) out += " (mapping " + mapping + ")";
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == DiagSeverity::kError;
                     });
}

Analyzer::Analyzer(AnalyzerOptions options) : options_(std::move(options)) {}

std::vector<Diagnostic> Analyzer::AnalyzeSource(
    std::string_view source) const {
  StatusOr<std::vector<MappingDecl>> decls = ParseMappings(source);
  if (!decls.ok()) {
    Diagnostic d;
    d.rule_id = "LX000";
    d.severity = DiagSeverity::kError;
    d.message = "parse error: " + decls.status().ToString();
    return {d};
  }
  return Analyze(*decls);
}

std::vector<Diagnostic> Analyzer::Analyze(
    const std::vector<MappingDecl>& decls) const {
  std::vector<Diagnostic> diags;
  auto report = [&diags](std::string rule, DiagSeverity severity,
                         const std::string& mapping, int line,
                         std::string message) {
    Diagnostic d;
    d.rule_id = std::move(rule);
    d.severity = severity;
    d.mapping = mapping;
    d.line = line;
    d.message = std::move(message);
    diags.push_back(std::move(d));
  };

  // Compile every declaration; LX000 for failures, the rest of the
  // analysis runs over whatever compiled.
  struct Unit {
    const MappingDecl* decl;
    Mapping mapping;
  };
  std::vector<Unit> units;
  for (const MappingDecl& decl : decls) {
    StatusOr<Mapping> compiled = Mapping::Compile(decl);
    if (!compiled.ok()) {
      report("LX000", DiagSeverity::kError, decl.name, decl.line,
             "compile error: " + compiled.status().ToString());
      continue;
    }
    units.push_back(Unit{&decl, *std::move(compiled)});
  }

  // --- LX001: non-convergent cycles -------------------------------
  // MappingSet::AnalyzeCycles finds the cycles; re-derive the edge ->
  // mapping attribution to name the offenders. A cycle where EVERY
  // participating mapping opted in with allow_cycles is accepted
  // silently — the option is the documented suppression, and runtime
  // fixpoint detection covers it.
  {
    MappingSet set;
    for (const Unit& unit : units) set.Add(unit.mapping);
    // (from, to) -> mappings contributing that dependency edge.
    std::map<std::pair<std::string, std::string>,
             std::vector<const Mapping*>>
        edges;
    for (const Unit& unit : units) {
      const Mapping& m = unit.mapping;
      for (const CompiledRule& rule : m.rules()) {
        std::string to = AttrNode(m.target_schema(), rule.target_attr);
        for (const std::string& src : rule.source_attrs) {
          edges[{AttrNode(m.source_schema(), src), to}].push_back(&m);
        }
      }
    }
    for (const CycleWarning& cycle : set.AnalyzeCycles()) {
      if (cycle.convergent) continue;  // Identity cycles always converge.
      std::vector<std::string> offenders;
      for (size_t i = 0; i < cycle.nodes.size(); ++i) {
        const std::string& from = cycle.nodes[i];
        const std::string& to =
            cycle.nodes[(i + 1) % cycle.nodes.size()];
        auto it = edges.find({from, to});
        if (it == edges.end()) continue;
        for (const Mapping* m : it->second) {
          if (m->allow_cycles()) continue;
          if (std::find(offenders.begin(), offenders.end(), m->name()) ==
              offenders.end()) {
            offenders.push_back(m->name());
          }
        }
      }
      if (offenders.empty()) continue;
      std::string path;
      for (const std::string& node : cycle.nodes) {
        if (!path.empty()) path += " -> ";
        path += node;
      }
      path += " -> " + cycle.nodes.front();
      int line = 0;
      for (const Unit& unit : units) {
        if (unit.decl->name == offenders.front()) line = unit.decl->line;
      }
      report("LX001", DiagSeverity::kError, offenders.front(), line,
             "non-convergent mapping cycle " + path +
                 " composes transforms and may never reach a fixpoint; "
                 "break the cycle or set `option allow_cycles = true` on: " +
                 JoinNames(offenders));
    }
  }

  // --- LX003: unsatisfiable partitions ----------------------------
  std::vector<Dnf> partitions(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    const Unit& unit = units[i];
    if (!unit.decl->partition.has_value()) {
      partitions[i] = Dnf{{Conj{Atom{Atom::Kind::kTrue, "", ""}}}};
      continue;
    }
    partitions[i] = ToDnf(*unit.decl->partition);
    bool all_unsat = !partitions[i].conjs.empty() &&
                     std::all_of(partitions[i].conjs.begin(),
                                 partitions[i].conjs.end(), ConjUnsat);
    if (all_unsat) {
      report("LX003", DiagSeverity::kWarning, unit.decl->name,
             unit.decl->line,
             "partition predicate is unsatisfiable; the mapping can "
             "never route an update");
    }
  }

  // --- LX002: two instances claiming the same partition -----------
  // Two mappings from one source schema into two different target
  // instances whose partitions provably both accept some record: both
  // instances would receive the update (the paper's partitioning
  // constraints exist to prevent exactly this).
  for (size_t i = 0; i < units.size(); ++i) {
    for (size_t j = i + 1; j < units.size(); ++j) {
      const Mapping& a = units[i].mapping;
      const Mapping& b = units[j].mapping;
      if (!EqualsIgnoreCase(a.source_schema(), b.source_schema())) continue;
      if (!EqualsIgnoreCase(a.target_schema(), b.target_schema())) continue;
      if (EqualsIgnoreCase(a.target_name(), b.target_name())) continue;
      bool overlap = false;
      for (const Conj& ca : partitions[i].conjs) {
        for (const Conj& cb : partitions[j].conjs) {
          if (ComparePair(ca, cb) == PairVerdict::kOverlapping) {
            overlap = true;
          }
        }
      }
      if (overlap) {
        report("LX002", DiagSeverity::kError, a.name(),
               units[i].decl->line,
               "partitions of " + a.name() + " and " + b.name() +
                   " overlap: instances " + DescribeInstance(a) + " and " +
                   DescribeInstance(b) +
                   " both claim some records of schema " +
                   a.source_schema());
      }
    }
  }

  // --- LX004: unguarded write-write conflicts ---------------------
  // Two mappings from DIFFERENT source schemas writing one target
  // attribute converge only under the Originator/LastUpdater protocol
  // (§5.4): a mapping is guarded when it checks origins (option
  // originator) or stamps one (a rule targeting an origin-marker
  // attribute). Origin markers themselves are exempt — stamping them
  // from every source is the protocol working as designed.
  {
    std::set<std::string, CaseInsensitiveLess> marker_attrs;
    marker_attrs.insert(kLastUpdater);
    for (const Unit& unit : units) {
      if (!unit.mapping.originator_attr().empty()) {
        marker_attrs.insert(unit.mapping.originator_attr());
      }
    }
    auto guarded = [&marker_attrs](const Mapping& m) {
      if (!m.originator_attr().empty()) return true;
      for (const CompiledRule& rule : m.rules()) {
        if (marker_attrs.count(rule.target_attr) > 0) return true;
      }
      return false;
    };
    // (target schema, target attr) -> writer units.
    std::map<std::string, std::vector<size_t>> writers;
    for (size_t i = 0; i < units.size(); ++i) {
      for (const CompiledRule& rule : units[i].mapping.rules()) {
        if (marker_attrs.count(rule.target_attr) > 0) continue;
        writers[ToLower(units[i].mapping.target_schema()) + ":" +
                ToLower(rule.target_attr)]
            .push_back(i);
      }
    }
    // Unguarded unit -> conflicting attrs (aggregate one diagnostic
    // per mapping instead of one per attribute).
    std::map<size_t, std::set<std::string, CaseInsensitiveLess>>
        conflicts;
    for (const auto& [key, writer_units] : writers) {
      std::set<std::string, CaseInsensitiveLess> sources;
      for (size_t u : writer_units) {
        sources.insert(units[u].mapping.source_schema());
      }
      if (sources.size() < 2) continue;
      std::string attr = key.substr(key.find(':') + 1);
      for (size_t u : writer_units) {
        if (!guarded(units[u].mapping)) conflicts[u].insert(attr);
      }
    }
    for (const auto& [u, attrs] : conflicts) {
      std::vector<std::string> names(attrs.begin(), attrs.end());
      report("LX004", DiagSeverity::kWarning, units[u].decl->name,
             units[u].decl->line,
             "writes " + JoinNames(names) + " of schema " +
                 units[u].mapping.target_schema() +
                 ", which other source schemas also write, without an "
                 "originator option or an origin-marker rule (e.g. "
                 "mapping into LastUpdater); concurrent writes will not "
                 "converge (§5.4)");
    }
  }

  // --- LX005: references to attributes absent from declared schemas
  if (!options_.schemas.empty()) {
    for (const Unit& unit : units) {
      const MappingDecl& decl = *unit.decl;
      auto src_it = options_.schemas.find(decl.source_schema);
      auto tgt_it = options_.schemas.find(decl.target_schema);
      if (src_it != options_.schemas.end()) {
        auto check_refs = [&](const Expr& expr, int line,
                              const char* where) {
          std::set<std::string, CaseInsensitiveLess> refs;
          CollectAttrRefs(expr, &refs);
          for (const std::string& ref : refs) {
            if (src_it->second.count(ref) == 0) {
              report("LX005", DiagSeverity::kError, decl.name, line,
                     std::string(where) + " reads attribute " + ref +
                         ", which schema " + decl.source_schema +
                         " does not declare");
            }
          }
        };
        for (const MapRule& rule : decl.rules) {
          check_refs(rule.expr, rule.line, "rule");
          if (rule.guard.has_value()) {
            check_refs(*rule.guard, rule.line, "guard");
          }
        }
        if (decl.partition.has_value()) {
          check_refs(*decl.partition, decl.line, "partition");
        }
      }
      if (tgt_it != options_.schemas.end()) {
        for (const MapRule& rule : decl.rules) {
          if (tgt_it->second.count(rule.target_attr) == 0) {
            report("LX005", DiagSeverity::kError, decl.name, rule.line,
                   "rule targets attribute " + rule.target_attr +
                       ", which schema " + decl.target_schema +
                       " does not declare");
          }
        }
      }
    }
  }

  // --- LX006: dead mappings ---------------------------------------
  // A mapping whose source schema is neither a declared repository
  // schema nor the target of any other mapping can never receive an
  // update. Needs declared schemas to know what repositories exist.
  if (!options_.schemas.empty()) {
    for (const Unit& unit : units) {
      const std::string& source = unit.mapping.source_schema();
      if (options_.schemas.count(source) > 0) continue;
      bool fed = false;
      for (const Unit& other : units) {
        if (&other != &unit &&
            EqualsIgnoreCase(other.mapping.target_schema(), source)) {
          fed = true;
        }
      }
      if (!fed) {
        report("LX006", DiagSeverity::kWarning, unit.decl->name,
               unit.decl->line,
               "source schema " + source +
                   " is not a declared repository schema and no mapping "
                   "targets it; this mapping can never fire");
      }
    }
  }

  // --- LX007: dead rules ------------------------------------------
  // Alternate attribute mappings try rules in order; a rule behind an
  // earlier UNguarded rule whose value is always non-empty can never
  // win.
  for (const Unit& unit : units) {
    std::set<std::string, CaseInsensitiveLess> saturated;
    for (const MapRule& rule : unit.decl->rules) {
      if (saturated.count(rule.target_attr) > 0) {
        report("LX007", DiagSeverity::kWarning, unit.decl->name,
               rule.line,
               "rule for " + rule.target_attr +
                   " is dead: an earlier unguarded rule always "
                   "produces a value");
        continue;
      }
      if (!rule.guard.has_value() && AlwaysNonEmpty(rule.expr)) {
        saturated.insert(rule.target_attr);
      }
    }
  }

  // Deterministic output order: by line, then rule id.
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule_id < b.rule_id;
                   });
  return diags;
}

}  // namespace metacomm::lexpress
