#ifndef METACOMM_LEXPRESS_VM_H_
#define METACOMM_LEXPRESS_VM_H_

#include <vector>

#include "common/status.h"
#include "lexpress/ast.h"
#include "lexpress/bytecode.h"
#include "lexpress/record.h"

namespace metacomm::lexpress {

/// The lexpress bytecode interpreter (paper §4.2: "an interpreter for
/// executing the byte codes"). Stateless; safe to call from any thread.
class Vm {
 public:
  /// Runs `program` against `record`. `tables` provides the mapping's
  /// translation tables for kLookup instructions.
  static StatusOr<Value> Execute(const Program& program,
                                 const std::vector<TableDef>& tables,
                                 const Record& record);

  /// Runs a guard program; holds when the result is exactly ["true"].
  static StatusOr<bool> ExecuteGuard(const Program& program,
                                     const std::vector<TableDef>& tables,
                                     const Record& record);
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_VM_H_
