#ifndef METACOMM_LEXPRESS_VM_H_
#define METACOMM_LEXPRESS_VM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lexpress/ast.h"
#include "lexpress/bytecode.h"
#include "lexpress/record.h"

namespace metacomm::lexpress {

/// The lexpress bytecode interpreter (paper §4.2: "an interpreter for
/// executing the byte codes").
///
/// Two execution paths share one builtin implementation:
///
///  * The fast path (`Execute`/`ExecuteGuard` on an instance) runs
///    slot-resolved programs against a RecordView: kLoadAttr is an
///    array index, constants and attribute loads are pushed by
///    reference, and builtin results land in a pool of scratch Values
///    the instance reuses across executions — steady-state execution
///    performs no per-instruction allocation or name lookup. A Vm is
///    NOT thread-safe; give each worker its own (the update manager's
///    workers each hold one; callers without one fall back to a
///    per-thread instance inside Mapping).
///
///  * The reference path (`ExecuteReference`, static) is the original
///    interpreter: per-instruction case-insensitive attribute lookup
///    on the Record, values copied through a fresh stack. It needs no
///    slot resolution, and serves as the semantic oracle the
///    differential test (lexpress_exec_test) checks the fast path
///    against.
class Vm {
 public:
  Vm() = default;
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  /// Runs a slot-resolved `program` against `view` (a RecordView built
  /// with the SlotMap the program was resolved against). `tables`
  /// provides the mapping's translation tables for kLookup.
  StatusOr<Value> Execute(const Program& program,
                          const std::vector<TableDef>& tables,
                          const RecordView& view);

  /// Runs a guard program; holds when the result is exactly ["true"].
  /// Allocation-free for the common guard shapes (boolean builtins
  /// return static values).
  StatusOr<bool> ExecuteGuard(const Program& program,
                              const std::vector<TableDef>& tables,
                              const RecordView& view);

  /// Reference interpreter: name-resolved attribute loads straight off
  /// the Record. Works on any compiled program, slot-resolved or not.
  static StatusOr<Value> ExecuteReference(const Program& program,
                                          const std::vector<TableDef>& tables,
                                          const Record& record);

  /// Reference guard execution (empty program holds).
  static StatusOr<bool> ExecuteGuardReference(
      const Program& program, const std::vector<TableDef>& tables,
      const Record& record);

  /// Reusable scratch for callers that build a view per record
  /// (Mapping::MapRecord/Translate). Owned here so the buffers live
  /// exactly as long as the Vm's other scratch.
  RecordView& scratch_view() { return view_; }

  /// Reusable slot-indexed dirty bitmap for dirty-attribute rule
  /// selection (Mapping marks changed source slots here).
  std::vector<uint8_t>& scratch_dirty() { return dirty_; }

 private:
  /// A stack entry: either a borrowed pointer (program constant,
  /// RecordView attribute, static boolean) or an owned scratch value
  /// identified by pool index. Indices, not pointers, so pool growth
  /// cannot dangle live entries.
  struct StackSlot {
    int32_t owned = -1;       // Pool index, or -1 when borrowed.
    const Value* ref = nullptr;  // Set when owned < 0.
  };

  /// Core interpreter loop; returns a pointer valid until the next
  /// Execute on this instance.
  StatusOr<const Value*> Run(const Program& program,
                             const std::vector<TableDef>& tables,
                             const RecordView& view);

  /// Takes a free pool slot (growing the pool when none are free).
  int32_t AcquireOwned();

  const Value* ValueOf(const StackSlot& slot) const {
    return slot.owned >= 0 ? &pool_[slot.owned] : slot.ref;
  }

  std::vector<StackSlot> stack_;
  std::vector<Value> pool_;       // Owned scratch values, capacity reused.
  std::vector<int32_t> free_;     // Free pool indices.
  std::vector<const Value*> argv_;  // Builtin argument pointers.
  RecordView view_;
  std::vector<uint8_t> dirty_;
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_VM_H_
