#include "lexpress/bytecode.h"

namespace metacomm::lexpress {

const char* BuiltinName(Builtin builtin) {
  switch (builtin) {
    case Builtin::kAnd:
      return "and";
    case Builtin::kOr:
      return "or";
    case Builtin::kNot:
      return "not";
    case Builtin::kEq:
      return "eq";
    case Builtin::kNe:
      return "ne";
    case Builtin::kPresent:
      return "present";
    case Builtin::kAbsent:
      return "absent";
    case Builtin::kPrefix:
      return "prefix";
    case Builtin::kSuffix:
      return "suffix";
    case Builtin::kMatches:
      return "matches";
    case Builtin::kContains:
      return "contains";
    case Builtin::kUpper:
      return "upper";
    case Builtin::kLower:
      return "lower";
    case Builtin::kTrim:
      return "trim";
    case Builtin::kNormalize:
      return "normalize";
    case Builtin::kDigits:
      return "digits";
    case Builtin::kSurname:
      return "surname";
    case Builtin::kGivenName:
      return "givenname";
    case Builtin::kSubstr:
      return "substr";
    case Builtin::kReplace:
      return "replace";
    case Builtin::kSplit:
      return "split";
    case Builtin::kConcat:
      return "concat";
    case Builtin::kFormat:
      return "format";
    case Builtin::kFirst:
      return "first";
    case Builtin::kLast:
      return "last";
    case Builtin::kJoin:
      return "join";
    case Builtin::kCount:
      return "count";
    case Builtin::kDefault:
      return "default";
    case Builtin::kIfElse:
      return "ifelse";
  }
  return "?";
}

}  // namespace metacomm::lexpress
