#ifndef METACOMM_LEXPRESS_PARSER_H_
#define METACOMM_LEXPRESS_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "lexpress/ast.h"

namespace metacomm::lexpress {

/// Parses lexpress source into mapping declarations.
///
/// Grammar (EBNF; '#' starts a comment):
///
///   file      := mapping*
///   mapping   := 'mapping' IDENT 'from' IDENT 'to' IDENT '{' item* '}'
///   item      := option | partition | table | rule
///   option    := 'option' IDENT '=' (STRING | IDENT | INT) ';'
///   partition := 'partition' 'when' pred ';'
///   table     := 'table' IDENT '{' (STRING '->' STRING ';')*
///                ('default' '->' STRING ';')? '}'
///   rule      := ('map' | 'key') expr '->' IDENT ('when' pred)? ';'
///   pred      := orp
///   orp       := andp ('or' andp)*
///   andp      := notp ('and' notp)*
///   notp      := 'not' notp | cmp
///   cmp       := expr (('==' | '!=') expr)?
///   expr      := STRING | INT
///              | IDENT                          -- attribute reference
///              | IDENT '(' [expr (',' expr)*] ')' -- builtin call
///              | '(' pred ')'
StatusOr<std::vector<MappingDecl>> ParseMappings(std::string_view source);

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_PARSER_H_
