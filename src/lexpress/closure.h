#ifndef METACOMM_LEXPRESS_CLOSURE_H_
#define METACOMM_LEXPRESS_CLOSURE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "lexpress/mapping.h"
#include "lexpress/record.h"

namespace metacomm::lexpress {

/// A node in the attribute dependency graph: schema-qualified
/// attribute name, e.g. "ldap:telephoneNumber".
std::string AttrNode(std::string_view schema, std::string_view attr);

/// One cycle found by compile-time analysis.
struct CycleWarning {
  /// The attribute nodes on the cycle, in order.
  std::vector<std::string> nodes;
  /// True when every edge on the cycle is an identity copy — such a
  /// cycle always reaches a fixpoint (values just flow around
  /// unchanged); false means the cycle composes transforms and may
  /// never converge.
  bool convergent = false;
};

/// Outcome of closure propagation.
struct ClosureResult {
  /// Final full image per schema after propagation.
  std::map<std::string, Record, CaseInsensitiveLess> records;
  /// Attributes changed per schema relative to the inputs.
  std::map<std::string, std::set<std::string, CaseInsensitiveLess>,
           CaseInsensitiveLess>
      changed;
  /// Number of propagation sweeps until fixpoint.
  int iterations = 0;
};

/// A registry of compiled mappings plus the transitive-closure engine.
///
/// "Since setting one attribute may affect a set of related
/// attributes, lexpress calculates the transitive closure of the
/// attribute mappings" (§4.2), including across repositories: a PBX
/// extension change updates the LDAP telephone number, which in turn
/// updates the voice mailbox id on the messaging platform.
class MappingSet {
 public:
  /// Registers a mapping. Mappings may be added to a running program
  /// (dynamic description loading, §4.2).
  void Add(Mapping mapping);

  /// Compiles source text and registers every mapping in it.
  Status AddSource(std::string_view source);

  const std::vector<Mapping>& mappings() const { return mappings_; }

  /// Mappings whose source schema is `schema`.
  std::vector<const Mapping*> From(std::string_view schema) const;

  /// Mappings whose target schema is `schema`.
  std::vector<const Mapping*> Into(std::string_view schema) const;

  /// Compile-time cycle analysis over the attribute dependency graph
  /// of all registered mappings. Returns every elementary-ish cycle
  /// found (deduplicated by node set).
  std::vector<CycleWarning> AnalyzeCycles() const;

  /// Returns an error when a non-convergent cycle exists through any
  /// mapping that did not opt into runtime detection
  /// (option allow_cycles = true). "At compile time (if a fixpoint can
  /// never be reached)" — §4.2.
  Status Validate() const;

  /// Propagates one update through the closure of all mappings.
  ///
  /// `base_images` holds the current full record per schema (the state
  /// *before* the update); `updated_schema`/`new_record` is the
  /// post-update image at the originating repository;
  /// `explicit_attrs` are the attributes the client set explicitly in
  /// the updated schema — the conflict rule (§4.2) guarantees the
  /// closure never overwrites them, and the first mapping to derive a
  /// value for any other attribute wins.
  ///
  /// Fails with kDeadlineExceeded when no fixpoint is reached within
  /// `max_iterations` sweeps ("at execution time (if a fixpoint will
  /// not be reached for a current update)").
  ///
  /// Each sweep evaluates only the rule groups whose source attributes
  /// changed (Mapping::MapDirtyGroups) — work per sweep is proportional
  /// to the moving frontier, not to the total rule count. Pass a
  /// per-worker `vm` to reuse its scratch buffers.
  StatusOr<ClosureResult> Propagate(
      const std::map<std::string, Record, CaseInsensitiveLess>&
          base_images,
      const std::string& updated_schema, const Record& new_record,
      const std::set<std::string, CaseInsensitiveLess>& explicit_attrs,
      int max_iterations = 16, Vm* vm = nullptr) const;

 private:
  std::vector<Mapping> mappings_;
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_CLOSURE_H_
