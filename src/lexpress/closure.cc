#include "lexpress/closure.h"

#include <algorithm>
#include <functional>

namespace metacomm::lexpress {

std::string AttrNode(std::string_view schema, std::string_view attr) {
  return ToLower(schema) + ":" + ToLower(attr);
}

void MappingSet::Add(Mapping mapping) {
  mappings_.push_back(std::move(mapping));
}

Status MappingSet::AddSource(std::string_view source) {
  METACOMM_ASSIGN_OR_RETURN(std::vector<Mapping> mappings,
                            CompileMappings(source));
  for (Mapping& mapping : mappings) Add(std::move(mapping));
  return Status::Ok();
}

std::vector<const Mapping*> MappingSet::From(std::string_view schema) const {
  std::vector<const Mapping*> out;
  for (const Mapping& mapping : mappings_) {
    if (EqualsIgnoreCase(mapping.source_schema(), schema)) {
      out.push_back(&mapping);
    }
  }
  return out;
}

std::vector<const Mapping*> MappingSet::Into(std::string_view schema) const {
  std::vector<const Mapping*> out;
  for (const Mapping& mapping : mappings_) {
    if (EqualsIgnoreCase(mapping.target_schema(), schema)) {
      out.push_back(&mapping);
    }
  }
  return out;
}

namespace {

/// One dependency edge: source attribute node -> target attribute node.
struct Edge {
  std::string from;
  std::string to;
  bool identity = false;
  const Mapping* mapping = nullptr;
};

std::vector<Edge> BuildEdges(const std::vector<Mapping>& mappings) {
  std::vector<Edge> edges;
  for (const Mapping& mapping : mappings) {
    for (const CompiledRule& rule : mapping.rules()) {
      for (const std::string& src : rule.source_attrs) {
        Edge edge;
        edge.from = AttrNode(mapping.source_schema(), src);
        edge.to = AttrNode(mapping.target_schema(), rule.target_attr);
        edge.identity = rule.identity;
        edge.mapping = &mapping;
        edges.push_back(std::move(edge));
      }
    }
  }
  return edges;
}

}  // namespace

std::vector<CycleWarning> MappingSet::AnalyzeCycles() const {
  std::vector<Edge> edges = BuildEdges(mappings_);

  // Collect nodes and adjacency.
  std::map<std::string, std::vector<size_t>> adjacency;  // node -> edge idx
  std::set<std::string> nodes;
  for (size_t i = 0; i < edges.size(); ++i) {
    nodes.insert(edges[i].from);
    nodes.insert(edges[i].to);
    adjacency[edges[i].from].push_back(i);
  }

  // Tarjan's strongly connected components.
  std::map<std::string, int> index, lowlink;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> sccs;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& v) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
        for (size_t ei : adjacency[v]) {
          const std::string& w = edges[ei].to;
          if (index.find(w) == index.end()) {
            strongconnect(w);
            lowlink[v] = std::min(lowlink[v], lowlink[w]);
          } else if (on_stack[w]) {
            lowlink[v] = std::min(lowlink[v], index[w]);
          }
        }
        if (lowlink[v] == index[v]) {
          std::vector<std::string> scc;
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(scc));
        }
      };
  for (const std::string& node : nodes) {
    if (index.find(node) == index.end()) strongconnect(node);
  }

  std::vector<CycleWarning> warnings;
  for (const std::vector<std::string>& scc : sccs) {
    std::set<std::string> members(scc.begin(), scc.end());
    bool is_cycle = scc.size() > 1;
    bool all_identity = true;
    for (const Edge& edge : edges) {
      if (members.count(edge.from) == 0 || members.count(edge.to) == 0) {
        continue;
      }
      if (scc.size() == 1 && edge.from == edge.to) is_cycle = true;
      if (scc.size() > 1 || edge.from == edge.to) {
        if (!edge.identity) all_identity = false;
      }
    }
    if (!is_cycle) continue;
    CycleWarning warning;
    warning.nodes = scc;
    std::sort(warning.nodes.begin(), warning.nodes.end());
    warning.convergent = all_identity;
    warnings.push_back(std::move(warning));
  }
  return warnings;
}

Status MappingSet::Validate() const {
  std::vector<CycleWarning> warnings = AnalyzeCycles();
  std::vector<Edge> edges = BuildEdges(mappings_);
  for (const CycleWarning& warning : warnings) {
    if (warning.convergent) continue;
    // A non-convergent cycle is a compile-time error unless every
    // mapping contributing a transforming edge opted into runtime
    // fixpoint detection.
    std::set<std::string> members(warning.nodes.begin(),
                                  warning.nodes.end());
    for (const Edge& edge : edges) {
      if (members.count(edge.from) == 0 || members.count(edge.to) == 0) {
        continue;
      }
      if (!edge.identity && !edge.mapping->allow_cycles()) {
        std::string cycle;
        for (const std::string& node : warning.nodes) {
          if (!cycle.empty()) cycle += " -> ";
          cycle += node;
        }
        return Status::InvalidArgument(
            "lexpress: mapping cycle may never reach a fixpoint (" +
            cycle + "); transform in mapping '" + edge.mapping->name() +
            "' — set 'option allow_cycles = true;' to defer to runtime "
            "detection");
      }
    }
  }
  return Status::Ok();
}

StatusOr<ClosureResult> MappingSet::Propagate(
    const std::map<std::string, Record, CaseInsensitiveLess>& base_images,
    const std::string& updated_schema, const Record& new_record,
    const std::set<std::string, CaseInsensitiveLess>& explicit_attrs,
    int max_iterations, Vm* vm) const {
  ClosureResult result;
  result.records = base_images;
  for (auto& [schema, record] : result.records) {
    record.set_schema(schema);
  }

  // Seed: install the updated image and mark its changed attributes.
  Record base_updated;
  auto base_it = base_images.find(updated_schema);
  if (base_it != base_images.end()) base_updated = base_it->second;

  auto& seed_changed = result.changed[updated_schema];
  for (const auto& [attr, value] : new_record.attrs()) {
    if (!(base_updated.Get(attr) == value)) seed_changed.insert(attr);
  }
  for (const auto& [attr, value] : base_updated.attrs()) {
    if (!new_record.Has(attr)) seed_changed.insert(attr);
  }
  for (const std::string& attr : explicit_attrs) seed_changed.insert(attr);
  Record installed = new_record;
  installed.set_schema(updated_schema);
  result.records[updated_schema] = std::move(installed);

  // First-mapping-wins bookkeeping: which mapping first set each
  // target attribute node during this closure.
  std::map<std::string, const Mapping*> setter;

  auto values_equal = [](const Value& a, const Value& b) {
    if (a.size() != b.size()) return false;
    for (const std::string& va : a) {
      bool found = std::any_of(b.begin(), b.end(),
                               [&va](const std::string& vb) {
                                 return EqualsIgnoreCase(va, vb);
                               });
      if (!found) return false;
    }
    return true;
  };

  const Record empty_source;
  std::vector<std::pair<std::string_view, Value>> derived;
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    bool any_change = false;
    for (const Mapping& mapping : mappings_) {
      auto changed_it = result.changed.find(mapping.source_schema());
      if (changed_it == result.changed.end() || changed_it->second.empty()) {
        continue;  // Nothing in this mapping's source has moved.
      }
      const auto& changed_src = changed_it->second;

      // Evaluate only the rule groups reading a changed source
      // attribute (dirty-attribute rule selection): work per sweep is
      // proportional to the moving frontier. Evaluation finishes before
      // any target mutation, so a self-mapping can read the source
      // record in place — no per-sweep copy.
      auto src_it = result.records.find(mapping.source_schema());
      const Record& source =
          src_it != result.records.end() ? src_it->second : empty_source;
      derived.clear();
      METACOMM_RETURN_IF_ERROR(
          mapping.MapDirtyGroups(source, changed_src, vm, &derived));

      Record& target =
          result.records
              .try_emplace(mapping.target_schema(),
                           Record(mapping.target_schema()))
              .first->second;
      target.set_schema(mapping.target_schema());

      for (auto& [attr, new_value] : derived) {
        const Value& current = target.Get(attr);
        if (values_equal(new_value, current)) continue;

        // Conflict rule (§4.2): explicitly set attributes keep their
        // values; otherwise the first mapping to set an attribute in
        // this closure owns it.
        bool is_explicit =
            EqualsIgnoreCase(mapping.target_schema(), updated_schema) &&
            explicit_attrs.count(attr) > 0;
        if (is_explicit) continue;
        std::string node = AttrNode(mapping.target_schema(), attr);
        auto setter_it = setter.find(node);
        if (setter_it != setter.end() && setter_it->second != &mapping) {
          continue;
        }
        setter[node] = &mapping;
        // An empty derived value means no rule won: the attribute
        // derives to nothing, and Set's empty-removes matches what a
        // full remap would produce.
        target.Set(attr, std::move(new_value));
        result.changed[mapping.target_schema()].insert(std::string(attr));
        any_change = true;
      }
    }
    ++result.iterations;
    if (!any_change) return result;
  }
  return Status::DeadlineExceeded(
      "lexpress: closure did not reach a fixpoint in " +
      std::to_string(max_iterations) + " iterations");
}

}  // namespace metacomm::lexpress
