#include "lexpress/compiler.h"

#include <map>

namespace metacomm::lexpress {

namespace {

struct BuiltinInfo {
  Builtin builtin;
  int min_argc;
  int max_argc;  // -1 = unbounded
};

const std::map<std::string, BuiltinInfo, CaseInsensitiveLess>&
BuiltinTable() {
  static const auto* table =
      new std::map<std::string, BuiltinInfo, CaseInsensitiveLess>{
          {"and", {Builtin::kAnd, 2, 2}},
          {"or", {Builtin::kOr, 2, 2}},
          {"not", {Builtin::kNot, 1, 1}},
          {"eq", {Builtin::kEq, 2, 2}},
          {"ne", {Builtin::kNe, 2, 2}},
          {"present", {Builtin::kPresent, 1, 1}},
          {"absent", {Builtin::kAbsent, 1, 1}},
          {"prefix", {Builtin::kPrefix, 2, 2}},
          {"suffix", {Builtin::kSuffix, 2, 2}},
          {"matches", {Builtin::kMatches, 2, 2}},
          {"contains", {Builtin::kContains, 2, 2}},
          {"upper", {Builtin::kUpper, 1, 1}},
          {"lower", {Builtin::kLower, 1, 1}},
          {"trim", {Builtin::kTrim, 1, 1}},
          {"normalize", {Builtin::kNormalize, 1, 1}},
          {"digits", {Builtin::kDigits, 1, 1}},
          {"surname", {Builtin::kSurname, 1, 1}},
          {"givenname", {Builtin::kGivenName, 1, 1}},
          {"substr", {Builtin::kSubstr, 3, 3}},
          {"replace", {Builtin::kReplace, 3, 3}},
          {"split", {Builtin::kSplit, 3, 3}},
          {"concat", {Builtin::kConcat, 1, -1}},
          {"format", {Builtin::kFormat, 1, -1}},
          {"first", {Builtin::kFirst, 1, 1}},
          {"last", {Builtin::kLast, 1, 1}},
          {"join", {Builtin::kJoin, 2, 2}},
          {"count", {Builtin::kCount, 1, 1}},
          {"default", {Builtin::kDefault, 2, 2}},
          {"ifelse", {Builtin::kIfElse, 3, 3}},
      };
  return *table;
}

/// Emits instructions for `expr` into `program`.
Status Emit(const Expr& expr, const std::vector<TableDef>& tables,
            Program* program) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral: {
      program->constants.push_back(Value{expr.text});
      Instruction inst;
      inst.op = OpCode::kPushConst;
      inst.a = static_cast<uint32_t>(program->constants.size() - 1);
      program->code.push_back(inst);
      return Status::Ok();
    }
    case Expr::Kind::kAttrRef: {
      program->attr_names.push_back(expr.text);
      Instruction inst;
      inst.op = OpCode::kLoadAttr;
      inst.a = static_cast<uint32_t>(program->attr_names.size() - 1);
      program->code.push_back(inst);
      return Status::Ok();
    }
    case Expr::Kind::kCall: {
      // lookup(Table, expr) gets its own opcode: the table is a
      // compile-time reference, not a runtime value.
      if (EqualsIgnoreCase(expr.text, "lookup")) {
        if (expr.args.size() != 2 ||
            expr.args[0].kind != Expr::Kind::kAttrRef) {
          return Status::InvalidArgument(
              "lexpress: lookup(Table, expr) requires a table name and "
              "one argument");
        }
        const std::string& table_name = expr.args[0].text;
        uint32_t table_index = 0;
        bool found = false;
        for (size_t i = 0; i < tables.size(); ++i) {
          if (EqualsIgnoreCase(tables[i].name, table_name)) {
            table_index = static_cast<uint32_t>(i);
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::NotFound("lexpress: unknown table: " + table_name);
        }
        METACOMM_RETURN_IF_ERROR(Emit(expr.args[1], tables, program));
        Instruction inst;
        inst.op = OpCode::kLookup;
        inst.a = table_index;
        program->code.push_back(inst);
        return Status::Ok();
      }

      auto it = BuiltinTable().find(expr.text);
      if (it == BuiltinTable().end()) {
        return Status::NotFound("lexpress: unknown function: " + expr.text);
      }
      const BuiltinInfo& info = it->second;
      int argc = static_cast<int>(expr.args.size());
      if (argc < info.min_argc ||
          (info.max_argc >= 0 && argc > info.max_argc)) {
        return Status::InvalidArgument(
            "lexpress: wrong argument count for " + expr.text + ": got " +
            std::to_string(argc));
      }
      for (const Expr& arg : expr.args) {
        METACOMM_RETURN_IF_ERROR(Emit(arg, tables, program));
      }
      Instruction inst;
      inst.op = OpCode::kCall;
      inst.a = static_cast<uint32_t>(info.builtin);
      inst.b = static_cast<uint32_t>(argc);
      program->code.push_back(inst);
      return Status::Ok();
    }
  }
  return Status::Internal("lexpress: bad expression node");
}

}  // namespace

void CollectAttrRefs(const Expr& expr,
                     std::set<std::string, CaseInsensitiveLess>* out) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return;
    case Expr::Kind::kAttrRef:
      out->insert(expr.text);
      return;
    case Expr::Kind::kCall:
      // The first argument of lookup() names a table, not an attribute.
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i == 0 && EqualsIgnoreCase(expr.text, "lookup")) continue;
        CollectAttrRefs(expr.args[i], out);
      }
      return;
  }
}

void ResolveSlots(SlotMap* slots, Program* program) {
  program->attr_slots.clear();
  program->attr_slots.reserve(program->attr_names.size());
  for (const std::string& name : program->attr_names) {
    program->attr_slots.push_back(slots->Intern(name));
  }
}

StatusOr<Program> CompileExpr(const Expr& expr,
                              const std::vector<TableDef>& tables) {
  Program program;
  METACOMM_RETURN_IF_ERROR(Emit(expr, tables, &program));
  return program;
}

StatusOr<CompiledRule> CompileRule(const MapRule& rule,
                                   const std::vector<TableDef>& tables) {
  CompiledRule compiled;
  compiled.is_key = rule.is_key;
  compiled.target_attr = rule.target_attr;
  compiled.line = rule.line;
  METACOMM_ASSIGN_OR_RETURN(compiled.value,
                            CompileExpr(rule.expr, tables));
  CollectAttrRefs(rule.expr, &compiled.source_attrs);
  if (rule.guard.has_value()) {
    METACOMM_ASSIGN_OR_RETURN(compiled.guard,
                              CompileExpr(*rule.guard, tables));
    CollectAttrRefs(*rule.guard, &compiled.source_attrs);
  }
  compiled.identity =
      !rule.guard.has_value() && rule.expr.kind == Expr::Kind::kAttrRef;
  return compiled;
}

}  // namespace metacomm::lexpress
