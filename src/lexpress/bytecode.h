#ifndef METACOMM_LEXPRESS_BYTECODE_H_
#define METACOMM_LEXPRESS_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lexpress/record.h"

namespace metacomm::lexpress {

/// Builtin functions of the lexpress VM. Boolean builtins return
/// ["true"] / ["false"]; a guard holds when its program yields ["true"].
enum class Builtin : uint8_t {
  // Boolean combinators / predicates.
  kAnd,       // and(a, b)
  kOr,        // or(a, b)
  kNot,       // not(a)
  kEq,        // eq(a, b): case-insensitive set equality
  kNe,        // ne(a, b)
  kPresent,   // present(x): value list non-empty
  kAbsent,    // absent(x)
  kPrefix,    // prefix(x, p): any value starts with p (case-insensitive)
  kSuffix,    // suffix(x, s)
  kMatches,   // matches(x, glob): any value matches ('*'/'?')
  kContains,  // contains(x, needle): any value contains needle
  // Elementwise string transforms.
  kUpper,      // upper(x)
  kLower,      // lower(x)
  kTrim,       // trim(x)
  kNormalize,  // normalize(x): collapse internal whitespace
  kDigits,     // digits(x): strip non-digit characters
  kSurname,    // surname(x): text after the last space
  kGivenName,  // givenname(x): text before the first space
  kSubstr,     // substr(x, start, len); negative start counts from end
  kReplace,    // replace(x, from, to)
  kSplit,      // split(x, sep, index)
  kConcat,     // concat(a, b, ...): elementwise with broadcast
  kFormat,     // format(fmt, a, ...): each %s takes the next argument
  // Aggregates and value plumbing.
  kFirst,    // first(x)
  kLast,     // last(x)
  kJoin,     // join(x, sep)
  kCount,    // count(x) -> decimal string
  kDefault,  // default(x, fallback): x when non-empty
  kIfElse,   // ifelse(pred, then, else)
};

/// Returns the lexpress-source spelling of a builtin.
const char* BuiltinName(Builtin builtin);

/// VM opcodes. The machine is a tiny stack machine over Values: rules
/// have no loops or branches (ifelse is a strict builtin), so three
/// opcodes suffice and programs are trivially verifiable.
enum class OpCode : uint8_t {
  kPushConst,  // push constants[a]
  kLoadAttr,   // push record.Get(attr_names[a])
  kCall,       // pop b args, call builtin a, push result
  kLookup,     // pop 1 arg, translate through tables[a], push result
};

/// One instruction; `a` and `b` index per-program tables.
struct Instruction {
  OpCode op = OpCode::kPushConst;
  uint32_t a = 0;
  uint32_t b = 0;
};

/// A compiled rule body: "machine-independent byte code" per paper
/// §4.2. Programs are pure — execution reads the source record and
/// produces one Value, with no side effects — which is what makes
/// alternate mappings and closure re-evaluation safe.
struct Program {
  std::vector<Instruction> code;
  std::vector<Value> constants;
  std::vector<std::string> attr_names;
  /// Slot index per attr_names entry, filled by ResolveSlots against
  /// the owning mapping's SlotMap. When present, the fast interpreter
  /// serves kLoadAttr from a RecordView array index; programs compiled
  /// standalone (tests, analyzer probes) leave this empty and run on
  /// the reference interpreter's name lookups.
  std::vector<uint32_t> attr_slots;

  bool empty() const { return code.empty(); }
  bool slot_resolved() const {
    return attr_slots.size() == attr_names.size();
  }
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_BYTECODE_H_
