#include "lexpress/vm.h"

#include <algorithm>
#include <cstdlib>

namespace metacomm::lexpress {

namespace {

const Value kTrue{"true"};
const Value kFalse{"false"};

Value Bool(bool b) { return b ? kTrue : kFalse; }

bool Truthy(const Value& v) {
  return v.size() == 1 && EqualsIgnoreCase(v.front(), "true");
}

/// Case-insensitive set equality over value lists.
bool SetEquals(const Value& a, const Value& b) {
  if (a.size() != b.size()) return false;
  for (const std::string& va : a) {
    bool found =
        std::any_of(b.begin(), b.end(), [&va](const std::string& vb) {
          return EqualsIgnoreCase(va, vb);
        });
    if (!found) return false;
  }
  return true;
}

/// Applies `fn` to each element; empty input stays empty (missing
/// propagates — default() reintroduces values when wanted).
template <typename Fn>
Value Elementwise(const Value& in, Fn fn) {
  Value out;
  out.reserve(in.size());
  for (const std::string& v : in) out.push_back(fn(v));
  return out;
}

/// Broadcast length for multi-argument elementwise builtins: if any
/// argument is empty the result is empty; otherwise the longest list
/// wins and shorter lists repeat their last element.
size_t BroadcastLength(const std::vector<Value>& args) {
  size_t n = 0;
  for (const Value& arg : args) {
    if (arg.empty()) return 0;
    n = std::max(n, arg.size());
  }
  return n;
}

const std::string& BroadcastAt(const Value& v, size_t i) {
  return i < v.size() ? v[i] : v.back();
}

StatusOr<int64_t> ToInt(const Value& v, const char* what) {
  if (v.size() != 1) {
    return Status::InvalidArgument(std::string("lexpress: ") + what +
                                   " must be a single integer");
  }
  const std::string& s = v.front();
  std::optional<int64_t> value = ParseSignedInt64(s);
  if (!value.has_value()) {
    // Rejects non-digits AND out-of-range magnitudes; the strtoll it
    // replaced silently saturated on overflow.
    return Status::InvalidArgument(std::string("lexpress: ") + what +
                                   " is not an integer: " + s);
  }
  return *value;
}

std::string SubstrOne(const std::string& s, int64_t start, int64_t len) {
  int64_t n = static_cast<int64_t>(s.size());
  if (start < 0) start = std::max<int64_t>(0, n + start);
  if (start >= n || len <= 0) return "";
  len = std::min(len, n - start);
  return s.substr(static_cast<size_t>(start), static_cast<size_t>(len));
}

std::string DigitsOnly(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c >= '0' && c <= '9') out.push_back(c);
  }
  return out;
}

std::string SurnameOf(const std::string& s) {
  std::string t = Trim(s);
  size_t pos = t.find_last_of(' ');
  return pos == std::string::npos ? t : t.substr(pos + 1);
}

std::string GivenNameOf(const std::string& s) {
  std::string t = Trim(s);
  size_t pos = t.find_first_of(' ');
  return pos == std::string::npos ? t : t.substr(0, pos);
}

StatusOr<Value> CallBuiltin(Builtin builtin, std::vector<Value> args) {
  switch (builtin) {
    case Builtin::kAnd:
      return Bool(Truthy(args[0]) && Truthy(args[1]));
    case Builtin::kOr:
      return Bool(Truthy(args[0]) || Truthy(args[1]));
    case Builtin::kNot:
      return Bool(!Truthy(args[0]));
    case Builtin::kEq:
      return Bool(SetEquals(args[0], args[1]));
    case Builtin::kNe:
      return Bool(!SetEquals(args[0], args[1]));
    case Builtin::kPresent:
      return Bool(!args[0].empty());
    case Builtin::kAbsent:
      return Bool(args[0].empty());
    case Builtin::kPrefix: {
      if (args[1].empty()) return Bool(false);
      const std::string& prefix = args[1].front();
      for (const std::string& v : args[0]) {
        if (StartsWithIgnoreCase(v, prefix)) return Bool(true);
      }
      return Bool(false);
    }
    case Builtin::kSuffix: {
      if (args[1].empty()) return Bool(false);
      std::string suffix = ToLower(args[1].front());
      for (const std::string& v : args[0]) {
        if (EndsWith(ToLower(v), suffix)) return Bool(true);
      }
      return Bool(false);
    }
    case Builtin::kMatches: {
      if (args[1].empty()) return Bool(false);
      const std::string& pattern = args[1].front();
      for (const std::string& v : args[0]) {
        if (GlobMatchIgnoreCase(pattern, v)) return Bool(true);
      }
      return Bool(false);
    }
    case Builtin::kContains: {
      if (args[1].empty()) return Bool(false);
      std::string needle = ToLower(args[1].front());
      for (const std::string& v : args[0]) {
        if (ToLower(v).find(needle) != std::string::npos) {
          return Bool(true);
        }
      }
      return Bool(false);
    }
    case Builtin::kUpper:
      return Elementwise(args[0], [](const std::string& v) {
        return ToUpper(v);
      });
    case Builtin::kLower:
      return Elementwise(args[0], [](const std::string& v) {
        return ToLower(v);
      });
    case Builtin::kTrim:
      return Elementwise(args[0],
                         [](const std::string& v) { return Trim(v); });
    case Builtin::kNormalize:
      return Elementwise(args[0], [](const std::string& v) {
        return NormalizeSpace(v);
      });
    case Builtin::kDigits:
      return Elementwise(args[0], [](const std::string& v) {
        return DigitsOnly(v);
      });
    case Builtin::kSurname:
      return Elementwise(args[0], [](const std::string& v) {
        return SurnameOf(v);
      });
    case Builtin::kGivenName:
      return Elementwise(args[0], [](const std::string& v) {
        return GivenNameOf(v);
      });
    case Builtin::kSubstr: {
      METACOMM_ASSIGN_OR_RETURN(int64_t start,
                                ToInt(args[1], "substr start"));
      METACOMM_ASSIGN_OR_RETURN(int64_t len, ToInt(args[2], "substr len"));
      return Elementwise(args[0],
                         [start, len](const std::string& v) {
                           return SubstrOne(v, start, len);
                         });
    }
    case Builtin::kReplace: {
      if (args[1].empty()) return args[0];
      std::string from = args[1].front();
      std::string to = args[2].empty() ? "" : args[2].front();
      return Elementwise(args[0], [&from, &to](const std::string& v) {
        return ReplaceAll(v, from, to);
      });
    }
    case Builtin::kSplit: {
      if (args[1].empty() || args[1].front().empty()) {
        return Status::InvalidArgument("lexpress: split needs a separator");
      }
      METACOMM_ASSIGN_OR_RETURN(int64_t index,
                                ToInt(args[2], "split index"));
      char sep = args[1].front()[0];
      Value out;
      for (const std::string& v : args[0]) {
        std::vector<std::string> pieces = Split(v, sep);
        int64_t i = index < 0
                        ? static_cast<int64_t>(pieces.size()) + index
                        : index;
        if (i >= 0 && i < static_cast<int64_t>(pieces.size())) {
          out.push_back(pieces[static_cast<size_t>(i)]);
        }
      }
      return out;
    }
    case Builtin::kConcat: {
      size_t n = BroadcastLength(args);
      Value out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        std::string piece;
        for (const Value& arg : args) piece += BroadcastAt(arg, i);
        out.push_back(std::move(piece));
      }
      return out;
    }
    case Builtin::kFormat: {
      if (args[0].empty()) return Value{};
      std::string fmt = args[0].front();
      std::vector<Value> rest(args.begin() + 1, args.end());
      if (rest.empty()) return Value{FormatPercentS(fmt, {})};
      size_t n = BroadcastLength(rest);
      Value out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        std::vector<std::string> row;
        row.reserve(rest.size());
        for (const Value& arg : rest) row.push_back(BroadcastAt(arg, i));
        out.push_back(FormatPercentS(fmt, row));
      }
      return out;
    }
    case Builtin::kFirst:
      if (args[0].empty()) return Value{};
      return Value{args[0].front()};
    case Builtin::kLast:
      if (args[0].empty()) return Value{};
      return Value{args[0].back()};
    case Builtin::kJoin: {
      if (args[0].empty()) return Value{};
      std::string sep = args[1].empty() ? "" : args[1].front();
      return Value{Join(args[0], sep)};
    }
    case Builtin::kCount:
      return Value{std::to_string(args[0].size())};
    case Builtin::kDefault:
      return args[0].empty() ? args[1] : args[0];
    case Builtin::kIfElse:
      return Truthy(args[0]) ? args[1] : args[2];
  }
  return Status::Internal("lexpress: unknown builtin");
}

}  // namespace

StatusOr<Value> Vm::Execute(const Program& program,
                            const std::vector<TableDef>& tables,
                            const Record& record) {
  std::vector<Value> stack;
  stack.reserve(8);
  for (const Instruction& inst : program.code) {
    switch (inst.op) {
      case OpCode::kPushConst:
        stack.push_back(program.constants[inst.a]);
        break;
      case OpCode::kLoadAttr:
        stack.push_back(record.Get(program.attr_names[inst.a]));
        break;
      case OpCode::kCall: {
        size_t argc = inst.b;
        if (stack.size() < argc) {
          return Status::Internal("lexpress VM stack underflow");
        }
        std::vector<Value> args(stack.end() - argc, stack.end());
        stack.resize(stack.size() - argc);
        METACOMM_ASSIGN_OR_RETURN(
            Value result,
            CallBuiltin(static_cast<Builtin>(inst.a), std::move(args)));
        stack.push_back(std::move(result));
        break;
      }
      case OpCode::kLookup: {
        if (stack.empty()) {
          return Status::Internal("lexpress VM stack underflow");
        }
        if (inst.a >= tables.size()) {
          return Status::Internal("lexpress VM bad table index");
        }
        const TableDef& table = tables[inst.a];
        Value in = std::move(stack.back());
        stack.pop_back();
        Value out;
        for (const std::string& v : in) {
          auto it = table.entries.find(v);
          if (it != table.entries.end()) {
            out.push_back(it->second);
          } else if (table.default_value.has_value()) {
            out.push_back(*table.default_value);
          }
          // No match and no default: the value drops out, letting an
          // alternate mapping or default() supply it.
        }
        stack.push_back(std::move(out));
        break;
      }
    }
  }
  if (stack.size() != 1) {
    return Status::Internal("lexpress VM finished with bad stack depth");
  }
  return std::move(stack.front());
}

StatusOr<bool> Vm::ExecuteGuard(const Program& program,
                                const std::vector<TableDef>& tables,
                                const Record& record) {
  if (program.empty()) return true;
  METACOMM_ASSIGN_OR_RETURN(Value result,
                            Execute(program, tables, record));
  return result.size() == 1 && EqualsIgnoreCase(result.front(), "true");
}

}  // namespace metacomm::lexpress
