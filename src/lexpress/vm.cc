#include "lexpress/vm.h"

#include <algorithm>
#include <cstdlib>

namespace metacomm::lexpress {

namespace {

const Value kTrue{"true"};
const Value kFalse{"false"};

const Value* Bool(bool b) { return b ? &kTrue : &kFalse; }

bool Truthy(const Value& v) {
  return v.size() == 1 && EqualsIgnoreCase(v.front(), "true");
}

/// Case-insensitive set equality over value lists.
bool SetEquals(const Value& a, const Value& b) {
  if (a.size() != b.size()) return false;
  for (const std::string& va : a) {
    bool found =
        std::any_of(b.begin(), b.end(), [&va](const std::string& vb) {
          return EqualsIgnoreCase(va, vb);
        });
    if (!found) return false;
  }
  return true;
}

/// Applies `fn` to each element into `out`; empty input stays empty
/// (missing propagates — default() reintroduces values when wanted).
template <typename Fn>
void ElementwiseInto(const Value& in, Value* out, Fn fn) {
  out->reserve(in.size());
  for (const std::string& v : in) out->push_back(fn(v));
}

/// Broadcast length for multi-argument elementwise builtins: if any
/// argument is empty the result is empty; otherwise the longest list
/// wins and shorter lists repeat their last element.
size_t BroadcastLength(const Value* const* args, size_t argc) {
  size_t n = 0;
  for (size_t i = 0; i < argc; ++i) {
    if (args[i]->empty()) return 0;
    n = std::max(n, args[i]->size());
  }
  return n;
}

const std::string& BroadcastAt(const Value& v, size_t i) {
  return i < v.size() ? v[i] : v.back();
}

StatusOr<int64_t> ToInt(const Value& v, const char* what) {
  if (v.size() != 1) {
    return Status::InvalidArgument(std::string("lexpress: ") + what +
                                   " must be a single integer");
  }
  const std::string& s = v.front();
  std::optional<int64_t> value = ParseSignedInt64(s);
  if (!value.has_value()) {
    // Rejects non-digits AND out-of-range magnitudes; the strtoll it
    // replaced silently saturated on overflow.
    return Status::InvalidArgument(std::string("lexpress: ") + what +
                                   " is not an integer: " + s);
  }
  return *value;
}

std::string SubstrOne(const std::string& s, int64_t start, int64_t len) {
  int64_t n = static_cast<int64_t>(s.size());
  if (start < 0) start = std::max<int64_t>(0, n + start);
  if (start >= n || len <= 0) return "";
  len = std::min(len, n - start);
  return s.substr(static_cast<size_t>(start), static_cast<size_t>(len));
}

std::string DigitsOnly(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c >= '0' && c <= '9') out.push_back(c);
  }
  return out;
}

std::string SurnameOf(const std::string& s) {
  std::string t = Trim(s);
  size_t pos = t.find_last_of(' ');
  return pos == std::string::npos ? t : t.substr(pos + 1);
}

std::string GivenNameOf(const std::string& s) {
  std::string t = Trim(s);
  size_t pos = t.find_first_of(' ');
  return pos == std::string::npos ? t : t.substr(0, pos);
}

/// One builtin call over argument pointers. Returns either `out`
/// (filled; the caller provides it cleared) or a pass-through pointer
/// to an argument / a static boolean — so boolean guards and value
/// plumbing (default, ifelse) move no data at all. Shared by the fast
/// and reference interpreters, which differ only in how operands reach
/// the stack. `out` never aliases an argument.
StatusOr<const Value*> CallBuiltinInto(Builtin builtin,
                                       const Value* const* args,
                                       size_t argc, Value* out) {
  switch (builtin) {
    case Builtin::kAnd:
      return Bool(Truthy(*args[0]) && Truthy(*args[1]));
    case Builtin::kOr:
      return Bool(Truthy(*args[0]) || Truthy(*args[1]));
    case Builtin::kNot:
      return Bool(!Truthy(*args[0]));
    case Builtin::kEq:
      return Bool(SetEquals(*args[0], *args[1]));
    case Builtin::kNe:
      return Bool(!SetEquals(*args[0], *args[1]));
    case Builtin::kPresent:
      return Bool(!args[0]->empty());
    case Builtin::kAbsent:
      return Bool(args[0]->empty());
    case Builtin::kPrefix: {
      if (args[1]->empty()) return Bool(false);
      const std::string& prefix = args[1]->front();
      for (const std::string& v : *args[0]) {
        if (StartsWithIgnoreCase(v, prefix)) return Bool(true);
      }
      return Bool(false);
    }
    case Builtin::kSuffix: {
      if (args[1]->empty()) return Bool(false);
      const std::string& suffix = args[1]->front();
      for (const std::string& v : *args[0]) {
        if (EndsWithIgnoreCase(v, suffix)) return Bool(true);
      }
      return Bool(false);
    }
    case Builtin::kMatches: {
      if (args[1]->empty()) return Bool(false);
      const std::string& pattern = args[1]->front();
      for (const std::string& v : *args[0]) {
        if (GlobMatchIgnoreCase(pattern, v)) return Bool(true);
      }
      return Bool(false);
    }
    case Builtin::kContains: {
      if (args[1]->empty()) return Bool(false);
      const std::string& needle = args[1]->front();
      for (const std::string& v : *args[0]) {
        if (ContainsIgnoreCase(v, needle)) return Bool(true);
      }
      return Bool(false);
    }
    case Builtin::kUpper:
      ElementwiseInto(*args[0], out,
                      [](const std::string& v) { return ToUpper(v); });
      return out;
    case Builtin::kLower:
      ElementwiseInto(*args[0], out,
                      [](const std::string& v) { return ToLower(v); });
      return out;
    case Builtin::kTrim:
      ElementwiseInto(*args[0], out,
                      [](const std::string& v) { return Trim(v); });
      return out;
    case Builtin::kNormalize:
      ElementwiseInto(*args[0], out, [](const std::string& v) {
        return NormalizeSpace(v);
      });
      return out;
    case Builtin::kDigits:
      ElementwiseInto(*args[0], out,
                      [](const std::string& v) { return DigitsOnly(v); });
      return out;
    case Builtin::kSurname:
      ElementwiseInto(*args[0], out,
                      [](const std::string& v) { return SurnameOf(v); });
      return out;
    case Builtin::kGivenName:
      ElementwiseInto(*args[0], out,
                      [](const std::string& v) { return GivenNameOf(v); });
      return out;
    case Builtin::kSubstr: {
      METACOMM_ASSIGN_OR_RETURN(int64_t start,
                                ToInt(*args[1], "substr start"));
      METACOMM_ASSIGN_OR_RETURN(int64_t len, ToInt(*args[2], "substr len"));
      ElementwiseInto(*args[0], out, [start, len](const std::string& v) {
        return SubstrOne(v, start, len);
      });
      return out;
    }
    case Builtin::kReplace: {
      if (args[1]->empty()) return args[0];
      const std::string& from = args[1]->front();
      const std::string* to = args[2]->empty() ? nullptr : &args[2]->front();
      ElementwiseInto(*args[0], out, [&from, to](const std::string& v) {
        return ReplaceAll(v, from, to == nullptr ? "" : *to);
      });
      return out;
    }
    case Builtin::kSplit: {
      if (args[1]->empty() || args[1]->front().empty()) {
        return Status::InvalidArgument("lexpress: split needs a separator");
      }
      METACOMM_ASSIGN_OR_RETURN(int64_t index,
                                ToInt(*args[2], "split index"));
      char sep = args[1]->front()[0];
      for (const std::string& v : *args[0]) {
        std::vector<std::string> pieces = Split(v, sep);
        int64_t i = index < 0
                        ? static_cast<int64_t>(pieces.size()) + index
                        : index;
        if (i >= 0 && i < static_cast<int64_t>(pieces.size())) {
          out->push_back(std::move(pieces[static_cast<size_t>(i)]));
        }
      }
      return out;
    }
    case Builtin::kConcat: {
      size_t n = BroadcastLength(args, argc);
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        std::string piece;
        for (size_t a = 0; a < argc; ++a) piece += BroadcastAt(*args[a], i);
        out->push_back(std::move(piece));
      }
      return out;
    }
    case Builtin::kFormat: {
      if (args[0]->empty()) return out;
      const std::string& fmt = args[0]->front();
      if (argc == 1) {
        out->push_back(FormatPercentS(fmt, {}));
        return out;
      }
      size_t n = BroadcastLength(args + 1, argc - 1);
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        std::vector<std::string> row;
        row.reserve(argc - 1);
        for (size_t a = 1; a < argc; ++a) {
          row.push_back(BroadcastAt(*args[a], i));
        }
        out->push_back(FormatPercentS(fmt, row));
      }
      return out;
    }
    case Builtin::kFirst:
      if (args[0]->empty()) return out;
      out->push_back(args[0]->front());
      return out;
    case Builtin::kLast:
      if (args[0]->empty()) return out;
      out->push_back(args[0]->back());
      return out;
    case Builtin::kJoin: {
      if (args[0]->empty()) return out;
      out->push_back(
          Join(*args[0], args[1]->empty() ? "" : args[1]->front()));
      return out;
    }
    case Builtin::kCount:
      out->push_back(std::to_string(args[0]->size()));
      return out;
    case Builtin::kDefault:
      return args[0]->empty() ? args[1] : args[0];
    case Builtin::kIfElse:
      return Truthy(*args[0]) ? args[1] : args[2];
  }
  return Status::Internal("lexpress: unknown builtin");
}

}  // namespace

int32_t Vm::AcquireOwned() {
  if (!free_.empty()) {
    int32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  pool_.emplace_back();
  return static_cast<int32_t>(pool_.size() - 1);
}

StatusOr<const Value*> Vm::Run(const Program& program,
                               const std::vector<TableDef>& tables,
                               const RecordView& view) {
  if (!program.slot_resolved()) {
    return Status::Internal("lexpress VM: program is not slot-resolved");
  }
  stack_.clear();
  free_.clear();
  for (size_t i = pool_.size(); i-- > 0;) {
    free_.push_back(static_cast<int32_t>(i));
  }

  for (const Instruction& inst : program.code) {
    switch (inst.op) {
      case OpCode::kPushConst:
        // A corrupt Program must surface as a Status, not an
        // out-of-range index (same contract kLookup always had).
        if (inst.a >= program.constants.size()) {
          return Status::Internal("lexpress VM bad constant index");
        }
        stack_.push_back({-1, &program.constants[inst.a]});
        break;
      case OpCode::kLoadAttr: {
        if (inst.a >= program.attr_slots.size()) {
          return Status::Internal("lexpress VM bad attribute index");
        }
        uint32_t slot = program.attr_slots[inst.a];
        if (slot >= view.size()) {
          return Status::Internal("lexpress VM bad attribute slot");
        }
        stack_.push_back({-1, &view.at(slot)});
        break;
      }
      case OpCode::kCall: {
        size_t argc = inst.b;
        if (stack_.size() < argc) {
          return Status::Internal("lexpress VM stack underflow");
        }
        // Acquire the result slot BEFORE resolving argument pointers:
        // growing the pool may move it, and arguments can live there.
        int32_t out_index = AcquireOwned();
        Value* out = &pool_[out_index];
        out->clear();
        argv_.clear();
        for (size_t i = stack_.size() - argc; i < stack_.size(); ++i) {
          argv_.push_back(ValueOf(stack_[i]));
        }
        StatusOr<const Value*> result = CallBuiltinInto(
            static_cast<Builtin>(inst.a), argv_.data(), argc, out);
        if (!result.ok()) return result.status();
        const Value* value = *result;
        // Pop the arguments, recycling owned slots — except one the
        // builtin passed straight through as its result.
        int32_t value_owned = value == out ? out_index : -1;
        for (size_t i = stack_.size() - argc; i < stack_.size(); ++i) {
          const StackSlot& slot = stack_[i];
          if (slot.owned < 0) continue;
          if (&pool_[slot.owned] == value) {
            value_owned = slot.owned;
          } else {
            free_.push_back(slot.owned);
          }
        }
        if (value != out && value_owned != out_index) {
          free_.push_back(out_index);
        }
        stack_.resize(stack_.size() - argc);
        stack_.push_back(
            {value_owned, value_owned >= 0 ? nullptr : value});
        break;
      }
      case OpCode::kLookup: {
        if (stack_.empty()) {
          return Status::Internal("lexpress VM stack underflow");
        }
        if (inst.a >= tables.size()) {
          return Status::Internal("lexpress VM bad table index");
        }
        const TableDef& table = tables[inst.a];
        int32_t out_index = AcquireOwned();
        Value* out = &pool_[out_index];
        out->clear();
        StackSlot in_slot = stack_.back();
        stack_.pop_back();
        const Value* in = ValueOf(in_slot);
        for (const std::string& v : *in) {
          auto it = table.entries.find(v);
          if (it != table.entries.end()) {
            out->push_back(it->second);
          } else if (table.default_value.has_value()) {
            out->push_back(*table.default_value);
          }
          // No match and no default: the value drops out, letting an
          // alternate mapping or default() supply it.
        }
        if (in_slot.owned >= 0) free_.push_back(in_slot.owned);
        stack_.push_back({out_index, nullptr});
        break;
      }
    }
  }
  if (stack_.size() != 1) {
    return Status::Internal("lexpress VM finished with bad stack depth");
  }
  return ValueOf(stack_.front());
}

StatusOr<Value> Vm::Execute(const Program& program,
                            const std::vector<TableDef>& tables,
                            const RecordView& view) {
  METACOMM_ASSIGN_OR_RETURN(const Value* result,
                            Run(program, tables, view));
  // An owned result moves out (its buffers transfer to the caller);
  // borrowed results (constants, attribute loads, booleans) copy.
  const StackSlot& top = stack_.front();
  if (top.owned >= 0) return std::move(pool_[top.owned]);
  return *result;
}

StatusOr<bool> Vm::ExecuteGuard(const Program& program,
                                const std::vector<TableDef>& tables,
                                const RecordView& view) {
  if (program.empty()) return true;
  METACOMM_ASSIGN_OR_RETURN(const Value* result,
                            Run(program, tables, view));
  return result->size() == 1 && EqualsIgnoreCase(result->front(), "true");
}

StatusOr<Value> Vm::ExecuteReference(const Program& program,
                                     const std::vector<TableDef>& tables,
                                     const Record& record) {
  std::vector<Value> stack;
  stack.reserve(8);
  std::vector<const Value*> argv;
  for (const Instruction& inst : program.code) {
    switch (inst.op) {
      case OpCode::kPushConst:
        if (inst.a >= program.constants.size()) {
          return Status::Internal("lexpress VM bad constant index");
        }
        stack.push_back(program.constants[inst.a]);
        break;
      case OpCode::kLoadAttr:
        if (inst.a >= program.attr_names.size()) {
          return Status::Internal("lexpress VM bad attribute index");
        }
        stack.push_back(record.Get(program.attr_names[inst.a]));
        break;
      case OpCode::kCall: {
        size_t argc = inst.b;
        if (stack.size() < argc) {
          return Status::Internal("lexpress VM stack underflow");
        }
        argv.clear();
        for (size_t i = stack.size() - argc; i < stack.size(); ++i) {
          argv.push_back(&stack[i]);
        }
        Value out;
        METACOMM_ASSIGN_OR_RETURN(
            const Value* result,
            CallBuiltinInto(static_cast<Builtin>(inst.a), argv.data(),
                            argc, &out));
        Value value = result == &out ? std::move(out) : *result;
        stack.resize(stack.size() - argc);
        stack.push_back(std::move(value));
        break;
      }
      case OpCode::kLookup: {
        if (stack.empty()) {
          return Status::Internal("lexpress VM stack underflow");
        }
        if (inst.a >= tables.size()) {
          return Status::Internal("lexpress VM bad table index");
        }
        const TableDef& table = tables[inst.a];
        Value in = std::move(stack.back());
        stack.pop_back();
        Value out;
        for (const std::string& v : in) {
          auto it = table.entries.find(v);
          if (it != table.entries.end()) {
            out.push_back(it->second);
          } else if (table.default_value.has_value()) {
            out.push_back(*table.default_value);
          }
        }
        stack.push_back(std::move(out));
        break;
      }
    }
  }
  if (stack.size() != 1) {
    return Status::Internal("lexpress VM finished with bad stack depth");
  }
  return std::move(stack.front());
}

StatusOr<bool> Vm::ExecuteGuardReference(const Program& program,
                                         const std::vector<TableDef>& tables,
                                         const Record& record) {
  if (program.empty()) return true;
  METACOMM_ASSIGN_OR_RETURN(Value result,
                            ExecuteReference(program, tables, record));
  return result.size() == 1 && EqualsIgnoreCase(result.front(), "true");
}

}  // namespace metacomm::lexpress
