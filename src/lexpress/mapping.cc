#include "lexpress/mapping.h"

#include <algorithm>

#include "lexpress/parser.h"

namespace metacomm::lexpress {

namespace {

/// Per-thread fallback interpreter for callers that don't plumb one
/// (tests, tools, setup paths). Still reuses its scratch across calls
/// on the same thread; the hot update-manager paths pass their
/// worker-owned Vm explicitly instead.
Vm& FallbackVm() {
  thread_local Vm vm;
  return vm;
}

}  // namespace

const char* RouteActionName(RouteAction action) {
  switch (action) {
    case RouteAction::kAdd:
      return "add";
    case RouteAction::kModify:
      return "modify";
    case RouteAction::kDelete:
      return "delete";
    case RouteAction::kSkip:
      return "skip";
  }
  return "?";
}

StatusOr<Mapping> Mapping::Compile(const MappingDecl& decl) {
  Mapping mapping;
  mapping.name_ = decl.name;
  mapping.source_schema_ = decl.source_schema;
  mapping.target_schema_ = decl.target_schema;
  mapping.tables_ = decl.tables;

  auto option = [&decl](std::string_view name) -> std::string {
    auto it = decl.options.find(name);
    return it == decl.options.end() ? "" : it->second;
  };
  mapping.target_name_ = option("target_name");
  mapping.originator_attr_ = option("originator");
  mapping.allow_cycles_ = EqualsIgnoreCase(option("allow_cycles"), "true");

  for (const auto& [key, value] : decl.options) {
    if (!EqualsIgnoreCase(key, "target_name") &&
        !EqualsIgnoreCase(key, "originator") &&
        !EqualsIgnoreCase(key, "allow_cycles")) {
      return Status::InvalidArgument("lexpress: unknown option '" + key +
                                     "' in mapping " + decl.name);
    }
  }

  if (decl.rules.empty()) {
    return Status::InvalidArgument("lexpress: mapping " + decl.name +
                                   " has no rules");
  }
  for (const MapRule& rule : decl.rules) {
    METACOMM_ASSIGN_OR_RETURN(CompiledRule compiled,
                              CompileRule(rule, mapping.tables_));
    if (compiled.is_key && mapping.key_target_attr_.empty()) {
      mapping.key_target_attr_ = compiled.target_attr;
    }
    mapping.rules_.push_back(std::move(compiled));
  }
  if (decl.partition.has_value()) {
    METACOMM_ASSIGN_OR_RETURN(mapping.partition_,
                              CompileExpr(*decl.partition, mapping.tables_));
  }

  // Slot-resolve every program against one per-mapping table, and
  // build the target-attr → {rules, source slots} dependency index.
  // Done last so the SlotMap covers partition reads too.
  auto group_of = [&mapping](const std::string& target_attr) -> RuleGroup& {
    for (RuleGroup& group : mapping.groups_) {
      if (EqualsIgnoreCase(group.target_attr, target_attr)) return group;
    }
    mapping.groups_.emplace_back();
    mapping.groups_.back().target_attr = target_attr;
    return mapping.groups_.back();
  };
  for (size_t i = 0; i < mapping.rules_.size(); ++i) {
    CompiledRule& rule = mapping.rules_[i];
    ResolveSlots(&mapping.slot_map_, &rule.guard);
    ResolveSlots(&mapping.slot_map_, &rule.value);
    if (rule.identity && rule.guard.empty() &&
        rule.value.code.size() == 1 &&
        rule.value.code[0].op == OpCode::kLoadAttr) {
      rule.direct_slot =
          static_cast<int32_t>(rule.value.attr_slots[rule.value.code[0].a]);
    }
    RuleGroup& group = group_of(rule.target_attr);
    group.rules.push_back(static_cast<uint32_t>(i));
    for (const std::string& attr : rule.source_attrs) {
      uint32_t slot = mapping.slot_map_.Intern(attr);
      if (std::find(group.source_slots.begin(), group.source_slots.end(),
                    slot) == group.source_slots.end()) {
        group.source_slots.push_back(slot);
      }
    }
  }
  ResolveSlots(&mapping.slot_map_, &mapping.partition_);
  // Groups are independent (each owns one target attribute and rules
  // are pure reads of the source), so evaluation order is free. Keep
  // them sorted by target: MapRecord then emits attributes in Record
  // order and the bulk constructor's sort sees presorted input.
  std::sort(mapping.groups_.begin(), mapping.groups_.end(),
            [](const RuleGroup& a, const RuleGroup& b) {
              return CaseInsensitiveLess()(a.target_attr, b.target_attr);
            });
  return mapping;
}

Status Mapping::EvalGroup(const RuleGroup& group, const RecordView& view,
                          Vm& vm, Value* out) const {
  out->clear();
  for (uint32_t index : group.rules) {
    const CompiledRule& rule = rules_[index];
    if (rule.direct_slot >= 0) {
      // Unguarded identity copy: read the slot, skip the VM entirely.
      const Value& direct = view.at(static_cast<uint32_t>(rule.direct_slot));
      if (!direct.empty()) {
        *out = direct;
        return Status::Ok();  // First rule wins.
      }
      continue;
    }
    METACOMM_ASSIGN_OR_RETURN(bool guard_ok,
                              vm.ExecuteGuard(rule.guard, tables_, view));
    if (!guard_ok) continue;
    METACOMM_ASSIGN_OR_RETURN(*out, vm.Execute(rule.value, tables_, view));
    if (!out->empty()) return Status::Ok();  // First rule wins.
    // Empty value: let an alternate rule supply it.
  }
  return Status::Ok();
}

StatusOr<Record> Mapping::MapRecord(const Record& source, Vm* vm) const {
  Vm& v = vm != nullptr ? *vm : FallbackVm();
  RecordView& view = v.scratch_view();
  view.Reset(source, slot_map_);
  // Collect the output unsorted and let the bulk Record constructor
  // sort once: group targets are distinct, so Set-ing them one at a
  // time would only buy repeated binary searches and insert shifting.
  Record::AttrMap attrs;
  attrs.reserve(groups_.size());
  Value value;
  for (const RuleGroup& group : groups_) {
    METACOMM_RETURN_IF_ERROR(EvalGroup(group, view, v, &value));
    if (!value.empty()) attrs.emplace_back(group.target_attr, std::move(value));
  }
  return Record(target_schema_, std::move(attrs));
}

StatusOr<Record> Mapping::MapRecordReference(const Record& source) const {
  Record target(target_schema_);
  for (const CompiledRule& rule : rules_) {
    if (target.Has(rule.target_attr)) continue;  // First rule wins.
    METACOMM_ASSIGN_OR_RETURN(
        bool guard_ok,
        Vm::ExecuteGuardReference(rule.guard, tables_, source));
    if (!guard_ok) continue;
    METACOMM_ASSIGN_OR_RETURN(
        Value value, Vm::ExecuteReference(rule.value, tables_, source));
    if (value.empty()) continue;  // Let an alternate mapping supply it.
    target.Set(rule.target_attr, std::move(value));
  }
  return target;
}

bool Mapping::MarkDirtySlots(
    const std::set<std::string, CaseInsensitiveLess>& changed,
    std::vector<uint8_t>* dirty) const {
  dirty->assign(slot_map_.size(), 0);
  bool any = false;
  for (const std::string& attr : changed) {
    std::optional<uint32_t> slot = slot_map_.Find(attr);
    if (slot.has_value()) {
      (*dirty)[*slot] = 1;
      any = true;
    }
  }
  return any;
}

bool Mapping::AnySlotDirty(const std::vector<uint32_t>& slots,
                           const std::vector<uint8_t>& dirty) {
  for (uint32_t slot : slots) {
    if (dirty[slot] != 0) return true;
  }
  return false;
}

Status Mapping::MapDirtyGroups(
    const Record& source,
    const std::set<std::string, CaseInsensitiveLess>& changed_src,
    Vm* vm,
    std::vector<std::pair<std::string_view, Value>>* out) const {
  Vm& v = vm != nullptr ? *vm : FallbackVm();
  std::vector<uint8_t>& dirty = v.scratch_dirty();
  if (!MarkDirtySlots(changed_src, &dirty)) return Status::Ok();
  RecordView& view = v.scratch_view();
  view.Reset(source, slot_map_);
  Value value;
  for (const RuleGroup& group : groups_) {
    if (!AnySlotDirty(group.source_slots, dirty)) continue;
    METACOMM_RETURN_IF_ERROR(EvalGroup(group, view, v, &value));
    out->emplace_back(group.target_attr, std::move(value));
    value.clear();
  }
  return Status::Ok();
}

StatusOr<bool> Mapping::PartitionAccepts(const Record& source,
                                         Vm* vm) const {
  if (partition_.empty()) return true;
  if (source.empty()) return false;
  Vm& v = vm != nullptr ? *vm : FallbackVm();
  RecordView& view = v.scratch_view();
  view.Reset(source, slot_map_);
  return v.ExecuteGuard(partition_, tables_, view);
}

StatusOr<RouteAction> Mapping::Route(const UpdateDescriptor& update,
                                     Vm* vm) const {
  // "lexpress checks the partitioning constraints against both the old
  // and new attributes of the object" (§4.2).
  switch (update.op) {
    case DescriptorOp::kAdd: {
      METACOMM_ASSIGN_OR_RETURN(bool new_ok,
                                PartitionAccepts(update.new_record, vm));
      return new_ok ? RouteAction::kAdd : RouteAction::kSkip;
    }
    case DescriptorOp::kDelete: {
      METACOMM_ASSIGN_OR_RETURN(bool old_ok,
                                PartitionAccepts(update.old_record, vm));
      return old_ok ? RouteAction::kDelete : RouteAction::kSkip;
    }
    case DescriptorOp::kModify: {
      METACOMM_ASSIGN_OR_RETURN(bool old_ok,
                                PartitionAccepts(update.old_record, vm));
      METACOMM_ASSIGN_OR_RETURN(bool new_ok,
                                PartitionAccepts(update.new_record, vm));
      if (old_ok && new_ok) return RouteAction::kModify;
      if (!old_ok && new_ok) return RouteAction::kAdd;
      if (old_ok && !new_ok) return RouteAction::kDelete;
      return RouteAction::kSkip;
    }
  }
  return Status::Internal("lexpress: bad descriptor op");
}

StatusOr<std::optional<UpdateDescriptor>> Mapping::Translate(
    const UpdateDescriptor& update, Vm* vm) const {
  if (!EqualsIgnoreCase(update.schema, source_schema_)) {
    return Status::InvalidArgument(
        "lexpress: update in schema '" + update.schema +
        "' given to mapping from '" + source_schema_ + "'");
  }
  Vm& v = vm != nullptr ? *vm : FallbackVm();

  // The Modify dirty set drives both routing shortcuts and rule
  // selection; computed once up front.
  std::set<std::string, CaseInsensitiveLess> changed;
  bool have_changed = false;
  if (update.op == DescriptorOp::kModify) {
    changed = ChangedAttrs(update.old_record, update.new_record);
    have_changed = true;
  }

  RouteAction action;
  if (have_changed && !partition_.empty() &&
      update.old_record.empty() == update.new_record.empty() &&
      !MarkDirtySlots(changed, &v.scratch_dirty())) {
    // No partition or rule input changed: both images satisfy the
    // partition identically, so one evaluation answers for both.
    METACOMM_ASSIGN_OR_RETURN(bool ok,
                              PartitionAccepts(update.new_record, &v));
    action = ok ? RouteAction::kModify : RouteAction::kSkip;
  } else {
    METACOMM_ASSIGN_OR_RETURN(action, Route(update, &v));
  }
  if (action == RouteAction::kSkip) {
    return std::optional<UpdateDescriptor>();
  }

  UpdateDescriptor out;
  out.schema = target_schema_;
  out.source = update.source;

  // Conditional-update detection (§5.4): if the source record says the
  // update originated at this mapping's target, the target has already
  // seen it — mark it so the filter reapplies with recovery semantics.
  if (!originator_attr_.empty() && !target_name_.empty()) {
    const Record& effective = update.EffectiveRecord();
    for (const std::string& origin : effective.Get(originator_attr_)) {
      if (EqualsIgnoreCase(origin, target_name_)) out.conditional = true;
    }
  }

  switch (action) {
    case RouteAction::kAdd: {
      out.op = DescriptorOp::kAdd;
      METACOMM_ASSIGN_OR_RETURN(out.new_record,
                                MapRecord(update.new_record, &v));
      break;
    }
    case RouteAction::kDelete: {
      out.op = DescriptorOp::kDelete;
      METACOMM_ASSIGN_OR_RETURN(out.old_record,
                                MapRecord(update.old_record, &v));
      break;
    }
    case RouteAction::kModify: {
      out.op = DescriptorOp::kModify;
      METACOMM_ASSIGN_OR_RETURN(out.old_record,
                                MapRecord(update.old_record, &v));
      // Dirty-attribute rule selection: a group reading no changed
      // attribute produces bit-identical output on both images, so the
      // new target record starts as a copy of the old one and only
      // dirty groups are re-evaluated against the new image.
      out.new_record = out.old_record;
      out.new_record.set_schema(target_schema_);
      if (MarkDirtySlots(changed, &v.scratch_dirty())) {
        const std::vector<uint8_t>& dirty = v.scratch_dirty();
        // MapRecord above left the scratch view on the old image, which
        // matches the new image everywhere but the dirty slots (the
        // clean values compared exactly equal): patch those instead of
        // rebuilding the whole view.
        RecordView& view = v.scratch_view();
        for (uint32_t slot = 0; slot < dirty.size(); ++slot) {
          if (dirty[slot] != 0) {
            view.Patch(slot, update.new_record.Get(slot_map_.names()[slot]));
          }
        }
        Value value;
        for (const RuleGroup& group : groups_) {
          if (!AnySlotDirty(group.source_slots, dirty)) continue;
          METACOMM_RETURN_IF_ERROR(EvalGroup(group, view, v, &value));
          // Set() removes on empty — matching the absent attribute a
          // full MapRecord would produce when no rule wins.
          out.new_record.Set(group.target_attr, std::move(value));
          value.clear();
        }
      }
      break;
    }
    case RouteAction::kSkip:
      return std::optional<UpdateDescriptor>();
  }
  return std::optional<UpdateDescriptor>(std::move(out));
}

StatusOr<std::optional<UpdateDescriptor>> Mapping::TranslateReference(
    const UpdateDescriptor& update) const {
  if (!EqualsIgnoreCase(update.schema, source_schema_)) {
    return Status::InvalidArgument(
        "lexpress: update in schema '" + update.schema +
        "' given to mapping from '" + source_schema_ + "'");
  }
  auto accepts = [this](const Record& record) -> StatusOr<bool> {
    if (partition_.empty()) return true;
    if (record.empty()) return false;
    return Vm::ExecuteGuardReference(partition_, tables_, record);
  };
  RouteAction action = RouteAction::kSkip;
  switch (update.op) {
    case DescriptorOp::kAdd: {
      METACOMM_ASSIGN_OR_RETURN(bool new_ok, accepts(update.new_record));
      action = new_ok ? RouteAction::kAdd : RouteAction::kSkip;
      break;
    }
    case DescriptorOp::kDelete: {
      METACOMM_ASSIGN_OR_RETURN(bool old_ok, accepts(update.old_record));
      action = old_ok ? RouteAction::kDelete : RouteAction::kSkip;
      break;
    }
    case DescriptorOp::kModify: {
      METACOMM_ASSIGN_OR_RETURN(bool old_ok, accepts(update.old_record));
      METACOMM_ASSIGN_OR_RETURN(bool new_ok, accepts(update.new_record));
      if (old_ok && new_ok) {
        action = RouteAction::kModify;
      } else if (!old_ok && new_ok) {
        action = RouteAction::kAdd;
      } else if (old_ok && !new_ok) {
        action = RouteAction::kDelete;
      }
      break;
    }
  }
  if (action == RouteAction::kSkip) {
    return std::optional<UpdateDescriptor>();
  }

  UpdateDescriptor out;
  out.schema = target_schema_;
  out.source = update.source;
  if (!originator_attr_.empty() && !target_name_.empty()) {
    const Record& effective = update.EffectiveRecord();
    for (const std::string& origin : effective.Get(originator_attr_)) {
      if (EqualsIgnoreCase(origin, target_name_)) out.conditional = true;
    }
  }
  switch (action) {
    case RouteAction::kAdd: {
      out.op = DescriptorOp::kAdd;
      METACOMM_ASSIGN_OR_RETURN(out.new_record,
                                MapRecordReference(update.new_record));
      break;
    }
    case RouteAction::kDelete: {
      out.op = DescriptorOp::kDelete;
      METACOMM_ASSIGN_OR_RETURN(out.old_record,
                                MapRecordReference(update.old_record));
      break;
    }
    case RouteAction::kModify: {
      out.op = DescriptorOp::kModify;
      METACOMM_ASSIGN_OR_RETURN(out.old_record,
                                MapRecordReference(update.old_record));
      METACOMM_ASSIGN_OR_RETURN(out.new_record,
                                MapRecordReference(update.new_record));
      break;
    }
    case RouteAction::kSkip:
      return std::optional<UpdateDescriptor>();
  }
  return std::optional<UpdateDescriptor>(std::move(out));
}

std::set<std::string, CaseInsensitiveLess> Mapping::SourcesOf(
    std::string_view target_attr) const {
  std::set<std::string, CaseInsensitiveLess> out;
  for (const RuleGroup& group : groups_) {
    if (!EqualsIgnoreCase(group.target_attr, target_attr)) continue;
    for (uint32_t slot : group.source_slots) {
      out.insert(slot_map_.names()[slot]);
    }
  }
  return out;
}

StatusOr<std::vector<Mapping>> CompileMappings(std::string_view source) {
  METACOMM_ASSIGN_OR_RETURN(std::vector<MappingDecl> decls,
                            ParseMappings(source));
  std::vector<Mapping> mappings;
  mappings.reserve(decls.size());
  for (const MappingDecl& decl : decls) {
    METACOMM_ASSIGN_OR_RETURN(Mapping mapping, Mapping::Compile(decl));
    mappings.push_back(std::move(mapping));
  }
  return mappings;
}

}  // namespace metacomm::lexpress
