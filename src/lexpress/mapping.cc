#include "lexpress/mapping.h"

#include "lexpress/parser.h"
#include "lexpress/vm.h"

namespace metacomm::lexpress {

const char* RouteActionName(RouteAction action) {
  switch (action) {
    case RouteAction::kAdd:
      return "add";
    case RouteAction::kModify:
      return "modify";
    case RouteAction::kDelete:
      return "delete";
    case RouteAction::kSkip:
      return "skip";
  }
  return "?";
}

StatusOr<Mapping> Mapping::Compile(const MappingDecl& decl) {
  Mapping mapping;
  mapping.name_ = decl.name;
  mapping.source_schema_ = decl.source_schema;
  mapping.target_schema_ = decl.target_schema;
  mapping.tables_ = decl.tables;

  auto option = [&decl](std::string_view name) -> std::string {
    auto it = decl.options.find(name);
    return it == decl.options.end() ? "" : it->second;
  };
  mapping.target_name_ = option("target_name");
  mapping.originator_attr_ = option("originator");
  mapping.allow_cycles_ = EqualsIgnoreCase(option("allow_cycles"), "true");

  for (const auto& [key, value] : decl.options) {
    if (!EqualsIgnoreCase(key, "target_name") &&
        !EqualsIgnoreCase(key, "originator") &&
        !EqualsIgnoreCase(key, "allow_cycles")) {
      return Status::InvalidArgument("lexpress: unknown option '" + key +
                                     "' in mapping " + decl.name);
    }
  }

  if (decl.rules.empty()) {
    return Status::InvalidArgument("lexpress: mapping " + decl.name +
                                   " has no rules");
  }
  for (const MapRule& rule : decl.rules) {
    METACOMM_ASSIGN_OR_RETURN(CompiledRule compiled,
                              CompileRule(rule, mapping.tables_));
    if (compiled.is_key && mapping.key_target_attr_.empty()) {
      mapping.key_target_attr_ = compiled.target_attr;
    }
    mapping.rules_.push_back(std::move(compiled));
  }
  if (decl.partition.has_value()) {
    METACOMM_ASSIGN_OR_RETURN(mapping.partition_,
                              CompileExpr(*decl.partition, mapping.tables_));
  }
  return mapping;
}

StatusOr<Record> Mapping::MapRecord(const Record& source) const {
  Record target(target_schema_);
  for (const CompiledRule& rule : rules_) {
    if (target.Has(rule.target_attr)) continue;  // First rule wins.
    METACOMM_ASSIGN_OR_RETURN(bool guard_ok,
                              Vm::ExecuteGuard(rule.guard, tables_, source));
    if (!guard_ok) continue;
    METACOMM_ASSIGN_OR_RETURN(Value value,
                              Vm::Execute(rule.value, tables_, source));
    if (value.empty()) continue;  // Let an alternate mapping supply it.
    target.Set(rule.target_attr, std::move(value));
  }
  return target;
}

StatusOr<bool> Mapping::PartitionAccepts(const Record& source) const {
  if (partition_.empty()) return true;
  if (source.empty()) return false;
  return Vm::ExecuteGuard(partition_, tables_, source);
}

StatusOr<RouteAction> Mapping::Route(const UpdateDescriptor& update) const {
  // "lexpress checks the partitioning constraints against both the old
  // and new attributes of the object" (§4.2).
  switch (update.op) {
    case DescriptorOp::kAdd: {
      METACOMM_ASSIGN_OR_RETURN(bool new_ok,
                                PartitionAccepts(update.new_record));
      return new_ok ? RouteAction::kAdd : RouteAction::kSkip;
    }
    case DescriptorOp::kDelete: {
      METACOMM_ASSIGN_OR_RETURN(bool old_ok,
                                PartitionAccepts(update.old_record));
      return old_ok ? RouteAction::kDelete : RouteAction::kSkip;
    }
    case DescriptorOp::kModify: {
      METACOMM_ASSIGN_OR_RETURN(bool old_ok,
                                PartitionAccepts(update.old_record));
      METACOMM_ASSIGN_OR_RETURN(bool new_ok,
                                PartitionAccepts(update.new_record));
      if (old_ok && new_ok) return RouteAction::kModify;
      if (!old_ok && new_ok) return RouteAction::kAdd;
      if (old_ok && !new_ok) return RouteAction::kDelete;
      return RouteAction::kSkip;
    }
  }
  return Status::Internal("lexpress: bad descriptor op");
}

StatusOr<std::optional<UpdateDescriptor>> Mapping::Translate(
    const UpdateDescriptor& update) const {
  if (!EqualsIgnoreCase(update.schema, source_schema_)) {
    return Status::InvalidArgument(
        "lexpress: update in schema '" + update.schema +
        "' given to mapping from '" + source_schema_ + "'");
  }
  METACOMM_ASSIGN_OR_RETURN(RouteAction action, Route(update));
  if (action == RouteAction::kSkip) {
    return std::optional<UpdateDescriptor>();
  }

  UpdateDescriptor out;
  out.schema = target_schema_;
  out.source = update.source;

  // Conditional-update detection (§5.4): if the source record says the
  // update originated at this mapping's target, the target has already
  // seen it — mark it so the filter reapplies with recovery semantics.
  if (!originator_attr_.empty() && !target_name_.empty()) {
    const Record& effective = update.EffectiveRecord();
    for (const std::string& origin : effective.Get(originator_attr_)) {
      if (EqualsIgnoreCase(origin, target_name_)) out.conditional = true;
    }
  }

  switch (action) {
    case RouteAction::kAdd: {
      out.op = DescriptorOp::kAdd;
      METACOMM_ASSIGN_OR_RETURN(out.new_record,
                                MapRecord(update.new_record));
      break;
    }
    case RouteAction::kDelete: {
      out.op = DescriptorOp::kDelete;
      METACOMM_ASSIGN_OR_RETURN(out.old_record,
                                MapRecord(update.old_record));
      break;
    }
    case RouteAction::kModify: {
      out.op = DescriptorOp::kModify;
      METACOMM_ASSIGN_OR_RETURN(out.old_record,
                                MapRecord(update.old_record));
      METACOMM_ASSIGN_OR_RETURN(out.new_record,
                                MapRecord(update.new_record));
      break;
    }
    case RouteAction::kSkip:
      return std::optional<UpdateDescriptor>();
  }
  return std::optional<UpdateDescriptor>(std::move(out));
}

std::set<std::string, CaseInsensitiveLess> Mapping::SourcesOf(
    std::string_view target_attr) const {
  std::set<std::string, CaseInsensitiveLess> out;
  for (const CompiledRule& rule : rules_) {
    if (EqualsIgnoreCase(rule.target_attr, target_attr)) {
      out.insert(rule.source_attrs.begin(), rule.source_attrs.end());
    }
  }
  return out;
}

StatusOr<std::vector<Mapping>> CompileMappings(std::string_view source) {
  METACOMM_ASSIGN_OR_RETURN(std::vector<MappingDecl> decls,
                            ParseMappings(source));
  std::vector<Mapping> mappings;
  mappings.reserve(decls.size());
  for (const MappingDecl& decl : decls) {
    METACOMM_ASSIGN_OR_RETURN(Mapping mapping, Mapping::Compile(decl));
    mappings.push_back(std::move(mapping));
  }
  return mappings;
}

}  // namespace metacomm::lexpress
