#ifndef METACOMM_LEXPRESS_ANALYZER_H_
#define METACOMM_LEXPRESS_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "lexpress/ast.h"

namespace metacomm::lexpress {

/// Severity of one analyzer finding.
enum class DiagSeverity { kError, kWarning };

/// Returns "error" / "warning".
const char* DiagSeverityName(DiagSeverity severity);

/// One structured finding. Rule ids (see docs/LEXPRESS.md "Diagnostics"):
///   LX000  source does not parse or compile
///   LX001  non-convergent mapping cycle without allow_cycles
///   LX002  partition overlap: two instances claim the same records
///   LX003  unsatisfiable partition: the mapping can never fire
///   LX004  write-write conflict without an Originator/LastUpdater guard
///   LX005  reference to an attribute absent from a declared schema
///   LX006  dead mapping: its source schema is fed by nothing
///   LX007  dead rule: shadowed by an earlier unconditional rule
struct Diagnostic {
  std::string rule_id;
  DiagSeverity severity = DiagSeverity::kError;
  /// Name of the mapping the finding anchors to ("" for whole-program
  /// findings such as parse errors).
  std::string mapping;
  /// 1-based line in the analyzed source; 0 when unknown.
  int line = 0;
  std::string message;

  /// "12: error: [LX005] ..." — the tool prepends the file name.
  std::string ToString() const;
};

/// Declared attribute universes, per schema, for LX005/LX006. Schemas
/// not declared here are skipped by those rules (the analyzer cannot
/// know a foreign repository's fields).
struct AnalyzerOptions {
  std::map<std::string, std::set<std::string, CaseInsensitiveLess>,
           CaseInsensitiveLess>
      schemas;
};

/// True if any diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Static analysis over lexpress mapping programs (`lexpress check`).
///
/// Runs post-compile over a whole program — the rules are relational
/// (cycles span mappings, partition conflicts span instances), so the
/// unit of analysis is the mapping *set*, not one mapping.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  /// Parses, compiles and analyzes `source`. Parse/compile failures
  /// are reported as LX000 diagnostics, not call failures.
  std::vector<Diagnostic> AnalyzeSource(std::string_view source) const;

  /// Analyzes already-parsed declarations.
  std::vector<Diagnostic> Analyze(
      const std::vector<MappingDecl>& decls) const;

 private:
  AnalyzerOptions options_;
};

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_ANALYZER_H_
