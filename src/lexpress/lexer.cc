#include "lexpress/lexer.h"

namespace metacomm::lexpress {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9') || c == '.';
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kLeftBrace:
      return "'{'";
    case TokenKind::kRightBrace:
      return "'}'";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kEqualsEquals:
      return "'=='";
    case TokenKind::kNotEquals:
      return "'!='";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;

  auto make = [&line, &column](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    return t;
  };
  auto error = [&line, &column](const std::string& message) {
    return Status::InvalidArgument("lexpress lex error at " +
                                   std::to_string(line) + ":" +
                                   std::to_string(column) + ": " + message);
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++column;
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '>') {
      tokens.push_back(make(TokenKind::kArrow, "->"));
      i += 2;
      column += 2;
      continue;
    }
    if (c == '=' && i + 1 < source.size() && source[i + 1] == '=') {
      tokens.push_back(make(TokenKind::kEqualsEquals, "=="));
      i += 2;
      column += 2;
      continue;
    }
    if (c == '!' && i + 1 < source.size() && source[i + 1] == '=') {
      tokens.push_back(make(TokenKind::kNotEquals, "!="));
      i += 2;
      column += 2;
      continue;
    }
    switch (c) {
      case '{':
        tokens.push_back(make(TokenKind::kLeftBrace, "{"));
        ++i;
        ++column;
        continue;
      case '}':
        tokens.push_back(make(TokenKind::kRightBrace, "}"));
        ++i;
        ++column;
        continue;
      case '(':
        tokens.push_back(make(TokenKind::kLeftParen, "("));
        ++i;
        ++column;
        continue;
      case ')':
        tokens.push_back(make(TokenKind::kRightParen, ")"));
        ++i;
        ++column;
        continue;
      case ',':
        tokens.push_back(make(TokenKind::kComma, ","));
        ++i;
        ++column;
        continue;
      case ';':
        tokens.push_back(make(TokenKind::kSemicolon, ";"));
        ++i;
        ++column;
        continue;
      case '=':
        tokens.push_back(make(TokenKind::kEquals, "="));
        ++i;
        ++column;
        continue;
      default:
        break;
    }
    if (c == '"') {
      std::string text;
      size_t start_column = column;
      ++i;
      ++column;
      bool closed = false;
      while (i < source.size()) {
        char sc = source[i];
        if (sc == '\\' && i + 1 < source.size()) {
          char next = source[i + 1];
          if (next == '"' || next == '\\') {
            text.push_back(next);
            i += 2;
            column += 2;
            continue;
          }
          if (next == 'n') {
            text.push_back('\n');
            i += 2;
            column += 2;
            continue;
          }
        }
        if (sc == '"') {
          closed = true;
          ++i;
          ++column;
          break;
        }
        if (sc == '\n') break;  // Unterminated.
        text.push_back(sc);
        ++i;
        ++column;
      }
      if (!closed) {
        column = static_cast<int>(start_column);
        return error("unterminated string literal");
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.line = line;
      t.column = static_cast<int>(start_column);
      tokens.push_back(std::move(t));
      continue;
    }
    if ((c >= '0' && c <= '9') ||
        (c == '-' && i + 1 < source.size() && source[i + 1] >= '0' &&
         source[i + 1] <= '9')) {
      std::string text;
      text.push_back(c);
      ++i;
      ++column;
      while (i < source.size() && source[i] >= '0' && source[i] <= '9') {
        text.push_back(source[i]);
        ++i;
        ++column;
      }
      tokens.push_back(make(TokenKind::kInteger, std::move(text)));
      continue;
    }
    if (IsIdentStart(c)) {
      std::string text;
      while (i < source.size() && IsIdentChar(source[i])) {
        text.push_back(source[i]);
        ++i;
        ++column;
      }
      tokens.push_back(make(TokenKind::kIdentifier, std::move(text)));
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  tokens.push_back(make(TokenKind::kEnd, ""));
  return tokens;
}

}  // namespace metacomm::lexpress
