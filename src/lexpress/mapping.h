#ifndef METACOMM_LEXPRESS_MAPPING_H_
#define METACOMM_LEXPRESS_MAPPING_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "lexpress/ast.h"
#include "lexpress/compiler.h"
#include "lexpress/record.h"
#include "lexpress/vm.h"

namespace metacomm::lexpress {

/// How a translated update should be applied at the target, derived
/// from the partitioning constraints (paper §4.2):
///   old sat. | new sat. | action
///   ---------+----------+---------
///      no    |   yes    | Add      (object newly managed by target)
///      yes   |   yes    | Modify
///      yes   |   no     | Delete   (object left the target's partition)
///      no    |   no     | Skip
enum class RouteAction { kAdd, kModify, kDelete, kSkip };

/// Returns "add"/"modify"/"delete"/"skip".
const char* RouteActionName(RouteAction action);

/// A compiled lexpress mapping from one schema to another.
///
/// "Mappings are specified from a source schema to a target schema, so
/// two lexpress mappings are specified for each schema pair" (§4.2).
///
/// Compile() additionally precomputes the execution fast path
/// (DESIGN.md "lexpress execution pipeline"):
///  * a SlotMap interning every source attribute any rule or the
///    partition reads, with all programs slot-resolved against it;
///  * rule groups — the target-attribute → {rules, source slots}
///    dependency index that drives dirty-attribute rule selection on
///    Modify translation and in the closure engine.
///
/// Execution methods take an optional Vm*: pass a per-worker instance
/// to reuse its scratch buffers across calls (the update manager's
/// workers do); nullptr falls back to a per-thread Vm.
class Mapping {
 public:
  /// Compiles a parsed declaration. Fails on unknown functions, bad
  /// arity, unknown tables, or a mapping without rules.
  static StatusOr<Mapping> Compile(const MappingDecl& decl);

  const std::string& name() const { return name_; }
  const std::string& source_schema() const { return source_schema_; }
  const std::string& target_schema() const { return target_schema_; }

  /// Name of the repository instance this mapping feeds (option
  /// target_name); empty when the mapping targets a schema in general.
  const std::string& target_name() const { return target_name_; }

  /// Source attribute that names an update's origin (option
  /// originator, §5.4); empty disables conditional-update detection.
  const std::string& originator_attr() const { return originator_attr_; }

  /// True when cycles through this mapping defer to runtime fixpoint
  /// detection (option allow_cycles = true).
  bool allow_cycles() const { return allow_cycles_; }

  const std::vector<CompiledRule>& rules() const { return rules_; }
  const std::vector<TableDef>& tables() const { return tables_; }

  /// Target attribute of the first `key` rule; empty if none declared.
  const std::string& key_target_attr() const { return key_target_attr_; }

  /// One target attribute's alternate-rule chain plus the union of
  /// source slots its rules read — the compiled dependency index
  /// behind SourcesOf and dirty-attribute rule selection.
  struct RuleGroup {
    std::string target_attr;
    /// Indices into rules(), in declaration order (first rule wins).
    std::vector<uint32_t> rules;
    /// Union of slot_map() slots read by the group's guards + values.
    std::vector<uint32_t> source_slots;
  };
  /// Groups ordered by first appearance of their target attribute.
  const std::vector<RuleGroup>& rule_groups() const { return groups_; }

  /// The mapping's interned source-attribute table.
  const SlotMap& slot_map() const { return slot_map_; }

  /// Maps a full source record to a target record: runs every rule in
  /// declaration order; for each target attribute the first rule whose
  /// guard holds and whose value is non-empty wins (alternate attribute
  /// mappings, §4.2).
  StatusOr<Record> MapRecord(const Record& source,
                             Vm* vm = nullptr) const;

  /// Reference implementation of MapRecord on the reference
  /// interpreter — the oracle the differential test checks the slot
  /// path against. Not for hot paths.
  StatusOr<Record> MapRecordReference(const Record& source) const;

  /// Evaluates only the rule groups reading at least one attribute in
  /// `changed_src`, appending (target attr, value) per dirty group —
  /// value empty when no rule won, which callers must treat as
  /// "derives to nothing" (the closure engine removes the target
  /// attribute). Groups reading no changed attribute are skipped
  /// entirely: their result is provably identical to the previous
  /// evaluation. This is the work-proportional core of the closure.
  Status MapDirtyGroups(
      const Record& source,
      const std::set<std::string, CaseInsensitiveLess>& changed_src,
      Vm* vm,
      std::vector<std::pair<std::string_view, Value>>* out) const;

  /// Evaluates the partition predicate over a source record; mappings
  /// without a partition clause accept everything.
  StatusOr<bool> PartitionAccepts(const Record& source,
                                  Vm* vm = nullptr) const;

  /// Routing decision for an update (see RouteAction).
  StatusOr<RouteAction> Route(const UpdateDescriptor& update,
                              Vm* vm = nullptr) const;

  /// Translates a canonical update in the source schema into a
  /// canonical update against the target, or nullopt when the target
  /// is not involved (RouteAction::kSkip).
  ///
  /// Sets `conditional` on the result when the update is headed back
  /// to the repository it originated from: the originator attribute of
  /// the source record names this mapping's target_name (§5.4).
  ///
  /// On a Modify, only rule groups whose source attributes actually
  /// changed between the old and new images are re-evaluated for the
  /// new target record (dirty-attribute rule selection); the result is
  /// byte-identical to mapping both records in full.
  StatusOr<std::optional<UpdateDescriptor>> Translate(
      const UpdateDescriptor& update, Vm* vm = nullptr) const;

  /// Reference implementation of Translate: full remap of every image
  /// on the reference interpreter. The differential-test oracle.
  StatusOr<std::optional<UpdateDescriptor>> TranslateReference(
      const UpdateDescriptor& update) const;

  /// Source attributes read by any rule mapping into `target_attr`.
  std::set<std::string, CaseInsensitiveLess> SourcesOf(
      std::string_view target_attr) const;

 private:
  Mapping() = default;

  /// Runs one group's first-wins chain against `view`; `*out` is left
  /// empty when no rule wins.
  Status EvalGroup(const RuleGroup& group, const RecordView& view,
                   Vm& vm, Value* out) const;

  /// Marks the slots of `changed` attrs in the vm's dirty bitmap;
  /// returns false when no changed attribute is read by any program
  /// (nothing to re-evaluate).
  bool MarkDirtySlots(
      const std::set<std::string, CaseInsensitiveLess>& changed,
      std::vector<uint8_t>* dirty) const;

  static bool AnySlotDirty(const std::vector<uint32_t>& slots,
                           const std::vector<uint8_t>& dirty);

  std::string name_;
  std::string source_schema_;
  std::string target_schema_;
  std::string target_name_;
  std::string originator_attr_;
  bool allow_cycles_ = false;
  std::vector<TableDef> tables_;
  std::vector<CompiledRule> rules_;
  Program partition_;  // Empty = accept all.
  std::string key_target_attr_;
  SlotMap slot_map_;
  std::vector<RuleGroup> groups_;
};

/// Compiles every mapping in a lexpress source file. This is the
/// "compile at run-time using the appropriate lexpress routine" entry
/// point (§4.2): description files can be added to a running program.
StatusOr<std::vector<Mapping>> CompileMappings(std::string_view source);

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_MAPPING_H_
