#ifndef METACOMM_LEXPRESS_MAPPING_H_
#define METACOMM_LEXPRESS_MAPPING_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lexpress/ast.h"
#include "lexpress/compiler.h"
#include "lexpress/record.h"

namespace metacomm::lexpress {

/// How a translated update should be applied at the target, derived
/// from the partitioning constraints (paper §4.2):
///   old sat. | new sat. | action
///   ---------+----------+---------
///      no    |   yes    | Add      (object newly managed by target)
///      yes   |   yes    | Modify
///      yes   |   no     | Delete   (object left the target's partition)
///      no    |   no     | Skip
enum class RouteAction { kAdd, kModify, kDelete, kSkip };

/// Returns "add"/"modify"/"delete"/"skip".
const char* RouteActionName(RouteAction action);

/// A compiled lexpress mapping from one schema to another.
///
/// "Mappings are specified from a source schema to a target schema, so
/// two lexpress mappings are specified for each schema pair" (§4.2).
class Mapping {
 public:
  /// Compiles a parsed declaration. Fails on unknown functions, bad
  /// arity, unknown tables, or a mapping without rules.
  static StatusOr<Mapping> Compile(const MappingDecl& decl);

  const std::string& name() const { return name_; }
  const std::string& source_schema() const { return source_schema_; }
  const std::string& target_schema() const { return target_schema_; }

  /// Name of the repository instance this mapping feeds (option
  /// target_name); empty when the mapping targets a schema in general.
  const std::string& target_name() const { return target_name_; }

  /// Source attribute that names an update's origin (option
  /// originator, §5.4); empty disables conditional-update detection.
  const std::string& originator_attr() const { return originator_attr_; }

  /// True when cycles through this mapping defer to runtime fixpoint
  /// detection (option allow_cycles = true).
  bool allow_cycles() const { return allow_cycles_; }

  const std::vector<CompiledRule>& rules() const { return rules_; }
  const std::vector<TableDef>& tables() const { return tables_; }

  /// Target attribute of the first `key` rule; empty if none declared.
  const std::string& key_target_attr() const { return key_target_attr_; }

  /// Maps a full source record to a target record: runs every rule in
  /// declaration order; for each target attribute the first rule whose
  /// guard holds and whose value is non-empty wins (alternate attribute
  /// mappings, §4.2).
  StatusOr<Record> MapRecord(const Record& source) const;

  /// Evaluates the partition predicate over a source record; mappings
  /// without a partition clause accept everything.
  StatusOr<bool> PartitionAccepts(const Record& source) const;

  /// Routing decision for an update (see RouteAction).
  StatusOr<RouteAction> Route(const UpdateDescriptor& update) const;

  /// Translates a canonical update in the source schema into a
  /// canonical update against the target, or nullopt when the target
  /// is not involved (RouteAction::kSkip).
  ///
  /// Sets `conditional` on the result when the update is headed back
  /// to the repository it originated from: the originator attribute of
  /// the source record names this mapping's target_name (§5.4).
  StatusOr<std::optional<UpdateDescriptor>> Translate(
      const UpdateDescriptor& update) const;

  /// Source attributes read by any rule mapping into `target_attr`.
  std::set<std::string, CaseInsensitiveLess> SourcesOf(
      std::string_view target_attr) const;

 private:
  Mapping() = default;

  std::string name_;
  std::string source_schema_;
  std::string target_schema_;
  std::string target_name_;
  std::string originator_attr_;
  bool allow_cycles_ = false;
  std::vector<TableDef> tables_;
  std::vector<CompiledRule> rules_;
  Program partition_;  // Empty = accept all.
  std::string key_target_attr_;
};

/// Compiles every mapping in a lexpress source file. This is the
/// "compile at run-time using the appropriate lexpress routine" entry
/// point (§4.2): description files can be added to a running program.
StatusOr<std::vector<Mapping>> CompileMappings(std::string_view source);

}  // namespace metacomm::lexpress

#endif  // METACOMM_LEXPRESS_MAPPING_H_
