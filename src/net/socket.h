#ifndef METACOMM_NET_SOCKET_H_
#define METACOMM_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace metacomm::net {

/// RAII file descriptor. Move-only; closes on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset(other.release());
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int release() { return std::exchange(fd_, -1); }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode.
Status SetNonBlocking(int fd);

/// Disables Nagle on a TCP socket — the protocol is strict
/// request/response, so coalescing delay is pure added latency.
Status SetNoDelay(int fd);

/// Creates a non-blocking listener on 127.0.0.1:`port` (0 picks an
/// ephemeral port). On success returns the fd and stores the actual
/// port in `*bound_port`.
StatusOr<ScopedFd> ListenTcp(uint16_t port, int backlog,
                             uint16_t* bound_port);

/// Blocking connect to `host`:`port` (numeric IPv4 or "localhost").
StatusOr<ScopedFd> ConnectTcp(const std::string& host, uint16_t port);

/// Status::Unavailable annotated with errno.
Status ErrnoStatus(const std::string& what);

}  // namespace metacomm::net

#endif  // METACOMM_NET_SOCKET_H_
