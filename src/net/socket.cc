#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace metacomm::net {

void ScopedFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + ::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

StatusOr<ScopedFd> ListenTcp(uint16_t port, int backlog,
                             uint16_t* bound_port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) < 0) {
      return ErrnoStatus("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

StatusOr<ScopedFd> ConnectTcp(const std::string& host, uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* numeric =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, numeric, &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("connect " + host);
  (void)SetNoDelay(fd.get());
  return fd;
}

}  // namespace metacomm::net
