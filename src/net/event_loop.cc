#include "net/event_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

namespace metacomm::net {

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) return ErrnoStatus("epoll_create1");
  wake_fd_.Reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) return ErrnoStatus("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) <
      0) {
    return ErrnoStatus("epoll_ctl(wakeup)");
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void EventLoop::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  Wakeup();
  if (thread_.joinable()) thread_.join();
  // Run what RunInLoop queued after the loop exited, so handed-off
  // connections get closed rather than leaked.
  DrainTasks();
}

Status EventLoop::Register(int fd, uint32_t events,
                           EventCallback callback) {
  {
    MutexLock lock(&mutex_);
    callbacks_[fd] = std::move(callback);
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    MutexLock lock(&mutex_);
    callbacks_.erase(fd);
    return ErrnoStatus("epoll_ctl(add)");
  }
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(mod)");
  }
  return Status::Ok();
}

void EventLoop::Unregister(int fd) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  MutexLock lock(&mutex_);
  callbacks_.erase(fd);
}

void EventLoop::RunInLoop(Task task) {
  if (InLoopThread()) {
    task();
    return;
  }
  {
    MutexLock lock(&mutex_);
    pending_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  if (!wake_fd_.valid()) return;
  uint64_t one = 1;
  ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
  (void)n;  // EAGAIN just means a wakeup is already pending.
}

void EventLoop::DrainTasks() {
  std::vector<Task> tasks;
  {
    MutexLock lock(&mutex_);
    tasks.swap(pending_);
  }
  for (Task& task : tasks) task();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, /*timeout=*/
                         1000);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Unrecoverable epoll failure; Stop() still joins us.
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        uint64_t drained;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      EventCallback callback;
      {
        MutexLock lock(&mutex_);
        auto it = callbacks_.find(fd);
        if (it == callbacks_.end()) continue;  // Unregistered mid-batch.
        callback = it->second;  // Copy: callback may unregister itself.
      }
      callback(events[i].events);
    }
    DrainTasks();
  }
}

}  // namespace metacomm::net
