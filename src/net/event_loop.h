#ifndef METACOMM_NET_EVENT_LOOP_H_
#define METACOMM_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/socket.h"

namespace metacomm::net {

/// A single-threaded epoll reactor: the unit the TCP servers are built
/// from. Each loop owns one epoll instance and one thread; fds are
/// registered with an event-mask callback and all callbacks for a
/// given loop run on that loop's thread — per-connection state needs
/// no locking as long as a connection stays pinned to one loop.
///
/// Cross-thread work (accepting loop handing a connection to a worker
/// loop, Stop() from anywhere) goes through RunInLoop, which enqueues
/// the task and wakes the epoll_wait via an eventfd.
class EventLoop {
 public:
  /// Called with the ready EPOLL* event mask for the registered fd.
  using EventCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and starts the loop thread.
  Status Start();

  /// Asks the loop to exit, joins the thread, then runs any tasks
  /// still queued (so handed-off resources are not leaked). Idempotent.
  void Stop();

  /// Watches `fd` for `events` (EPOLLIN/EPOLLOUT/...); `callback`
  /// fires on the loop thread. Call from the loop thread or before
  /// concurrent use of the fd.
  Status Register(int fd, uint32_t events, EventCallback callback);

  /// Changes the watched event mask of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// Stops watching `fd` and drops its callback. Safe to call from
  /// within the fd's own callback.
  void Unregister(int fd);

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Runs inline when already called on the loop thread.
  void RunInLoop(Task task);

  bool InLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

 private:
  void Run();
  void DrainTasks();
  void Wakeup();

  ScopedFd epoll_fd_;
  ScopedFd wake_fd_;  // eventfd: RunInLoop / Stop wakeups.
  std::thread thread_;
  std::atomic<bool> running_{false};

  // Callbacks are only touched on the loop thread once it runs;
  // registration before Start and the pending task queue need the
  // mutex.
  Mutex mutex_{LockRank::kNetEventLoop, "net.event_loop"};
  std::map<int, EventCallback> callbacks_ GUARDED_BY(mutex_);
  std::vector<Task> pending_ GUARDED_BY(mutex_);
};

}  // namespace metacomm::net

#endif  // METACOMM_NET_EVENT_LOOP_H_
