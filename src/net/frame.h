#ifndef METACOMM_NET_FRAME_H_
#define METACOMM_NET_FRAME_H_

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

namespace metacomm::net {

/// Wire framing for the text protocol (DESIGN.md "Wire boundary").
///
/// The in-process text protocol has no way to delimit a message on a
/// byte stream: requests are multi-line, LDIF bodies contain blank
/// lines, and SEARCH replies are a RESULT line followed by any number
/// of LDIF blocks. Every message therefore travels length-prefixed:
///
///   frame   := header payload
///   header  := decimal-length "\n"          (ASCII digits, no sign)
///   payload := exactly decimal-length bytes (the text-protocol
///              message, verbatim)
///
/// The same framing is used in both directions. A header longer than
/// 20 digits, a non-digit byte where a digit is expected, or a length
/// above the receiver's max_frame_bytes is a framing violation — the
/// stream is unrecoverable past that point and the connection must be
/// torn down after an optional final reply.

/// Frames `payload` for the wire.
std::string EncodeFrame(std::string_view payload);

/// Incremental decoder: feed bytes as they arrive (in any
/// fragmentation — single bytes, split headers, many coalesced frames
/// per read), pop complete payloads in order.
class FrameDecoder {
 public:
  enum class State {
    kOk,         // Feeding and popping normally.
    kOversized,  // Declared length exceeded max_frame_bytes.
    kMalformed,  // Header was not a digit run + newline.
  };

  /// `max_frame_bytes` bounds the declared payload length; it also
  /// implicitly bounds decoder memory.
  explicit FrameDecoder(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes `data`, decoding eagerly. Returns false once the stream
  /// is in violation (state() says why); frames decoded before the
  /// violation stay poppable, further bytes are ignored.
  bool Feed(std::string_view data);

  /// Moves the next complete payload into `*payload`; false when no
  /// complete frame is buffered.
  bool Pop(std::string* payload);

  State state() const { return state_; }

  /// Declared length of the oversized frame (state kOversized).
  size_t violating_length() const { return violating_length_; }

 private:
  size_t max_frame_bytes_;
  State state_ = State::kOk;
  std::string buffer_;  // Bytes of the (incomplete) frame in progress.
  std::deque<std::string> ready_;  // Decoded payloads awaiting Pop.
  size_t violating_length_ = 0;
};

}  // namespace metacomm::net

#endif  // METACOMM_NET_FRAME_H_
