#ifndef METACOMM_NET_TCP_SERVER_H_
#define METACOMM_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"

namespace metacomm::net {

/// TcpServer tuning and policy knobs (DESIGN.md "Wire boundary").
struct TcpServerConfig {
  /// Listen port on 127.0.0.1; 0 binds an ephemeral port (tests,
  /// benches) — read the actual one back with port().
  uint16_t listen_port = 0;
  int listen_backlog = 511;
  /// Event-loop threads. Loop 0 accepts; connections are pinned
  /// round-robin across all loops, and a connection's requests are
  /// handled inline on its loop thread — io_threads bounds how many
  /// requests are in the service at once.
  int io_threads = 1;
  /// Concurrent-connection budget. An accept beyond it is answered
  /// with one framed busy_reply and closed (load shedding, not
  /// silent SYN queueing).
  size_t max_connections = 1024;
  /// Largest request payload a frame may declare. Bounds per-connection
  /// memory; a violation sends error_reply and tears the stream down.
  size_t max_request_bytes = 1 << 20;
  /// Per-request admission control: checked before the handler runs;
  /// false sheds the request with busy_reply but keeps the connection.
  /// The wired-up server points this at the UM queue depth. Null
  /// admits everything.
  std::function<bool()> admit;
  /// Payload (unframed) sent when shedding; e.g. "RESULT 51 ... busy".
  std::string busy_reply;
  /// Payload (unframed) sent before closing on a framing violation.
  std::string error_reply;
};

/// An epoll TCP server hosting framed request/response sessions: each
/// accepted connection gets its own handler from the factory (for the
/// LDAP text protocol that handler is a TextProtocolHandler, whose
/// bind state therefore persists across the connection's requests, as
/// LTAP requires), reads length-prefixed frames (net/frame.h), runs
/// the handler per request in order, and writes framed replies.
/// Pipelined requests are legal and answered in order.
class TcpServer {
 public:
  /// One request payload in, one response payload out.
  using Handler = std::function<std::string(const std::string&)>;
  /// Called once per accepted connection, on the connection's loop.
  using HandlerFactory = std::function<Handler()>;

  /// Counters, all monotonic except active_connections.
  struct Stats {
    uint64_t accepted = 0;
    uint64_t active_connections = 0;
    uint64_t shed_connection_limit = 0;  // Accepts answered busy+close.
    uint64_t shed_busy = 0;              // Requests shed by admit().
    uint64_t framing_errors = 0;
    uint64_t requests = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };

  TcpServer(TcpServerConfig config, HandlerFactory factory);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the io threads.
  Status Start();

  /// Graceful shutdown: stops accepting, finishes the requests being
  /// handled, closes every connection, joins the io threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (after Start).
  uint16_t port() const { return port_; }

  Stats stats() const;

 private:
  struct Connection;

  void OnAcceptable();
  void OnConnectionEvent(Connection* conn, uint32_t events);
  void HandleFrames(Connection* conn);
  void FlushWrites(Connection* conn);
  void CloseConnection(Connection* conn);

  TcpServerConfig config_;
  HandlerFactory factory_;
  ScopedFd listen_fd_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  size_t next_loop_ = 0;  // Acceptor-thread only.
  bool started_ = false;

  mutable Mutex conn_mutex_{LockRank::kNetServerConns,
                            "net.tcp_server.conns"};
  std::map<int, std::unique_ptr<Connection>> connections_
      GUARDED_BY(conn_mutex_);

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> shed_connection_limit_{0};
  std::atomic<uint64_t> shed_busy_{0};
  std::atomic<uint64_t> framing_errors_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace metacomm::net

#endif  // METACOMM_NET_TCP_SERVER_H_
