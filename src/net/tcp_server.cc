#include "net/tcp_server.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace metacomm::net {

/// Per-connection state. Owned by the server's connection map but only
/// ever touched on the connection's pinned loop thread (plus Stop(),
/// which runs after every loop has joined).
struct TcpServer::Connection {
  ScopedFd fd;
  EventLoop* loop = nullptr;
  FrameDecoder decoder;
  Handler handler;
  std::string outbuf;      // Framed replies not yet written.
  size_t out_pos = 0;      // Prefix of outbuf already written.
  bool want_write = false; // EPOLLOUT currently armed.
  bool closing = false;    // Close once outbuf drains.

  Connection(ScopedFd fd_in, EventLoop* loop_in, size_t max_frame,
             Handler handler_in)
      : fd(std::move(fd_in)),
        loop(loop_in),
        decoder(max_frame),
        handler(std::move(handler_in)) {}
};

TcpServer::TcpServer(TcpServerConfig config, HandlerFactory factory)
    : config_(std::move(config)), factory_(std::move(factory)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  METACOMM_ASSIGN_OR_RETURN(
      listen_fd_, ListenTcp(config_.listen_port, config_.listen_backlog,
                            &port_));
  int io_threads = std::max(1, config_.io_threads);
  loops_.reserve(static_cast<size_t>(io_threads));
  for (int i = 0; i < io_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    METACOMM_RETURN_IF_ERROR(loops_.back()->Start());
  }
  METACOMM_RETURN_IF_ERROR(loops_[0]->Register(
      listen_fd_.get(), EPOLLIN, [this](uint32_t) { OnAcceptable(); }));
  started_ = true;
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!started_) return;
  started_ = false;
  // Stop accepting first so no connection is added behind our back,
  // then join every loop: afterwards no handler is running and the
  // connection map is ours alone.
  loops_[0]->RunInLoop(
      [this] { loops_[0]->Unregister(listen_fd_.get()); });
  for (auto& loop : loops_) loop->Stop();
  MutexLock lock(&conn_mutex_);
  connections_.clear();  // ScopedFd closes each socket.
  active_.store(0, std::memory_order_relaxed);
}

TcpServer::Stats TcpServer::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.active_connections = active_.load(std::memory_order_relaxed);
  stats.shed_connection_limit =
      shed_connection_limit_.load(std::memory_order_relaxed);
  stats.shed_busy = shed_busy_.load(std::memory_order_relaxed);
  stats.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return stats;
}

void TcpServer::OnAcceptable() {
  while (true) {
    int raw = ::accept4(listen_fd_.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc.: drop this wakeup, stay listening.
    }
    ScopedFd fd(raw);
    (void)SetNoDelay(fd.get());
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (active_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Connection budget exhausted: answer one framed busy reply
      // (best effort into the empty send buffer) and close. The
      // client sees RESULT 51, not a hang.
      shed_connection_limit_.fetch_add(1, std::memory_order_relaxed);
      if (!config_.busy_reply.empty()) {
        std::string frame = EncodeFrame(config_.busy_reply);
        ssize_t n = ::write(fd.get(), frame.data(), frame.size());
        (void)n;
      }
      continue;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    EventLoop* loop = loops_[next_loop_++ % loops_.size()].get();
    // Finish setup on the owning loop so all connection state stays
    // on one thread.
    int conn_fd = fd.get();
    auto conn = std::make_shared<std::unique_ptr<Connection>>(
        std::make_unique<Connection>(std::move(fd), loop,
                                     config_.max_request_bytes,
                                     factory_()));
    loop->RunInLoop([this, conn, conn_fd, loop] {
      Connection* raw_conn = conn->get();
      {
        MutexLock lock(&conn_mutex_);
        connections_[conn_fd] = std::move(*conn);
      }
      Status status = loop->Register(
          conn_fd, EPOLLIN,
          [this, raw_conn](uint32_t events) {
            OnConnectionEvent(raw_conn, events);
          });
      if (!status.ok()) CloseConnection(raw_conn);
    });
  }
}

void TcpServer::OnConnectionEvent(Connection* conn, uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConnection(conn);
    return;
  }
  const int fd = conn->fd.get();
  if ((events & EPOLLOUT) != 0) {
    FlushWrites(conn);  // May destroy conn (drained a closing stream).
    MutexLock lock(&conn_mutex_);
    if (connections_.find(fd) == connections_.end()) return;
  }
  if ((events & EPOLLIN) == 0) return;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(conn->fd.get(), buf, sizeof(buf));
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      if (!conn->decoder.Feed(std::string_view(buf,
                                               static_cast<size_t>(n)))) {
        // Framing violation: answer once, then close after flushing.
        framing_errors_.fetch_add(1, std::memory_order_relaxed);
        HandleFrames(conn);  // Serve frames decoded before the break.
        if (!config_.error_reply.empty()) {
          conn->outbuf += EncodeFrame(config_.error_reply);
        }
        conn->closing = true;
        FlushWrites(conn);
        return;
      }
      HandleFrames(conn);
      continue;
    }
    if (n == 0) {  // Peer closed.
      CloseConnection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  FlushWrites(conn);
}

void TcpServer::HandleFrames(Connection* conn) {
  std::string request;
  while (conn->decoder.Pop(&request)) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::string response;
    if (config_.admit != nullptr && !config_.admit()) {
      shed_busy_.fetch_add(1, std::memory_order_relaxed);
      response = config_.busy_reply;
    } else {
      response = conn->handler(request);
    }
    conn->outbuf += EncodeFrame(response);
  }
}

void TcpServer::FlushWrites(Connection* conn) {
  while (conn->out_pos < conn->outbuf.size()) {
    ssize_t n = ::write(conn->fd.get(), conn->outbuf.data() + conn->out_pos,
                        conn->outbuf.size() - conn->out_pos);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full (a slow or non-reading client): keep the
      // rest and let EPOLLOUT drive the remainder — per-connection
      // backpressure without blocking the loop.
      if (!conn->want_write) {
        conn->want_write = true;
        (void)conn->loop->Modify(conn->fd.get(), EPOLLIN | EPOLLOUT);
      }
      return;
    }
    CloseConnection(conn);
    return;
  }
  // Fully drained.
  conn->outbuf.clear();
  conn->out_pos = 0;
  if (conn->closing) {
    CloseConnection(conn);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    (void)conn->loop->Modify(conn->fd.get(), EPOLLIN);
  }
}

void TcpServer::CloseConnection(Connection* conn) {
  conn->loop->Unregister(conn->fd.get());
  active_.fetch_sub(1, std::memory_order_relaxed);
  MutexLock lock(&conn_mutex_);
  connections_.erase(conn->fd.get());  // Destroys conn; fd closes.
}

}  // namespace metacomm::net
