#include "net/frame.h"

#include <utility>

namespace metacomm::net {

namespace {

/// Longest header we accept. 12 digits (frames up to ~1TB) is far
/// beyond any real max_frame_bytes and keeps the accumulating parse
/// below — a digit-by-digit length = length * 10 + d — overflow-free,
/// so an absurd digit run can never wrap into a small bogus length.
constexpr size_t kMaxHeaderDigits = 12;

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string out = std::to_string(payload.size());
  out.push_back('\n');
  out.append(payload);
  return out;
}

bool FrameDecoder::Feed(std::string_view data) {
  if (state_ != State::kOk) return false;
  buffer_.append(data);
  // Decode as many complete frames as the buffer holds.
  size_t pos = 0;
  while (true) {
    size_t newline = buffer_.find('\n', pos);
    if (newline == std::string::npos) {
      // Incomplete header. Bound it: the digits seen so far must
      // still be a plausible header.
      size_t header_len = buffer_.size() - pos;
      if (header_len > kMaxHeaderDigits) {
        state_ = State::kMalformed;
        break;
      }
      bool digits_ok = true;
      for (size_t i = pos; i < buffer_.size(); ++i) {
        if (buffer_[i] < '0' || buffer_[i] > '9') {
          digits_ok = false;
          break;
        }
      }
      if (!digits_ok) state_ = State::kMalformed;
      break;
    }
    size_t header_len = newline - pos;
    if (header_len == 0 || header_len > kMaxHeaderDigits) {
      state_ = State::kMalformed;
      break;
    }
    uint64_t length = 0;
    bool digits_ok = true;
    for (size_t i = pos; i < newline; ++i) {
      char c = buffer_[i];
      if (c < '0' || c > '9') {
        digits_ok = false;
        break;
      }
      length = length * 10 + static_cast<uint64_t>(c - '0');
    }
    if (!digits_ok) {
      state_ = State::kMalformed;
      break;
    }
    if (length > max_frame_bytes_) {
      state_ = State::kOversized;
      violating_length_ = static_cast<size_t>(length);
      break;
    }
    size_t body_start = newline + 1;
    if (buffer_.size() - body_start < length) break;  // Partial payload.
    ready_.push_back(buffer_.substr(body_start, length));
    pos = body_start + static_cast<size_t>(length);
  }
  if (pos > 0) buffer_.erase(0, pos);
  return state_ == State::kOk;
}

bool FrameDecoder::Pop(std::string* payload) {
  if (ready_.empty()) return false;
  *payload = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace metacomm::net
