#include "net/tcp_client.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

namespace metacomm::net {

Status TcpClient::Connect(const std::string& host, uint16_t port) {
  METACOMM_ASSIGN_OR_RETURN(fd_, ConnectTcp(host, port));
  decoder_ = FrameDecoder(max_reply_bytes_);
  return Status::Ok();
}

std::string TcpClient::TransportError(const std::string& reason) {
  // 52 is LDAP unavailable; ParseResultLine maps it to
  // Status::Unavailable with this reason.
  Close();
  return "RESULT 52 transport: " + reason + "\n";
}

std::string TcpClient::Call(const std::string& request) {
  if (!fd_.valid()) return TransportError("not connected");
  std::string frame = EncodeFrame(request);
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n =
        ::write(fd_.get(), frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return TransportError(std::string("write: ") + ::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  // The connection is strict request/response from this side, so the
  // next complete frame is our reply.
  std::string reply;
  char buf[64 * 1024];
  while (!decoder_.Pop(&reply)) {
    ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n == 0) return TransportError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return TransportError(std::string("read: ") + ::strerror(errno));
    }
    if (!decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)))) {
      return TransportError("malformed reply framing");
    }
  }
  return reply;
}

}  // namespace metacomm::net
