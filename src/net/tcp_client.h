#ifndef METACOMM_NET_TCP_CLIENT_H_
#define METACOMM_NET_TCP_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"

namespace metacomm::net {

/// A blocking framed request/response client over one persistent TCP
/// connection — the socket transport for TextProtocolClient: the
/// existing in-process Transport is `std::function<std::string(const
/// std::string&)>`, and Transport() returns exactly that shape, so
/// every client-side protocol path runs unchanged over a real wire.
///
/// Not thread-safe: one TcpClient per client thread, matching the
/// one-handler-per-connection session model on the server side.
class TcpClient {
 public:
  /// `max_reply_bytes` bounds a reply frame (server SEARCH results can
  /// be large; the default admits 64 MiB).
  explicit TcpClient(size_t max_reply_bytes = 64u << 20)
      : max_reply_bytes_(max_reply_bytes) {}

  /// Opens the persistent connection.
  Status Connect(const std::string& host, uint16_t port);

  void Close() { fd_.Reset(); }
  bool connected() const { return fd_.valid(); }

  /// One framed round trip. Transport errors (connection refused or
  /// torn down, malformed reply framing) are reported in-band as a
  /// "RESULT 52 ..." line so the text-protocol reply parser surfaces
  /// them as Status::Unavailable — the transport has no side channel.
  std::string Call(const std::string& request);

  /// This client as a TextProtocolClient::Transport.
  std::function<std::string(const std::string&)> Transport() {
    return [this](const std::string& request) { return Call(request); };
  }

 private:
  std::string TransportError(const std::string& reason);

  size_t max_reply_bytes_;
  ScopedFd fd_;
  FrameDecoder decoder_{0};  // Re-created per Connect.
};

}  // namespace metacomm::net

#endif  // METACOMM_NET_TCP_CLIENT_H_
