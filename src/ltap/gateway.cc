#include "ltap/gateway.h"

#include <chrono>

namespace metacomm::ltap {

namespace {

/// RAII helper releasing an entry lock on scope exit.
class ScopedLock {
 public:
  ScopedLock(LockTable* table, const ldap::Dn& dn, uint64_t session,
             bool enabled)
      : table_(table), dn_(dn), session_(session), enabled_(enabled) {}
  ~ScopedLock() {
    if (enabled_) table_->Release(dn_, session_);
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  LockTable* table_;
  ldap::Dn dn_;
  uint64_t session_;
  bool enabled_;
};

}  // namespace

LtapGateway::LtapGateway(ldap::LdapService* backend, GatewayConfig config)
    : backend_(backend), config_(config) {}

void LtapGateway::RegisterTrigger(TriggerSpec spec) {
  triggers_.push_back(std::move(spec));
}

uint64_t LtapGateway::NewSession() {
  return next_session_.fetch_add(1);
}

Status LtapGateway::Quiesce(uint64_t session) {
  MutexLock lock(&state_mutex_);
  if (quiesced_by_ != 0 && quiesced_by_ != session) {
    return Status::Conflict("another synchronization is in progress");
  }
  quiesced_by_ = session;
  // Wait for in-flight updates from other sessions to drain. Explicit
  // deadline loop so the predicate runs under the analyzed lock scope.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(config_.quiesce_wait_micros);
  bool drained = true;
  while (in_flight_updates_ != 0) {
    if (!state_cv_.WaitUntil(lock, deadline) && in_flight_updates_ != 0) {
      drained = false;
      break;
    }
  }
  if (!drained) {
    quiesced_by_ = 0;
    state_cv_.NotifyAll();
    return Status::DeadlineExceeded("in-flight updates did not drain");
  }
  // Tell action servers a persistent connection (sequence) opened.
  for (const TriggerSpec& spec : triggers_) {
    if (spec.server != nullptr) {
      spec.server->OnPersistentConnection(session, /*open=*/true);
    }
  }
  return Status::Ok();
}

void LtapGateway::Unquiesce(uint64_t session) {
  {
    MutexLock lock(&state_mutex_);
    if (quiesced_by_ != session) return;
    quiesced_by_ = 0;
  }
  for (const TriggerSpec& spec : triggers_) {
    if (spec.server != nullptr) {
      spec.server->OnPersistentConnection(session, /*open=*/false);
    }
  }
  state_cv_.NotifyAll();
}

bool LtapGateway::IsQuiesced() const {
  MutexLock lock(&state_mutex_);
  return quiesced_by_ != 0;
}

Status LtapGateway::LockEntry(const ldap::Dn& dn, uint64_t session) {
  return LockEntry(dn, session, config_.lock_timeout_micros);
}

Status LtapGateway::LockEntry(const ldap::Dn& dn, uint64_t session,
                              int64_t timeout_micros) {
  if (!config_.locking_enabled) return Status::Ok();
  return locks_.Acquire(dn, session, timeout_micros);
}

void LtapGateway::UnlockEntry(const ldap::Dn& dn, uint64_t session) {
  if (!config_.locking_enabled) return;
  locks_.Release(dn, session);
}

Status LtapGateway::EnterUpdate(uint64_t session) {
  MutexLock lock(&state_mutex_);
  if (quiesced_by_ != 0 && quiesced_by_ != session) {
    {
      MutexLock stats_lock(&stats_mutex_);
      ++stats_.quiesce_waits;
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(config_.quiesce_wait_micros);
    while (quiesced_by_ != 0 && quiesced_by_ != session) {
      if (!state_cv_.WaitUntil(lock, deadline) && quiesced_by_ != 0 &&
          quiesced_by_ != session) {
        return Status::Conflict("gateway is quiesced for synchronization");
      }
    }
  }
  ++in_flight_updates_;
  return Status::Ok();
}

void LtapGateway::ExitUpdate() {
  {
    MutexLock lock(&state_mutex_);
    --in_flight_updates_;
  }
  state_cv_.NotifyAll();
}

void LtapGateway::CountInternalOp() {
  // The internal fast paths call straight into the backend; the
  // counter bump must not hold stats_mutex_ (rank kGatewayStats)
  // across that call — the backend write lock ranks before it.
  MutexLock lock(&stats_mutex_);
  ++stats_.internal_ops;
}

std::optional<ldap::Entry> LtapGateway::Snapshot(const ldap::Dn& dn) {
  ldap::OpContext internal_ctx;
  internal_ctx.internal = true;
  ldap::SearchRequest request;
  request.base = dn;
  request.scope = ldap::Scope::kBase;
  StatusOr<ldap::SearchResult> result =
      backend_->Search(internal_ctx, request);
  if (!result.ok() || result->entries.empty()) return std::nullopt;
  return result->entries.front();
}

Status LtapGateway::FireTriggers(TriggerTiming timing,
                                 const UpdateNotification& notification,
                                 const ldap::Entry& match_image) {
  if (!config_.triggers_enabled) return Status::Ok();
  Status first_error = Status::Ok();
  for (const TriggerSpec& spec : triggers_) {
    if (spec.timing != timing) continue;
    if (!TriggerMatches(spec, notification.op, match_image)) continue;
    {
      MutexLock lock(&stats_mutex_);
      ++stats_.triggers_fired;
    }
    Status status = spec.server->OnUpdate(notification);
    if (!status.ok() && first_error.ok()) {
      first_error = status;
      if (timing == TriggerTiming::kBefore) {
        MutexLock lock(&stats_mutex_);
        ++stats_.vetoes;
        break;  // A veto aborts the operation; later triggers are moot.
      }
    }
  }
  return first_error;
}

Status LtapGateway::Add(const ldap::OpContext& ctx,
                        const ldap::AddRequest& request) {
  if (ctx.internal) {
    CountInternalOp();
    return backend_->Add(ctx, request);
  }
  METACOMM_RETURN_IF_ERROR(EnterUpdate(ctx.session_id));
  struct ExitGuard {
    LtapGateway* gw;
    ~ExitGuard() { gw->ExitUpdate(); }
  } exit_guard{this};
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.updates;
  }

  const ldap::Dn& dn = request.entry.dn();
  if (config_.locking_enabled) {
    METACOMM_RETURN_IF_ERROR(
        locks_.Acquire(dn, ctx.session_id, config_.lock_timeout_micros));
  }
  ScopedLock lock(&locks_, dn, ctx.session_id, config_.locking_enabled);

  UpdateNotification notification;
  notification.op = ldap::UpdateOp::kAdd;
  notification.dn = dn;
  notification.new_entry = request.entry;
  notification.principal = ctx.principal;
  notification.session_id = ctx.session_id;

  notification.timing = TriggerTiming::kBefore;
  METACOMM_RETURN_IF_ERROR(
      FireTriggers(TriggerTiming::kBefore, notification, request.entry));

  METACOMM_RETURN_IF_ERROR(backend_->Add(ctx, request));

  notification.timing = TriggerTiming::kAfter;
  notification.new_entry = Snapshot(dn);
  return FireTriggers(TriggerTiming::kAfter, notification,
                      notification.new_entry.value_or(request.entry));
}

Status LtapGateway::Delete(const ldap::OpContext& ctx,
                           const ldap::DeleteRequest& request) {
  if (ctx.internal) {
    CountInternalOp();
    return backend_->Delete(ctx, request);
  }
  METACOMM_RETURN_IF_ERROR(EnterUpdate(ctx.session_id));
  struct ExitGuard {
    LtapGateway* gw;
    ~ExitGuard() { gw->ExitUpdate(); }
  } exit_guard{this};
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.updates;
  }

  if (config_.locking_enabled) {
    METACOMM_RETURN_IF_ERROR(locks_.Acquire(request.dn, ctx.session_id,
                                            config_.lock_timeout_micros));
  }
  ScopedLock lock(&locks_, request.dn, ctx.session_id,
                  config_.locking_enabled);

  std::optional<ldap::Entry> old_entry = Snapshot(request.dn);
  if (!old_entry.has_value()) {
    return Status::NotFound("no such object: " + request.dn.ToString());
  }

  UpdateNotification notification;
  notification.op = ldap::UpdateOp::kDelete;
  notification.dn = request.dn;
  notification.old_entry = old_entry;
  notification.principal = ctx.principal;
  notification.session_id = ctx.session_id;

  notification.timing = TriggerTiming::kBefore;
  METACOMM_RETURN_IF_ERROR(
      FireTriggers(TriggerTiming::kBefore, notification, *old_entry));

  METACOMM_RETURN_IF_ERROR(backend_->Delete(ctx, request));

  notification.timing = TriggerTiming::kAfter;
  return FireTriggers(TriggerTiming::kAfter, notification, *old_entry);
}

Status LtapGateway::Modify(const ldap::OpContext& ctx,
                           const ldap::ModifyRequest& request) {
  if (ctx.internal) {
    CountInternalOp();
    return backend_->Modify(ctx, request);
  }
  METACOMM_RETURN_IF_ERROR(EnterUpdate(ctx.session_id));
  struct ExitGuard {
    LtapGateway* gw;
    ~ExitGuard() { gw->ExitUpdate(); }
  } exit_guard{this};
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.updates;
  }

  if (config_.locking_enabled) {
    METACOMM_RETURN_IF_ERROR(locks_.Acquire(request.dn, ctx.session_id,
                                            config_.lock_timeout_micros));
  }
  ScopedLock lock(&locks_, request.dn, ctx.session_id,
                  config_.locking_enabled);

  std::optional<ldap::Entry> old_entry = Snapshot(request.dn);
  if (!old_entry.has_value()) {
    return Status::NotFound("no such object: " + request.dn.ToString());
  }

  UpdateNotification notification;
  notification.op = ldap::UpdateOp::kModify;
  notification.dn = request.dn;
  notification.mods = request.mods;
  notification.old_entry = old_entry;
  notification.principal = ctx.principal;
  notification.session_id = ctx.session_id;

  notification.timing = TriggerTiming::kBefore;
  METACOMM_RETURN_IF_ERROR(
      FireTriggers(TriggerTiming::kBefore, notification, *old_entry));

  METACOMM_RETURN_IF_ERROR(backend_->Modify(ctx, request));

  notification.timing = TriggerTiming::kAfter;
  notification.new_entry = Snapshot(request.dn);
  return FireTriggers(
      TriggerTiming::kAfter, notification,
      notification.new_entry.has_value() ? *notification.new_entry
                                         : *old_entry);
}

Status LtapGateway::ModifyRdn(const ldap::OpContext& ctx,
                              const ldap::ModifyRdnRequest& request) {
  if (ctx.internal) {
    CountInternalOp();
    return backend_->ModifyRdn(ctx, request);
  }
  METACOMM_RETURN_IF_ERROR(EnterUpdate(ctx.session_id));
  struct ExitGuard {
    LtapGateway* gw;
    ~ExitGuard() { gw->ExitUpdate(); }
  } exit_guard{this};
  {
    MutexLock lock(&stats_mutex_);
    ++stats_.updates;
  }

  ldap::Dn new_dn = request.dn.WithLeaf(request.new_rdn);
  if (config_.locking_enabled) {
    METACOMM_RETURN_IF_ERROR(locks_.Acquire(request.dn, ctx.session_id,
                                            config_.lock_timeout_micros));
  }
  ScopedLock lock_old(&locks_, request.dn, ctx.session_id,
                      config_.locking_enabled);
  // Also lock the post-rename name so concurrent updates addressed to
  // the new DN serialize with this rename.
  bool lock_new = config_.locking_enabled &&
                  new_dn.Normalized() != request.dn.Normalized();
  if (lock_new) {
    METACOMM_RETURN_IF_ERROR(locks_.Acquire(new_dn, ctx.session_id,
                                            config_.lock_timeout_micros));
  }
  ScopedLock lock_new_guard(&locks_, new_dn, ctx.session_id, lock_new);

  std::optional<ldap::Entry> old_entry = Snapshot(request.dn);
  if (!old_entry.has_value()) {
    return Status::NotFound("no such object: " + request.dn.ToString());
  }

  UpdateNotification notification;
  notification.op = ldap::UpdateOp::kModifyRdn;
  notification.dn = request.dn;
  notification.new_dn = new_dn;
  notification.old_entry = old_entry;
  notification.principal = ctx.principal;
  notification.session_id = ctx.session_id;

  notification.timing = TriggerTiming::kBefore;
  METACOMM_RETURN_IF_ERROR(
      FireTriggers(TriggerTiming::kBefore, notification, *old_entry));

  METACOMM_RETURN_IF_ERROR(backend_->ModifyRdn(ctx, request));

  notification.timing = TriggerTiming::kAfter;
  notification.new_entry = Snapshot(new_dn);
  return FireTriggers(
      TriggerTiming::kAfter, notification,
      notification.new_entry.has_value() ? *notification.new_entry
                                         : *old_entry);
}

StatusOr<ldap::SearchResult> LtapGateway::Search(
    const ldap::OpContext& ctx, const ldap::SearchRequest& request) {
  // Reads bypass locking, triggers and quiesce — the gateway/UM
  // separation exists so the UM machine "does not need to do any read
  // processing" (paper §5.5). The counter is atomic for the same
  // reason: the read path takes no mutex anywhere.
  reads_.fetch_add(1, std::memory_order_relaxed);
  return backend_->Search(ctx, request);
}

Status LtapGateway::Compare(const ldap::OpContext& ctx,
                            const ldap::CompareRequest& request) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  return backend_->Compare(ctx, request);
}

StatusOr<std::string> LtapGateway::Bind(const ldap::BindRequest& request) {
  return backend_->Bind(request);
}

LtapGateway::Stats LtapGateway::stats() const {
  Stats out;
  {
    MutexLock lock(&stats_mutex_);
    out = stats_;
  }
  out.reads = reads_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace metacomm::ltap
