#ifndef METACOMM_LTAP_TRIGGER_H_
#define METACOMM_LTAP_TRIGGER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "ldap/dn.h"
#include "ldap/filter.h"
#include "ldap/operations.h"
#include "ltap/action_server.h"

namespace metacomm::ltap {

/// Bitmask of update operations a trigger subscribes to.
enum TriggerOps : uint32_t {
  kTriggerAdd = 1u << 0,
  kTriggerModify = 1u << 1,
  kTriggerDelete = 1u << 2,
  kTriggerModifyRdn = 1u << 3,
  kTriggerAll = kTriggerAdd | kTriggerModify | kTriggerDelete |
                kTriggerModifyRdn,
};

/// Returns the TriggerOps bit for an UpdateOp.
inline uint32_t TriggerBit(ldap::UpdateOp op) {
  switch (op) {
    case ldap::UpdateOp::kAdd:
      return kTriggerAdd;
    case ldap::UpdateOp::kModify:
      return kTriggerModify;
    case ldap::UpdateOp::kDelete:
      return kTriggerDelete;
    case ldap::UpdateOp::kModifyRdn:
      return kTriggerModifyRdn;
  }
  return 0;
}

/// Declarative trigger registration: fire `server` when an update of a
/// subscribed kind touches an entry under `base` that matches `filter`.
struct TriggerSpec {
  std::string name;
  ldap::Dn base;
  /// Entry filter; unset means "every entry".
  std::optional<ldap::Filter> filter;
  uint32_t ops = kTriggerAll;
  TriggerTiming timing = TriggerTiming::kAfter;
  /// Not owned; must outlive the gateway registration.
  TriggerActionServer* server = nullptr;
};

/// True if `spec` should fire for an update of kind `op` whose entry
/// image (old image for deletes, new image otherwise) is `entry`.
bool TriggerMatches(const TriggerSpec& spec, ldap::UpdateOp op,
                    const ldap::Entry& entry);

}  // namespace metacomm::ltap

#endif  // METACOMM_LTAP_TRIGGER_H_
