#ifndef METACOMM_LTAP_GATEWAY_H_
#define METACOMM_LTAP_GATEWAY_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "ldap/service.h"
#include "ltap/lock_table.h"
#include "ltap/trigger.h"

namespace metacomm::ltap {

/// Gateway tuning knobs.
struct GatewayConfig {
  /// How long an update waits for a held entry lock before failing.
  int64_t lock_timeout_micros = 5'000'000;
  /// How long an update waits for a quiesce window to close.
  int64_t quiesce_wait_micros = 5'000'000;
  /// Ablation switch (EXPERIMENTS.md A2): disables entry locking so
  /// the inconsistency windows the paper's locking prevents become
  /// observable.
  bool locking_enabled = true;
  /// Ablation switch: disables trigger processing entirely, turning
  /// the gateway into a pure pass-through (baseline for E7).
  bool triggers_enabled = true;
};

/// The Lightweight Trigger Access Process.
///
/// LTAP "works as a gateway that pretends to be an LDAP server — LDAP
/// commands intended for the LDAP server are intercepted by LTAP which
/// does trigger processing in addition to servicing the original LDAP
/// command" (paper §4.3). Accordingly LtapGateway implements
/// ldap::LdapService and wraps another LdapService (normally an
/// LdapServer; stacking gateways also works).
///
/// Responsibilities reproduced from the paper:
///  * trigger processing: before-triggers may veto, after-triggers run
///    synchronously under the entry lock, so the action server (the
///    Update Manager) finishes its update sequence before the client's
///    call returns and before any conflicting update may start;
///  * entry-level locking (§4.3), reentrant for the owning session so
///    the UM can write through the gateway while handling a trigger;
///  * persistent connections + quiesce (§5.1): a synchronization
///    session can suspend all other updates while it replays a
///    sequence of updates in isolation. Reads always pass through —
///    that asymmetry is the scalability argument of §5.5.
class LtapGateway : public ldap::LdapService {
 public:
  /// `backend` is the wrapped service; not owned, must outlive the
  /// gateway.
  explicit LtapGateway(ldap::LdapService* backend,
                       GatewayConfig config = {});

  /// Registers a trigger. Not thread-safe against in-flight updates;
  /// register during setup (matching LTAP, where trigger registration
  /// is configuration).
  void RegisterTrigger(TriggerSpec spec);

  /// Allocates a fresh session id for a client connection.
  uint64_t NewSession();

  /// Opens a quiesce window for `session`: blocks until in-flight
  /// updates drain, then makes every other session's updates wait.
  /// Reads are unaffected. Fails if another quiesce is active.
  Status Quiesce(uint64_t session) EXCLUDES(state_mutex_);

  /// Closes the quiesce window.
  void Unquiesce(uint64_t session) EXCLUDES(state_mutex_);

  /// True while a quiesce window is open.
  bool IsQuiesced() const EXCLUDES(state_mutex_);

  /// Explicit entry-lock API for trigger action servers. "LTAP is used
  /// to obtain locks because the PBX, MP and the LDAP server do not
  /// expose their locking capabilities" (paper §4.4): before the Update
  /// Manager applies a direct-device-update sequence, it takes the
  /// target entry's lock here so conflicting client updates wait.
  Status LockEntry(const ldap::Dn& dn, uint64_t session);
  /// As above, but with an explicit wait bound instead of the
  /// configured one. `timeout_micros <= 0` means try-once: the caller
  /// (the UM's DDU retry loop) owns the backoff policy.
  Status LockEntry(const ldap::Dn& dn, uint64_t session,
                   int64_t timeout_micros);
  void UnlockEntry(const ldap::Dn& dn, uint64_t session);

  /// Operation counters (drive the E7 benches). `reads` is maintained
  /// as a lone atomic so the read path never touches stats_mutex_
  /// (reads are lock-free end to end through the snapshot backend).
  struct Stats {
    uint64_t updates = 0;
    uint64_t reads = 0;
    uint64_t internal_ops = 0;
    uint64_t triggers_fired = 0;
    uint64_t vetoes = 0;
    uint64_t quiesce_waits = 0;
  };
  Stats stats() const EXCLUDES(stats_mutex_);

  const LockTable& lock_table() const { return locks_; }

  // LdapService:
  Status Add(const ldap::OpContext& ctx,
             const ldap::AddRequest& request) override;
  Status Delete(const ldap::OpContext& ctx,
                const ldap::DeleteRequest& request) override;
  Status Modify(const ldap::OpContext& ctx,
                const ldap::ModifyRequest& request) override;
  Status ModifyRdn(const ldap::OpContext& ctx,
                   const ldap::ModifyRdnRequest& request) override;
  StatusOr<ldap::SearchResult> Search(
      const ldap::OpContext& ctx,
      const ldap::SearchRequest& request) override;
  Status Compare(const ldap::OpContext& ctx,
                 const ldap::CompareRequest& request) override;
  StatusOr<std::string> Bind(const ldap::BindRequest& request) override;

 private:
  /// Blocks while a quiesce window owned by another session is open,
  /// then registers an in-flight update. Returns Busy on timeout.
  Status EnterUpdate(uint64_t session) EXCLUDES(state_mutex_);
  void ExitUpdate() EXCLUDES(state_mutex_);

  /// Counts an internal (Update-Manager fan-in) operation in its own
  /// lock scope so stats_mutex_ is never held across the backend call.
  void CountInternalOp() EXCLUDES(stats_mutex_);

  /// Fetches the current entry image at `dn` from the backend (using
  /// an internal read), or nullopt when absent.
  std::optional<ldap::Entry> Snapshot(const ldap::Dn& dn);

  /// Fires all matching triggers of `timing`; returns the first error
  /// (before-trigger errors veto the operation).
  Status FireTriggers(TriggerTiming timing,
                      const UpdateNotification& notification,
                      const ldap::Entry& match_image);

  ldap::LdapService* backend_;
  GatewayConfig config_;
  LockTable locks_;
  // Deliberately unguarded: RegisterTrigger is documented setup-only
  // (configuration, per the class comment); after setup the vector is
  // only ever read.
  std::vector<TriggerSpec> triggers_;

  // state_mutex_ is acquired before stats_mutex_ (EnterUpdate counts a
  // quiesce wait while holding it); no path takes them in reverse.
  mutable Mutex state_mutex_ ACQUIRED_BEFORE(stats_mutex_){
      LockRank::kGatewayState, "ltap.gateway.state"};
  CondVar state_cv_;
  uint64_t quiesced_by_ GUARDED_BY(state_mutex_) = 0;  // 0 = not quiesced.
  int in_flight_updates_ GUARDED_BY(state_mutex_) = 0;

  std::atomic<uint64_t> next_session_{1};
  mutable Mutex stats_mutex_{LockRank::kGatewayStats,
                             "ltap.gateway.stats"};
  /// Update-side counters; Stats::reads is unused here (see reads_).
  Stats stats_ GUARDED_BY(stats_mutex_);
  std::atomic<uint64_t> reads_{0};
};

}  // namespace metacomm::ltap

#endif  // METACOMM_LTAP_GATEWAY_H_
