#ifndef METACOMM_LTAP_ACTION_SERVER_H_
#define METACOMM_LTAP_ACTION_SERVER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ldap/entry.h"
#include "ldap/operations.h"

namespace metacomm::ltap {

/// When the trigger fires relative to the intercepted operation.
enum class TriggerTiming { kBefore, kAfter };

/// What LTAP tells a trigger action server about one intercepted LDAP
/// update.
///
/// For after-triggers the old/new entry images are snapshots taken
/// around the applied operation — exactly the "pre-update information"
/// the paper's saga-style undo extension needs (§4.4).
struct UpdateNotification {
  ldap::UpdateOp op = ldap::UpdateOp::kAdd;
  /// Target DN (pre-rename DN for ModifyRDN).
  ldap::Dn dn;
  /// Post-rename DN; set only for ModifyRDN.
  std::optional<ldap::Dn> new_dn;
  /// The modification list; set only for Modify.
  std::vector<ldap::Modification> mods;
  /// Entry image before the operation (absent for Add).
  std::optional<ldap::Entry> old_entry;
  /// Entry image after the operation (absent for Delete).
  std::optional<ldap::Entry> new_entry;
  /// Principal that issued the LDAP operation.
  std::string principal;
  /// LTAP session on which the update arrived. Persistent connections
  /// (synchronization sequences, paper §5.1) share one session id.
  uint64_t session_id = 0;
  TriggerTiming timing = TriggerTiming::kAfter;
};

/// A trigger action server: the receiving end of LTAP trigger
/// processing. MetaComm's Update Manager is the canonical
/// implementation; tests install small recording servers.
///
/// LTAP calls OnUpdate synchronously while holding the entry lock, so
/// "no other LDAP update to this object is allowed to proceed until the
/// [action server] completes the update sequence and notifies LTAP"
/// (paper §4.4). A non-OK return from a *before* trigger vetoes the
/// operation; a non-OK return from an *after* trigger is reported to
/// the client but the directory write has already happened.
class TriggerActionServer {
 public:
  virtual ~TriggerActionServer() = default;

  /// Handles one intercepted update.
  virtual Status OnUpdate(const UpdateNotification& notification) = 0;

  /// Called when a persistent connection (quiesce window) opens/closes;
  /// default no-op.
  virtual void OnPersistentConnection(uint64_t session_id, bool open) {
    (void)session_id;
    (void)open;
  }
};

}  // namespace metacomm::ltap

#endif  // METACOMM_LTAP_ACTION_SERVER_H_
