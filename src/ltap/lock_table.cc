#include "ltap/lock_table.h"

#include <chrono>

namespace metacomm::ltap {

Status LockTable::Acquire(const ldap::Dn& dn, uint64_t session,
                          int64_t timeout_micros) {
  std::string key = dn.Normalized();
  std::unique_lock<std::mutex> lock(mutex_);
  auto can_take = [this, &key, session] {
    auto it = locks_.find(key);
    return it == locks_.end() || it->second.owner == session;
  };
  if (!can_take()) {
    ++contended_;
    if (timeout_micros <= 0) {
      return Status::Conflict("entry is locked: " + dn.ToString());
    }
    if (!cv_.wait_for(lock, std::chrono::microseconds(timeout_micros),
                      can_take)) {
      return Status::DeadlineExceeded("lock wait timed out: " +
                                      dn.ToString());
    }
  }
  LockState& state = locks_[key];
  state.owner = session;
  ++state.hold_count;
  return Status::Ok();
}

void LockTable::Release(const ldap::Dn& dn, uint64_t session) {
  std::string key = dn.Normalized();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = locks_.find(key);
    if (it == locks_.end() || it->second.owner != session) return;
    if (--it->second.hold_count <= 0) locks_.erase(it);
  }
  cv_.notify_all();
}

bool LockTable::IsLocked(const ldap::Dn& dn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return locks_.count(dn.Normalized()) > 0;
}

uint64_t LockTable::contended_acquisitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return contended_;
}

}  // namespace metacomm::ltap
