#include "ltap/lock_table.h"

#include <chrono>

namespace metacomm::ltap {

bool LockTable::CanTake(const std::string& key, uint64_t session) const {
  auto it = locks_.find(key);
  return it == locks_.end() || it->second.owner == session;
}

Status LockTable::Acquire(const ldap::Dn& dn, uint64_t session,
                          int64_t timeout_micros) {
  std::string key = dn.Normalized();
  MutexLock lock(&mutex_);
  if (!CanTake(key, session)) {
    ++contended_;
    if (timeout_micros <= 0) {
      return Status::Conflict("entry is locked: " + dn.ToString());
    }
    // Explicit deadline loop (not wait_for + predicate lambda) so the
    // predicate is evaluated here, where the analysis sees mutex_ held.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(timeout_micros);
    while (!CanTake(key, session)) {
      if (!cv_.WaitUntil(lock, deadline) && !CanTake(key, session)) {
        return Status::DeadlineExceeded("lock wait timed out: " +
                                        dn.ToString());
      }
    }
  }
  LockState& state = locks_[key];
  state.owner = session;
  ++state.hold_count;
  return Status::Ok();
}

void LockTable::Release(const ldap::Dn& dn, uint64_t session) {
  std::string key = dn.Normalized();
  {
    MutexLock lock(&mutex_);
    auto it = locks_.find(key);
    if (it == locks_.end() || it->second.owner != session) return;
    if (--it->second.hold_count <= 0) locks_.erase(it);
  }
  cv_.NotifyAll();
}

bool LockTable::IsLocked(const ldap::Dn& dn) const {
  MutexLock lock(&mutex_);
  return locks_.count(dn.Normalized()) > 0;
}

uint64_t LockTable::contended_acquisitions() const {
  MutexLock lock(&mutex_);
  return contended_;
}

}  // namespace metacomm::ltap
