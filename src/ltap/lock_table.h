#ifndef METACOMM_LTAP_LOCK_TABLE_H_
#define METACOMM_LTAP_LOCK_TABLE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "ldap/dn.h"

namespace metacomm::ltap {

/// Per-entry lock table.
///
/// LTAP "provides locking facilities, forbidding updates to an entry
/// while trigger processing is being performed on that entry" (paper
/// §4.3). Locks are keyed by normalized DN, owned by an LTAP session,
/// and reentrant for their owner — the Update Manager re-enters the
/// gateway while propagating, using the session that took the lock.
class LockTable {
 public:
  /// Acquires the lock on `dn` for `session`. Blocks up to
  /// `timeout_micros` (0 = try once) when another session holds it.
  /// Reentrant: re-acquisition by the owner succeeds and increments a
  /// hold count.
  Status Acquire(const ldap::Dn& dn, uint64_t session,
                 int64_t timeout_micros);

  /// Releases one hold; frees the lock when the count reaches zero.
  void Release(const ldap::Dn& dn, uint64_t session);

  /// True if any session currently holds `dn`.
  bool IsLocked(const ldap::Dn& dn) const;

  /// Number of lock acquisitions that had to wait (metric for E7).
  uint64_t contended_acquisitions() const;

 private:
  struct LockState {
    uint64_t owner = 0;
    int hold_count = 0;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, LockState> locks_;
  uint64_t contended_ = 0;
};

}  // namespace metacomm::ltap

#endif  // METACOMM_LTAP_LOCK_TABLE_H_
