#ifndef METACOMM_LTAP_LOCK_TABLE_H_
#define METACOMM_LTAP_LOCK_TABLE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ldap/dn.h"

namespace metacomm::ltap {

/// Per-entry lock table.
///
/// LTAP "provides locking facilities, forbidding updates to an entry
/// while trigger processing is being performed on that entry" (paper
/// §4.3). Locks are keyed by normalized DN, owned by an LTAP session,
/// and reentrant for their owner — the Update Manager re-enters the
/// gateway while propagating, using the session that took the lock.
class LockTable {
 public:
  /// Acquires the lock on `dn` for `session`. Blocks up to
  /// `timeout_micros` (0 = try once) when another session holds it.
  /// Reentrant: re-acquisition by the owner succeeds and increments a
  /// hold count.
  Status Acquire(const ldap::Dn& dn, uint64_t session,
                 int64_t timeout_micros) EXCLUDES(mutex_);

  /// Releases one hold; frees the lock when the count reaches zero.
  void Release(const ldap::Dn& dn, uint64_t session) EXCLUDES(mutex_);

  /// True if any session currently holds `dn`.
  bool IsLocked(const ldap::Dn& dn) const EXCLUDES(mutex_);

  /// Number of lock acquisitions that had to wait (metric for E7).
  uint64_t contended_acquisitions() const EXCLUDES(mutex_);

 private:
  struct LockState {
    uint64_t owner = 0;
    int hold_count = 0;
  };

  /// True when `session` may take (or re-enter) the lock on `key`.
  bool CanTake(const std::string& key, uint64_t session) const
      REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kLtapLockTable, "ltap.lock_table"};
  CondVar cv_;
  std::map<std::string, LockState> locks_ GUARDED_BY(mutex_);
  uint64_t contended_ GUARDED_BY(mutex_) = 0;
};

}  // namespace metacomm::ltap

#endif  // METACOMM_LTAP_LOCK_TABLE_H_
