#include "ltap/trigger.h"

namespace metacomm::ltap {

bool TriggerMatches(const TriggerSpec& spec, ldap::UpdateOp op,
                    const ldap::Entry& entry) {
  if ((spec.ops & TriggerBit(op)) == 0) return false;
  if (!entry.dn().IsWithin(spec.base)) return false;
  if (spec.filter.has_value() && !spec.filter->Matches(entry)) return false;
  return true;
}

}  // namespace metacomm::ltap
