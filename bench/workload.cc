#include "bench/workload.h"

#include <cstdio>
#include <cstdlib>
#include <set>

namespace metacomm::bench {

namespace {

const char* const kFirstNames[] = {
    "Ada",   "Grace", "Edsger", "Barbara", "Donald", "Juliana",
    "Daniel", "Joann", "Lalit",  "Gavin",   "Qian",   "Robert",
};
const char* const kLastNames[] = {
    "Lovelace", "Hopper", "Dijkstra", "Liskov",  "Knuth",  "Freire",
    "Lieuwen",  "Ordille", "Garg",     "Michael", "Ye",     "Arlein",
};

}  // namespace

std::vector<Person> WorkloadGenerator::People(
    size_t count, const std::string& extension_prefix) {
  // Sequential tails keep extensions unique AND unique in their last
  // ExtensionDigits digits (the voice-mailbox keyspace). Up to 1000
  // people fit in 4-digit extensions; larger populations use 5 digits
  // and need ConfigForPopulation() so the mappings slice accordingly.
  std::vector<Person> people;
  people.reserve(count);
  int tail_width = count <= 1000 ? 3 : 4;
  for (size_t i = 0; i < count; ++i) {
    char tail[8];
    std::snprintf(tail, sizeof(tail), "%0*zu", tail_width, i % 10000);
    Person person;
    person.extension = extension_prefix + tail;
    person.cn = std::string(kFirstNames[rng_.Uniform(12)]) + " " +
                kLastNames[rng_.Uniform(12)] + " " + person.extension;
    person.dn = "cn=" + person.cn + ",ou=People,o=Lucent";
    people.push_back(std::move(person));
  }
  return people;
}

int ExtensionDigits(size_t population) {
  return population <= 1000 ? 4 : 5;
}

core::SystemConfig ConfigForPopulation(size_t population) {
  core::SystemConfig config;
  int digits = ExtensionDigits(population);
  for (auto& pbx : config.pbxs) pbx.extension_digits = digits;
  for (auto& mp : config.mps) mp.mailbox_digits = digits;
  return config;
}

void Provision(core::MetaCommSystem& system,
               const std::vector<Person>& population) {
  for (const Person& person : population) {
    Status status = system.AddPerson(
        person.cn,
        {{"telephoneNumber", "+1 908 582 " + person.extension}});
    if (!status.ok()) {
      std::fprintf(stderr, "workload provisioning failed for %s: %s\n",
                   person.cn.c_str(), status.ToString().c_str());
      std::abort();
    }
  }
}

std::unique_ptr<core::MetaCommSystem> BuildPopulatedSystem(
    const std::vector<Person>& population, core::SystemConfig config) {
  auto system = core::MetaCommSystem::Create(std::move(config));
  if (!system.ok()) {
    std::fprintf(stderr, "system build failed: %s\n",
                 system.status().ToString().c_str());
    std::abort();
  }
  Provision(**system, population);
  return std::move(*system);
}

}  // namespace metacomm::bench
