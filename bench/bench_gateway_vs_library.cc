// E2 — Running LTAP as a gateway vs binding it into the UM as a
// library (paper §5.5).
//
// "Since LDAP workloads are heavily read-oriented, this offers
// substantial scalability advantages": with the gateway, reads bypass
// the Update Manager entirely; library coupling forces the combined
// LTAP/UM process to serve reads too, so reads serialize with update
// processing. We model library coupling by routing reads through the
// update-processing critical section.
//
// The benchmark runs N reader threads against a fixed background
// update load and reports read throughput for both deployments.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench/workload.h"
#include "common/mutex.h"

namespace metacomm::bench {
namespace {

constexpr size_t kPopulation = 200;

/// Deployment under test, shared by all benchmark threads.
struct Deployment {
  std::unique_ptr<core::MetaCommSystem> system;
  std::vector<Person> population;
  /// The "library coupling" lock: in library mode every read takes it,
  /// modeling the single LTAP+UM process doing read processing between
  /// update sequences. Updates always take it (they run in the UM).
  /// Held across whole client calls into the gateway, hence the outer
  /// kHarness rank.
  Mutex um_process{LockRank::kHarness, "bench.um_process"};
  std::atomic<bool> stop{false};
  std::thread updater;
  std::atomic<uint64_t> updates_done{0};

  void Start(bool updates_running) {
    WorkloadGenerator gen(3);
    population = gen.People(kPopulation);
    system = BuildPopulatedSystem(population);
    if (updates_running) {
      updater = std::thread([this] {
        ldap::Client client = system->NewClient();
        Random rng(17);
        int i = 0;
        while (!stop.load()) {
          const Person& person = population[rng.Uniform(kPopulation)];
          MutexLock lock(&um_process);
          Status status = client.Replace(person.dn, "roomNumber",
                                         "U-" + std::to_string(i++));
          (void)status;
          updates_done.fetch_add(1);
        }
      });
    }
  }

  void Stop() {
    stop.store(true);
    if (updater.joinable()) updater.join();
    system.reset();
  }
};

Deployment* g_deployment = nullptr;

void DeploymentSetup(const benchmark::State& state) {
  g_deployment = new Deployment;
  g_deployment->Start(/*updates_running=*/state.range(1) == 1);
}

void DeploymentTeardown(const benchmark::State&) {
  g_deployment->Stop();
  delete g_deployment;
  g_deployment = nullptr;
}

/// args: [0] = 1 when reads must pass through the UM process
/// (library mode), 0 for gateway mode; [1] = background updates on.
void BM_ReadThroughput(benchmark::State& state) {
  bool library_mode = state.range(0) == 1;

  ldap::Client client = g_deployment->system->NewClient();
  Random rng(static_cast<uint64_t>(state.thread_index()) + 7);
  for (auto _ : state) {
    const Person& person =
        g_deployment->population[rng.Uniform(kPopulation)];
    if (library_mode) {
      MutexLock lock(&g_deployment->um_process);
      auto entry = client.Get(person.dn);
      benchmark::DoNotOptimize(entry);
    } else {
      auto entry = client.Get(person.dn);
      benchmark::DoNotOptimize(entry);
    }
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    state.counters["updates_during_run"] =
        static_cast<double>(g_deployment->updates_done.load());
  }
}
BENCHMARK(BM_ReadThroughput)
    ->Setup(DeploymentSetup)
    ->Teardown(DeploymentTeardown)
    ->ArgNames({"library", "updates"})
    // Gateway deployment: reads keep flowing even while updates run.
    ->Args({0, 0})
    ->Args({0, 1})
    // Library deployment: reads serialize behind the UM process.
    ->Args({1, 0})
    ->Args({1, 1})
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("gateway_vs_library", argc, argv);
}
