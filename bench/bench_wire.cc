// End-to-end wire benchmarks: the full MetaComm deployment (LDAP
// server + LTAP gateway + threaded Update Manager + device filters)
// behind the epoll TcpServer, driven over N concurrent persistent TCP
// connections by in-process TcpClients. This is the socket-level
// counterpart of bench_gateway_vs_library: the WBA admin storm and the
// interactive Search mix now pay real framing, syscalls and loopback
// RTTs, so the numbers here are what tools/metacomm_serve can actually
// sustain.
//
// BM_WireAdminStorm reports end-to-end admin items/sec; BM_WireSearch
// reports Search p50/p99 over the wire. Both run at 1000 persistent
// connections (and a 100-connection point for contrast).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_main.h"
#include "bench/workload.h"
#include "common/strings.h"
#include "core/metacomm.h"
#include "ldap/text_protocol.h"
#include "net/tcp_client.h"
#include "net/tcp_server.h"

namespace metacomm::bench {
namespace {

using ldap::TextProtocolHandler;

constexpr size_t kPopulation = 1000;
// Ops issued per timed iteration, spread over the worker threads.
constexpr size_t kWaveOps = 256;
constexpr int kDriverThreads = 4;

/// One live wire deployment: populated system, TcpServer on an
/// ephemeral port, and `conns` persistent client connections. Cached
/// per connection count so the storm and search benches at the same
/// scale share the (expensive) setup.
struct Wire {
  std::unique_ptr<core::MetaCommSystem> system;
  std::unique_ptr<net::TcpServer> server;
  std::vector<std::unique_ptr<net::TcpClient>> conns;
  // Fresh admin ids; unique per deployment so ADDed extensions never
  // collide within one directory.
  std::atomic<uint64_t> next_id{0};
};

Wire* GetWire(size_t conns) {
  static std::map<size_t, std::unique_ptr<Wire>> cache;
  auto it = cache.find(conns);
  if (it != cache.end()) return it->second.get();

  auto wire = std::make_unique<Wire>();
  core::SystemConfig config = ConfigForPopulation(kPopulation);
  config.um.threaded = true;
  config.um.worker_threads = 2;
  config.um.max_batch_size = 16;
  WorkloadGenerator gen(17);
  wire->system =
      BuildPopulatedSystem(gen.People(kPopulation), std::move(config));

  net::TcpServerConfig server_config;
  server_config.listen_port = 0;
  server_config.io_threads = 2;
  server_config.max_connections = conns + 64;
  server_config.busy_reply = ldap::BusyReply();
  server_config.error_reply = ldap::FramingErrorReply();
  ldap::LdapService* gateway = &wire->system->gateway();
  wire->server = std::make_unique<net::TcpServer>(
      std::move(server_config), [gateway] {
        auto session = std::make_shared<TextProtocolHandler>(gateway);
        return [session](const std::string& request) {
          return session->Handle(request);
        };
      });
  Status status = wire->server->Start();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_wire: cannot serve: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  for (size_t i = 0; i < conns; ++i) {
    auto client = std::make_unique<net::TcpClient>();
    status = client->Connect("127.0.0.1", wire->server->port());
    if (!status.ok()) {
      std::fprintf(stderr, "bench_wire: connect %zu failed: %s\n", i,
                   status.ToString().c_str());
      std::abort();
    }
    wire->conns.push_back(std::move(client));
  }
  Wire* raw = wire.get();
  cache[conns] = std::move(wire);
  return raw;
}

/// The population holds extensions 4000-4999; storm ADDs take
/// 5000-9999, and once those are exhausted the storm churns its own
/// entries with MODIFYs (the WBA's day-2 admin traffic).
constexpr uint64_t kStormIds = 5000;

std::string AdminRequest(uint64_t id, uint64_t seq) {
  if (id < kStormIds) {
    std::string ext = std::to_string(5000 + id);
    std::string cn = "Storm " + std::to_string(id);
    return "ADD\ndn: cn=" + cn +
           ",ou=People,o=Lucent\n"
           "objectClass: top\nobjectClass: person\n"
           "objectClass: organizationalPerson\n"
           "objectClass: inetOrgPerson\ncn: " +
           cn + "\nsn: Storm\ntelephoneNumber: +1 908 582 " + ext + "\n";
  }
  std::string cn = "Storm " + std::to_string(id % kStormIds);
  return "MODIFY\ndn: cn=" + cn +
         ",ou=People,o=Lucent\nchangetype: modify\n"
         "replace: description\ndescription: storm-" +
         std::to_string(seq) + "\n-\n";
}

double LatencyPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(rank, values.size() - 1)];
}

/// Drives one wave of `kWaveOps` requests across the driver threads;
/// each thread owns a disjoint slice of the connections and
/// round-robins over it (per-thread `seq` persists across waves so
/// every connection stays in rotation). `make_request(thread, seq)`
/// builds the payload; replies not matching `expect_prefix` fail the
/// bench. Per-op latencies append to `latencies[thread]`.
bool DriveWave(Wire* wire, uint64_t* seqs,
               std::vector<double>* latencies,
               const std::function<std::string(int, uint64_t)>& make_request,
               const char* expect_prefix) {
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  const size_t conns = wire->conns.size();
  for (int t = 0; t < kDriverThreads; ++t) {
    workers.emplace_back([&, t] {
      size_t lo = conns * static_cast<size_t>(t) / kDriverThreads;
      size_t hi = conns * static_cast<size_t>(t + 1) / kDriverThreads;
      if (lo == hi) return;
      uint64_t& seq = seqs[t];
      for (size_t i = 0; i < kWaveOps / kDriverThreads; ++i, ++seq) {
        net::TcpClient& client = *wire->conns[lo + seq % (hi - lo)];
        std::string request = make_request(t, seq);
        auto begin = std::chrono::steady_clock::now();
        std::string reply = client.Call(request);
        auto end = std::chrono::steady_clock::now();
        if (!StartsWith(reply, expect_prefix)) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        latencies[t].push_back(
            std::chrono::duration<double, std::micro>(end - begin)
                .count());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return !failed.load();
}

/// The paper's WBA admin storm over real sockets: ADD/MODIFY person
/// entries (each fanning out through the UM to the PBX and MP filters)
/// across state.range(0) persistent connections.
void BM_WireAdminStorm(benchmark::State& state) {
  Wire* wire = GetWire(static_cast<size_t>(state.range(0)));
  uint64_t seqs[kDriverThreads] = {};
  std::vector<double> latencies[kDriverThreads];
  auto make_request = [wire](int, uint64_t seq) {
    uint64_t id = wire->next_id.fetch_add(1, std::memory_order_relaxed);
    return AdminRequest(id, seq);
  };
  for (auto _ : state) {
    if (!DriveWave(wire, seqs, latencies, make_request, "RESULT 0")) {
      state.SkipWithError("admin op failed over the wire");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWaveOps));
  std::vector<double> all;
  for (auto& per_thread : latencies)
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  state.counters["admin_p50_us"] = LatencyPercentile(all, 0.50);
  state.counters["admin_p99_us"] = LatencyPercentile(all, 0.99);
  state.counters["connections"] =
      static_cast<double>(wire->conns.size());
}
BENCHMARK(BM_WireAdminStorm)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Interactive lookups (the LEXPRESS-style number search) over the
/// same persistent connections — the latency a caller sees while the
/// deployment idles between storms.
void BM_WireSearch(benchmark::State& state) {
  Wire* wire = GetWire(static_cast<size_t>(state.range(0)));
  WorkloadGenerator gen(17);
  auto people = std::make_shared<std::vector<Person>>(
      gen.People(kPopulation));
  uint64_t seqs[kDriverThreads] = {};
  std::vector<double> latencies[kDriverThreads];
  auto make_request = [people](int thread, uint64_t seq) {
    const Person& target =
        (*people)[(seq * 2654435761u + static_cast<uint64_t>(thread)) %
                  people->size()];
    return "SEARCH base: ou=People,o=Lucent\nscope: sub\n"
           "filter: (telephoneNumber=+1 908 582 " +
           target.extension + ")\nlimit: 10\n";
  };
  for (auto _ : state) {
    if (!DriveWave(wire, seqs, latencies, make_request, "RESULT 0")) {
      state.SkipWithError("search failed over the wire");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kWaveOps));
  std::vector<double> all;
  for (auto& per_thread : latencies)
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  state.counters["search_p50_us"] = LatencyPercentile(all, 0.50);
  state.counters["search_p99_us"] = LatencyPercentile(all, 0.99);
  state.counters["connections"] =
      static_cast<double>(wire->conns.size());
}
BENCHMARK(BM_WireSearch)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace metacomm::bench

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("wire", argc, argv);
}
