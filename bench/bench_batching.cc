// Batched, coalescing propagation — throughput vs max_batch_size.
//
// The sequential Update Manager pays every per-conversation cost once
// PER UPDATE: the emulated processing delay of the update sequence
// (UpdateManagerConfig::artificial_processing_delay_micros, the same
// 200µs axis bench_parallel_um uses) and one device-session RTT per
// converter command (devices::LatencyEmulator). The batched pipeline
// (max_batch_size > 1) drains a whole run of the queue per wakeup,
// coalesces redundant same-entity work, partitions the rest into
// entity-disjoint waves, and pays the delay once per WAVE and the
// device RTT once per repository per wave (DESIGN.md "Batching &
// coalescing").
//
// The workload is a two-device administrator storm: a PBX admin
// changing rooms on one half of the population while an MP admin
// changes pins on the other half. Submissions return at enqueue, so
// the queue stays deep and PopBatch returns real multi-item batches.
// max_batch_size=1 is the exact paper shape and the baseline; the
// acceptance bar is >= 3x items/sec at max_batch_size=16.

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_main.h"
#include "bench/workload.h"
#include "common/clock.h"

namespace metacomm::bench {
namespace {

constexpr size_t kPopulation = 96;
constexpr size_t kPbxEntries = 48;  // population[0 .. 47]: room changes.

int64_t NowMicros() { return RealClock::Get()->NowMicros(); }

/// Waits until the directory shows every expected value AND the
/// update manager has pushed `want_applies` total updates to the
/// devices (the device-side wave tail lags the directory write).
/// Polls the directory and the stats mutex only — never the devices,
/// whose emulated RTT would bill 200µs per probe.
bool AwaitSettled(core::MetaCommSystem& system,
                  std::map<std::string, std::string> expected_rooms,
                  uint64_t want_applies, int64_t timeout_micros) {
  ldap::Client client = system.NewClient();
  int64_t start = NowMicros();
  while (NowMicros() - start < timeout_micros) {
    for (auto it = expected_rooms.begin(); it != expected_rooms.end();) {
      auto entry = client.Get(it->first);
      if (entry.ok() && entry->GetFirst("roomNumber") == it->second) {
        it = expected_rooms.erase(it);
      } else {
        ++it;
      }
    }
    if (expected_rooms.empty() &&
        system.update_manager().stats().device_applies >= want_applies) {
      return true;
    }
    RealClock::Get()->SleepMicros(100);
  }
  return false;
}

/// args: [0] max_batch_size, [1] emulated per-conversation cost µs
/// (both the UM processing delay and the device-link RTT).
void BM_AdminStormThroughput(benchmark::State& state) {
  core::SystemConfig config;
  config.um.threaded = true;
  config.um.worker_threads = 1;  // The paper's single coordinator.
  config.um.max_batch_size = static_cast<int>(state.range(0));
  config.um.artificial_processing_delay_micros = state.range(1);
  config.device_command_rtt_micros = state.range(1);
  WorkloadGenerator gen(7);
  std::vector<Person> population = gen.People(kPopulation);
  auto system = BuildPopulatedSystem(population, config);
  devices::DefinityPbx* pbx = system->pbx("pbx1");
  devices::MessagingPlatform* mp = system->mp("mp1");

  int seq = 0;
  for (auto _ : state) {
    ++seq;
    uint64_t applies_before = system->update_manager().stats().device_applies;
    std::atomic<bool> failed{false};
    // PBX administrator: rooms on the first half of the population.
    std::thread pbx_admin([&] {
      for (size_t i = 0; i < kPbxEntries; ++i) {
        auto reply = pbx->ExecuteCommand(
            "change station " + population[i].extension + " Room D" +
            std::to_string(seq));
        if (!reply.ok()) failed.store(true);
      }
    });
    // MP administrator: pins on the second half.
    std::thread mp_admin([&] {
      for (size_t i = kPbxEntries; i < kPopulation; ++i) {
        auto reply = mp->ExecuteCommand(
            "MODIFY MAILBOX " + population[i].extension + " Pin=" +
            std::to_string(7000 + seq));
        if (!reply.ok()) failed.store(true);
      }
    });
    pbx_admin.join();
    mp_admin.join();
    if (failed.load()) {
      state.SkipWithError("device command failed");
      return;
    }
    std::map<std::string, std::string> expected_rooms;
    for (size_t i = 0; i < kPbxEntries; ++i) {
      expected_rooms[population[i].dn] = "D" + std::to_string(seq);
    }
    // Every update fans to both devices (reapply-to-originator plus
    // the other repository): 2 device applies per item.
    if (!AwaitSettled(*system, std::move(expected_rooms),
                      applies_before + 2 * kPopulation, 30'000'000)) {
      state.SkipWithError("did not settle within 30s");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kPopulation));

  core::UpdateManager::Stats stats = system->update_manager().stats();
  uint64_t popped = 0;
  for (const core::UpdateManager::ShardStats& shard : stats.shards) {
    popped += shard.dequeued;
  }
  state.counters["avg_batch"] =
      stats.batches > 0 ? static_cast<double>(popped) /
                              static_cast<double>(stats.batches)
                        : 0.0;
  state.counters["coalesced"] = static_cast<double>(stats.coalesced);
  state.counters["rtts_saved"] = static_cast<double>(stats.rtts_saved);
  state.counters["device_rtts"] = static_cast<double>(
      pbx->latency().round_trips() + mp->latency().round_trips());
  state.counters["errors"] = static_cast<double>(stats.errors);
  system->update_manager().Stop();

  // Spot-check device-side convergence once, after timing: the last
  // round's rooms must have reached the PBX itself.
  auto station = pbx->GetRecord(population[0].extension);
  if (!station.ok() ||
      station->GetFirst("Room") != "D" + std::to_string(seq)) {
    state.SkipWithError("PBX did not converge to the last room");
  }
}
BENCHMARK(BM_AdminStormThroughput)
    ->ArgNames({"batch", "rtt_us"})
    ->Args({1, 200})
    ->Args({4, 200})
    ->Args({16, 200})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace metacomm::bench

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("batching", argc, argv);
}
