// E8 — Partitioning-constraint moves (paper §4.2).
//
// "When a person's telephone number changes, the Definity PBX that
// manages the person's extension may also change. In this case
// lexpress translates a modification of a telephone number into two
// updates: a deletion in one PBX and an add in another."
//
// We price the three flavours of a telephone-number change:
//   * in-place: stays on the same switch (modify);
//   * cross-partition: moves between switches (delete + add);
//   * partition-exit: leaves every switch (delete only).

#include <benchmark/benchmark.h>

#include "bench/workload.h"

namespace metacomm::bench {
namespace {

core::SystemConfig TwoPbxConfig() {
  core::SystemConfig config;
  config.pbxs.clear();
  for (const char* spec : {"9", "5"}) {
    core::PbxMappingParams params;
    params.name = std::string("pbx") + spec;
    params.extension_prefix = spec;
    config.pbxs.push_back(std::move(params));
  }
  return config;
}

void BM_InPlaceNumberChange(benchmark::State& state) {
  WorkloadGenerator gen(41);
  std::vector<Person> population = gen.People(100, "9");
  auto system = BuildPopulatedSystem(population, TwoPbxConfig());
  ldap::Client client = system->NewClient();

  // Each person ping-pongs between two dedicated numbers on the SAME
  // switch: their original 90xx extension and a private 9[5-9]xx
  // alternate. The population generator hands out 9000..9099, so the
  // 9500..9599 block is collision-free.
  std::vector<bool> on_original(population.size(), true);
  Random rng(5);
  for (auto _ : state) {
    size_t index = rng.Uniform(population.size());
    const Person& person = population[index];
    std::string tail = person.extension.substr(2);  // Last two digits.
    std::string extension =
        on_original[index] ? ("95" + tail) : person.extension;
    on_original[index] = !on_original[index];
    Status status = client.Replace(person.dn, "telephoneNumber",
                                   "+1 908 582 " + extension);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  auto stats = system->update_manager().stats();
  state.counters["errors"] = static_cast<double>(stats.errors);
}
BENCHMARK(BM_InPlaceNumberChange);

void BM_CrossPartitionMove(benchmark::State& state) {
  WorkloadGenerator gen(43);
  std::vector<Person> population = gen.People(100, "9");
  auto system = BuildPopulatedSystem(population, TwoPbxConfig());
  ldap::Client client = system->NewClient();

  // Ping-pong each person between the "9" and "5" partitions.
  std::vector<bool> on_nine(population.size(), true);
  Random rng(5);
  for (auto _ : state) {
    size_t index = rng.Uniform(population.size());
    const Person& person = population[index];
    std::string tail = person.extension.substr(1);
    std::string target = on_nine[index] ? "5" : "9";
    on_nine[index] = !on_nine[index];
    Status status = client.Replace(person.dn, "telephoneNumber",
                                   "+1 908 582 " + target + tail);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  auto stats = system->update_manager().stats();
  state.counters["errors"] = static_cast<double>(stats.errors);
  // Station population should be conserved: every person still has
  // exactly one station somewhere.
  state.counters["stations_total"] = static_cast<double>(
      system->pbx("pbx9")->StationCount() +
      system->pbx("pbx5")->StationCount());
}
BENCHMARK(BM_CrossPartitionMove);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("partition_moves", argc, argv);
}
