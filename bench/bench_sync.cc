// E4 — Synchronization throughput (paper §4.4, §5.1).
//
// Synchronization recovers from disconnected operation and populates
// the directory initially, under an LTAP quiesce window. We measure:
//   * initial load: empty directory, N pre-existing stations;
//   * no-op resync: both sides already consistent (the common case
//     after a reconnect where little was lost);
//   * incremental resync: a fraction of entries changed while
//     disconnected;
// each as a function of directory size — the quiesce window length IS
// the full sync duration, which is why resync cost matters.

#include <benchmark/benchmark.h>

#include "bench/workload.h"

namespace metacomm::bench {
namespace {

/// args: [0] = population size.
void BM_InitialLoad(benchmark::State& state) {
  size_t population_size = static_cast<size_t>(state.range(0));
  WorkloadGenerator gen(21);
  std::vector<Person> population = gen.People(population_size);

  for (auto _ : state) {
    state.PauseTiming();
    auto system = core::MetaCommSystem::Create(
        ConfigForPopulation(population_size));
    if (!system.ok()) {
      state.SkipWithError(system.status().ToString().c_str());
      return;
    }
    devices::DefinityPbx* pbx = (*system)->pbx("pbx1");
    pbx->faults().set_drop_notifications(true);
    for (const Person& person : population) {
      auto reply = pbx->ExecuteCommand("add station " + person.extension +
                                       " Name \"" + person.cn + "\"");
      if (!reply.ok()) {
        state.SkipWithError(reply.status().ToString().c_str());
        return;
      }
    }
    pbx->faults().set_drop_notifications(false);
    state.ResumeTiming();

    Status status = (*system)->update_manager().Synchronize("pbx1");
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(population_size));
}
BENCHMARK(BM_InitialLoad)
    ->Arg(50)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_NoopResync(benchmark::State& state) {
  size_t population_size = static_cast<size_t>(state.range(0));
  WorkloadGenerator gen(22);
  std::vector<Person> population = gen.People(population_size);
  auto system = BuildPopulatedSystem(population,
                                     ConfigForPopulation(population_size));
  for (auto _ : state) {
    Status status = system->update_manager().Synchronize("pbx1");
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(population_size));
}
BENCHMARK(BM_NoopResync)
    ->Arg(50)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

/// args: [0] = population; [1] = percent of entries changed while the
/// link was down.
void BM_IncrementalResync(benchmark::State& state) {
  size_t population_size = static_cast<size_t>(state.range(0));
  int percent_changed = static_cast<int>(state.range(1));
  WorkloadGenerator gen(23);
  std::vector<Person> population = gen.People(population_size);
  auto system = BuildPopulatedSystem(population,
                                     ConfigForPopulation(population_size));
  devices::DefinityPbx* pbx = system->pbx("pbx1");
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Lose a batch of device updates.
    pbx->faults().set_drop_notifications(true);
    size_t changed = population_size *
                     static_cast<size_t>(percent_changed) / 100;
    for (size_t i = 0; i < changed; ++i) {
      auto reply = pbx->ExecuteCommand(
          "change station " + population[i].extension + " Room LOST-" +
          std::to_string(round) + "-" + std::to_string(i));
      if (!reply.ok()) {
        state.SkipWithError(reply.status().ToString().c_str());
        return;
      }
    }
    pbx->faults().set_drop_notifications(false);
    ++round;
    state.ResumeTiming();

    Status status = system->update_manager().Synchronize("pbx1");
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(population_size));
}
BENCHMARK(BM_IncrementalResync)
    ->ArgNames({"population", "pct_changed"})
    ->Args({200, 1})
    ->Args({200, 10})
    ->Args({200, 50})
    ->Args({1000, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("sync", argc, argv);
}
