// E1 — "Preliminary experiments indicate that MetaComm has acceptable
// performance" (paper §7).
//
// Measures the latency of every update path through the deployment:
//   * raw LDAP modify against the bare server (floor);
//   * LDAP modify through the LTAP gateway with no triggers (gateway
//     interposition cost);
//   * LDAP modify through full MetaComm (LTAP + UM + fan-out to both
//     devices) — the paper's web-administration path;
//   * direct device update with MetaComm attached (device + DDU
//     propagation) vs the bare device (legacy administration floor);
//   * full provisioning of a new person (add fan-out).

#include <benchmark/benchmark.h>

#include "bench/workload.h"
#include "core/integrated_schema.h"
#include "ldap/client.h"
#include "ldap/server.h"

namespace metacomm::bench {
namespace {

constexpr size_t kPopulation = 200;

std::vector<Person>& Population() {
  static auto* people =
      new std::vector<Person>(WorkloadGenerator(42).People(kPopulation));
  return *people;
}

void BM_RawLdapModify(benchmark::State& state) {
  ldap::LdapServer server(
      core::BuildIntegratedSchema(),
      ldap::ServerConfig{.allow_anonymous_writes = true});
  // Minimal tree + one person, written directly.
  auto add = [&server](const char* dn, const char* cls, const char* attr,
                       const char* value) {
    ldap::Entry entry(*ldap::Dn::Parse(dn));
    entry.AddObjectClass("top");
    entry.AddObjectClass(cls);
    entry.SetOne(attr, value);
    server.backend().Add(entry);
  };
  add("o=Lucent", "organization", "o", "Lucent");
  add("ou=People,o=Lucent", "organizationalUnit", "ou", "People");
  ldap::Entry person(*ldap::Dn::Parse("cn=John Doe,ou=People,o=Lucent"));
  person.Set("objectClass", {"top", "person", "organizationalPerson",
                             "inetOrgPerson"});
  person.SetOne("cn", "John Doe");
  person.SetOne("sn", "Doe");
  server.backend().Add(person);

  ldap::Client client(&server);
  int i = 0;
  for (auto _ : state) {
    Status status = client.Replace("cn=John Doe,ou=People,o=Lucent",
                                   "roomNumber",
                                   "R-" + std::to_string(i++));
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawLdapModify);

void BM_GatewayModifyNoTriggers(benchmark::State& state) {
  core::SystemConfig config;
  config.gateway.triggers_enabled = false;
  auto system = BuildPopulatedSystem({Population()[0]}, config);
  ldap::Client client = system->NewClient();
  int i = 0;
  for (auto _ : state) {
    Status status = client.Replace(Population()[0].dn, "roomNumber",
                                   "R-" + std::to_string(i++));
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GatewayModifyNoTriggers);

void BM_MetaCommLdapModify(benchmark::State& state) {
  auto system = BuildPopulatedSystem(Population());
  ldap::Client client = system->NewClient();
  WorkloadGenerator gen(7);
  int i = 0;
  for (auto _ : state) {
    const Person& person = Population()[gen.rng().Uniform(kPopulation)];
    Status status = client.Replace(person.dn, "roomNumber",
                                   "R-" + std::to_string(i++));
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  auto stats = system->update_manager().stats();
  state.counters["device_applies"] =
      static_cast<double>(stats.device_applies);
  state.counters["errors"] = static_cast<double>(stats.errors);
}
BENCHMARK(BM_MetaCommLdapModify);

void BM_BareDeviceCommand(benchmark::State& state) {
  devices::DefinityPbx pbx(devices::PbxConfig{.name = "pbx1"});
  for (const Person& person : Population()) {
    auto reply = pbx.ExecuteCommand("add station " + person.extension +
                                    " Name \"" + person.cn + "\"");
    if (!reply.ok()) {
      state.SkipWithError(reply.status().ToString().c_str());
      return;
    }
  }
  WorkloadGenerator gen(7);
  int i = 0;
  for (auto _ : state) {
    const Person& person = Population()[gen.rng().Uniform(kPopulation)];
    auto reply = pbx.ExecuteCommand("change station " + person.extension +
                                    " Room R-" + std::to_string(i++));
    if (!reply.ok()) state.SkipWithError(reply.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BareDeviceCommand);

void BM_MetaCommDeviceUpdate(benchmark::State& state) {
  auto system = BuildPopulatedSystem(Population());
  devices::DefinityPbx* pbx = system->pbx("pbx1");
  WorkloadGenerator gen(7);
  int i = 0;
  for (auto _ : state) {
    const Person& person = Population()[gen.rng().Uniform(kPopulation)];
    auto reply = pbx->ExecuteCommand("change station " + person.extension +
                                     " Room R-" + std::to_string(i++));
    if (!reply.ok()) state.SkipWithError(reply.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  auto stats = system->update_manager().stats();
  state.counters["reapplications"] =
      static_cast<double>(stats.reapplications);
}
BENCHMARK(BM_MetaCommDeviceUpdate);

void BM_MetaCommProvisionPerson(benchmark::State& state) {
  auto system = BuildPopulatedSystem({}, ConfigForPopulation(10000));
  WorkloadGenerator gen(11);
  std::vector<Person> pool = gen.People(10000, "7");
  size_t next = 0;
  for (auto _ : state) {
    if (next >= pool.size()) {
      state.SkipWithError("person pool exhausted");
      break;
    }
    const Person& person = pool[next++];
    Status status = system->AddPerson(
        person.cn,
        {{"telephoneNumber", "+1 908 582 " + person.extension}});
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetaCommProvisionPerson);

void BM_MetaCommLdapRead(benchmark::State& state) {
  auto system = BuildPopulatedSystem(Population());
  ldap::Client client = system->NewClient();
  WorkloadGenerator gen(7);
  for (auto _ : state) {
    const Person& person = Population()[gen.rng().Uniform(kPopulation)];
    auto entry = client.Get(person.dn);
    if (!entry.ok()) state.SkipWithError(entry.status().ToString().c_str());
    benchmark::DoNotOptimize(entry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetaCommLdapRead);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("update_paths", argc, argv);
}
