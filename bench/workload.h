#ifndef METACOMM_BENCH_WORKLOAD_H_
#define METACOMM_BENCH_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/metacomm.h"

namespace metacomm::bench {

/// One synthetic employee.
struct Person {
  std::string cn;         // "Ada Lovelace 4123"
  std::string extension;  // "4123"
  std::string dn;         // cn=...,ou=People,o=Lucent
};

/// Deterministic population generator shared by all experiment
/// binaries: unique 4-digit extensions with a fixed prefix, names
/// drawn from a fixed pool, phone numbers in the paper's
/// "+1 908 582 ..." block.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(uint64_t seed) : rng_(seed) {}

  /// Generates `count` distinct people with extensions prefixed by
  /// `extension_prefix` (first digit of the 4-digit extension).
  std::vector<Person> People(size_t count,
                             const std::string& extension_prefix = "4");

  Random& rng() { return rng_; }

 private:
  Random rng_;
};

/// Number of digits in the extensions People() generates for a
/// population of this size (4 up to 1000 people, 5 beyond).
int ExtensionDigits(size_t population);

/// Default system configuration whose PBX/MP mappings slice telephone
/// numbers with the right extension width for `population` people.
core::SystemConfig ConfigForPopulation(size_t population);

/// Builds a default single-PBX/single-MP MetaComm system and provisions
/// `population` through the LDAP path. Aborts on failure (benchmarks
/// must start from a healthy system).
std::unique_ptr<core::MetaCommSystem> BuildPopulatedSystem(
    const std::vector<Person>& population,
    core::SystemConfig config = core::SystemConfig{});

/// Provisions `population` into an existing system via LDAP.
void Provision(core::MetaCommSystem& system,
               const std::vector<Person>& population);

}  // namespace metacomm::bench

#endif  // METACOMM_BENCH_WORKLOAD_H_
