// Parallel Update Manager — propagation throughput vs worker count.
//
// The paper's UM serializes every update through one global queue
// (§4.4); its convergence argument, though, only needs PER-ENTRY
// order. The sharded UM harvests that slack: N workers, one strict
// FIFO shard each, items routed by hash of the target DN.
//
// Two workloads:
//   * multi-entry (the common case): a mixed LDAP+DDU update stream
//     spread over many entries — throughput should scale with
//     workers, since almost no two updates share an entry;
//   * same-entry (the adversarial case): a DDU burst against ONE
//     entry — no parallelism is available, and the point is that the
//     final state is identical at every worker count (per-entry FIFO
//     is preserved, counter `converged_to_last`).
//
// The `device_us` axis emulates per-update device latency (real PBX
// terminals answer in milliseconds; the in-process simulators in
// microseconds) via UpdateManagerConfig::artificial_processing_delay.

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/workload.h"
#include "common/clock.h"

namespace metacomm::bench {
namespace {

constexpr size_t kPopulation = 96;
constexpr size_t kDduEntries = 48;   // population[0 .. 47]: DDU targets.
constexpr size_t kLdapEntries = 48;  // population[48 .. 95]: LDAP targets.
constexpr int kLdapWriters = 4;

int64_t NowMicros() { return RealClock::Get()->NowMicros(); }

/// Polls until every (dn, extension) -> room expectation holds in both
/// the directory and the PBX; false on timeout. Entries are dropped
/// from the poll set as they converge (an applied update never
/// regresses), so the checks don't keep contending with the workers
/// for the backend once most of the population has settled.
bool AwaitConverged(core::MetaCommSystem& system,
                    std::map<const Person*, std::string> expected,
                    int64_t timeout_micros) {
  ldap::Client client = system.NewClient();
  devices::DefinityPbx* pbx = system.pbx("pbx1");
  int64_t start = NowMicros();
  while (NowMicros() - start < timeout_micros) {
    for (auto it = expected.begin(); it != expected.end();) {
      const auto& [person, room] = *it;
      auto entry = client.Get(person->dn);
      auto station = pbx->GetRecord(person->extension);
      if (entry.ok() && station.ok() &&
          entry->GetFirst("roomNumber") == room &&
          station->GetFirst("Room") == room) {
        it = expected.erase(it);
      } else {
        ++it;
      }
    }
    if (expected.empty()) return true;
    RealClock::Get()->SleepMicros(100);
  }
  return false;
}

/// args: [0] worker_threads, [1] emulated per-update device latency µs.
void BM_MultiEntryMixedPropagation(benchmark::State& state) {
  core::SystemConfig config;
  config.um.threaded = true;
  config.um.worker_threads = static_cast<int>(state.range(0));
  config.um.artificial_processing_delay_micros = state.range(1);
  WorkloadGenerator gen(7);
  std::vector<Person> population = gen.People(kPopulation);
  auto system = BuildPopulatedSystem(population, config);
  devices::DefinityPbx* pbx = system->pbx("pbx1");

  int seq = 0;
  for (auto _ : state) {
    std::map<const Person*, std::string> expected;
    ++seq;
    // DDU stream: one PBX command per DDU entry. Submission returns at
    // enqueue, so this thread keeps the queue fed while the worker
    // pool drains it in parallel.
    std::atomic<bool> ddu_failed{false};
    std::thread ddu_admin([&] {
      for (size_t i = 0; i < kDduEntries; ++i) {
        const Person& person = population[i];
        auto reply = pbx->ExecuteCommand(
            "change station " + person.extension + " Room D" +
            std::to_string(seq));
        if (!reply.ok()) ddu_failed.store(true);
      }
    });
    for (size_t i = 0; i < kDduEntries; ++i) {
      expected[&population[i]] = "D" + std::to_string(seq);
    }
    // LDAP stream: kLdapWriters clients over disjoint entry slices
    // (one writer per entry keeps the expected final value exact).
    std::atomic<bool> ldap_failed{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kLdapWriters; ++w) {
      writers.emplace_back([&, w] {
        ldap::Client client = system->NewClient();
        for (size_t i = kDduEntries + w; i < kPopulation;
             i += kLdapWriters) {
          Status status = client.Replace(population[i].dn, "roomNumber",
                                         "L" + std::to_string(seq));
          if (!status.ok()) ldap_failed.store(true);
        }
      });
    }
    for (size_t i = kDduEntries; i < kPopulation; ++i) {
      expected[&population[i]] = "L" + std::to_string(seq);
    }
    ddu_admin.join();
    for (std::thread& writer : writers) writer.join();
    if (ddu_failed.load() || ldap_failed.load()) {
      state.SkipWithError("update submission failed");
      return;
    }
    if (!AwaitConverged(*system, expected, 10'000'000)) {
      state.SkipWithError("did not converge within 10s");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kPopulation));

  core::UpdateManager::Stats stats = system->update_manager().stats();
  uint64_t dequeued = 0;
  uint64_t wait = 0;
  uint64_t max_depth = 0;
  for (const core::UpdateManager::ShardStats& shard : stats.shards) {
    dequeued += shard.dequeued;
    wait += shard.queue_wait_micros;
    max_depth = std::max(max_depth, shard.max_depth);
  }
  state.counters["queue_wait_us_per_item"] =
      dequeued > 0
          ? static_cast<double>(wait) / static_cast<double>(dequeued)
          : 0.0;
  state.counters["max_shard_depth"] = static_cast<double>(max_depth);
  state.counters["errors"] = static_cast<double>(stats.errors);
  system->update_manager().Stop();
}
BENCHMARK(BM_MultiEntryMixedPropagation)
    ->ArgNames({"workers", "device_us"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 200})
    ->Args({2, 200})
    ->Args({4, 200})
    ->Args({8, 200})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// args: [0] worker_threads. Back-to-back DDUs against one entry: the
/// sharded queue must behave exactly like the global queue here —
/// identical final state, `converged_to_last` == 1.
void BM_SameEntryDduBurst(benchmark::State& state) {
  core::SystemConfig config;
  config.um.threaded = true;
  config.um.worker_threads = static_cast<int>(state.range(0));
  WorkloadGenerator gen(7);
  std::vector<Person> population = gen.People(kPopulation);
  auto system = BuildPopulatedSystem(population, config);
  devices::DefinityPbx* pbx = system->pbx("pbx1");
  const Person& person = population[0];

  constexpr int kBurst = 16;
  int seq = 0;
  bool all_converged_to_last = true;
  for (auto _ : state) {
    std::string final_room;
    for (int i = 0; i < kBurst; ++i) {
      final_room = "S" + std::to_string(seq++);
      auto reply = pbx->ExecuteCommand("change station " +
                                       person.extension + " Room " +
                                       final_room);
      if (!reply.ok()) {
        state.SkipWithError(reply.status().ToString().c_str());
        return;
      }
    }
    std::map<const Person*, std::string> expected{{&person, final_room}};
    if (!AwaitConverged(*system, expected, 5'000'000)) {
      all_converged_to_last = false;
      state.SkipWithError("same-entry burst lost its last update");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  state.counters["converged_to_last"] =
      all_converged_to_last ? 1.0 : 0.0;
  state.counters["errors"] = static_cast<double>(
      system->update_manager().stats().errors);
  system->update_manager().Stop();
}
BENCHMARK(BM_SameEntryDduBurst)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("parallel_um", argc, argv);
}
