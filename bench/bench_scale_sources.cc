// E6 — Scalability in the number of integrated data sources (paper
// §7: "We are currently investigating its scalability by adding new
// data sources").
//
// Deployments with 1..12 PBXs (disjoint dial-plan partitions) plus one
// messaging platform. We measure:
//   * per-update fan-out latency (modify of one person) — partition
//     routing means non-owning switches are skipped, so cost should
//     grow mildly with source count;
//   * provisioning latency;
//   * a partition-blind variant (every PBX accepts everything) as the
//     contrast: fan-out then grows linearly.

#include <benchmark/benchmark.h>

#include "bench/workload.h"

namespace metacomm::bench {
namespace {

core::SystemConfig MultiPbxConfig(int pbx_count, bool partitioned,
                                  int extension_digits = 4) {
  core::SystemConfig config;
  config.pbxs.clear();
  for (int i = 0; i < pbx_count; ++i) {
    core::PbxMappingParams params;
    params.name = "pbx" + std::to_string(i);
    // Partitioned: each switch owns one leading digit (i mod 10).
    // Unpartitioned: every switch claims everything.
    params.extension_prefix =
        partitioned ? std::to_string(i % 10) : std::string();
    params.phone_prefix = "+1 908 582 ";
    params.extension_digits = extension_digits;
    config.pbxs.push_back(std::move(params));
  }
  for (auto& mp : config.mps) mp.mailbox_digits = extension_digits;
  return config;
}

/// args: [0] = PBX count, [1] = partitioned.
void BM_ModifyFanout(benchmark::State& state) {
  int pbx_count = static_cast<int>(state.range(0));
  bool partitioned = state.range(1) == 1;
  // All people live on switch 0's partition (prefix "0" when
  // partitioned), so the partitioned case always has exactly one
  // owning switch.
  WorkloadGenerator gen(31);
  std::vector<Person> population =
      gen.People(100, partitioned ? "0" : "4");
  auto system =
      BuildPopulatedSystem(population, MultiPbxConfig(pbx_count,
                                                      partitioned));
  ldap::Client client = system->NewClient();
  Random rng(3);
  int i = 0;
  for (auto _ : state) {
    const Person& person = population[rng.Uniform(population.size())];
    Status status = client.Replace(person.dn, "roomNumber",
                                   "R-" + std::to_string(i++));
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  auto stats = system->update_manager().stats();
  state.counters["device_applies_per_update"] =
      stats.ldap_updates > 0
          ? static_cast<double>(stats.device_applies) /
                static_cast<double>(stats.ldap_updates +
                                    stats.device_updates)
          : 0;
  state.counters["errors"] = static_cast<double>(stats.errors);
}
BENCHMARK(BM_ModifyFanout)
    ->ArgNames({"pbxs", "partitioned"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({12, 1})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({12, 0});

/// Provisioning a person as the source count grows (partitioned).
/// 5-digit extensions give a 10k-person pool so long benchmark runs
/// cannot exhaust it.
void BM_ProvisionWithManySources(benchmark::State& state) {
  int pbx_count = static_cast<int>(state.range(0));
  auto system_or = core::MetaCommSystem::Create(
      MultiPbxConfig(pbx_count, true, /*extension_digits=*/5));
  if (!system_or.ok()) {
    state.SkipWithError(system_or.status().ToString().c_str());
    return;
  }
  auto& system = **system_or;
  WorkloadGenerator gen(37);
  std::vector<Person> pool = gen.People(10000, "0");
  size_t next = 0;
  for (auto _ : state) {
    if (next >= pool.size()) {
      state.SkipWithError("pool exhausted");
      return;
    }
    const Person& person = pool[next++];
    Status status = system.AddPerson(
        person.cn,
        {{"telephoneNumber", "+1 908 582 " + person.extension}});
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProvisionWithManySources)->Arg(1)->Arg(4)->Arg(12);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("scale_sources", argc, argv);
}
