// E5 — lexpress compilation and translation cost (paper §4.2).
//
// "Experience with the language indicates that a few minutes are
// sufficient to map a new source" — the human cost; here we price the
// machine cost: compiling description files of growing size, mapping
// records, routing updates through partitioning constraints, and the
// transitive-closure engine as the dependency chain lengthens.

#include <benchmark/benchmark.h>

#include "core/mapping_gen.h"
#include "lexpress/closure.h"
#include "lexpress/mapping.h"

namespace metacomm::bench {
namespace {

using lexpress::CompileMappings;
using lexpress::Mapping;
using lexpress::MappingSet;
using lexpress::Record;
using lexpress::UpdateDescriptor;

/// Generates a mapping with `rules` map rules.
std::string SyntheticMapping(int rules) {
  std::string out = "mapping Big from src to dst {\n";
  out += "  table T { \"a\" -> \"1\"; \"b\" -> \"2\"; default -> \"0\"; }\n";
  out += "  key k -> k;\n";
  for (int i = 0; i < rules; ++i) {
    std::string n = std::to_string(i);
    switch (i % 4) {
      case 0:
        out += "  map a" + n + " -> b" + n + ";\n";
        break;
      case 1:
        out += "  map upper(trim(a" + n + ")) -> b" + n + ";\n";
        break;
      case 2:
        out += "  map concat(\"x-\", a" + n + ") -> b" + n +
               " when present(a" + n + ");\n";
        break;
      case 3:
        out += "  map first(lookup(T, a" + n + ")) -> b" + n + ";\n";
        break;
    }
  }
  out += "}\n";
  return out;
}

void BM_CompileMapping(benchmark::State& state) {
  std::string source = SyntheticMapping(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto mappings = CompileMappings(source);
    if (!mappings.ok()) {
      state.SkipWithError(mappings.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mappings);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rules"] = static_cast<double>(state.range(0));
  state.counters["source_bytes"] = static_cast<double>(source.size());
}
BENCHMARK(BM_CompileMapping)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_CompileStandardPbxPair(benchmark::State& state) {
  std::string source =
      core::GeneratePbxMappings(core::PbxMappingParams{});
  for (auto _ : state) {
    auto mappings = CompileMappings(source);
    if (!mappings.ok()) {
      state.SkipWithError(mappings.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mappings);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileStandardPbxPair);

void BM_MapRecord(benchmark::State& state) {
  auto mappings = CompileMappings(
      SyntheticMapping(static_cast<int>(state.range(0))));
  if (!mappings.ok()) {
    state.SkipWithError(mappings.status().ToString().c_str());
    return;
  }
  Record record("src");
  record.SetOne("k", "key-1");
  for (int i = 0; i < state.range(0); ++i) {
    record.SetOne("a" + std::to_string(i), "value " + std::to_string(i));
  }
  for (auto _ : state) {
    auto mapped = (*mappings)[0].MapRecord(record);
    if (!mapped.ok()) {
      state.SkipWithError(mapped.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mapped);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapRecord)->Arg(8)->Arg(32)->Arg(128);

/// The pre-fast-path execution pipeline (per-instruction attribute map
/// lookups, a fresh copying stack per program). Kept runnable so every
/// BENCH_lexpress.json carries its own in-run before/after ratio —
/// fast-vs-reference measured under identical load, immune to
/// machine-to-machine drift.
void BM_MapRecordReference(benchmark::State& state) {
  auto mappings = CompileMappings(
      SyntheticMapping(static_cast<int>(state.range(0))));
  if (!mappings.ok()) {
    state.SkipWithError(mappings.status().ToString().c_str());
    return;
  }
  Record record("src");
  record.SetOne("k", "key-1");
  for (int i = 0; i < state.range(0); ++i) {
    record.SetOne("a" + std::to_string(i), "value " + std::to_string(i));
  }
  for (auto _ : state) {
    auto mapped = (*mappings)[0].MapRecordReference(record);
    if (!mapped.ok()) {
      state.SkipWithError(mapped.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mapped);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapRecordReference)->Arg(8)->Arg(32)->Arg(128);

void BM_TranslateWithPartitionRouting(benchmark::State& state) {
  std::string source = core::GeneratePbxMappings(core::PbxMappingParams{
      .name = "pbx9", .extension_prefix = "9"});
  auto mappings = CompileMappings(source);
  if (!mappings.ok()) {
    state.SkipWithError(mappings.status().ToString().c_str());
    return;
  }
  const Mapping& from_ldap = (*mappings)[1];

  UpdateDescriptor update;
  update.op = lexpress::DescriptorOp::kModify;
  update.schema = "ldap";
  update.old_record.SetOne("telephoneNumber", "+1 908 582 9000");
  update.old_record.SetOne("cn", "John Doe");
  update.new_record.SetOne("telephoneNumber", "+1 908 582 9111");
  update.new_record.SetOne("cn", "John Doe");

  for (auto _ : state) {
    auto translated = from_ldap.Translate(update);
    if (!translated.ok()) {
      state.SkipWithError(translated.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(translated);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateWithPartitionRouting);

/// Builds the steady-state Modify workload: a wide mapping (32 rules)
/// and an update that changes exactly one source attribute — the shape
/// of a production update stream, where a directory entry carries many
/// mapped attributes and each modify touches few. Dirty-attribute rule
/// selection re-evaluates only the touched rule group; everything else
/// is carried over from the (single) old-image map.
UpdateDescriptor SteadyStateModify() {
  UpdateDescriptor update;
  update.op = lexpress::DescriptorOp::kModify;
  update.schema = "src";
  Record record("src");
  record.SetOne("k", "key-1");
  for (int i = 0; i < 32; ++i) {
    record.SetOne("a" + std::to_string(i), "value " + std::to_string(i));
  }
  update.old_record = record;
  record.SetOne("a7", "changed");
  update.new_record = std::move(record);
  update.explicit_attrs.insert("a7");
  return update;
}

void BM_TranslateSteadyStateModify(benchmark::State& state) {
  auto mappings = CompileMappings(SyntheticMapping(32));
  if (!mappings.ok()) {
    state.SkipWithError(mappings.status().ToString().c_str());
    return;
  }
  UpdateDescriptor update = SteadyStateModify();
  lexpress::Vm vm;
  for (auto _ : state) {
    auto translated = (*mappings)[0].Translate(update, &vm);
    if (!translated.ok()) {
      state.SkipWithError(translated.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(translated);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateSteadyStateModify);

/// The same workload through the reference pipeline: full remap of the
/// old AND new images on the copying interpreter — what every Translate
/// cost before the fast path.
void BM_TranslateSteadyStateModifyReference(benchmark::State& state) {
  auto mappings = CompileMappings(SyntheticMapping(32));
  if (!mappings.ok()) {
    state.SkipWithError(mappings.status().ToString().c_str());
    return;
  }
  UpdateDescriptor update = SteadyStateModify();
  for (auto _ : state) {
    auto translated = (*mappings)[0].TranslateReference(update);
    if (!translated.ok()) {
      state.SkipWithError(translated.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(translated);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateSteadyStateModifyReference);

/// Closure cost vs dependency-chain length: schema s0 -> s1 -> ... ->
/// sN, each hop copying a value; the update enters at s0 and must
/// reach sN.
void BM_ClosureChainLength(benchmark::State& state) {
  int hops = static_cast<int>(state.range(0));
  std::string source;
  for (int i = 0; i < hops; ++i) {
    std::string a = "s" + std::to_string(i);
    std::string b = "s" + std::to_string(i + 1);
    source += "mapping " + a + "to" + b + " from " + a + " to " + b +
              " { map v -> v; }\n";
  }
  MappingSet set;
  Status status = set.AddSource(source);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record seed("s0");
  seed.SetOne("v", "old");
  base.emplace("s0", seed);
  Record updated("s0");
  updated.SetOne("v", "new");

  int iterations_used = 0;
  for (auto _ : state) {
    auto result = set.Propagate(base, "s0", updated, {"v"},
                                /*max_iterations=*/hops + 4);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    iterations_used = result->iterations;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["closure_sweeps"] = iterations_used;
}
BENCHMARK(BM_ClosureChainLength)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// The realistic three-repository closure (pbx + mp + ldap).
void BM_ClosureStandardDeployment(benchmark::State& state) {
  MappingSet set;
  Status status = set.AddSource(
      core::GeneratePbxMappings(core::PbxMappingParams{}));
  if (status.ok()) {
    status = set.AddSource(core::GenerateMpMappings(core::MpMappingParams{}));
  }
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record ldap_record("ldap");
  ldap_record.SetOne("cn", "John Doe");
  ldap_record.SetOne("telephoneNumber", "+1 908 582 9000");
  ldap_record.SetOne("DefinityExtension", "9000");
  ldap_record.SetOne("MpMailboxNumber", "9000");
  base.emplace("ldap", ldap_record);

  Record updated = ldap_record;
  updated.SetOne("telephoneNumber", "+1 908 582 9111");

  for (auto _ : state) {
    auto result = set.Propagate(base, "ldap", updated,
                                {"telephoneNumber"});
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClosureStandardDeployment);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("lexpress", argc, argv);
}
