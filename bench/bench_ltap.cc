// E7 — LTAP trigger/locking overhead (paper §4.3).
//
// The gateway "does trigger processing in addition to servicing the
// original LDAP command"; these benchmarks price that interposition:
//   * read and write throughput with no gateway, a pass-through
//     gateway, and a gateway with 1..16 registered (no-op) triggers;
//   * lock acquisition cost, including contention on one hot entry.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench/workload.h"
#include "core/integrated_schema.h"
#include "ldap/client.h"
#include "ldap/server.h"
#include "ltap/gateway.h"

namespace metacomm::bench {
namespace {

using ldap::Client;
using ldap::Dn;
using ldap::Entry;

/// A trigger action server that does nothing (isolates LTAP's own
/// dispatch cost from the Update Manager's work).
class NoopActionServer : public ltap::TriggerActionServer {
 public:
  Status OnUpdate(const ltap::UpdateNotification&) override {
    return Status::Ok();
  }
};

std::unique_ptr<ldap::LdapServer> BuildServer() {
  auto server = std::make_unique<ldap::LdapServer>(
      core::BuildIntegratedSchema(),
      ldap::ServerConfig{.allow_anonymous_writes = true});
  auto add = [&server](const char* dn, const char* cls, const char* attr,
                       const char* value) {
    Entry entry(*Dn::Parse(dn));
    entry.AddObjectClass("top");
    entry.AddObjectClass(cls);
    entry.SetOne(attr, value);
    server->backend().Add(entry);
  };
  add("o=Lucent", "organization", "o", "Lucent");
  add("ou=People,o=Lucent", "organizationalUnit", "ou", "People");
  for (int i = 0; i < 100; ++i) {
    std::string cn = "Person " + std::to_string(1000 + i);
    Entry person(*Dn::Parse("cn=" + cn + ",ou=People,o=Lucent"));
    person.Set("objectClass", {"top", "person", "organizationalPerson",
                               "inetOrgPerson"});
    person.SetOne("cn", cn);
    person.SetOne("sn", "P");
    server->backend().Add(person);
  }
  return server;
}

/// args: [0] = number of triggers, -1 meaning "no gateway at all".
void BM_ModifyThroughGateway(benchmark::State& state) {
  auto server = BuildServer();
  NoopActionServer action;
  std::unique_ptr<ltap::LtapGateway> gateway;
  ldap::LdapService* service = server.get();
  if (state.range(0) >= 0) {
    gateway = std::make_unique<ltap::LtapGateway>(server.get());
    for (int64_t i = 0; i < state.range(0); ++i) {
      ltap::TriggerSpec spec;
      spec.name = "noop" + std::to_string(i);
      spec.base = *Dn::Parse("o=Lucent");
      spec.timing = ltap::TriggerTiming::kAfter;
      spec.server = &action;
      gateway->RegisterTrigger(std::move(spec));
    }
    service = gateway.get();
  }
  Client client(service);
  int i = 0;
  for (auto _ : state) {
    Status status =
        client.Replace("cn=Person 1050,ou=People,o=Lucent", "roomNumber",
                       "R-" + std::to_string(i++));
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  if (gateway != nullptr) {
    state.counters["triggers_fired"] =
        static_cast<double>(gateway->stats().triggers_fired);
  }
}
BENCHMARK(BM_ModifyThroughGateway)
    ->Arg(-1)   // Bare server.
    ->Arg(0)    // Gateway, no triggers.
    ->Arg(1)
    ->Arg(4)
    ->Arg(16);

void BM_ReadThroughGateway(benchmark::State& state) {
  auto server = BuildServer();
  std::unique_ptr<ltap::LtapGateway> gateway;
  ldap::LdapService* service = server.get();
  NoopActionServer action;
  if (state.range(0) >= 0) {
    gateway = std::make_unique<ltap::LtapGateway>(server.get());
    for (int64_t i = 0; i < state.range(0); ++i) {
      ltap::TriggerSpec spec;
      spec.name = "noop" + std::to_string(i);
      spec.base = *Dn::Parse("o=Lucent");
      spec.server = &action;
      gateway->RegisterTrigger(std::move(spec));
    }
    service = gateway.get();
  }
  Client client(service);
  for (auto _ : state) {
    auto entry = client.Get("cn=Person 1050,ou=People,o=Lucent");
    if (!entry.ok()) state.SkipWithError(entry.status().ToString().c_str());
    benchmark::DoNotOptimize(entry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadThroughGateway)->Arg(-1)->Arg(0)->Arg(16);

/// Shared deployment for the contention benchmarks; built/destroyed by
/// the Setup/Teardown hooks, which google-benchmark runs exactly once
/// per benchmark run with all worker threads quiescent.
std::unique_ptr<ldap::LdapServer> g_server;
std::unique_ptr<ltap::LtapGateway> g_gateway;

void ContentionSetup(const benchmark::State&) {
  g_server = BuildServer();
  g_gateway = std::make_unique<ltap::LtapGateway>(g_server.get());
}

void ContentionTeardown(const benchmark::State&) {
  g_gateway.reset();
  g_server.reset();
}

/// Writers all hammer ONE entry: the per-entry lock serializes them.
void BM_HotEntryContention(benchmark::State& state) {
  Client client(g_gateway.get());
  client.set_session_id(
      static_cast<uint64_t>(state.thread_index()) + 100);
  int i = 0;
  for (auto _ : state) {
    Status status =
        client.Replace("cn=Person 1000,ou=People,o=Lucent", "roomNumber",
                       "T" + std::to_string(state.thread_index()) + "-" +
                           std::to_string(i++));
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["contended_locks"] = static_cast<double>(
        g_gateway->lock_table().contended_acquisitions());
  }
}
BENCHMARK(BM_HotEntryContention)
    ->Setup(ContentionSetup)
    ->Teardown(ContentionTeardown)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Same write load spread over 100 entries: near-zero contention.
void BM_SpreadEntryContention(benchmark::State& state) {
  Client client(g_gateway.get());
  client.set_session_id(
      static_cast<uint64_t>(state.thread_index()) + 100);
  Random rng(static_cast<uint64_t>(state.thread_index()) + 1);
  int i = 0;
  for (auto _ : state) {
    std::string cn = "Person " + std::to_string(1000 + rng.Uniform(100));
    Status status = client.Replace("cn=" + cn + ",ou=People,o=Lucent",
                                   "roomNumber",
                                   "S-" + std::to_string(i++));
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["contended_locks"] = static_cast<double>(
        g_gateway->lock_table().contended_acquisitions());
  }
}
BENCHMARK(BM_SpreadEntryContention)
    ->Setup(ContentionSetup)
    ->Teardown(ContentionTeardown)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("ltap", argc, argv);
}
