// E3 — Direct-device-update convergence (paper §4.4).
//
// MetaComm serializes DDUs through the UM's global queue and reapplies
// them to the originating device; "brief inconsistencies between the
// LDAP server and the device are sometimes created, but quickly
// eliminated", and the technique "works because a small number of
// DDUs are made against any given entry per day ... [it] would not
// work well if some entries received frequent DDUs."
//
// We measure, with the UM running its coordinator thread:
//   * convergence latency: device commit -> directory shows the value,
//     as the burst size of back-to-back DDUs per entry grows;
//   * reapplication counts per DDU;
//   * racing LDAP updates against DDUs on the same entry.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench/workload.h"
#include "common/clock.h"

namespace metacomm::bench {
namespace {

constexpr size_t kPopulation = 64;

int64_t NowMicros() { return RealClock::Get()->NowMicros(); }

/// Polls the directory until the person's roomNumber equals `value`.
/// Returns the wait in microseconds (or -1 on timeout).
int64_t AwaitRoom(core::MetaCommSystem& system, const Person& person,
                  const std::string& value) {
  ldap::Client client = system.NewClient();
  int64_t start = NowMicros();
  while (NowMicros() - start < 2'000'000) {
    auto entry = client.Get(person.dn);
    if (entry.ok() && entry->GetFirst("roomNumber") == value) {
      return NowMicros() - start;
    }
    std::this_thread::yield();
  }
  return -1;
}

/// args: [0] = DDUs issued back-to-back against one entry per
/// measurement (the "DDU frequency" axis).
void BM_DduBurstConvergence(benchmark::State& state) {
  core::SystemConfig config;
  config.um.threaded = true;
  WorkloadGenerator gen(5);
  std::vector<Person> population = gen.People(kPopulation);
  auto system = BuildPopulatedSystem(population, config);
  devices::DefinityPbx* pbx = system->pbx("pbx1");

  int64_t burst = state.range(0);
  int64_t total_latency = 0;
  int64_t measured = 0;
  int seq = 0;
  Random rng(9);
  for (auto _ : state) {
    const Person& person = population[rng.Uniform(kPopulation)];
    std::string final_room;
    for (int64_t i = 0; i < burst; ++i) {
      final_room = "B" + std::to_string(seq++);
      auto reply = pbx->ExecuteCommand("change station " +
                                       person.extension + " Room " +
                                       final_room);
      if (!reply.ok()) {
        state.SkipWithError(reply.status().ToString().c_str());
        return;
      }
    }
    int64_t latency = AwaitRoom(*system, person, final_room);
    if (latency < 0) {
      state.SkipWithError("directory did not converge within 2s");
      return;
    }
    total_latency += latency;
    ++measured;
  }
  state.SetItemsProcessed(state.iterations() * burst);
  if (measured > 0) {
    state.counters["convergence_us"] =
        static_cast<double>(total_latency) / static_cast<double>(measured);
  }
  auto stats = system->update_manager().stats();
  state.counters["reapplications_per_ddu"] =
      stats.device_updates > 0
          ? static_cast<double>(stats.reapplications) /
                static_cast<double>(stats.device_updates)
          : 0.0;
  state.counters["errors"] = static_cast<double>(stats.errors);
  system->update_manager().Stop();
}
BENCHMARK(BM_DduBurstConvergence)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// An LDAP update and a DDU race on the same entry; queue-order
/// reapplication must still converge (the overlapping-update case the
/// paper argues is rare but handled).
void BM_RacingLdapAndDdu(benchmark::State& state) {
  core::SystemConfig config;
  config.um.threaded = true;
  WorkloadGenerator gen(5);
  std::vector<Person> population = gen.People(kPopulation);
  auto system = BuildPopulatedSystem(population, config);
  devices::DefinityPbx* pbx = system->pbx("pbx1");

  int64_t total_latency = 0;
  int seq = 0;
  Random rng(13);
  for (auto _ : state) {
    const Person& person = population[rng.Uniform(kPopulation)];
    std::string ldap_room = "L" + std::to_string(seq);
    std::string ddu_room = "D" + std::to_string(seq);
    ++seq;
    std::thread ldap_writer([&system, &person, &ldap_room] {
      ldap::Client client = system->NewClient();
      (void)client.Replace(person.dn, "roomNumber", ldap_room);
    });
    auto reply = pbx->ExecuteCommand("change station " + person.extension +
                                     " Room " + ddu_room);
    ldap_writer.join();
    if (!reply.ok()) {
      state.SkipWithError(reply.status().ToString().c_str());
      return;
    }
    // Whichever order the queue chose, directory and device must agree
    // once quiet. Wait until they do.
    int64_t start = NowMicros();
    bool converged = false;
    ldap::Client client = system->NewClient();
    while (NowMicros() - start < 2'000'000) {
      auto entry = client.Get(person.dn);
      auto station = pbx->GetRecord(person.extension);
      if (entry.ok() && station.ok() &&
          entry->GetFirst("roomNumber") == station->GetFirst("Room") &&
          !entry->GetFirst("roomNumber").empty()) {
        converged = true;
        break;
      }
      std::this_thread::yield();
    }
    if (!converged) {
      state.SkipWithError("device and directory did not agree within 2s");
      return;
    }
    total_latency += NowMicros() - start;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["agree_us"] =
      state.iterations() > 0
          ? static_cast<double>(total_latency) /
                static_cast<double>(state.iterations())
          : 0;
  system->update_manager().Stop();
}
BENCHMARK(BM_RacingLdapAndDdu)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("ddu_convergence", argc, argv);
}
