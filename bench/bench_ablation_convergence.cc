// A1/A2 — Ablations of the paper's two consistency mechanisms.
//
// A1: reapplication to the originating device OFF (UM config).
//     §4.4/§5.4 argue reapplication in queue order is what makes
//     racing DDU + LDAP updates converge. With it off, the originating
//     device can be left holding a value the rest of the system
//     already replaced. We race DDUs against LDAP updates on the same
//     entries and count entries on which device and directory disagree
//     once quiet.
//
// A2: LTAP entry locking OFF (gateway config).
//     §4.3's locks forbid updates to an entry during trigger
//     processing. With them off, concurrent LDAP writers interleave
//     with in-flight UM sequences; we count observed lost/contradicted
//     updates.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench/workload.h"
#include "common/strings.h"

namespace metacomm::bench {
namespace {

constexpr size_t kPopulation = 32;
constexpr int kRounds = 40;

/// Runs racing LDAP/DDU rounds and reports how many entries ended up
/// with device != directory. args: [0] = reapply_to_originator.
void BM_ReapplicationAblation(benchmark::State& state) {
  bool reapply = state.range(0) == 1;
  int64_t divergent_total = 0;
  int64_t rounds_total = 0;
  for (auto _ : state) {
    core::SystemConfig config;
    config.um.threaded = true;
    config.um.reapply_to_originator = reapply;
    WorkloadGenerator gen(51);
    std::vector<Person> population = gen.People(kPopulation);
    auto system = BuildPopulatedSystem(population, config);
    devices::DefinityPbx* pbx = system->pbx("pbx1");

    for (int round = 0; round < kRounds; ++round) {
      const Person& person = population[static_cast<size_t>(round) %
                                        kPopulation];
      std::string ldap_room = "L" + std::to_string(round);
      std::string ddu_room = "D" + std::to_string(round);
      // Race: LDAP client and device administrator write the same
      // entry concurrently.
      std::thread ldap_writer([&system, &person, &ldap_room] {
        ldap::Client client = system->NewClient();
        (void)client.Replace(person.dn, "roomNumber", ldap_room);
      });
      (void)pbx->ExecuteCommand("change station " + person.extension +
                                " Room " + ddu_room);
      ldap_writer.join();
    }
    // Let the queue drain, then compare repositories.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    system->update_manager().Stop();

    ldap::Client client = system->NewClient();
    int divergent = 0;
    for (const Person& person : population) {
      auto entry = client.Get(person.dn);
      auto station = pbx->GetRecord(person.extension);
      if (!entry.ok() || !station.ok()) {
        ++divergent;
        continue;
      }
      if (entry->GetFirst("roomNumber") != station->GetFirst("Room")) {
        ++divergent;
      }
    }
    divergent_total += divergent;
    rounds_total += 1;
  }
  state.counters["divergent_entries_per_run"] =
      rounds_total > 0
          ? static_cast<double>(divergent_total) /
                static_cast<double>(rounds_total)
          : 0;
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_ReapplicationAblation)
    ->ArgNames({"reapply"})
    ->Arg(1)
    ->Arg(0)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Concurrent writers on ONE hot entry with locking on/off. Locking
/// (§4.3) forbids a second update to an entry while the first one's
/// trigger processing is in flight; with it off, the UM's write-back
/// of an older update can land AFTER a newer client write, so readers
/// observe the entry's value going BACKWARDS. We count those
/// regressions. An artificial UM processing delay widens the window
/// so the effect is visible deterministically.
/// args: [0] = locking_enabled.
void BM_LockingAblation(benchmark::State& state) {
  bool locking = state.range(0) == 1;
  int64_t regressions_total = 0;
  int64_t reads_total = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    core::SystemConfig config;
    config.um.threaded = true;
    config.gateway.locking_enabled = locking;
    config.um.artificial_processing_delay_micros = 2000;
    WorkloadGenerator gen(53);
    std::vector<Person> population = gen.People(4);
    auto system = BuildPopulatedSystem(population, config);
    const Person& hot = population[0];

    std::atomic<int> counter{0};
    std::atomic<bool> stop{false};
    std::atomic<int64_t> regressions{0};
    std::atomic<int64_t> reads{0};

    std::thread reader([&] {
      ldap::Client client = system->NewClient();
      int64_t max_seen = 0;
      while (!stop.load()) {
        auto entry = client.Get(hot.dn);
        if (entry.ok()) {
          std::string value = entry->GetFirst("roomNumber");
          std::optional<int64_t> seen =
              value.size() > 1 && value[0] == 'V'
                  ? ParseInt64(std::string_view(value).substr(1))
                  : std::nullopt;
          if (seen.has_value()) {
            if (*seen < max_seen) regressions.fetch_add(1);
            if (*seen > max_seen) max_seen = *seen;
            reads.fetch_add(1);
          }
        }
      }
    });

    // One driver alternates the two update paths on the same entry:
    // a DDU (whose propagation is asynchronous) followed immediately
    // by an LDAP write. With locking, the DDU holds the entry lock
    // from submission until its sequence completes, so the LDAP write
    // waits and values only move forward. Without locking, the LDAP
    // write lands first and the DDU's delayed write-back then drags
    // the entry BACKWARDS before convergence.
    std::thread driver([&system, &hot, &counter] {
      ldap::Client client = system->NewClient();
      client.set_session_id(700);
      devices::DefinityPbx* pbx = system->pbx("pbx1");
      for (int i = 0; i < 10; ++i) {
        int ddu_value = counter.fetch_add(1) + 1;
        (void)pbx->ExecuteCommand("change station " + hot.extension +
                                  " Room V" + std::to_string(ddu_value));
        int ldap_value = counter.fetch_add(1) + 1;
        (void)client.Replace(hot.dn, "roomNumber",
                             "V" + std::to_string(ldap_value));
      }
    });
    driver.join();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    reader.join();
    system->update_manager().Stop();

    regressions_total += regressions.load();
    reads_total += reads.load();
    ++runs;
  }
  state.counters["regressions_per_run"] =
      runs > 0 ? static_cast<double>(regressions_total) /
                     static_cast<double>(runs)
               : 0;
  state.counters["reads_per_run"] =
      runs > 0
          ? static_cast<double>(reads_total) / static_cast<double>(runs)
          : 0;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockingAblation)
    ->ArgNames({"locking"})
    ->Arg(1)
    ->Arg(0)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("ablation_convergence", argc, argv);
}
