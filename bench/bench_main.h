#ifndef METACOMM_BENCH_BENCH_MAIN_H_
#define METACOMM_BENCH_BENCH_MAIN_H_

#include <string>

namespace metacomm::bench {

/// Shared main() for every bench binary: google-benchmark plus the
/// repo-local `--json` flag. With --json, a machine-readable summary
/// is written to BENCH_<name>.json in the current working directory:
/// per-run time and ops/sec (with every user counter), p50/p99 of the
/// per-iteration wall time across runs, and the invocation arguments.
/// tools/bench_report.sh drives this across all benches.
int RunBenchMain(const std::string& name, int argc, char** argv);

}  // namespace metacomm::bench

#endif  // METACOMM_BENCH_BENCH_MAIN_H_
