// Fault recovery — breaker fast-fail latency and repair throughput.
//
// Two questions from DESIGN.md "Fault tolerance":
//
//  1. BM_HealthyPathDuringOutage — while one device is down behind a
//     slow failing link (every mutation stalls `fail_latency` before
//     erroring), what happens to the latency of the client write
//     path? With the circuit breaker the first few attempts pay the
//     stall, the circuit opens, and every later update to the dead
//     repository fast-fails into cn=errors — so the measured p99
//     stays within 2x of the no-fault baseline (the acceptance bar).
//     The workload alternates updates bound for the healthy PBX
//     (roomNumber) and the dead MP (MpPin), the §4.4 mixed-fan-out
//     shape where a naive UM would stall every other op.
//
//  2. BM_ReconvergeTime — after the outage ends, how long does the
//     error-log-driven repair pass take to replay a backlog of N
//     logged updates and drive the device back to convergence? One
//     timed RunRepairPass() per iteration, N on the x-axis.
//
// Both benches run the Update Manager synchronously (threaded=false)
// so op latency and repair time are measured on the calling thread.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "bench/workload.h"
#include "common/clock.h"
#include "core/circuit_breaker.h"

namespace metacomm::bench {
namespace {

constexpr size_t kPopulation = 24;
constexpr int64_t kRttMicros = 100;

int64_t NowMicros() { return RealClock::Get()->NowMicros(); }

/// Nearest-rank percentile, in place.
double PercentileUs(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

uint64_t BacklogFor(core::MetaCommSystem& system,
                    const std::string& repository) {
  for (const core::UpdateManager::Stats::RepositoryStats& repo :
       system.update_manager().stats().repositories) {
    if (repo.name == repository) return repo.replay_backlog;
  }
  return 0;
}

/// args: [0] outage (0 = no-fault baseline, 1 = MP down behind a
/// 2ms-stall failing link for the whole measured window).
void BM_HealthyPathDuringOutage(benchmark::State& state) {
  const bool outage = state.range(0) != 0;
  core::SystemConfig config = ConfigForPopulation(kPopulation);
  config.device_command_rtt_micros = kRttMicros;
  // No probes during the measured window: each one would re-pay the
  // injected stall, and this bench isolates the steady open state.
  config.um.breaker_open_backoff_micros = 10'000'000;
  WorkloadGenerator gen(11);
  std::vector<Person> population = gen.People(kPopulation);
  auto system = BuildPopulatedSystem(population, config);

  if (outage) {
    // A link that times out rather than failing fast — the cost the
    // breaker exists to amortize.
    system->mp("mp1")->faults().set_error_probability(1.0);
    system->mp("mp1")->faults().set_fail_latency_micros(2'000);
    // Trip the threshold outside the timed window; the steady state
    // under an outage is "circuit open", not "discovering the outage".
    ldap::Client warm = system->NewClient();
    for (int i = 0; i < 4; ++i) {
      (void)warm.Replace(population[0].dn, "MpPin",
                         std::to_string(9900 + i));
    }
  }

  ldap::Client client = system->NewClient();
  std::vector<double> op_micros;
  int seq = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < 2 * kPopulation; ++i) {
      const Person& person = population[i % kPopulation];
      ++seq;
      int64_t start = NowMicros();
      // Even ops ride the healthy PBX path, odd ops target the dead
      // MP — client writes must succeed either way.
      Status status =
          (i % 2 == 0)
              ? client.Replace(person.dn, "roomNumber",
                               "B" + std::to_string(seq))
              : client.Replace(person.dn, "MpPin",
                               std::to_string(1000 + seq % 9000));
      op_micros.push_back(static_cast<double>(NowMicros() - start));
      if (!status.ok()) {
        state.SkipWithError("client write failed");
        return;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(op_micros.size()));

  core::UpdateManager::Stats stats = system->update_manager().stats();
  state.counters["p50_us"] = PercentileUs(op_micros, 0.50);
  state.counters["p99_us"] = PercentileUs(op_micros, 0.99);
  state.counters["breaker_open_skips"] =
      static_cast<double>(stats.breaker_open_skips);
  state.counters["errors"] = static_cast<double>(stats.errors);

  if (outage) {
    core::CircuitBreaker* breaker =
        system->update_manager().breaker("mp1");
    if (breaker == nullptr ||
        breaker->state() != core::CircuitBreaker::State::kOpen) {
      state.SkipWithError("circuit did not open during the outage");
    }
  }
}
BENCHMARK(BM_HealthyPathDuringOutage)
    ->ArgNames({"outage"})
    ->Args({0})
    ->Args({1})
    ->Iterations(3)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// args: [0] backlog size N (logged updates awaiting replay).
void BM_ReconvergeTime(benchmark::State& state) {
  const size_t backlog = static_cast<size_t>(state.range(0));
  core::SystemConfig config = ConfigForPopulation(kPopulation);
  config.device_command_rtt_micros = kRttMicros;
  config.um.breaker_failure_threshold = 2;
  config.um.breaker_open_backoff_micros = 1'000;
  config.um.breaker_max_backoff_micros = 10'000;
  WorkloadGenerator gen(13);
  std::vector<Person> population = gen.People(kPopulation);
  auto system = BuildPopulatedSystem(population, config);
  ldap::Client client = system->NewClient();

  int seq = 0;
  for (auto _ : state) {
    // Outage: N pin changes land in cn=errors (the first couple pay a
    // real refused attempt, the rest fast-fail on the open circuit).
    system->mp("mp1")->faults().set_disconnected(true);
    for (size_t i = 0; i < backlog; ++i) {
      ++seq;
      Status status =
          client.Replace(population[i % kPopulation].dn, "MpPin",
                         std::to_string(1000 + seq % 9000));
      if (!status.ok()) {
        state.SkipWithError("client write failed");
        return;
      }
    }
    if (BacklogFor(*system, "mp1") < backlog) {
      state.SkipWithError("backlog was not fully logged");
      return;
    }
    // The outage ends; wait out the (tiny) breaker backoff so the
    // first replay is admitted as the half-open probe, then time the
    // repair pass: replay in order, verify, drain the log.
    system->mp("mp1")->faults().set_disconnected(false);
    RealClock::Get()->SleepMicros(20'000);
    int64_t start = NowMicros();
    Status repaired = system->update_manager().RunRepairPass();
    int64_t elapsed = NowMicros() - start;
    if (!repaired.ok() || BacklogFor(*system, "mp1") != 0) {
      state.SkipWithError("repair pass did not drain the backlog");
      return;
    }
    state.SetIterationTime(static_cast<double>(elapsed) / 1e6);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(backlog));

  core::UpdateManager::Stats stats = system->update_manager().stats();
  state.counters["replayed"] = static_cast<double>(stats.replayed);
  state.counters["repair_syncs"] = static_cast<double>(stats.repair_syncs);

  // Spot-check convergence once, after timing: the device must hold
  // the last pin the directory logged for the last person updated.
  size_t last = (backlog - 1) % kPopulation;
  auto entry = client.Get(population[last].dn);
  auto mailbox = system->mp("mp1")->GetRecord(population[last].extension);
  if (!entry.ok() || !mailbox.ok() ||
      entry->GetFirst("MpPin") != mailbox->GetFirst("Pin")) {
    state.SkipWithError("device did not converge to the directory");
  }
}
BENCHMARK(BM_ReconvergeTime)
    ->ArgNames({"backlog"})
    ->Args({8})
    ->Args({32})
    ->Args({128})
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace metacomm::bench

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("fault_recovery", argc, argv);
}
