#include "bench/bench_main.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace metacomm::bench {

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

double ToMillis(double value, benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return value / 1e6;
    case benchmark::kMicrosecond:
      return value / 1e3;
    case benchmark::kMillisecond:
      return value;
    case benchmark::kSecond:
      return value * 1e3;
  }
  return value;
}

/// Nearest-rank percentile of `values` (0 when empty).
double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(values.size()));
  if (rank >= values.size()) rank = values.size() - 1;
  return values[rank];
}

/// The normal console output, plus a capture of every non-aggregate
/// run for the JSON summary.
class JsonCapture : public benchmark::ConsoleReporter {
 public:
  struct Sample {
    std::string name;
    int64_t iterations = 0;
    double real_ms = 0;  // Per-iteration wall time.
    double cpu_ms = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Sample sample;
      sample.name = run.benchmark_name();
      sample.iterations = run.iterations;
      sample.real_ms = ToMillis(run.GetAdjustedRealTime(), run.time_unit);
      sample.cpu_ms = ToMillis(run.GetAdjustedCPUTime(), run.time_unit);
      for (const auto& [key, counter] : run.counters) {
        sample.counters.emplace_back(key, counter.value);
      }
      samples_.push_back(std::move(sample));
    }
  }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
};

}  // namespace

int RunBenchMain(const std::string& name, int argc, char** argv) {
  bool json = false;
  std::vector<char*> args;
  std::string config;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
      continue;
    }
    args.push_back(argv[i]);
    if (i > 0) {
      if (!config.empty()) config += " ";
      config += argv[i];
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  JsonCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json) return 0;

  std::vector<double> real_times;
  real_times.reserve(reporter.samples().size());
  for (const JsonCapture::Sample& sample : reporter.samples()) {
    real_times.push_back(sample.real_ms);
  }

  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"" << JsonEscape(name) << "\",\n";
  out << "  \"config\": \"" << JsonEscape(config) << "\",\n";
  out << "  \"p50_ms\": " << Percentile(real_times, 0.50) << ",\n";
  out << "  \"p99_ms\": " << Percentile(real_times, 0.99) << ",\n";
  out << "  \"runs\": [";
  bool first = true;
  for (const JsonCapture::Sample& sample : reporter.samples()) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"name\": \"" << JsonEscape(sample.name) << "\", "
        << "\"iterations\": " << sample.iterations << ", "
        << "\"real_ms\": " << sample.real_ms << ", "
        << "\"cpu_ms\": " << sample.cpu_ms;
    double ops = sample.real_ms > 0 ? 1e3 / sample.real_ms : 0.0;
    out << ", \"ops_per_sec\": " << ops;
    for (const auto& [key, value] : sample.counters) {
      out << ", \"" << JsonEscape(key) << "\": " << value;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";

  const std::string path = "BENCH_" + name + ".json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  file << out.str();
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace metacomm::bench
