// Substrate benchmarks for the LDAP directory itself: these are not
// tied to a paper claim, but every experiment rides on this substrate,
// so its costs (and the equality index's effect) are pinned down here.

#include <benchmark/benchmark.h>

#include "bench/workload.h"
#include "core/integrated_schema.h"
#include "ldap/ldif.h"
#include "ldap/persistence.h"
#include "ldap/server.h"
#include "ldap/text_protocol.h"

namespace metacomm::bench {
namespace {

using ldap::Backend;
using ldap::Dn;
using ldap::Entry;
using ldap::Filter;
using ldap::Rdn;

/// Builds a schema-less backend with `count` person entries.
std::unique_ptr<Backend> BuildTree(size_t count) {
  auto backend = std::make_unique<Backend>();
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.SetOne("o", "Lucent");
  backend->Add(suffix);
  Entry people(*Dn::Parse("ou=People,o=Lucent"));
  people.AddObjectClass("top");
  people.SetOne("ou", "People");
  backend->Add(people);
  WorkloadGenerator gen(61);
  for (const Person& person : gen.People(count)) {
    Entry entry(*Dn::Parse(person.dn));
    entry.AddObjectClass("top");
    entry.AddObjectClass("person");
    entry.SetOne("cn", person.cn);
    entry.SetOne("sn", "X");
    entry.SetOne("telephoneNumber", "+1 908 582 " + person.extension);
    backend->Add(entry);
  }
  return backend;
}

void BM_DnParse(benchmark::State& state) {
  const char* text = "cn=Doe\\, John,ou=People,o=Lucent";
  for (auto _ : state) {
    auto dn = Dn::Parse(text);
    benchmark::DoNotOptimize(dn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnParse);

void BM_FilterParse(benchmark::State& state) {
  const char* text =
      "(&(objectClass=inetOrgPerson)(|(cn=John*)(sn=Doe))"
      "(telephoneNumber=+1 908 582 9*))";
  for (auto _ : state) {
    auto filter = Filter::Parse(text);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterParse);

void BM_FilterMatch(benchmark::State& state) {
  auto filter = Filter::Parse(
      "(&(objectClass=person)(telephoneNumber=+1 908 582 4*))");
  Entry entry(*Dn::Parse("cn=X,o=L"));
  entry.Set("objectClass", {"top", "person"});
  entry.SetOne("cn", "X");
  entry.SetOne("telephoneNumber", "+1 908 582 4567");
  for (auto _ : state) {
    bool matched = filter->Matches(entry);
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterMatch);

/// Equality search: the per-attribute index turns a subtree scan into
/// a hash-style lookup. args: [0] = tree size.
void BM_SearchIndexedEquality(benchmark::State& state) {
  auto backend = BuildTree(static_cast<size_t>(state.range(0)));
  ldap::SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.scope = ldap::Scope::kSubtree;
  request.filter = Filter::Equality("telephoneNumber",
                                    "+1 908 582 40100");
  // The number exists only for >1000 populations; use one that always
  // exists: regenerate from the workload.
  WorkloadGenerator gen(61);
  Person target = gen.People(static_cast<size_t>(state.range(0)))
                      [static_cast<size_t>(state.range(0)) / 2];
  request.filter =
      Filter::Equality("telephoneNumber", "+1 908 582 " + target.extension);
  for (auto _ : state) {
    auto result = backend->Search(request);
    if (!result.ok() || result->entries.size() != 1) {
      state.SkipWithError("search failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SearchIndexedEquality)->Arg(100)->Arg(1000)->Arg(5000);

/// Substring search cannot use the equality index: full subtree scan.
void BM_SearchSubstringScan(benchmark::State& state) {
  auto backend = BuildTree(static_cast<size_t>(state.range(0)));
  WorkloadGenerator gen(61);
  Person target = gen.People(static_cast<size_t>(state.range(0)))
                      [static_cast<size_t>(state.range(0)) / 2];
  ldap::SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.scope = ldap::Scope::kSubtree;
  request.filter =
      Filter::Substring("telephoneNumber", "*" + target.extension);
  for (auto _ : state) {
    auto result = backend->Search(request);
    if (!result.ok()) {
      state.SkipWithError("search failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SearchSubstringScan)->Arg(100)->Arg(1000)->Arg(5000);

void BM_LdifExportImport(benchmark::State& state) {
  auto backend = BuildTree(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string text = ldap::ExportLdif(*backend);
    Backend fresh;
    auto loaded = ldap::ImportLdif(&fresh, text);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LdifExportImport)->Arg(100)->Arg(1000);

/// The text wire protocol's overhead relative to direct calls.
void BM_TextProtocolSearch(benchmark::State& state) {
  ldap::LdapServer server(
      core::BuildIntegratedSchema(),
      ldap::ServerConfig{.allow_anonymous_writes = true});
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.AddObjectClass("organization");
  suffix.SetOne("o", "Lucent");
  server.backend().Add(suffix);
  Entry person(*Dn::Parse("cn=John Doe,o=Lucent"));
  person.Set("objectClass", {"top", "person", "organizationalPerson",
                             "inetOrgPerson"});
  person.SetOne("cn", "John Doe");
  person.SetOne("sn", "Doe");
  server.backend().Add(person);

  ldap::TextProtocolHandler handler(&server);
  ldap::TextProtocolClient wire(
      [&handler](const std::string& r) { return handler.Handle(r); });

  ldap::OpContext ctx;
  ldap::SearchRequest request;
  request.base = *Dn::Parse("cn=John Doe,o=Lucent");
  request.scope = ldap::Scope::kBase;
  for (auto _ : state) {
    auto result = wire.Search(ctx, request);
    if (!result.ok() || result->entries.size() != 1) {
      state.SkipWithError("wire search failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextProtocolSearch);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("directory", argc, argv);
}
