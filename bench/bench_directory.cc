// Substrate benchmarks for the LDAP directory itself: these are not
// tied to a paper claim, but every experiment rides on this substrate,
// so its costs (and the equality index's effect) are pinned down here.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench/workload.h"
#include "core/integrated_schema.h"
#include "ldap/ldif.h"
#include "ldap/persistence.h"
#include "ldap/server.h"
#include "ldap/text_protocol.h"

namespace metacomm::bench {
namespace {

using ldap::Backend;
using ldap::Dn;
using ldap::Entry;
using ldap::Filter;
using ldap::Rdn;

/// Builds a schema-less backend with `count` person entries.
std::unique_ptr<Backend> BuildTree(size_t count) {
  auto backend = std::make_unique<Backend>();
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.SetOne("o", "Lucent");
  backend->Add(suffix);
  Entry people(*Dn::Parse("ou=People,o=Lucent"));
  people.AddObjectClass("top");
  people.SetOne("ou", "People");
  backend->Add(people);
  WorkloadGenerator gen(61);
  for (const Person& person : gen.People(count)) {
    Entry entry(*Dn::Parse(person.dn));
    entry.AddObjectClass("top");
    entry.AddObjectClass("person");
    entry.SetOne("cn", person.cn);
    entry.SetOne("sn", "X");
    entry.SetOne("telephoneNumber", "+1 908 582 " + person.extension);
    backend->Add(entry);
  }
  return backend;
}

void BM_DnParse(benchmark::State& state) {
  const char* text = "cn=Doe\\, John,ou=People,o=Lucent";
  for (auto _ : state) {
    auto dn = Dn::Parse(text);
    benchmark::DoNotOptimize(dn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnParse);

void BM_FilterParse(benchmark::State& state) {
  const char* text =
      "(&(objectClass=inetOrgPerson)(|(cn=John*)(sn=Doe))"
      "(telephoneNumber=+1 908 582 9*))";
  for (auto _ : state) {
    auto filter = Filter::Parse(text);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterParse);

void BM_FilterMatch(benchmark::State& state) {
  auto filter = Filter::Parse(
      "(&(objectClass=person)(telephoneNumber=+1 908 582 4*))");
  Entry entry(*Dn::Parse("cn=X,o=L"));
  entry.Set("objectClass", {"top", "person"});
  entry.SetOne("cn", "X");
  entry.SetOne("telephoneNumber", "+1 908 582 4567");
  for (auto _ : state) {
    bool matched = filter->Matches(entry);
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterMatch);

/// Equality search: the per-attribute index turns a subtree scan into
/// a hash-style lookup. args: [0] = tree size.
void BM_SearchIndexedEquality(benchmark::State& state) {
  auto backend = BuildTree(static_cast<size_t>(state.range(0)));
  ldap::SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.scope = ldap::Scope::kSubtree;
  request.filter = Filter::Equality("telephoneNumber",
                                    "+1 908 582 40100");
  // The number exists only for >1000 populations; use one that always
  // exists: regenerate from the workload.
  WorkloadGenerator gen(61);
  Person target = gen.People(static_cast<size_t>(state.range(0)))
                      [static_cast<size_t>(state.range(0)) / 2];
  request.filter =
      Filter::Equality("telephoneNumber", "+1 908 582 " + target.extension);
  for (auto _ : state) {
    auto result = backend->Search(request);
    if (!result.ok() || result->entries.size() != 1) {
      state.SkipWithError("search failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SearchIndexedEquality)->Arg(100)->Arg(1000)->Arg(5000);

/// Substring search cannot use the equality index: full subtree scan.
void BM_SearchSubstringScan(benchmark::State& state) {
  auto backend = BuildTree(static_cast<size_t>(state.range(0)));
  WorkloadGenerator gen(61);
  Person target = gen.People(static_cast<size_t>(state.range(0)))
                      [static_cast<size_t>(state.range(0)) / 2];
  ldap::SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.scope = ldap::Scope::kSubtree;
  request.filter =
      Filter::Substring("telephoneNumber", "*" + target.extension);
  for (auto _ : state) {
    auto result = backend->Search(request);
    if (!result.ok()) {
      state.SkipWithError("search failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SearchSubstringScan)->Arg(100)->Arg(1000)->Arg(5000);

/// Substring search whose pattern carries a literal prefix
/// ("+1 908 582 4123*"): the ordered value index turns this into a
/// range scan instead of a full subtree walk.
void BM_SearchSubstringPrefix(benchmark::State& state) {
  auto backend = BuildTree(static_cast<size_t>(state.range(0)));
  WorkloadGenerator gen(61);
  Person target = gen.People(static_cast<size_t>(state.range(0)))
                      [static_cast<size_t>(state.range(0)) / 2];
  ldap::SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.scope = ldap::Scope::kSubtree;
  request.filter =
      Filter::Substring("telephoneNumber", "+1 908 582 " + target.extension + "*");
  for (auto _ : state) {
    auto result = backend->Search(request);
    if (!result.ok() || result->entries.size() != 1) {
      state.SkipWithError("search failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SearchSubstringPrefix)->Arg(100)->Arg(1000)->Arg(5000);

/// Nearest-rank percentile of per-operation latencies.
double LatencyPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(values.size()));
  if (rank >= values.size()) rank = values.size() - 1;
  return values[rank];
}

/// Reader scaling under a writer storm: N closed-loop reader threads
/// (50us think time, like real lookup clients) run indexed equality
/// searches while one dedicated thread writes flat-out — a stream of
/// multi-valued attribute Modifys punctuated every 64 writes by a
/// subtree-wide case-only rename of ou=People (2000 descendant DNs
/// rewritten and reindexed: the cost shape of a UM propagation wave or
/// a bulk reorg). This is the materialized-view serving scenario
/// (paper §1): lookup traffic must not stall behind integration
/// writes. Readers are paced rather than open-loop because an
/// open-loop reader swarm starves the writer outright on the seed's
/// reader-preferring rwlock, which hides the very contention being
/// measured. Reported per-thread latency percentiles
/// (p50_us/p99_us, averaged across reader threads) are the acceptance
/// metric for the snapshot read path; `writes` shows how much writer
/// progress the read traffic allows.
void BM_SearchUnderWriterStorm(benchmark::State& state) {
  static std::unique_ptr<Backend> backend;
  static std::atomic<bool> stop_writer{false};
  static std::thread writer;
  static std::atomic<uint64_t> writes{0};
  constexpr size_t kPopulation = 2000;
  if (state.thread_index() == 0) {
    backend = BuildTree(kPopulation);
    stop_writer.store(false);
    writes.store(0);
    writer = std::thread([] {
      WorkloadGenerator gen(7);
      std::vector<Person> people = gen.People(kPopulation);
      std::vector<Dn> dns;
      dns.reserve(people.size());
      for (const Person& p : people) dns.push_back(*Dn::Parse(p.dn));
      Dn people_dn = *Dn::Parse("ou=People,o=Lucent");
      size_t i = 0;
      uint64_t stamp = 0;
      bool upper = false;
      while (!stop_writer.load(std::memory_order_relaxed)) {
        if (++stamp % 64 == 0) {
          // Case-only rename: same normalized RDN, so reader DNs keep
          // resolving, but every descendant DN is rewritten and the
          // subtree reindexed — a long exclusive hold on the seed.
          upper = !upper;
          backend->ModifyRdn(people_dn,
                             Rdn("ou", upper ? "PEOPLE" : "People"),
                             /*delete_old_rdn=*/true);
        } else {
          // A UM wave writes several generated attributes per entry;
          // emulate that weight with a multi-valued replace.
          ldap::Modification mod;
          mod.type = ldap::Modification::Type::kReplace;
          mod.attribute = "description";
          for (int k = 0; k < 16; ++k) {
            mod.values.push_back("storm-" + std::to_string(stamp) + "-" +
                                 std::to_string(k));
          }
          backend->Modify(dns[i++ % dns.size()], {std::move(mod)});
        }
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  WorkloadGenerator gen(61);
  std::vector<Person> people = gen.People(kPopulation);
  ldap::SearchRequest request;
  request.base = *Dn::Parse("o=Lucent");
  request.scope = ldap::Scope::kSubtree;
  size_t pick = static_cast<size_t>(state.thread_index()) * 37 + 1;
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 16);
  for (auto _ : state) {
    const Person& target = people[pick++ % people.size()];
    request.filter = Filter::Equality("telephoneNumber",
                                      "+1 908 582 " + target.extension);
    auto start = std::chrono::steady_clock::now();
    auto result = backend->Search(request);
    auto stop = std::chrono::steady_clock::now();
    if (!result.ok() || result->entries.size() != 1) {
      state.SkipWithError("search failed");
      break;
    }
    benchmark::DoNotOptimize(result);
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["p50_us"] = benchmark::Counter(
      LatencyPercentile(latencies_us, 0.50), benchmark::Counter::kAvgThreads);
  state.counters["p99_us"] = benchmark::Counter(
      LatencyPercentile(latencies_us, 0.99), benchmark::Counter::kAvgThreads);
  if (state.thread_index() == 0) {
    stop_writer.store(true);
    writer.join();
    state.counters["writes"] = benchmark::Counter(
        static_cast<double>(writes.load()));
    backend.reset();
  }
}
BENCHMARK(BM_SearchUnderWriterStorm)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_LdifExportImport(benchmark::State& state) {
  auto backend = BuildTree(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string text = ldap::ExportLdif(*backend);
    Backend fresh;
    auto loaded = ldap::ImportLdif(&fresh, text);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LdifExportImport)->Arg(100)->Arg(1000);

/// The text wire protocol's overhead relative to direct calls.
void BM_TextProtocolSearch(benchmark::State& state) {
  ldap::LdapServer server(
      core::BuildIntegratedSchema(),
      ldap::ServerConfig{.allow_anonymous_writes = true});
  Entry suffix(*Dn::Parse("o=Lucent"));
  suffix.AddObjectClass("top");
  suffix.AddObjectClass("organization");
  suffix.SetOne("o", "Lucent");
  server.backend().Add(suffix);
  Entry person(*Dn::Parse("cn=John Doe,o=Lucent"));
  person.Set("objectClass", {"top", "person", "organizationalPerson",
                             "inetOrgPerson"});
  person.SetOne("cn", "John Doe");
  person.SetOne("sn", "Doe");
  server.backend().Add(person);

  ldap::TextProtocolHandler handler(&server);
  ldap::TextProtocolClient wire(
      [&handler](const std::string& r) { return handler.Handle(r); });

  ldap::OpContext ctx;
  ldap::SearchRequest request;
  request.base = *Dn::Parse("cn=John Doe,o=Lucent");
  request.scope = ldap::Scope::kBase;
  for (auto _ : state) {
    auto result = wire.Search(ctx, request);
    if (!result.ok() || result->entries.size() != 1) {
      state.SkipWithError("wire search failed");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TextProtocolSearch);

}  // namespace
}  // namespace metacomm::bench

#include "bench/bench_main.h"

int main(int argc, char** argv) {
  return metacomm::bench::RunBenchMain("directory", argc, argv);
}
