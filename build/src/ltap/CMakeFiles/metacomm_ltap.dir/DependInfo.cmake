
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ltap/gateway.cc" "src/ltap/CMakeFiles/metacomm_ltap.dir/gateway.cc.o" "gcc" "src/ltap/CMakeFiles/metacomm_ltap.dir/gateway.cc.o.d"
  "/root/repo/src/ltap/lock_table.cc" "src/ltap/CMakeFiles/metacomm_ltap.dir/lock_table.cc.o" "gcc" "src/ltap/CMakeFiles/metacomm_ltap.dir/lock_table.cc.o.d"
  "/root/repo/src/ltap/trigger.cc" "src/ltap/CMakeFiles/metacomm_ltap.dir/trigger.cc.o" "gcc" "src/ltap/CMakeFiles/metacomm_ltap.dir/trigger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ldap/CMakeFiles/metacomm_ldap.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metacomm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
