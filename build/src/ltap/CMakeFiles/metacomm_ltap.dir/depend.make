# Empty dependencies file for metacomm_ltap.
# This may be replaced when dependencies are built.
