file(REMOVE_RECURSE
  "libmetacomm_ltap.a"
)
