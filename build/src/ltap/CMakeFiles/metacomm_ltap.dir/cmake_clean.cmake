file(REMOVE_RECURSE
  "CMakeFiles/metacomm_ltap.dir/gateway.cc.o"
  "CMakeFiles/metacomm_ltap.dir/gateway.cc.o.d"
  "CMakeFiles/metacomm_ltap.dir/lock_table.cc.o"
  "CMakeFiles/metacomm_ltap.dir/lock_table.cc.o.d"
  "CMakeFiles/metacomm_ltap.dir/trigger.cc.o"
  "CMakeFiles/metacomm_ltap.dir/trigger.cc.o.d"
  "libmetacomm_ltap.a"
  "libmetacomm_ltap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomm_ltap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
