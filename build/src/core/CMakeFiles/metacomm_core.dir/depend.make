# Empty dependencies file for metacomm_core.
# This may be replaced when dependencies are built.
