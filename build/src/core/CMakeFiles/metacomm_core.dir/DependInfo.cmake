
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/device_filter.cc" "src/core/CMakeFiles/metacomm_core.dir/device_filter.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/device_filter.cc.o.d"
  "/root/repo/src/core/integrated_schema.cc" "src/core/CMakeFiles/metacomm_core.dir/integrated_schema.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/integrated_schema.cc.o.d"
  "/root/repo/src/core/ldap_filter.cc" "src/core/CMakeFiles/metacomm_core.dir/ldap_filter.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/ldap_filter.cc.o.d"
  "/root/repo/src/core/mapping_gen.cc" "src/core/CMakeFiles/metacomm_core.dir/mapping_gen.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/mapping_gen.cc.o.d"
  "/root/repo/src/core/metacomm.cc" "src/core/CMakeFiles/metacomm_core.dir/metacomm.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/metacomm.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/core/CMakeFiles/metacomm_core.dir/monitor.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/monitor.cc.o.d"
  "/root/repo/src/core/protocol_converters.cc" "src/core/CMakeFiles/metacomm_core.dir/protocol_converters.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/protocol_converters.cc.o.d"
  "/root/repo/src/core/update_manager.cc" "src/core/CMakeFiles/metacomm_core.dir/update_manager.cc.o" "gcc" "src/core/CMakeFiles/metacomm_core.dir/update_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ltap/CMakeFiles/metacomm_ltap.dir/DependInfo.cmake"
  "/root/repo/build/src/lexpress/CMakeFiles/metacomm_lexpress.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/metacomm_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/ldap/CMakeFiles/metacomm_ldap.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metacomm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
