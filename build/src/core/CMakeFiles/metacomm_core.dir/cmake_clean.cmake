file(REMOVE_RECURSE
  "CMakeFiles/metacomm_core.dir/device_filter.cc.o"
  "CMakeFiles/metacomm_core.dir/device_filter.cc.o.d"
  "CMakeFiles/metacomm_core.dir/integrated_schema.cc.o"
  "CMakeFiles/metacomm_core.dir/integrated_schema.cc.o.d"
  "CMakeFiles/metacomm_core.dir/ldap_filter.cc.o"
  "CMakeFiles/metacomm_core.dir/ldap_filter.cc.o.d"
  "CMakeFiles/metacomm_core.dir/mapping_gen.cc.o"
  "CMakeFiles/metacomm_core.dir/mapping_gen.cc.o.d"
  "CMakeFiles/metacomm_core.dir/metacomm.cc.o"
  "CMakeFiles/metacomm_core.dir/metacomm.cc.o.d"
  "CMakeFiles/metacomm_core.dir/monitor.cc.o"
  "CMakeFiles/metacomm_core.dir/monitor.cc.o.d"
  "CMakeFiles/metacomm_core.dir/protocol_converters.cc.o"
  "CMakeFiles/metacomm_core.dir/protocol_converters.cc.o.d"
  "CMakeFiles/metacomm_core.dir/update_manager.cc.o"
  "CMakeFiles/metacomm_core.dir/update_manager.cc.o.d"
  "libmetacomm_core.a"
  "libmetacomm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
