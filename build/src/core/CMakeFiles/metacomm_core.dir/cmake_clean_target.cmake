file(REMOVE_RECURSE
  "libmetacomm_core.a"
)
