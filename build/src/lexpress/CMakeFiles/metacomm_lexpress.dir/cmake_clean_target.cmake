file(REMOVE_RECURSE
  "libmetacomm_lexpress.a"
)
