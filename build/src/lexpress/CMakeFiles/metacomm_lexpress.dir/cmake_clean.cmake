file(REMOVE_RECURSE
  "CMakeFiles/metacomm_lexpress.dir/bytecode.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/bytecode.cc.o.d"
  "CMakeFiles/metacomm_lexpress.dir/closure.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/closure.cc.o.d"
  "CMakeFiles/metacomm_lexpress.dir/compiler.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/compiler.cc.o.d"
  "CMakeFiles/metacomm_lexpress.dir/lexer.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/lexer.cc.o.d"
  "CMakeFiles/metacomm_lexpress.dir/mapping.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/mapping.cc.o.d"
  "CMakeFiles/metacomm_lexpress.dir/parser.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/parser.cc.o.d"
  "CMakeFiles/metacomm_lexpress.dir/record.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/record.cc.o.d"
  "CMakeFiles/metacomm_lexpress.dir/vm.cc.o"
  "CMakeFiles/metacomm_lexpress.dir/vm.cc.o.d"
  "libmetacomm_lexpress.a"
  "libmetacomm_lexpress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomm_lexpress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
