# Empty dependencies file for metacomm_lexpress.
# This may be replaced when dependencies are built.
