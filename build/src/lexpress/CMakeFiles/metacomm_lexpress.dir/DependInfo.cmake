
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lexpress/bytecode.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/bytecode.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/bytecode.cc.o.d"
  "/root/repo/src/lexpress/closure.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/closure.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/closure.cc.o.d"
  "/root/repo/src/lexpress/compiler.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/compiler.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/compiler.cc.o.d"
  "/root/repo/src/lexpress/lexer.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/lexer.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/lexer.cc.o.d"
  "/root/repo/src/lexpress/mapping.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/mapping.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/mapping.cc.o.d"
  "/root/repo/src/lexpress/parser.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/parser.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/parser.cc.o.d"
  "/root/repo/src/lexpress/record.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/record.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/record.cc.o.d"
  "/root/repo/src/lexpress/vm.cc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/vm.cc.o" "gcc" "src/lexpress/CMakeFiles/metacomm_lexpress.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/metacomm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
