file(REMOVE_RECURSE
  "CMakeFiles/metacomm_devices.dir/definity_pbx.cc.o"
  "CMakeFiles/metacomm_devices.dir/definity_pbx.cc.o.d"
  "CMakeFiles/metacomm_devices.dir/messaging_platform.cc.o"
  "CMakeFiles/metacomm_devices.dir/messaging_platform.cc.o.d"
  "libmetacomm_devices.a"
  "libmetacomm_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomm_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
