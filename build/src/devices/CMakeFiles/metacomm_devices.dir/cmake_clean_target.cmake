file(REMOVE_RECURSE
  "libmetacomm_devices.a"
)
