# Empty dependencies file for metacomm_devices.
# This may be replaced when dependencies are built.
