# Empty compiler generated dependencies file for metacomm_ldap.
# This may be replaced when dependencies are built.
