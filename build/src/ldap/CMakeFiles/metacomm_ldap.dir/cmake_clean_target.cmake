file(REMOVE_RECURSE
  "libmetacomm_ldap.a"
)
