file(REMOVE_RECURSE
  "CMakeFiles/metacomm_ldap.dir/access.cc.o"
  "CMakeFiles/metacomm_ldap.dir/access.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/attribute.cc.o"
  "CMakeFiles/metacomm_ldap.dir/attribute.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/backend.cc.o"
  "CMakeFiles/metacomm_ldap.dir/backend.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/client.cc.o"
  "CMakeFiles/metacomm_ldap.dir/client.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/dn.cc.o"
  "CMakeFiles/metacomm_ldap.dir/dn.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/entry.cc.o"
  "CMakeFiles/metacomm_ldap.dir/entry.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/filter.cc.o"
  "CMakeFiles/metacomm_ldap.dir/filter.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/ldif.cc.o"
  "CMakeFiles/metacomm_ldap.dir/ldif.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/persistence.cc.o"
  "CMakeFiles/metacomm_ldap.dir/persistence.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/replication.cc.o"
  "CMakeFiles/metacomm_ldap.dir/replication.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/schema.cc.o"
  "CMakeFiles/metacomm_ldap.dir/schema.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/server.cc.o"
  "CMakeFiles/metacomm_ldap.dir/server.cc.o.d"
  "CMakeFiles/metacomm_ldap.dir/text_protocol.cc.o"
  "CMakeFiles/metacomm_ldap.dir/text_protocol.cc.o.d"
  "libmetacomm_ldap.a"
  "libmetacomm_ldap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomm_ldap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
