
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ldap/access.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/access.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/access.cc.o.d"
  "/root/repo/src/ldap/attribute.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/attribute.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/attribute.cc.o.d"
  "/root/repo/src/ldap/backend.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/backend.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/backend.cc.o.d"
  "/root/repo/src/ldap/client.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/client.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/client.cc.o.d"
  "/root/repo/src/ldap/dn.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/dn.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/dn.cc.o.d"
  "/root/repo/src/ldap/entry.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/entry.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/entry.cc.o.d"
  "/root/repo/src/ldap/filter.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/filter.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/filter.cc.o.d"
  "/root/repo/src/ldap/ldif.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/ldif.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/ldif.cc.o.d"
  "/root/repo/src/ldap/persistence.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/persistence.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/persistence.cc.o.d"
  "/root/repo/src/ldap/replication.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/replication.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/replication.cc.o.d"
  "/root/repo/src/ldap/schema.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/schema.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/schema.cc.o.d"
  "/root/repo/src/ldap/server.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/server.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/server.cc.o.d"
  "/root/repo/src/ldap/text_protocol.cc" "src/ldap/CMakeFiles/metacomm_ldap.dir/text_protocol.cc.o" "gcc" "src/ldap/CMakeFiles/metacomm_ldap.dir/text_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/metacomm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
