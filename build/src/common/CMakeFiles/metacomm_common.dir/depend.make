# Empty dependencies file for metacomm_common.
# This may be replaced when dependencies are built.
