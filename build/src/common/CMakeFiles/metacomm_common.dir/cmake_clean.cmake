file(REMOVE_RECURSE
  "CMakeFiles/metacomm_common.dir/clock.cc.o"
  "CMakeFiles/metacomm_common.dir/clock.cc.o.d"
  "CMakeFiles/metacomm_common.dir/logging.cc.o"
  "CMakeFiles/metacomm_common.dir/logging.cc.o.d"
  "CMakeFiles/metacomm_common.dir/random.cc.o"
  "CMakeFiles/metacomm_common.dir/random.cc.o.d"
  "CMakeFiles/metacomm_common.dir/status.cc.o"
  "CMakeFiles/metacomm_common.dir/status.cc.o.d"
  "CMakeFiles/metacomm_common.dir/strings.cc.o"
  "CMakeFiles/metacomm_common.dir/strings.cc.o.d"
  "libmetacomm_common.a"
  "libmetacomm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
