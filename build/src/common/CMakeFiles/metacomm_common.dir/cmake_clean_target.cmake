file(REMOVE_RECURSE
  "libmetacomm_common.a"
)
