file(REMOVE_RECURSE
  "CMakeFiles/hoteling.dir/hoteling.cpp.o"
  "CMakeFiles/hoteling.dir/hoteling.cpp.o.d"
  "hoteling"
  "hoteling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoteling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
