# Empty dependencies file for hoteling.
# This may be replaced when dependencies are built.
