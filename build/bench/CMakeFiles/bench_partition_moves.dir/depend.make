# Empty dependencies file for bench_partition_moves.
# This may be replaced when dependencies are built.
