file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_moves.dir/bench_partition_moves.cc.o"
  "CMakeFiles/bench_partition_moves.dir/bench_partition_moves.cc.o.d"
  "bench_partition_moves"
  "bench_partition_moves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
