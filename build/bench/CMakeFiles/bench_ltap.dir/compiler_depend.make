# Empty compiler generated dependencies file for bench_ltap.
# This may be replaced when dependencies are built.
