file(REMOVE_RECURSE
  "CMakeFiles/bench_ltap.dir/bench_ltap.cc.o"
  "CMakeFiles/bench_ltap.dir/bench_ltap.cc.o.d"
  "bench_ltap"
  "bench_ltap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ltap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
