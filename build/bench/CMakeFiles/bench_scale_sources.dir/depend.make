# Empty dependencies file for bench_scale_sources.
# This may be replaced when dependencies are built.
