file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_sources.dir/bench_scale_sources.cc.o"
  "CMakeFiles/bench_scale_sources.dir/bench_scale_sources.cc.o.d"
  "bench_scale_sources"
  "bench_scale_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
