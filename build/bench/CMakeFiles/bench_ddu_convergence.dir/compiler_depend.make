# Empty compiler generated dependencies file for bench_ddu_convergence.
# This may be replaced when dependencies are built.
