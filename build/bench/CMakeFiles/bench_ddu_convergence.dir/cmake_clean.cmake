file(REMOVE_RECURSE
  "CMakeFiles/bench_ddu_convergence.dir/bench_ddu_convergence.cc.o"
  "CMakeFiles/bench_ddu_convergence.dir/bench_ddu_convergence.cc.o.d"
  "bench_ddu_convergence"
  "bench_ddu_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddu_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
