file(REMOVE_RECURSE
  "libmetacomm_bench_workload.a"
)
