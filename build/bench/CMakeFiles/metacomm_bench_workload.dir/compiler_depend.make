# Empty compiler generated dependencies file for metacomm_bench_workload.
# This may be replaced when dependencies are built.
