file(REMOVE_RECURSE
  "CMakeFiles/metacomm_bench_workload.dir/workload.cc.o"
  "CMakeFiles/metacomm_bench_workload.dir/workload.cc.o.d"
  "libmetacomm_bench_workload.a"
  "libmetacomm_bench_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacomm_bench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
