# Empty compiler generated dependencies file for bench_lexpress.
# This may be replaced when dependencies are built.
