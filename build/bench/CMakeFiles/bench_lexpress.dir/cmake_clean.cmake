file(REMOVE_RECURSE
  "CMakeFiles/bench_lexpress.dir/bench_lexpress.cc.o"
  "CMakeFiles/bench_lexpress.dir/bench_lexpress.cc.o.d"
  "bench_lexpress"
  "bench_lexpress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lexpress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
