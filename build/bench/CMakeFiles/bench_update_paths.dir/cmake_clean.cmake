file(REMOVE_RECURSE
  "CMakeFiles/bench_update_paths.dir/bench_update_paths.cc.o"
  "CMakeFiles/bench_update_paths.dir/bench_update_paths.cc.o.d"
  "bench_update_paths"
  "bench_update_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
