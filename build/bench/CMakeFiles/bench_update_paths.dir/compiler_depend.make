# Empty compiler generated dependencies file for bench_update_paths.
# This may be replaced when dependencies are built.
