
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_gateway_vs_library.cc" "bench/CMakeFiles/bench_gateway_vs_library.dir/bench_gateway_vs_library.cc.o" "gcc" "bench/CMakeFiles/bench_gateway_vs_library.dir/bench_gateway_vs_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/metacomm_bench_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/metacomm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ltap/CMakeFiles/metacomm_ltap.dir/DependInfo.cmake"
  "/root/repo/build/src/ldap/CMakeFiles/metacomm_ldap.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/metacomm_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/lexpress/CMakeFiles/metacomm_lexpress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metacomm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
