file(REMOVE_RECURSE
  "CMakeFiles/bench_gateway_vs_library.dir/bench_gateway_vs_library.cc.o"
  "CMakeFiles/bench_gateway_vs_library.dir/bench_gateway_vs_library.cc.o.d"
  "bench_gateway_vs_library"
  "bench_gateway_vs_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gateway_vs_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
