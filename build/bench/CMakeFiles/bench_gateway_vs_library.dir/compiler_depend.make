# Empty compiler generated dependencies file for bench_gateway_vs_library.
# This may be replaced when dependencies are built.
