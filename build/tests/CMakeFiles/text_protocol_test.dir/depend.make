# Empty dependencies file for text_protocol_test.
# This may be replaced when dependencies are built.
