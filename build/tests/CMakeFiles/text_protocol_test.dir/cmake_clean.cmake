file(REMOVE_RECURSE
  "CMakeFiles/text_protocol_test.dir/text_protocol_test.cc.o"
  "CMakeFiles/text_protocol_test.dir/text_protocol_test.cc.o.d"
  "text_protocol_test"
  "text_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
