file(REMOVE_RECURSE
  "CMakeFiles/backend_model_test.dir/backend_model_test.cc.o"
  "CMakeFiles/backend_model_test.dir/backend_model_test.cc.o.d"
  "backend_model_test"
  "backend_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
