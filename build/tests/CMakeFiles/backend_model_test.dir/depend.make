# Empty dependencies file for backend_model_test.
# This may be replaced when dependencies are built.
