# Empty compiler generated dependencies file for lexpress_dirty_data_test.
# This may be replaced when dependencies are built.
