file(REMOVE_RECURSE
  "CMakeFiles/lexpress_dirty_data_test.dir/lexpress_dirty_data_test.cc.o"
  "CMakeFiles/lexpress_dirty_data_test.dir/lexpress_dirty_data_test.cc.o.d"
  "lexpress_dirty_data_test"
  "lexpress_dirty_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexpress_dirty_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
