file(REMOVE_RECURSE
  "CMakeFiles/mapping_gen_test.dir/mapping_gen_test.cc.o"
  "CMakeFiles/mapping_gen_test.dir/mapping_gen_test.cc.o.d"
  "mapping_gen_test"
  "mapping_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
