file(REMOVE_RECURSE
  "CMakeFiles/ltap_test.dir/ltap_test.cc.o"
  "CMakeFiles/ltap_test.dir/ltap_test.cc.o.d"
  "ltap_test"
  "ltap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
