# Empty compiler generated dependencies file for ltap_test.
# This may be replaced when dependencies are built.
