# Empty dependencies file for ldif_test.
# This may be replaced when dependencies are built.
