file(REMOVE_RECURSE
  "CMakeFiles/update_plan_test.dir/update_plan_test.cc.o"
  "CMakeFiles/update_plan_test.dir/update_plan_test.cc.o.d"
  "update_plan_test"
  "update_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
