file(REMOVE_RECURSE
  "CMakeFiles/common_infra_test.dir/common_infra_test.cc.o"
  "CMakeFiles/common_infra_test.dir/common_infra_test.cc.o.d"
  "common_infra_test"
  "common_infra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_infra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
