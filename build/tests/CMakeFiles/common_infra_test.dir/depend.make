# Empty dependencies file for common_infra_test.
# This may be replaced when dependencies are built.
