file(REMOVE_RECURSE
  "CMakeFiles/entry_test.dir/entry_test.cc.o"
  "CMakeFiles/entry_test.dir/entry_test.cc.o.d"
  "entry_test"
  "entry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
