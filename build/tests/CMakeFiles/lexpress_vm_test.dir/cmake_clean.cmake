file(REMOVE_RECURSE
  "CMakeFiles/lexpress_vm_test.dir/lexpress_vm_test.cc.o"
  "CMakeFiles/lexpress_vm_test.dir/lexpress_vm_test.cc.o.d"
  "lexpress_vm_test"
  "lexpress_vm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexpress_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
