# Empty dependencies file for lexpress_vm_test.
# This may be replaced when dependencies are built.
