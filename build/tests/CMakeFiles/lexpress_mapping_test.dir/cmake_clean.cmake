file(REMOVE_RECURSE
  "CMakeFiles/lexpress_mapping_test.dir/lexpress_mapping_test.cc.o"
  "CMakeFiles/lexpress_mapping_test.dir/lexpress_mapping_test.cc.o.d"
  "lexpress_mapping_test"
  "lexpress_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexpress_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
