# Empty compiler generated dependencies file for lexpress_mapping_test.
# This may be replaced when dependencies are built.
