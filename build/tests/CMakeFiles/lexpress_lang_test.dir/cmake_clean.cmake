file(REMOVE_RECURSE
  "CMakeFiles/lexpress_lang_test.dir/lexpress_lang_test.cc.o"
  "CMakeFiles/lexpress_lang_test.dir/lexpress_lang_test.cc.o.d"
  "lexpress_lang_test"
  "lexpress_lang_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexpress_lang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
