# Empty dependencies file for lexpress_lang_test.
# This may be replaced when dependencies are built.
