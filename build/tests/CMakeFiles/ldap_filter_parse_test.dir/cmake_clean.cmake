file(REMOVE_RECURSE
  "CMakeFiles/ldap_filter_parse_test.dir/ldap_filter_parse_test.cc.o"
  "CMakeFiles/ldap_filter_parse_test.dir/ldap_filter_parse_test.cc.o.d"
  "ldap_filter_parse_test"
  "ldap_filter_parse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldap_filter_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
