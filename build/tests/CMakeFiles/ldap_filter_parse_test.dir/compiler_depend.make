# Empty compiler generated dependencies file for ldap_filter_parse_test.
# This may be replaced when dependencies are built.
