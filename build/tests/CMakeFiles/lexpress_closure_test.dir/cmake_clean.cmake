file(REMOVE_RECURSE
  "CMakeFiles/lexpress_closure_test.dir/lexpress_closure_test.cc.o"
  "CMakeFiles/lexpress_closure_test.dir/lexpress_closure_test.cc.o.d"
  "lexpress_closure_test"
  "lexpress_closure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexpress_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
