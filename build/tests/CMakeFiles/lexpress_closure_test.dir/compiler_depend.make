# Empty compiler generated dependencies file for lexpress_closure_test.
# This may be replaced when dependencies are built.
