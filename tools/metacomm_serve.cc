// metacomm_serve: the integrated MetaComm deployment behind a real TCP
// wire. Assembles core::MetaCommSystem (LDAP server, LTAP gateway,
// device filters, threaded Update Manager) and serves the LDAP text
// protocol on an epoll TcpServer with persistent per-connection
// sessions, connection limits, and UM-queue admission control.
//
//   metacomm_serve --port=3890 --io-threads=2 --um-workers=2 --batch=16
//
// Drive it with tools/loadgen, or by hand:
//   printf '33\nSEARCH base: o=Lucent\nscope: sub\n' | nc 127.0.0.1 3890

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "common/strings.h"
#include "core/metacomm.h"
#include "ldap/text_protocol.h"
#include "net/tcp_server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

struct Options {
  uint16_t port = 3890;
  int io_threads = 2;
  int um_workers = 2;
  int batch = 16;
  size_t max_connections = 4096;
  size_t max_request_bytes = 1 << 20;
  size_t admission_queue_limit = 1024;
  int64_t rtt_micros = 0;
  int stats_interval_seconds = 10;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port=N] [--io-threads=N] [--um-workers=N] "
      "[--batch=N]\n"
      "          [--max-connections=N] [--max-request-bytes=N]\n"
      "          [--admission-queue-limit=N] [--rtt-micros=N]\n"
      "          [--stats-interval-seconds=N]\n",
      argv0);
}

bool ParseFlag(const std::string& arg, const std::string& name,
               int64_t* out) {
  std::string prefix = "--" + name + "=";
  if (!metacomm::StartsWith(arg, prefix)) return false;
  std::optional<int64_t> value =
      metacomm::ParseInt64(arg.substr(prefix.size()));
  if (!value.has_value()) {
    std::fprintf(stderr, "bad value in %s\n", arg.c_str());
    std::exit(2);
  }
  *out = *value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using metacomm::ldap::TextProtocolHandler;

  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t v = 0;
    if (ParseFlag(arg, "port", &v)) {
      opt.port = static_cast<uint16_t>(v);
    } else if (ParseFlag(arg, "io-threads", &v)) {
      opt.io_threads = static_cast<int>(v);
    } else if (ParseFlag(arg, "um-workers", &v)) {
      opt.um_workers = static_cast<int>(v);
    } else if (ParseFlag(arg, "batch", &v)) {
      opt.batch = static_cast<int>(v);
    } else if (ParseFlag(arg, "max-connections", &v)) {
      opt.max_connections = static_cast<size_t>(v);
    } else if (ParseFlag(arg, "max-request-bytes", &v)) {
      opt.max_request_bytes = static_cast<size_t>(v);
    } else if (ParseFlag(arg, "admission-queue-limit", &v)) {
      opt.admission_queue_limit = static_cast<size_t>(v);
    } else if (ParseFlag(arg, "rtt-micros", &v)) {
      opt.rtt_micros = v;
    } else if (ParseFlag(arg, "stats-interval-seconds", &v)) {
      opt.stats_interval_seconds = static_cast<int>(v);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  metacomm::core::SystemConfig config;
  config.um.threaded = true;
  config.um.worker_threads = opt.um_workers;
  config.um.max_batch_size = opt.batch;
  config.device_command_rtt_micros = opt.rtt_micros;
  auto system = metacomm::core::MetaCommSystem::Create(config);
  if (!system.ok()) {
    std::fprintf(stderr, "system assembly failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  metacomm::core::UpdateManager& um = (*system)->update_manager();

  metacomm::net::TcpServerConfig server_config;
  server_config.listen_port = opt.port;
  server_config.io_threads = opt.io_threads;
  server_config.max_connections = opt.max_connections;
  server_config.max_request_bytes = opt.max_request_bytes;
  server_config.busy_reply = metacomm::ldap::BusyReply();
  server_config.error_reply = metacomm::ldap::FramingErrorReply();
  size_t queue_limit = opt.admission_queue_limit;
  server_config.admit = [&um, queue_limit] {
    return um.QueueDepth() < queue_limit;
  };

  metacomm::ldap::LdapService* gateway = &(*system)->gateway();
  metacomm::net::TcpServer server(
      std::move(server_config), [gateway] {
        auto session = std::make_shared<TextProtocolHandler>(gateway);
        return [session](const std::string& request) {
          return session->Handle(request);
        };
      });
  metacomm::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot serve: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("metacomm_serve: listening on 127.0.0.1:%u "
              "(io-threads=%d um-workers=%d batch=%d)\n",
              server.port(), opt.io_threads, opt.um_workers, opt.batch);
  std::fflush(stdout);

  ::signal(SIGINT, HandleSignal);
  ::signal(SIGTERM, HandleSignal);
  int since_stats = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    if (opt.stats_interval_seconds > 0 &&
        ++since_stats >= opt.stats_interval_seconds) {
      since_stats = 0;
      metacomm::net::TcpServer::Stats s = server.stats();
      std::printf(
          "conns=%llu/%llu requests=%llu shed_busy=%llu "
          "shed_conn=%llu framing_errors=%llu um_queue=%zu\n",
          static_cast<unsigned long long>(s.active_connections),
          static_cast<unsigned long long>(s.accepted),
          static_cast<unsigned long long>(s.requests),
          static_cast<unsigned long long>(s.shed_busy),
          static_cast<unsigned long long>(s.shed_connection_limit),
          static_cast<unsigned long long>(s.framing_errors),
          um.QueueDepth());
      std::fflush(stdout);
    }
  }
  std::printf("metacomm_serve: shutting down\n");
  server.Stop();
  return 0;
}
