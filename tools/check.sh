#!/usr/bin/env bash
# Full static + dynamic gate for MetaComm. Run from the repo root:
#
#   tools/check.sh
#
# Stages:
#   0. metalint: the repo's own concurrency/robustness linter, built
#      straight from tools/metalint.cc with no other dependencies so
#      it gates even a tree that doesn't compile. The real tree must
#      scan clean; every file in tools/metalint_fixtures/ must be
#      flagged (the linter's own negative corpus).
#   1. Clang thread-safety-analysis build (-Wthread-safety plus
#      -Wthread-safety-beta for ACQUIRED_BEFORE ordering) — skipped
#      with a notice when clang++ is not installed; the annotations
#      compile as no-ops elsewhere.
#   2. Regular build + full tier-1 ctest suite, with the runtime
#      lock-order validator pinned on (-DMETACOMM_LOCKDEP=ON) so every
#      threaded suite runs with acquisition-order checking live.
#   2b. lockdep validator self-test: the seeded-inversion death tests
#       (lockdep_test) run explicitly and must prove a deliberate
#       A→B/B→A inversion aborts with both acquisition stacks.
#   3. ThreadSanitizer build and run of the concurrency tests
#      (threaded_test, parallel_um_test, snapshot_stress_test,
#      wire_test — the epoll socket server under adversarial byte
#      patterns and concurrent connections — and lexpress_exec_test,
#      whose shared-Mapping/per-thread-Vm section proves the lexpress
#      fast path shares no mutable state).
#   3b. Fault-injection stress under TSan: fault_tolerance_test (the
#       breaker/repair end-to-end suite, including the threaded
#       Stop-vs-repair-worker shutdown race) and the randomized
#       FaultRecoveryPropertyTest seeds.
#   4. lexpress_check over the generated mappings and every example
#      mapping file (defects.lex is the linter's own fixture and is
#      expected to FAIL; it is checked for non-zero exit).
#   5. clang-tidy over src/, tools/ and bench/ — skipped when absent.
#   6. Bench smoke: one quick pass of bench_batching with --json and a
#      parse of the emitted BENCH_batching.json.
#   6b. Wire bench smoke: bench_wire's 100-connection point (real
#       sockets end to end) with --json, parsing BENCH_wire.json.
#   6c. lexpress bench smoke: bench_lexpress's MapRecord and
#       steady-state Translate points (fast and reference pipelines)
#       with --json, parsing BENCH_lexpress.json.
#   7. Bench regression compare: quick reruns diffed against the
#      committed BENCH_*.json baselines (>20% slowdowns flagged).
#      Non-fatal — smoke-length runs are too noisy to gate on.
set -u

cd "$(dirname "$0")/.."
failures=0

note()  { printf '\n== %s ==\n' "$*"; }
fail()  { printf 'FAIL: %s\n' "$*"; failures=$((failures + 1)); }

jobs="$(nproc 2>/dev/null || echo 4)"

# -- 0. metalint ------------------------------------------------------
# Built directly (standard library only, by design) so this stage
# works even when the tree itself is broken.
note "metalint"
mkdir -p build-metalint
if c++ -std=c++20 -O2 -o build-metalint/metalint tools/metalint.cc; then
  build-metalint/metalint src tools bench tests \
    || fail "metalint findings in the tree"
  for fixture in tools/metalint_fixtures/*.cc; do
    if build-metalint/metalint "$fixture" >/dev/null; then
      fail "metalint missed the seeded defects in $fixture"
    else
      echo "$fixture: flagged as expected"
    fi
  done
else
  fail "metalint build"
fi

# -- 1. Clang thread-safety analysis ---------------------------------
note "clang -Wthread-safety"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DMETACOMM_THREAD_SAFETY_ANALYSIS=ON >/dev/null \
    && cmake --build build-tsa -j "$jobs" \
    || fail "thread-safety-analysis build"
else
  echo "clang++ not installed; skipping (annotations are no-ops under gcc)"
fi

# -- 2. Tier-1 build + tests (lockdep pinned on) ---------------------
note "tier-1 build + ctest (METACOMM_LOCKDEP=ON)"
cmake -B build -S . -DMETACOMM_LOCKDEP=ON >/dev/null \
  && cmake --build build -j "$jobs" \
  && ctest --test-dir build --output-on-failure -j "$jobs" \
  || fail "tier-1 tests"

# -- 2b. lockdep validator self-test ---------------------------------
note "lockdep seeded-inversion death tests"
if [ -x build/tests/lockdep_test ]; then
  ./build/tests/lockdep_test || fail "lockdep_test"
else
  fail "lockdep_test not built"
fi

# -- 3. TSan concurrency tests ---------------------------------------
note "ThreadSanitizer: threaded_test + parallel_um_test + snapshot_stress_test + wire_test + lexpress_exec_test"
if cmake -B build-tsan -S . -DMETACOMM_SANITIZE=thread >/dev/null \
   && cmake --build build-tsan -j "$jobs" \
        --target threaded_test parallel_um_test snapshot_stress_test \
                 wire_test lexpress_exec_test; then
  ./build-tsan/tests/threaded_test    || fail "threaded_test under TSan"
  ./build-tsan/tests/parallel_um_test || fail "parallel_um_test under TSan"
  ./build-tsan/tests/snapshot_stress_test \
    || fail "snapshot_stress_test under TSan"
  ./build-tsan/tests/wire_test || fail "wire_test under TSan"
  ./build-tsan/tests/lexpress_exec_test \
    || fail "lexpress_exec_test under TSan"
else
  fail "TSan build"
fi

# -- 3b. Fault-injection stress under TSan ---------------------------
note "ThreadSanitizer: fault-injection stress"
if cmake --build build-tsan -j "$jobs" \
     --target fault_tolerance_test consistency_property_test; then
  ./build-tsan/tests/fault_tolerance_test \
    || fail "fault_tolerance_test under TSan"
  ./build-tsan/tests/consistency_property_test \
      --gtest_filter='FaultSeeds/*' \
    || fail "FaultRecoveryPropertyTest under TSan"
else
  fail "TSan fault-stress build"
fi

# -- 4. lexpress check ------------------------------------------------
note "lexpress_check"
check=./build/tools/lexpress_check
if [ -x "$check" ]; then
  "$check" --builtin-schemas --gen -v \
    || fail "generated mappings are not clean"
  for lex in examples/mappings/*.lex; do
    case "$lex" in
      *defects.lex)
        # The seeded-defect fixture must trip the linter.
        if "$check" --builtin-schemas \
             --schema hr=EmployeeId,FullName,JobTitle \
             --schema crm=AccountId,ContactName,Role \
             "$lex" 2>/dev/null; then
          fail "$lex should produce errors and did not"
        else
          echo "$lex: defects flagged as expected"
        fi
        ;;
      *)
        "$check" --builtin-schemas -v "$lex" || fail "$lex"
        ;;
    esac
  done
else
  fail "lexpress_check not built"
fi

# -- 5. clang-tidy (optional) ----------------------------------------
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1 && command -v run-clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  run-clang-tidy -p build -quiet "src/.*" "tools/.*" "bench/.*" \
    || fail "clang-tidy"
else
  echo "clang-tidy not installed; skipping (.clang-tidy documents the profile)"
fi

# -- 6. Bench smoke ---------------------------------------------------
note "bench smoke (--json)"
if [ -x build/bench/bench_batching ]; then
  rm -f BENCH_batching.json
  if ./build/bench/bench_batching --json --benchmark_min_time=0.01 \
       --benchmark_filter='batch:(1|16)/' >/dev/null; then
    if python3 -c "import json; json.load(open('BENCH_batching.json'))" \
         2>/dev/null; then
      echo "BENCH_batching.json: valid JSON"
    else
      fail "BENCH_batching.json missing or unparsable"
    fi
  else
    fail "bench_batching smoke run"
  fi
else
  fail "bench_batching not built"
fi

# -- 6b. Wire bench smoke ---------------------------------------------
note "bench_wire smoke (100-connection point, --json)"
if [ -x build/bench/bench_wire ]; then
  rm -f BENCH_wire.json
  if ./build/bench/bench_wire --json --benchmark_min_time=0.01 \
       --benchmark_filter='/100/' >/dev/null; then
    if python3 -c "import json; json.load(open('BENCH_wire.json'))" \
         2>/dev/null; then
      echo "BENCH_wire.json: valid JSON"
    else
      fail "BENCH_wire.json missing or unparsable"
    fi
  else
    fail "bench_wire smoke run"
  fi
else
  fail "bench_wire not built"
fi

# -- 6c. lexpress bench smoke -----------------------------------------
note "bench_lexpress smoke (fast + reference pipelines, --json)"
if [ -x build/bench/bench_lexpress ]; then
  rm -f BENCH_lexpress.json
  if ./build/bench/bench_lexpress --json --benchmark_min_time=0.01 \
       --benchmark_filter='MapRecord/32|SteadyState' >/dev/null; then
    if python3 -c "import json; json.load(open('BENCH_lexpress.json'))" \
         2>/dev/null; then
      echo "BENCH_lexpress.json: valid JSON"
    else
      fail "BENCH_lexpress.json missing or unparsable"
    fi
  else
    fail "bench_lexpress smoke run"
  fi
else
  fail "bench_lexpress not built"
fi

# -- 7. Bench regression compare (non-fatal) -------------------------
note "bench compare vs committed baselines (non-fatal)"
if tools/bench_report.sh --compare --smoke >/tmp/bench_compare.log 2>&1; then
  grep -E '^(  |no regressions|SKIP)' /tmp/bench_compare.log || true
  echo "bench compare: no regressions flagged"
else
  grep -E 'REGRESSION|regressed|FAIL' /tmp/bench_compare.log || true
  echo "WARN: bench compare flagged >20% slowdowns vs committed" \
       "baselines (informational; smoke runs are noisy, not failing" \
       "the gate)"
fi

# --------------------------------------------------------------------
echo
if [ "$failures" -eq 0 ]; then
  echo "check.sh: all stages passed"
else
  echo "check.sh: $failures stage(s) FAILED"
fi
exit "$((failures > 0))"
