#!/usr/bin/env bash
# Runs every bench binary with --json and collects the BENCH_<name>.json
# reports at the repo root. Run from anywhere:
#
#   tools/bench_report.sh              # full run (default min time)
#   tools/bench_report.sh --smoke      # 1 quick pass per bench (CI)
#   tools/bench_report.sh bench_batching bench_parallel_um
#
# Each report carries per-run wall time, ops/sec, user counters, and
# p50/p99 across the runs — see bench/bench_main.h. The benches must
# already be built (cmake --build build).
set -u

cd "$(dirname "$0")/.."
bindir=build/bench

min_time=""
benches=()
for arg in "$@"; do
  case "$arg" in
    --smoke) min_time="--benchmark_min_time=0.01" ;;
    *)       benches+=("$arg") ;;
  esac
done
if [ "${#benches[@]}" -eq 0 ]; then
  for bin in "$bindir"/bench_*; do
    [ -x "$bin" ] && benches+=("$(basename "$bin")")
  done
fi
if [ "${#benches[@]}" -eq 0 ]; then
  echo "no bench binaries under $bindir — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

failures=0
for name in "${benches[@]}"; do
  bin="$bindir/$name"
  if [ ! -x "$bin" ]; then
    echo "SKIP $name (not built)"
    continue
  fi
  printf '\n== %s ==\n' "$name"
  # shellcheck disable=SC2086
  if ! "$bin" --json $min_time; then
    echo "FAIL: $name"
    failures=$((failures + 1))
  fi
done

printf '\nreports:\n'
ls -1 BENCH_*.json 2>/dev/null || echo "  (none)"
exit "$((failures > 0))"
