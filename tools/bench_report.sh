#!/usr/bin/env bash
# Runs every bench binary with --json and collects the BENCH_<name>.json
# reports at the repo root. Run from anywhere:
#
#   tools/bench_report.sh              # full run (default min time)
#   tools/bench_report.sh --smoke      # 1 quick pass per bench (CI)
#   tools/bench_report.sh bench_batching bench_parallel_um
#   tools/bench_report.sh --compare    # diff fresh runs vs committed
#                                      # baselines, flag >20% slowdowns
#
# Each report carries per-run wall time, ops/sec, user counters, and
# p50/p99 across the runs — see bench/bench_main.h. The benches must
# already be built (cmake --build build).
#
# --compare reads each committed BENCH_<name>.json out of git HEAD
# (the fresh run overwrites the working-tree copy, so the baseline must
# be taken BEFORE running), reruns the bench, and compares per-run
# real_ms by benchmark name. Runs more than 20% slower than baseline
# are flagged and the script exits non-zero. Benches without a
# committed baseline are reported and skipped.
set -u

cd "$(dirname "$0")/.."
bindir=build/bench

min_time=""
compare=0
benches=()
for arg in "$@"; do
  case "$arg" in
    --smoke)   min_time="--benchmark_min_time=0.01" ;;
    --compare) compare=1 ;;
    *)         benches+=("$arg") ;;
  esac
done
if [ "${#benches[@]}" -eq 0 ]; then
  for bin in "$bindir"/bench_*; do
    [ -x "$bin" ] && benches+=("$(basename "$bin")")
  done
fi
if [ "${#benches[@]}" -eq 0 ]; then
  echo "no bench binaries under $bindir — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

baseline_dir=""
if [ "$compare" -eq 1 ]; then
  baseline_dir="$(mktemp -d)"
  trap 'rm -rf "$baseline_dir"' EXIT
fi

# Compares one baseline report against one fresh report; prints flagged
# runs and returns non-zero when any run regressed by more than 20%.
compare_reports() {
  python3 - "$1" "$2" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    fresh = json.load(f)

base_runs = {run["name"]: run["real_ms"] for run in base.get("runs", [])}
flagged = []
for run in fresh.get("runs", []):
    name = run["name"]
    if name not in base_runs:
        continue
    before, after = base_runs[name], run["real_ms"]
    # Sub-10us runs are timer noise at any ratio.
    if before <= 0.01:
        continue
    ratio = after / before
    marker = " <-- REGRESSION" if ratio > 1.2 else ""
    print(f"  {name}: {before:.3f}ms -> {after:.3f}ms ({ratio:.2f}x){marker}")
    if ratio > 1.2:
        flagged.append(name)

if flagged:
    print(f"{len(flagged)} run(s) regressed >20% vs committed baseline")
    sys.exit(1)
print("no regressions >20%")
PY
}

failures=0
regressions=0
for name in "${benches[@]}"; do
  bin="$bindir/$name"
  if [ ! -x "$bin" ]; then
    echo "SKIP $name (not built)"
    continue
  fi
  report="BENCH_${name#bench_}.json"
  if [ "$compare" -eq 1 ]; then
    if git cat-file -e "HEAD:$report" 2>/dev/null; then
      git show "HEAD:$report" > "$baseline_dir/$report"
    else
      echo "SKIP $name (no committed $report baseline to compare)"
      continue
    fi
  fi
  printf '\n== %s ==\n' "$name"
  # shellcheck disable=SC2086
  if ! "$bin" --json $min_time; then
    echo "FAIL: $name"
    failures=$((failures + 1))
    continue
  fi
  if [ "$compare" -eq 1 ]; then
    echo "compare vs HEAD:$report"
    compare_reports "$baseline_dir/$report" "$report" \
      || regressions=$((regressions + 1))
  fi
done

printf '\nreports:\n'
ls -1 BENCH_*.json 2>/dev/null || echo "  (none)"
[ "$regressions" -gt 0 ] && echo "bench compare: $regressions bench(es) with flagged regressions"
exit "$(( (failures + regressions) > 0 ))"
