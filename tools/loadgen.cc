// loadgen: multi-connection load generator for metacomm_serve — the
// WBA admin storm of the paper driven over real sockets. Opens N
// persistent connections, spreads them across worker threads, and
// drives a write/read mix (ADD/MODIFY person entries that fan out to
// the devices, plus indexed SEARCHes), reporting per-class throughput,
// latency percentiles and busy-shed counts.
//
//   metacomm_serve --port=3890 &
//   loadgen --port=3890 --connections=1000 --threads=8 \
//           --duration-seconds=30 --write-pct=20

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "net/tcp_client.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 3890;
  size_t connections = 100;
  int threads = 4;
  int duration_seconds = 10;
  int write_pct = 20;  // Percent of ops that are ADD/MODIFY.
};

struct ClassStats {
  uint64_t ok = 0;
  uint64_t busy = 0;     // RESULT 51 sheds.
  uint64_t errors = 0;   // Any other non-zero RESULT.
  std::vector<double> latency_us;
};

/// Result code from a framed text-protocol reply ("RESULT <code> ...").
int ReplyCode(const std::string& reply) {
  if (!metacomm::StartsWith(reply, "RESULT ")) return -1;
  size_t end = reply.find(' ', 7);
  std::optional<int64_t> code = metacomm::ParseInt64(
      std::string_view(reply).substr(7, end == std::string::npos
                                            ? std::string::npos
                                            : end - 7));
  return code.has_value() ? static_cast<int>(*code) : -1;
}

void Record(ClassStats* stats, const std::string& reply, double micros) {
  int code = ReplyCode(reply);
  if (code == 0 || code == 5 || code == 6) {
    ++stats->ok;
  } else if (code == 51) {
    ++stats->busy;
  } else {
    ++stats->errors;
  }
  stats->latency_us.push_back(micros);
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t rank =
      static_cast<size_t>(p * static_cast<double>(values->size()));
  if (rank >= values->size()) rank = values->size() - 1;
  return (*values)[rank];
}

std::string AddRequest(uint64_t id) {
  std::string ext = std::to_string(1000 + id % 9000);
  std::string cn = "Load " + std::to_string(id);
  return "ADD\ndn: cn=" + cn +
         ",ou=People,o=Lucent\n"
         "objectClass: top\nobjectClass: person\n"
         "objectClass: organizationalPerson\n"
         "objectClass: inetOrgPerson\ncn: " +
         cn + "\nsn: Load\ntelephoneNumber: +1 908 582 " + ext + "\n";
}

std::string ModifyRequest(uint64_t id, uint64_t seq) {
  std::string cn = "Load " + std::to_string(id);
  return "MODIFY\ndn: cn=" + cn +
         ",ou=People,o=Lucent\nchangetype: modify\n"
         "replace: description\ndescription: storm-" +
         std::to_string(seq) + "\n-\n";
}

std::string SearchRequest(uint64_t id) {
  std::string ext = std::to_string(1000 + id % 9000);
  return "SEARCH base: ou=People,o=Lucent\nscope: sub\n"
         "filter: (telephoneNumber=+1 908 582 " +
         ext + ")\nlimit: 10\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const std::string& name)
        -> std::optional<int64_t> {
      std::string prefix = "--" + name + "=";
      if (!metacomm::StartsWith(arg, prefix)) return std::nullopt;
      std::optional<int64_t> v =
          metacomm::ParseInt64(arg.substr(prefix.size()));
      if (!v.has_value()) {
        std::fprintf(stderr, "bad value in %s\n", arg.c_str());
        std::exit(2);
      }
      return v;
    };
    std::optional<int64_t> v;
    if (metacomm::StartsWith(arg, "--host=")) {
      opt.host = arg.substr(7);
    } else if ((v = value("port"))) {
      opt.port = static_cast<uint16_t>(*v);
    } else if ((v = value("connections"))) {
      opt.connections = static_cast<size_t>(*v);
    } else if ((v = value("threads"))) {
      opt.threads = static_cast<int>(*v);
    } else if ((v = value("duration-seconds"))) {
      opt.duration_seconds = static_cast<int>(*v);
    } else if ((v = value("write-pct"))) {
      opt.write_pct = static_cast<int>(*v);
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--host=H] [--port=N] [--connections=N] "
          "[--threads=N] [--duration-seconds=N] [--write-pct=N]\n",
          argv[0]);
      return 2;
    }
  }
  opt.threads = std::max(1, opt.threads);
  opt.connections = std::max<size_t>(1, opt.connections);

  // Open every persistent connection up front; the storm reuses them
  // for its whole duration (LTAP-style persistent sessions).
  std::vector<std::unique_ptr<metacomm::net::TcpClient>> clients;
  clients.reserve(opt.connections);
  for (size_t i = 0; i < opt.connections; ++i) {
    auto client = std::make_unique<metacomm::net::TcpClient>();
    metacomm::Status status = client->Connect(opt.host, opt.port);
    if (!status.ok()) {
      std::fprintf(stderr,
                   "connect %zu/%zu failed: %s\n", i + 1,
                   opt.connections, status.ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(client));
  }
  std::printf("loadgen: %zu persistent connections to %s:%u\n",
              opt.connections, opt.host.c_str(), opt.port);

  std::atomic<uint64_t> next_id{0};
  std::vector<ClassStats> write_stats(
      static_cast<size_t>(opt.threads));
  std::vector<ClassStats> read_stats(static_cast<size_t>(opt.threads));
  Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(opt.duration_seconds);

  std::vector<std::thread> workers;
  for (int t = 0; t < opt.threads; ++t) {
    workers.emplace_back([&, t] {
      // Each thread owns a disjoint slice of the connections and
      // round-robins across it, so every connection stays active.
      size_t lo = (opt.connections * static_cast<size_t>(t)) /
                  static_cast<size_t>(opt.threads);
      size_t hi = (opt.connections * static_cast<size_t>(t + 1)) /
                  static_cast<size_t>(opt.threads);
      if (lo == hi) return;
      uint64_t seq = 0;
      while (Clock::now() < deadline) {
        metacomm::net::TcpClient& client = *clients[lo + seq % (hi - lo)];
        ++seq;
        bool write =
            static_cast<int>(seq % 100) < opt.write_pct;
        std::string request;
        ClassStats* stats;
        if (write) {
          uint64_t id = next_id.fetch_add(1, std::memory_order_relaxed);
          // The first 9000 writes ADD fresh people; beyond that the
          // storm churns the existing ones with MODIFYs (the WBA's
          // day-2 admin traffic).
          request = id < 9000 ? AddRequest(id)
                              : ModifyRequest(id % 9000, seq);
          stats = &write_stats[static_cast<size_t>(t)];
        } else {
          request = SearchRequest(seq * 2654435761u);
          stats = &read_stats[static_cast<size_t>(t)];
        }
        Clock::time_point begin = Clock::now();
        std::string reply = client.Call(request);
        double micros =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - begin)
                .count() /
            1e3;
        Record(stats, reply, micros);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  auto report = [&](const char* label,
                    std::vector<ClassStats>& per_thread) {
    ClassStats total;
    for (ClassStats& stats : per_thread) {
      total.ok += stats.ok;
      total.busy += stats.busy;
      total.errors += stats.errors;
      total.latency_us.insert(total.latency_us.end(),
                              stats.latency_us.begin(),
                              stats.latency_us.end());
    }
    double per_sec =
        static_cast<double>(total.ok) / opt.duration_seconds;
    std::printf(
        "%s: ok=%llu busy=%llu errors=%llu  %.0f ops/s  "
        "p50=%.0fus p99=%.0fus\n",
        label, static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.busy),
        static_cast<unsigned long long>(total.errors), per_sec,
        Percentile(&total.latency_us, 0.50),
        Percentile(&total.latency_us, 0.99));
  };
  report("admin(write)", write_stats);
  report("search(read)", read_stats);
  return 0;
}
