// metalint — MetaComm's repo-invariant linter.
//
// Encodes tree-wide conventions that clang-tidy's generic checks
// cannot express, as hard gate failures (tools/check.sh):
//
//   ML001  naked standard synchronization primitive (std::mutex,
//          std::lock_guard, std::condition_variable, ...) outside
//          common/mutex.h. Everything locks through the annotated,
//          rank-carrying common::Mutex wrapper — a naked primitive is
//          invisible to both Clang TSA and the lockdep validator.
//   ML002  unchecked numeric parse (atoi/atoll/strtol*/stoi/...).
//          These saturate, wrap or throw on bad input; protocol and
//          config parsing must use the checked common/strings parses
//          (ParseInt64 / ParseUint64 / ParseSignedInt64 /
//          ParseHexUint64), which return nullopt instead.
//   ML003  NO_THREAD_SAFETY_ANALYSIS escape hatch. The annotation
//          layer exists so the analysis covers everything; opting a
//          function out hides exactly the code most likely to race.
//   ML004  thread .detach(). A detached thread outlives the state it
//          captured; every thread in the tree is joined on shutdown.
//   ML005  common::Mutex / SharedMutex declaration without a
//          LockRank. Unranked locks cannot participate in the
//          deadlock-freedom hierarchy (src/common/lock_rank.h).
//
// Usage: metalint <file-or-dir>...
//   Directories are walked recursively for *.h / *.cc / *.cpp /
//   *.hpp; paths under a metalint_fixtures/ directory are skipped
//   unless named explicitly (they are the deliberately-bad corpus
//   this binary's own tests scan).
//
// Output: "file:line: [MLnnn] message" per finding; exit 1 when
// anything was flagged, 0 on a clean tree.
//
// Matching runs on a stripped view of each file — comments, string
// and character literals are blanked first — so banned tokens in
// documentation (or in this file's own rule tables) never trip it.
// Self-contained by design: standard library only, no repo headers,
// so the gate can build it before anything else compiles.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  size_t line;
  const char* id;
  std::string message;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces comments, string literals (including raw strings) and
/// character literals with spaces, preserving offsets and newlines.
std::string StripCommentsAndLiterals(const std::string& in) {
  std::string out = in;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // ")delim" terminator of a raw string.
  char prev_code = '\0';  // Last code char (digit-separator check).

  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // Raw string? The quote follows R with an optional
          // encoding prefix (u8R, uR, UR, LR).
          size_t j = i;
          bool raw = j > 0 && in[j - 1] == 'R' &&
                     (j < 2 || !IsIdentChar(in[j - 2]) ||
                      in[j - 2] == '8' || in[j - 2] == 'u' ||
                      in[j - 2] == 'U' || in[j - 2] == 'L');
          if (raw) {
            raw_delim = ")";
            size_t k = i + 1;
            while (k < in.size() && in[k] != '(') {
              raw_delim.push_back(in[k]);
              out[k] = ' ';
              ++k;
            }
            raw_delim.push_back('"');
            i = k;  // At '(' (blanked next iteration via state).
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          out[i] = ' ';
        } else if (c == '\'') {
          // A quote directly after an identifier/digit char is a
          // C++14 digit separator (1'000'000), not a literal.
          if (IsIdentChar(prev_code)) {
            out[i] = ' ';
          } else {
            state = State::kChar;
            out[i] = ' ';
          }
        } else {
          if (!std::isspace(static_cast<unsigned char>(c)))
            prev_code = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
          prev_code = '\'';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k)
            out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
          prev_code = '"';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

size_t LineOf(const std::vector<size_t>& line_starts, size_t offset) {
  size_t lo = 0, hi = line_starts.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (line_starts[mid] <= offset) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo + 1;  // 1-based.
}

/// Finds `token` at identifier boundaries (neither neighbour may be
/// an identifier char, nor the preceding char a ':' — that would be
/// the tail of a longer qualified name).
std::vector<size_t> FindToken(const std::string& text,
                              const std::string& token,
                              bool forbid_scope_prefix) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    char before = pos > 0 ? text[pos - 1] : '\0';
    size_t end = pos + token.size();
    char after = end < text.size() ? text[end] : '\0';
    bool boundary = !IsIdentChar(before) && !IsIdentChar(after);
    if (forbid_scope_prefix && before == ':') boundary = false;
    if (boundary) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

// --- Rule tables -----------------------------------------------------

const char* kNakedPrimitives[] = {
    "std::mutex",          "std::recursive_mutex",
    "std::timed_mutex",    "std::recursive_timed_mutex",
    "std::shared_mutex",   "std::shared_timed_mutex",
    "std::lock_guard",     "std::unique_lock",
    "std::scoped_lock",    "std::shared_lock",
    "std::condition_variable",
    "std::condition_variable_any",
};

const char* kUncheckedParses[] = {
    "atoi",  "atol",  "atoll",  "atof",   "strtol", "strtoll",
    "strtoul", "strtoull", "strtof", "strtod", "strtold",
    "stoi",  "stol",  "stoll",  "stoul",  "stoull", "stof",
    "stod",  "stold",
};

struct Allowlist {
  const char* id;
  const char* path_suffix;
};

// Files allowed to use a banned construct: the wrapper layer itself
// and the one place each convention is implemented.
const Allowlist kAllowlist[] = {
    {"ML001", "src/common/mutex.h"},    // The wrapper over std::mutex.
    {"ML001", "src/common/lockdep.cc"}, // Validator sits beneath it.
    {"ML002", "src/common/strings.cc"}, // Implements the checked parses.
    {"ML003", "src/common/thread_annotations.h"},  // Defines the macro.
    {"ML005", "src/common/mutex.h"},    // Declares the Mutex types.
};

bool Allowed(const char* id, const std::string& path) {
  for (const Allowlist& a : kAllowlist) {
    if (std::string(a.id) == id && path.size() >= strlen(a.path_suffix) &&
        path.compare(path.size() - strlen(a.path_suffix),
                     strlen(a.path_suffix), a.path_suffix) == 0) {
      return true;
    }
  }
  return false;
}

// --- Rules -----------------------------------------------------------

void CheckNakedPrimitives(const std::string& path,
                          const std::string& text,
                          const std::vector<size_t>& lines,
                          std::vector<Finding>* findings) {
  for (const char* token : kNakedPrimitives) {
    for (size_t pos : FindToken(text, token, false)) {
      findings->push_back(
          {path, LineOf(lines, pos), "ML001",
           std::string("naked ") + token +
               "; lock through common::Mutex / common::CondVar "
               "(common/mutex.h) so TSA and lockdep can see it"});
    }
  }
}

void CheckUncheckedParses(const std::string& path,
                          const std::string& text,
                          const std::vector<size_t>& lines,
                          std::vector<Finding>* findings) {
  for (const char* name : kUncheckedParses) {
    for (size_t pos : FindToken(text, name, false)) {
      // Must be a call: next non-space char is '('.
      size_t after = pos + strlen(name);
      while (after < text.size() &&
             std::isspace(static_cast<unsigned char>(text[after]))) {
        ++after;
      }
      if (after >= text.size() || text[after] != '(') continue;
      findings->push_back(
          {path, LineOf(lines, pos), "ML002",
           std::string("unchecked numeric parse ") + name +
               "(); use the checked common/strings parses "
               "(ParseInt64 / ParseUint64 / ParseSignedInt64 / "
               "ParseHexUint64)"});
    }
  }
}

void CheckTsaEscape(const std::string& path, const std::string& text,
                    const std::vector<size_t>& lines,
                    std::vector<Finding>* findings) {
  for (size_t pos : FindToken(text, "NO_THREAD_SAFETY_ANALYSIS", false)) {
    findings->push_back(
        {path, LineOf(lines, pos), "ML003",
         "NO_THREAD_SAFETY_ANALYSIS escape; restructure so the "
         "analysis can verify the function instead of opting out"});
  }
}

void CheckDetach(const std::string& path, const std::string& text,
                 const std::vector<size_t>& lines,
                 std::vector<Finding>* findings) {
  for (size_t pos : FindToken(text, "detach", false)) {
    // Member call: preceded by '.' or '->', followed by '('.
    char before = pos > 0 ? text[pos - 1] : '\0';
    bool member = before == '.' ||
                  (before == '>' && pos > 1 && text[pos - 2] == '-');
    size_t after = pos + 6;
    while (after < text.size() &&
           std::isspace(static_cast<unsigned char>(text[after]))) {
      ++after;
    }
    if (!member || after >= text.size() || text[after] != '(') continue;
    findings->push_back({path, LineOf(lines, pos), "ML004",
                         "thread detach(); every thread must be "
                         "joined so shutdown cannot race teardown"});
  }
}

void CheckUnrankedMutexDecls(const std::string& path,
                             const std::string& text,
                             const std::vector<size_t>& lines,
                             std::vector<Finding>* findings) {
  for (const char* type : {"Mutex", "SharedMutex"}) {
    // Scope prefixes allowed: "common::Mutex mu_" is still our type.
    for (size_t pos : FindToken(text, type, false)) {
      // A declaration is the type name followed by whitespace and an
      // identifier ("Mutex mu_"). Pointer/reference declarations and
      // uses like "MutexLock lock(&mu_)" do not match.
      size_t after = pos + strlen(type);
      size_t ws = after;
      while (ws < text.size() && (text[ws] == ' ' || text[ws] == '\t'))
        ++ws;
      if (ws == after || ws >= text.size() ||
          !(std::isalpha(static_cast<unsigned char>(text[ws])) ||
            text[ws] == '_')) {
        continue;
      }
      // Skip type mentions in declarations of the types themselves
      // ("class Mutex", "friend class Mutex") and expressions.
      size_t before_ws = pos;
      while (before_ws > 0 &&
             (text[before_ws - 1] == ' ' || text[before_ws - 1] == '\t'))
        --before_ws;
      for (const char* kw : {"class", "struct", "typename", "new",
                             "return", "co_return"}) {
        size_t n = strlen(kw);
        if (before_ws >= n &&
            text.compare(before_ws - n, n, kw) == 0 &&
            (before_ws == n || !IsIdentChar(text[before_ws - n - 1]))) {
          goto next_hit;
        }
      }
      {
        // Collect the full declaration up to its terminating ';' and
        // require a LockRank:: argument somewhere in it (initializers
        // may wrap across lines).
        size_t stmt_end = text.find(';', pos);
        if (stmt_end == std::string::npos) stmt_end = text.size();
        std::string stmt = text.substr(pos, stmt_end - pos);
        if (stmt.find("LockRank::") == std::string::npos) {
          findings->push_back(
              {path, LineOf(lines, pos), "ML005",
               std::string(type) +
                   " declared without a LockRank; every lock joins "
                   "the hierarchy in src/common/lock_rank.h"});
        }
      }
    next_hit:;
    }
  }
}

// --- Driver ----------------------------------------------------------

bool HasSourceExtension(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool UnderFixtures(const fs::path& p) {
  for (const fs::path& part : p) {
    if (part == "metalint_fixtures") return true;
  }
  return false;
}

void LintFile(const std::string& path, std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    findings->push_back({path, 0, "ML000", "cannot read file"});
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string raw = buffer.str();
  std::string text = StripCommentsAndLiterals(raw);

  std::vector<size_t> lines;
  lines.push_back(0);
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') lines.push_back(i + 1);
  }

  std::vector<Finding> file_findings;
  CheckNakedPrimitives(path, text, lines, &file_findings);
  CheckUncheckedParses(path, text, lines, &file_findings);
  CheckTsaEscape(path, text, lines, &file_findings);
  CheckDetach(path, text, lines, &file_findings);
  CheckUnrankedMutexDecls(path, text, lines, &file_findings);

  for (Finding& f : file_findings) {
    if (!Allowed(f.id, f.file)) findings->push_back(std::move(f));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: metalint <file-or-dir>...\n");
    return 2;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (auto it = fs::recursive_directory_iterator(arg);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && HasSourceExtension(it->path()) &&
            !UnderFixtures(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(arg, ec)) {
      files.push_back(arg.string());
    } else {
      std::fprintf(stderr, "metalint: no such file or directory: %s\n",
                   argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) LintFile(file, &findings);

  for (const Finding& f : findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.id,
                f.message.c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "metalint: %zu file(s) clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "metalint: %zu finding(s) in %zu file(s)\n",
               findings.size(), files.size());
  return 1;
}
