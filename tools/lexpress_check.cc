// lexpress check — static analysis over lexpress mapping programs.
//
// Usage:
//   lexpress_check [options] [file.lex ...]
//     --schema name=attr1,attr2,...  declare a repository schema for
//                                    unknown-attribute / dead-mapping
//                                    analysis (repeatable)
//     --builtin-schemas              declare the ldap/pbx/mp schemas the
//                                    repo itself integrates
//     --gen                          also analyze the mapping program
//                                    core/mapping_gen emits for the
//                                    default pbx1 + mp1 topology
//     -v                             print a per-file summary even when
//                                    clean
//
// Output: one `file:line: severity: [LXnnn] message` line per finding
// (rule ids documented in docs/LEXPRESS.md "Diagnostics"). Exit status:
// 0 clean or warnings only, 1 any error-severity finding, 2 a file
// could not be read.
//
// Each file is one program: cycle and partition analysis relate the
// mappings *within* a file (plus, with --gen, within the generated
// program). Mappings split across files are not correlated.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/integrated_schema.h"
#include "core/mapping_gen.h"
#include "ldap/schema.h"
#include "lexpress/analyzer.h"

namespace {

using metacomm::Split;
using metacomm::lexpress::Analyzer;
using metacomm::lexpress::AnalyzerOptions;
using metacomm::lexpress::Diagnostic;
using metacomm::lexpress::HasErrors;

void AddBuiltinSchemas(AnalyzerOptions* options) {
  // "ldap" is the integrated directory schema (standard subset plus the
  // MetaComm device attributes); "pbx" and "mp" are the device-side
  // schemas the simulated Definity PBX and messaging platform expose.
  auto& ldap = options->schemas["ldap"];
  for (const std::string& name :
       metacomm::core::BuildIntegratedSchema().AttributeNames()) {
    ldap.insert(name);
  }
  options->schemas["pbx"] = {"Extension",    "Name",    "Room",   "Cos",
                             "CoveragePath", "SetType", "Port"};
  options->schemas["mp"] = {"MailboxNumber", "SubscriberName",
                            "SubscriberId",  "Pin",
                            "Greeting",      "EmailAddress"};
}

bool ParseSchemaFlag(const std::string& spec, AnalyzerOptions* options) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  auto& attrs = options->schemas[spec.substr(0, eq)];
  for (const std::string& attr : Split(spec.substr(eq + 1), ',')) {
    if (!attr.empty()) attrs.insert(attr);
  }
  return true;
}

/// Analyzes one named source; returns the number of error findings.
int RunOne(const Analyzer& analyzer, const std::string& label,
           const std::string& source, bool verbose, bool* any_error) {
  std::vector<Diagnostic> diags = analyzer.AnalyzeSource(source);
  for (const Diagnostic& d : diags) {
    std::fprintf(stderr, "%s:%s\n", label.c_str(), d.ToString().c_str());
  }
  if (HasErrors(diags)) *any_error = true;
  if (verbose || !diags.empty()) {
    std::fprintf(stderr, "%s: %zu finding(s)\n", label.c_str(),
                 diags.size());
  }
  return static_cast<int>(diags.size());
}

}  // namespace

int main(int argc, char** argv) {
  AnalyzerOptions options;
  std::vector<std::string> files;
  bool gen = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--builtin-schemas") {
      AddBuiltinSchemas(&options);
    } else if (arg == "--gen") {
      gen = true;
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "--schema") {
      if (i + 1 >= argc || !ParseSchemaFlag(argv[++i], &options)) {
        std::fprintf(stderr,
                     "lexpress_check: --schema wants name=a,b,c\n");
        return 2;
      }
    } else if (arg.rfind("--schema=", 0) == 0) {
      if (!ParseSchemaFlag(arg.substr(9), &options)) {
        std::fprintf(stderr,
                     "lexpress_check: --schema wants name=a,b,c\n");
        return 2;
      }
    } else if (arg == "-h" || arg == "--help") {
      std::fprintf(stderr,
                   "usage: lexpress_check [--schema name=a,b,...] "
                   "[--builtin-schemas] [--gen] [-v] [file.lex ...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lexpress_check: unknown flag %s\n",
                   arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && !gen) {
    std::fprintf(stderr,
                 "lexpress_check: nothing to check (pass files or "
                 "--gen)\n");
    return 2;
  }

  Analyzer analyzer(options);
  bool any_error = false;

  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "lexpress_check: cannot read %s\n",
                   path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    RunOne(analyzer, path, buf.str(), verbose, &any_error);
  }

  if (gen) {
    // One pseudo-file so the pbx <-> ldap <-> mp cycles are visible to
    // the analysis exactly as the update manager loads them.
    std::string source =
        metacomm::core::GeneratePbxMappings({}) + "\n" +
        metacomm::core::GenerateMpMappings({});
    RunOne(analyzer, "<generated>", source, verbose, &any_error);
  }

  return any_error ? 1 : 0;
}
