// metalint fixture: ML005 — common::Mutex declarations without a
// LockRank. The unranked declarations must be flagged; the ranked
// one, the pointer declaration and the MutexLock use must not be.
#include "common/mutex.h"

namespace metacomm {

struct RankedOk {
  Mutex mu{LockRank::kLeaf, "fixture.ok"};  // ranked: not a hit
  Mutex* alias = &mu;                       // pointer: not a hit
};

struct UnrankedBad {
  void Touch() {
    MutexLock lock(&mu_);  // use, not declaration: not a hit
    ++count_;
  }

  Mutex mu_;               // ML005
  SharedMutex dit_lock_;   // ML005
  common::Mutex other_;    // ML005 (qualified spelling)
  int count_ = 0;
};

}  // namespace metacomm
