// metalint fixture: ML003 — opting out of thread-safety analysis.
#define NO_THREAD_SAFETY_ANALYSIS \
  __attribute__((no_thread_safety_analysis))  // ML003 (the define)

struct Sneaky {
  // A function that hides from the analysis: ML003.
  void MutateWithoutLock() NO_THREAD_SAFETY_ANALYSIS { ++value; }
  int value = 0;
};
