// metalint fixture: ML002 — unchecked numeric parses. Each call must
// be flagged; the identifier that merely *contains* a banned name
// (my_atoi) and the call name in a string must not be.
#include <cstdlib>
#include <string>

int my_atoi(const char* s) { return s[0] - '0'; }  // not a hit
const char* doc = "atoi( in a string is fine";

long ParseAll(const std::string& s) {
  long total = std::atoi(s.c_str());            // ML002
  total += std::atoll(s.c_str());               // ML002
  total += std::strtol(s.c_str(), nullptr, 10); // ML002
  total += std::strtoull(s.c_str(), nullptr, 16);  // ML002
  total += static_cast<long>(std::stoi(s));     // ML002
  total += my_atoi(s.c_str());
  return total;
}
