// metalint fixture: ML001 — naked standard synchronization
// primitives. Every line below must be flagged; the commented and
// quoted mentions must NOT be (the linter strips them first).
#include <condition_variable>
#include <mutex>

// std::mutex in a comment is fine.
const char* quoted = "std::lock_guard in a string is fine";

struct BadCounter {
  int Increment() {
    std::lock_guard<std::mutex> lock(mu);  // ML001 x2 (guard + type)
    return ++count;
  }

  std::mutex mu;                  // ML001
  std::condition_variable cv;     // ML001
  int count = 0;
};
