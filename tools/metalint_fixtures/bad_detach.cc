// metalint fixture: ML004 — detached threads. Both detach calls must
// be flagged; the function *named* detach and the member access
// without a call must not be.
#include <thread>

void detach() {}  // not a hit: plain function definition/call syntax
struct HasField {
  int detach = 0;  // not a hit: no call
};

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();  // ML004
  std::thread* heap = new std::thread([] {});
  heap->detach();  // ML004
}
