// Web-Based Administration stand-in: a scriptable console that offers
// the "single point of administration for the telecom devices" of
// paper Figure 1. Every command is an ordinary LDAP operation against
// the LTAP gateway — "any LDAP tool can contact LTAP to administer the
// telecom devices" (§4).
//
// Commands (read from stdin, or run the built-in demo with no input):
//   add <cn> ; <extension> [; <room>]      provision a person
//   set <cn> ; <attr> ; <value>            modify one attribute
//   rename <cn> ; <new cn>                 rename (ModifyRDN path)
//   del <cn>                               deprovision
//   show <cn>                              display the entry
//   search <filter>                        subtree search under People
//   station <extension>                    ask the PBX directly
//   mailbox <number>                       ask the MP directly
//   sync <device>                          resynchronize a device
//   errors                                 show the error log
//   monitor                                show cn=monitor statistics
//   quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/metacomm.h"

using metacomm::Status;
using metacomm::core::MetaCommSystem;
using metacomm::core::SystemConfig;

namespace {

/// Splits "a ; b ; c" into trimmed fields.
std::vector<std::string> Fields(const std::string& rest) {
  return metacomm::SplitAndTrim(rest, ';');
}

class Console {
 public:
  explicit Console(MetaCommSystem& system)
      : system_(system), client_(system.NewClient()) {}

  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    std::string rest;
    std::getline(in, rest);
    rest = metacomm::Trim(rest);

    if (verb.empty() || verb[0] == '#') return true;
    if (verb == "quit" || verb == "exit") return false;

    Status status = Dispatch(verb, rest);
    if (!status.ok()) std::printf("! %s\n", status.ToString().c_str());
    return true;
  }

 private:
  std::string DnOf(const std::string& cn) {
    return "cn=" + cn + ",ou=People,o=Lucent";
  }

  Status Dispatch(const std::string& verb, const std::string& rest) {
    if (verb == "add") {
      std::vector<std::string> f = Fields(rest);
      if (f.size() < 2) return Status::InvalidArgument("add <cn> ; <ext>");
      std::vector<std::pair<std::string, std::string>> attrs = {
          {"telephoneNumber", "+1 908 582 " + f[1]}};
      if (f.size() > 2 && !f[2].empty()) {
        attrs.emplace_back("roomNumber", f[2]);
      }
      METACOMM_RETURN_IF_ERROR(system_.AddPerson(f[0], attrs));
      std::printf("provisioned %s on extension %s\n", f[0].c_str(),
                  f[1].c_str());
      return Status::Ok();
    }
    if (verb == "set") {
      std::vector<std::string> f = Fields(rest);
      if (f.size() != 3) {
        return Status::InvalidArgument("set <cn> ; <attr> ; <value>");
      }
      return client_.Replace(DnOf(f[0]), f[1], f[2]);
    }
    if (verb == "rename") {
      std::vector<std::string> f = Fields(rest);
      if (f.size() != 2) {
        return Status::InvalidArgument("rename <cn> ; <new cn>");
      }
      return client_.ModifyRdn(DnOf(f[0]), "cn=" + f[1]);
    }
    if (verb == "del") {
      return client_.Delete(DnOf(metacomm::Trim(rest)));
    }
    if (verb == "show") {
      METACOMM_ASSIGN_OR_RETURN(metacomm::ldap::Entry entry,
                                client_.Get(DnOf(metacomm::Trim(rest))));
      std::printf("%s", entry.ToString().c_str());
      return Status::Ok();
    }
    if (verb == "search") {
      METACOMM_ASSIGN_OR_RETURN(
          std::vector<metacomm::ldap::Entry> entries,
          client_.Search("ou=People,o=Lucent", rest));
      for (const metacomm::ldap::Entry& entry : entries) {
        std::printf("%s  (ext %s)\n", entry.dn().ToString().c_str(),
                    entry.GetFirst("DefinityExtension").c_str());
      }
      std::printf("%zu entries\n", entries.size());
      return Status::Ok();
    }
    if (verb == "station") {
      METACOMM_ASSIGN_OR_RETURN(
          std::string reply,
          system_.pbx("pbx1")->ExecuteCommand("display station " +
                                              metacomm::Trim(rest)));
      std::printf("%s", reply.c_str());
      return Status::Ok();
    }
    if (verb == "mailbox") {
      METACOMM_ASSIGN_OR_RETURN(
          std::string reply,
          system_.mp("mp1")->ExecuteCommand("SHOW MAILBOX " +
                                            metacomm::Trim(rest)));
      std::printf("%s", reply.c_str());
      return Status::Ok();
    }
    if (verb == "sync") {
      return system_.update_manager().Synchronize(metacomm::Trim(rest));
    }
    if (verb == "monitor") {
      METACOMM_RETURN_IF_ERROR(system_.monitor().Refresh());
      METACOMM_ASSIGN_OR_RETURN(
          std::vector<metacomm::ldap::Entry> entries,
          client_.Search(system_.monitor().base_dn(),
                         "(monitorInfo=*)"));
      for (const metacomm::ldap::Entry& entry : entries) {
        std::printf("%s:\n", entry.GetFirst("cn").c_str());
        for (const std::string& info : entry.GetAll("monitorInfo")) {
          std::printf("  %s\n", info.c_str());
        }
      }
      return Status::Ok();
    }
    if (verb == "errors") {
      METACOMM_ASSIGN_OR_RETURN(
          std::vector<metacomm::ldap::Entry> entries,
          client_.Search("cn=errors,o=Lucent",
                         "(objectClass=metacommError)"));
      for (const metacomm::ldap::Entry& entry : entries) {
        std::string text = entry.GetFirst("errorText");
        if (!text.empty()) {
          std::printf("%s: %s\n", entry.GetFirst("cn").c_str(),
                      text.c_str());
        }
      }
      return Status::Ok();
    }
    return Status::InvalidArgument("unknown command: " + verb);
  }

  MetaCommSystem& system_;
  metacomm::ldap::Client client_;
};

const char* kDemoScript[] = {
    "# demo: provision, inspect, administer, deprovision",
    "add John Doe ; 4567 ; 2C-401",
    "add Pat Smith ; 4568",
    "show John Doe",
    "station 4567",
    "mailbox 4567",
    "set John Doe ; roomNumber ; 3F-112",
    "station 4567",
    "rename Pat Smith ; Pat Smith-Jones",
    "search (DefinityExtension=*)",
    "del John Doe",
    "search (objectClass=person)",
    "errors",
    "monitor",
};

}  // namespace

int main(int argc, char** argv) {
  auto system_or = MetaCommSystem::Create(SystemConfig{});
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  Console console(**system_or);

  bool interactive = argc > 1 && std::string(argv[1]) == "--stdin";
  if (!interactive) {
    for (const char* line : kDemoScript) {
      std::printf("wba> %s\n", line);
      console.Execute(line);
    }
    return 0;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!console.Execute(line)) break;
  }
  return 0;
}
