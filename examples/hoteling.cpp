// Hoteling — the application the paper cites as enabled by MetaComm
// (§4.5): "shared workspaces that are reserved as needed". An
// authorized program redirects a person's telephone extension to the
// port in another room — which before MetaComm took a PBX
// administrator, and with it is one LDAP modify.
//
// This example reserves hotel desks for visiting employees for a day:
// each reservation points the person's station at the desk's port and
// room, and checkout points it back. Everything happens through the
// directory; the Definity and the messaging platform follow along.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/metacomm.h"

using metacomm::Status;
using metacomm::core::MetaCommSystem;
using metacomm::core::SystemConfig;

namespace {

/// One bookable desk: a room and the switch port wired to it.
struct Desk {
  std::string id;
  std::string room;
  std::string port;
};

/// The hoteling application: a thin, *directory-only* client. It
/// never talks to the PBX — that is the point of the meta-directory.
class HotelingApp {
 public:
  explicit HotelingApp(MetaCommSystem& system)
      : system_(system), client_(system.NewClient()) {
    desks_ = {
        {"desk-A", "1F-100", "01A0101"},
        {"desk-B", "1F-101", "01A0102"},
        {"desk-C", "2F-200", "01A0201"},
    };
  }

  /// Reserves a free desk for the person; their extension follows.
  Status CheckIn(const std::string& cn) {
    for (Desk& desk : desks_) {
      if (occupied_.count(desk.id)) continue;
      std::string dn = "cn=" + cn + ",ou=People,o=Lucent";
      // Remember where they came from for checkout.
      auto entry = client_.Get(dn);
      if (!entry.ok()) return entry.status();
      home_room_[cn] = entry->GetFirst("roomNumber");
      home_port_[cn] = entry->GetFirst("DefinityPort");

      std::vector<metacomm::ldap::Modification> mods;
      metacomm::ldap::Modification room;
      room.type = metacomm::ldap::Modification::Type::kReplace;
      room.attribute = "roomNumber";
      room.values = {desk.room};
      mods.push_back(room);
      metacomm::ldap::Modification port;
      port.type = metacomm::ldap::Modification::Type::kReplace;
      port.attribute = "DefinityPort";
      port.values = {desk.port};
      mods.push_back(port);
      auto status = client_.Modify(dn, std::move(mods));
      if (!status.ok()) return status;
      occupied_[desk.id] = cn;
      std::printf("checked %s into %s (room %s, port %s)\n", cn.c_str(),
                  desk.id.c_str(), desk.room.c_str(), desk.port.c_str());
      return Status::Ok();
    }
    return Status::Unavailable("no free desks");
  }

  /// Releases the person's desk and restores their home room/port.
  Status CheckOut(const std::string& cn) {
    for (auto it = occupied_.begin(); it != occupied_.end(); ++it) {
      if (it->second != cn) continue;
      std::string dn = "cn=" + cn + ",ou=People,o=Lucent";
      std::vector<metacomm::ldap::Modification> mods;
      metacomm::ldap::Modification room;
      room.type = metacomm::ldap::Modification::Type::kReplace;
      room.attribute = "roomNumber";
      if (!home_room_[cn].empty()) room.values = {home_room_[cn]};
      mods.push_back(room);
      metacomm::ldap::Modification port;
      port.type = metacomm::ldap::Modification::Type::kReplace;
      port.attribute = "DefinityPort";
      if (!home_port_[cn].empty()) port.values = {home_port_[cn]};
      mods.push_back(port);
      auto status = client_.Modify(dn, std::move(mods));
      if (!status.ok()) return status;
      std::printf("checked %s out of %s\n", cn.c_str(), it->first.c_str());
      occupied_.erase(it);
      return Status::Ok();
    }
    return Status::NotFound(cn + " holds no desk");
  }

 private:
  MetaCommSystem& system_;
  metacomm::ldap::Client client_;
  std::vector<Desk> desks_;
  std::map<std::string, std::string> occupied_;  // desk id -> cn
  std::map<std::string, std::string> home_room_;
  std::map<std::string, std::string> home_port_;
};

void ShowStation(MetaCommSystem& system, const std::string& extension) {
  auto reply =
      system.pbx("pbx1")->ExecuteCommand("display station " + extension);
  std::printf("  [pbx1] station %s:\n", extension.c_str());
  if (!reply.ok()) {
    std::printf("    %s\n", reply.status().ToString().c_str());
    return;
  }
  for (const std::string& line : metacomm::Split(*reply, '\n')) {
    if (!line.empty()) std::printf("    %s\n", line.c_str());
  }
}

int Run() {
  auto system_or = MetaCommSystem::Create(SystemConfig{});
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  MetaCommSystem& system = **system_or;

  // Two visiting employees with home offices elsewhere.
  for (const auto& [cn, ext, room] :
       std::vector<std::tuple<std::string, std::string, std::string>>{
           {"Gavin Michael", "4701", "AU-12"},
           {"Julian Orbach", "4702", "AU-14"}}) {
    Status status = system.AddPerson(
        cn, {{"telephoneNumber", "+1 908 582 " + ext},
             {"roomNumber", room}});
    if (!status.ok()) {
      std::fprintf(stderr, "provisioning failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  HotelingApp hoteling(system);
  std::printf("== before check-in\n");
  ShowStation(system, "4701");

  // Morning: both check in; the PBX follows the directory.
  if (!hoteling.CheckIn("Gavin Michael").ok()) return 1;
  if (!hoteling.CheckIn("Julian Orbach").ok()) return 1;
  std::printf("== after check-in\n");
  ShowStation(system, "4701");
  ShowStation(system, "4702");

  // Evening: checkout restores the home configuration.
  if (!hoteling.CheckOut("Gavin Michael").ok()) return 1;
  std::printf("== after check-out\n");
  ShowStation(system, "4701");

  auto stats = system.update_manager().stats();
  std::printf("== %llu directory updates drove %llu device updates, "
              "%llu errors\n",
              (unsigned long long)stats.ldap_updates,
              (unsigned long long)stats.device_applies,
              (unsigned long long)stats.errors);
  return 0;
}

}  // namespace

int main() { return Run(); }
