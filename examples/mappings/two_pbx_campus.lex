# Two-switch campus: pbx1 owns extensions 45xx, pbx2 owns 46xx.
# Demonstrates partitioning constraints (paper §4.2) — the partitions
# are disjoint, so `lexpress_check` reports nothing:
#
#   lexpress_check --builtin-schemas examples/mappings/two_pbx_campus.lex

mapping pbx1ToLdap from pbx to ldap {
  option target_name = "ldap";
  option allow_cycles = true;
  key Extension -> DefinityExtension;
  map "pbx1" -> LastUpdater;
  map concat("+1 908 582 ", Extension) -> telephoneNumber;
  map Name -> cn;
  map surname(Name) -> sn;
  map Room -> roomNumber;
  map "pbx1" -> DefinityPbxName;
}

mapping LdapToPbx1 from ldap to pbx {
  option target_name = "pbx1";
  option originator = "LastUpdater";
  option allow_cycles = true;
  partition when prefix(DefinityExtension, "45")
      or prefix(telephoneNumber, "+1 908 582 45");
  key substr(digits(telephoneNumber), -4, 4) -> Extension;
  map DefinityExtension -> Extension;
  map cn -> Name;
  map roomNumber -> Room;
}

mapping pbx2ToLdap from pbx to ldap {
  option target_name = "ldap";
  option allow_cycles = true;
  key Extension -> DefinityExtension;
  map "pbx2" -> LastUpdater;
  map concat("+1 908 582 ", Extension) -> telephoneNumber;
  map Name -> cn;
  map surname(Name) -> sn;
  map Room -> roomNumber;
  map "pbx2" -> DefinityPbxName;
}

mapping LdapToPbx2 from ldap to pbx {
  option target_name = "pbx2";
  option originator = "LastUpdater";
  option allow_cycles = true;
  partition when prefix(DefinityExtension, "46")
      or prefix(telephoneNumber, "+1 908 582 46");
  key substr(digits(telephoneNumber), -4, 4) -> Extension;
  map DefinityExtension -> Extension;
  map cn -> Name;
  map roomNumber -> Room;
}
