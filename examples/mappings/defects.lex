# Deliberately defective program exercising every lexpress_check rule.
# Expected findings (see docs/LEXPRESS.md "Diagnostics"):
#
#   LX001  badCycleA/badCycleB: non-convergent hr <-> crm cycle
#   LX002  ldapToEast / ldapToWest partitions both claim extension 4510
#   LX003  neverFires partition requires two different Cos values
#   LX004  hrToLdap and crmToLdap both write title (and their key rules
#          both write uid) with no origin guard
#   LX005  unknownAttrs reads/writes attributes pbx does not declare
#   LX006  orphan's source schema "fax" is fed by nothing
#   LX007  shadowed's second description rule can never win
#
#   lexpress_check --builtin-schemas examples/mappings/defects.lex

mapping badCycleA from hr to crm {
  map upper(FullName) -> ContactName;
}

mapping badCycleB from crm to hr {
  map lower(ContactName) -> FullName;
}

mapping ldapToEast from ldap to pbx {
  option target_name = "east";
  partition when prefix(DefinityExtension, "45");
  key DefinityExtension -> Extension;
  map cn -> Name;
}

mapping ldapToWest from ldap to pbx {
  option target_name = "west";
  partition when prefix(DefinityExtension, "451");
  key DefinityExtension -> Extension;
  map cn -> Name;
}

mapping neverFires from ldap to pbx {
  option target_name = "south";
  partition when eq(DefinityCos, "1") and eq(DefinityCos, "2");
  key DefinityExtension -> Extension;
  map cn -> Name;
}

mapping hrToLdap from hr to ldap {
  key EmployeeId -> uid;
  map JobTitle -> title;
}

mapping crmToLdap from crm to ldap {
  key AccountId -> uid;
  map Role -> title;
}

mapping orphan from fax to ldap {
  key FaxNumber -> facsimileTelephoneNumber;
}

mapping unknownAttrs from pbx to ldap {
  key Extension -> DefinityExtension;
  map Extensoin -> telephoneNumber;
  map Name -> commonNmae;
}

mapping shadowed from pbx to ldap {
  key Extension -> DefinityExtension;
  map "station" -> description;
  map SetType -> description;
}
