// Quickstart: assemble a MetaComm deployment (LDAP server + LTAP
// gateway + Definity PBX + messaging platform + Update Manager), then
// drive it down both update paths the paper describes:
//   1. an LDAP client (the "Web-Based Administration" path) creates a
//      person — MetaComm provisions the PBX station and voice mailbox;
//   2. a device administrator changes the PBX directly (a direct
//      device update) — MetaComm folds the change back into the
//      directory and the messaging platform.

#include <cstdio>

#include "core/metacomm.h"

using metacomm::Status;
using metacomm::core::MetaCommSystem;
using metacomm::core::SystemConfig;

namespace {

void Dump(const char* label, MetaCommSystem& system, const char* dn) {
  metacomm::ldap::Client client = system.NewClient();
  auto entry = client.Get(dn);
  std::printf("--- %s ---\n", label);
  if (!entry.ok()) {
    std::printf("  (%s)\n", entry.status().ToString().c_str());
    return;
  }
  std::printf("%s", entry->ToString().c_str());
}

int Run() {
  // 1. Assemble the deployment from the default configuration: one
  //    Definity PBX ("pbx1"), one messaging platform ("mp1").
  auto system_or = MetaCommSystem::Create(SystemConfig{});
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  MetaCommSystem& system = **system_or;

  // 2. Path one: provision John Doe through LDAP. Any LDAP tool works
  //    here — this is what the paper's web administration GUI does.
  Status status = system.AddPerson(
      "John Doe", {{"telephoneNumber", "+1 908 582 4567"},
                   {"roomNumber", "2C-401"}});
  if (!status.ok()) {
    std::fprintf(stderr, "add failed: %s\n", status.ToString().c_str());
    return 1;
  }
  Dump("directory entry after LDAP add", system,
       "cn=John Doe,ou=People,o=Lucent");

  // The PBX and messaging platform were provisioned by the Update
  // Manager — ask the devices themselves, over their own protocols.
  auto station = system.pbx("pbx1")->ExecuteCommand("display station 4567");
  std::printf("--- pbx1: display station 4567 ---\n%s",
              station.ok() ? station->c_str()
                           : station.status().ToString().c_str());
  auto mailbox = system.mp("mp1")->ExecuteCommand("SHOW MAILBOX 4567");
  std::printf("--- mp1: SHOW MAILBOX 4567 ---\n%s",
              mailbox.ok() ? mailbox->c_str()
                           : mailbox.status().ToString().c_str());

  // 3. Path two: a PBX administrator moves John to another room using
  //    the switch's own terminal — a direct device update.
  auto reply =
      system.pbx("pbx1")->ExecuteCommand("change station 4567 Room 3F-112");
  if (!reply.ok()) {
    std::fprintf(stderr, "PBX command failed: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  Dump("directory entry after direct PBX update", system,
       "cn=John Doe,ou=People,o=Lucent");

  // 4. Show the Update Manager's accounting.
  auto stats = system.update_manager().stats();
  std::printf("--- update manager stats ---\n");
  std::printf("ldap updates:     %llu\n",
              (unsigned long long)stats.ldap_updates);
  std::printf("device updates:   %llu\n",
              (unsigned long long)stats.device_updates);
  std::printf("device applies:   %llu\n",
              (unsigned long long)stats.device_applies);
  std::printf("reapplications:   %llu\n",
              (unsigned long long)stats.reapplications);
  std::printf("generated info:   %llu\n",
              (unsigned long long)stats.generated_info);
  std::printf("errors:           %llu\n", (unsigned long long)stats.errors);
  return 0;
}

}  // namespace

int main() { return Run(); }
