// Bulk provisioning and disaster recovery.
//
// Scenario: a site brings MetaComm up over devices that already hold
// data (the paper's "synchronization of pre-existing directories",
// §4.4), bulk-loads a department from an LDIF file exported from a
// corporate HR directory, survives a messaging-platform outage, and
// resynchronizes afterwards.

#include <cstdio>
#include <string>

#include "core/metacomm.h"
#include "ldap/ldif.h"

using metacomm::Status;
using metacomm::core::MetaCommSystem;
using metacomm::core::SystemConfig;

namespace {

constexpr char kHrLdif[] = R"(# Exported from the HR directory.
dn: cn=Tim Dickens,ou=People,o=Lucent
objectClass: top
objectClass: person
objectClass: organizationalPerson
objectClass: inetOrgPerson
cn: Tim Dickens
sn: Dickens
telephoneNumber: +1 908 582 4811
departmentNumber: R&D

dn: cn=Jill Lu,ou=People,o=Lucent
objectClass: top
objectClass: person
objectClass: organizationalPerson
objectClass: inetOrgPerson
cn: Jill Lu
sn: Lu
telephoneNumber: +1 908 582 4812
departmentNumber: R&D
)";

int Run() {
  auto system_or = MetaCommSystem::Create(SystemConfig{});
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  MetaCommSystem& system = **system_or;

  // --- Phase 1: the PBX predates MetaComm and already has stations.
  auto* pbx = system.pbx("pbx1");
  pbx->faults().set_drop_notifications(true);  // "Before attach".
  for (const char* cmd :
       {"add station 4501 Name \"John Doe\" Room 2C-401",
        "add station 4502 Name \"Pat Smith\" Room 2C-402"}) {
    auto reply = pbx->ExecuteCommand(cmd);
    if (!reply.ok()) {
      std::fprintf(stderr, "pbx setup failed: %s\n",
                   reply.status().ToString().c_str());
      return 1;
    }
  }
  pbx->faults().set_drop_notifications(false);

  std::printf("== initial load from pre-existing PBX data\n");
  Status status = system.update_manager().Synchronize("pbx1");
  if (!status.ok()) {
    std::fprintf(stderr, "sync failed: %s\n", status.ToString().c_str());
    return 1;
  }
  metacomm::ldap::Client client = system.NewClient();
  auto people = client.Search("ou=People,o=Lucent", "(objectClass=person)");
  std::printf("directory now holds %zu people; mp1 has %zu mailboxes\n",
              people.ok() ? people->size() : 0,
              system.mp("mp1")->MailboxCount());

  // --- Phase 2: bulk-load a department from HR's LDIF export.
  std::printf("== bulk load from LDIF\n");
  auto records = metacomm::ldap::ParseLdif(kHrLdif);
  if (!records.ok()) {
    std::fprintf(stderr, "LDIF parse failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  for (const metacomm::ldap::LdifRecord& record : *records) {
    status = client.Add(record.entry);
    if (!status.ok()) {
      std::fprintf(stderr, "add %s failed: %s\n",
                   record.dn.ToString().c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("provisioned %s -> station %s, mailbox %s\n",
                record.entry.GetFirst("cn").c_str(),
                system.pbx("pbx1")
                        ->GetRecord(record.entry.GetFirst("telephoneNumber")
                                        .substr(11))
                        .ok()
                    ? "ok"
                    : "MISSING",
                system.mp("mp1")
                        ->GetRecord(record.entry.GetFirst("telephoneNumber")
                                        .substr(11))
                        .ok()
                    ? "ok"
                    : "MISSING");
  }

  // --- Phase 3: the messaging platform drops off the network while
  // updates continue; MetaComm logs errors and the admin resyncs.
  std::printf("== messaging platform outage\n");
  int admin_notifications = 0;
  system.update_manager().set_admin_callback(
      [&admin_notifications](const Status& error,
                             const metacomm::lexpress::UpdateDescriptor&) {
        ++admin_notifications;
        std::printf("  [admin pager] %s\n", error.ToString().c_str());
      });
  system.mp("mp1")->faults().set_disconnected(true);
  status = client.Replace("cn=Jill Lu,ou=People,o=Lucent", "roomNumber",
                          "3F-300");
  std::printf("update during outage: %s (directory + PBX updated, "
              "MP write failed and was logged)\n",
              status.ToString().c_str());
  system.mp("mp1")->faults().set_disconnected(false);

  std::printf("== resynchronize mp1 after the outage\n");
  status = system.update_manager().Synchronize("mp1");
  std::printf("resync: %s\n", status.ToString().c_str());

  // The error log is an ordinary directory subtree (§4.4).
  auto errors =
      client.Search("cn=errors,o=Lucent", "(objectClass=metacommError)");
  if (errors.ok()) {
    std::printf("== error log (%zu entries)\n", errors->size() - 1);
    for (const metacomm::ldap::Entry& entry : *errors) {
      std::string text = entry.GetFirst("errorText");
      if (!text.empty()) std::printf("  %s\n", text.c_str());
    }
  }
  std::printf("admin notifications received: %d\n", admin_notifications);

  auto stats = system.update_manager().stats();
  std::printf("== final stats: %llu syncs, %llu errors, %llu device "
              "applies\n",
              (unsigned long long)stats.syncs,
              (unsigned long long)stats.errors,
              (unsigned long long)stats.device_applies);
  return 0;
}

}  // namespace

int main() { return Run(); }
