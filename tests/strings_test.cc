#include "common/strings.h"

#include <gtest/gtest.h>

#include <limits>
#include <optional>

#include "common/random.h"

namespace metacomm {
namespace {

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("Hello World 123"), "hello world 123");
  EXPECT_EQ(ToUpper("Hello World 123"), "HELLO WORLD 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("\t\n abc \r\n"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, NormalizeSpace) {
  EXPECT_EQ(NormalizeSpace("  John   Doe "), "John Doe");
  EXPECT_EQ(NormalizeSpace("a\t\tb"), "a b");
  EXPECT_EQ(NormalizeSpace(""), "");
  EXPECT_EQ(NormalizeSpace("single"), "single");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("ObjectClass", "objectclass"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("telephoneNumber", "tele"));
  EXPECT_FALSE(StartsWith("tele", "telephone"));
  EXPECT_TRUE(EndsWith("cn=John,o=Lucent", "o=Lucent"));
  EXPECT_FALSE(EndsWith("abc", "abcd"));
  EXPECT_TRUE(StartsWithIgnoreCase("+1 908 582 9000", "+1 908"));
  EXPECT_TRUE(StartsWithIgnoreCase("ABCdef", "abc"));
}

TEST(StringsTest, EndsWithIgnoreCase) {
  EXPECT_TRUE(EndsWithIgnoreCase("cn=John,o=Lucent", "O=LUCENT"));
  EXPECT_TRUE(EndsWithIgnoreCase("MetaComm", "comm"));
  EXPECT_FALSE(EndsWithIgnoreCase("MetaComm", "meta"));
  // Empty suffix matches everything, including the empty string.
  EXPECT_TRUE(EndsWithIgnoreCase("abc", ""));
  EXPECT_TRUE(EndsWithIgnoreCase("", ""));
  // A suffix longer than the string can never match.
  EXPECT_FALSE(EndsWithIgnoreCase("abc", "zabc"));
  EXPECT_FALSE(EndsWithIgnoreCase("", "a"));
  // Whole-string match, either case.
  EXPECT_TRUE(EndsWithIgnoreCase("abc", "ABC"));
  // Case folding is ASCII-only: bytes above 0x7F compare verbatim.
  EXPECT_TRUE(EndsWithIgnoreCase("caf\xc3\xa9", "\xc3\xa9"));
  EXPECT_FALSE(EndsWithIgnoreCase("caf\xc3\xa9", "\xc3\x89"));
}

TEST(StringsTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("telephoneNumber", "PHONE"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", "abc"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abd"));
  // Empty needle is found anywhere, even in the empty string.
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_TRUE(ContainsIgnoreCase("", ""));
  // A needle longer than the haystack can never match.
  EXPECT_FALSE(ContainsIgnoreCase("ab", "abc"));
  EXPECT_FALSE(ContainsIgnoreCase("", "a"));
  // Matches at both boundaries.
  EXPECT_TRUE(ContainsIgnoreCase("John Doe", "JOHN"));
  EXPECT_TRUE(ContainsIgnoreCase("John Doe", "dOE"));
  // Overlapping near-misses before the real match.
  EXPECT_TRUE(ContainsIgnoreCase("aaab", "AAB"));
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(SplitAndTrim(" a , b ", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
  EXPECT_EQ(ReplaceAll("abc", "d", "x"), "abc");
}

TEST(StringsTest, FormatPercentS) {
  EXPECT_EQ(FormatPercentS("+1 908 582 %s", {"9000"}), "+1 908 582 9000");
  EXPECT_EQ(FormatPercentS("%s-%s", {"a", "b"}), "a-b");
  EXPECT_EQ(FormatPercentS("100%%", {}), "100%");
  EXPECT_EQ(FormatPercentS("%s and %s", {"one"}), "one and ");
  EXPECT_EQ(FormatPercentS("no placeholders", {"x"}), "no placeholders");
}

TEST(StringsTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("12345"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a45"));
  EXPECT_FALSE(IsAllDigits("-123"));
}

TEST(StringsTest, ParseUint64Checked) {
  EXPECT_EQ(ParseUint64("0"), uint64_t{0});
  EXPECT_EQ(ParseUint64("18446744073709551615"),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(ParseUint64("18446744073709551616"), std::nullopt);
  EXPECT_EQ(ParseUint64(""), std::nullopt);
  EXPECT_EQ(ParseUint64("+1"), std::nullopt);
  EXPECT_EQ(ParseUint64(" 1"), std::nullopt);
  EXPECT_EQ(ParseUint64("1x"), std::nullopt);
}

TEST(StringsTest, ParseSignedInt64Checked) {
  EXPECT_EQ(ParseSignedInt64("42"), int64_t{42});
  EXPECT_EQ(ParseSignedInt64("+42"), int64_t{42});
  EXPECT_EQ(ParseSignedInt64("-42"), int64_t{-42});
  EXPECT_EQ(ParseSignedInt64("-0"), int64_t{0});
  EXPECT_EQ(ParseSignedInt64("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  // |INT64_MIN| exceeds INT64_MAX by one; only valid when negative.
  EXPECT_EQ(ParseSignedInt64("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(ParseSignedInt64("9223372036854775808"), std::nullopt);
  EXPECT_EQ(ParseSignedInt64("-9223372036854775809"), std::nullopt);
  EXPECT_EQ(ParseSignedInt64(""), std::nullopt);
  EXPECT_EQ(ParseSignedInt64("-"), std::nullopt);
  EXPECT_EQ(ParseSignedInt64("+"), std::nullopt);
  EXPECT_EQ(ParseSignedInt64("--1"), std::nullopt);
  EXPECT_EQ(ParseSignedInt64("1.5"), std::nullopt);
}

TEST(StringsTest, ParseHexUint64Checked) {
  EXPECT_EQ(ParseHexUint64("0"), uint64_t{0});
  EXPECT_EQ(ParseHexUint64("ff"), uint64_t{255});
  EXPECT_EQ(ParseHexUint64("FF"), uint64_t{255});
  EXPECT_EQ(ParseHexUint64("2a"), uint64_t{42});
  EXPECT_EQ(ParseHexUint64("ffffffffffffffff"),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(ParseHexUint64("10000000000000000"), std::nullopt);  // 17 digits
  EXPECT_EQ(ParseHexUint64(""), std::nullopt);
  EXPECT_EQ(ParseHexUint64("0x2a"), std::nullopt);  // no prefix form
  EXPECT_EQ(ParseHexUint64("2g"), std::nullopt);
  EXPECT_EQ(ParseHexUint64("-1"), std::nullopt);
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expect;
};

class GlobMatchTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatchTest, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(GlobMatch(c.pattern, c.text), c.expect)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobMatchTest,
    ::testing::Values(
        GlobCase{"*", "anything", true}, GlobCase{"*", "", true},
        GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
        GlobCase{"a*c", "abc", true}, GlobCase{"a*c", "ac", true},
        GlobCase{"a*c", "abdc", true}, GlobCase{"a*c", "abcd", false},
        GlobCase{"*def", "abcdef", true}, GlobCase{"abc*", "abcdef", true},
        GlobCase{"a?c", "abc", true}, GlobCase{"a?c", "ac", false},
        GlobCase{"*a*b*", "xaybz", true}, GlobCase{"*a*b*", "ba", false},
        GlobCase{"**", "x", true}, GlobCase{"", "", true},
        GlobCase{"", "x", false},
        GlobCase{"9???", "9000", true}, GlobCase{"9???", "90000", false}));

TEST(GlobMatchTest, IgnoreCaseVariant) {
  EXPECT_TRUE(GlobMatchIgnoreCase("JOHN*", "john doe"));
  EXPECT_FALSE(GlobMatch("JOHN*", "john doe"));
}

TEST(CaseInsensitiveLessTest, Ordering) {
  CaseInsensitiveLess less;
  EXPECT_TRUE(less("abc", "abd"));
  EXPECT_FALSE(less("ABD", "abc"));
  EXPECT_FALSE(less("abc", "ABC"));  // Equal.
  EXPECT_TRUE(less("ab", "abc"));    // Prefix sorts first.
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t r = rng.UniformRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(RandomTest, DigitString) {
  Random rng(9);
  std::string s = rng.DigitString(8);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_TRUE(IsAllDigits(s));
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

}  // namespace
}  // namespace metacomm
