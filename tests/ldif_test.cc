#include "ldap/ldif.h"

#include <gtest/gtest.h>

namespace metacomm::ldap {
namespace {

TEST(Base64Test, RoundTrip) {
  const char* cases[] = {"", "a", "ab", "abc", "abcd",
                         "hello world", "\x01\x02\xff"};
  for (const char* text : cases) {
    std::string encoded = Base64Encode(text);
    auto decoded = Base64Decode(encoded);
    ASSERT_TRUE(decoded.ok()) << text;
    EXPECT_EQ(*decoded, text);
  }
}

TEST(Base64Test, KnownVectors) {
  EXPECT_EQ(Base64Encode("Man"), "TWFu");
  EXPECT_EQ(Base64Encode("Ma"), "TWE=");
  EXPECT_EQ(Base64Encode("M"), "TQ==");
  auto decoded = Base64Decode("TWFu");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "Man");
}

TEST(Base64Test, RejectsBadCharacters) {
  EXPECT_FALSE(Base64Decode("a!b").ok());
}

TEST(LdifTest, ParseContentRecords) {
  auto records = ParseLdif(
      "version: 1\n"
      "# a comment\n"
      "dn: cn=John Doe,o=Lucent\n"
      "objectClass: top\n"
      "objectClass: person\n"
      "cn: John Doe\n"
      "sn: Doe\n"
      "\n"
      "dn: cn=Pat Smith,o=Lucent\n"
      "objectClass: person\n"
      "cn: Pat Smith\n"
      "sn: Smith\n");
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].op, UpdateOp::kAdd);
  EXPECT_EQ((*records)[0].entry.GetAll("objectClass").size(), 2u);
  EXPECT_EQ((*records)[1].entry.GetFirst("cn"), "Pat Smith");
}

TEST(LdifTest, FoldedLines) {
  auto records = ParseLdif(
      "dn: cn=Long,o=Lucent\n"
      "objectClass: person\n"
      "cn: Long\n"
      "description: this is a very\n"
      "  long description line\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].entry.GetFirst("description"),
            "this is a very long description line");
}

TEST(LdifTest, Base64Value) {
  std::string encoded = Base64Encode(" leading space");
  auto records = ParseLdif("dn: cn=X,o=L\ncn:: " + encoded + "\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].entry.GetFirst("cn"), " leading space");
}

TEST(LdifTest, ChangeTypeDelete) {
  auto records = ParseLdif(
      "dn: cn=X,o=Lucent\n"
      "changetype: delete\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].op, UpdateOp::kDelete);
}

TEST(LdifTest, ChangeTypeModify) {
  auto records = ParseLdif(
      "dn: cn=X,o=Lucent\n"
      "changetype: modify\n"
      "replace: telephoneNumber\n"
      "telephoneNumber: +1 908 582 9000\n"
      "-\n"
      "add: description\n"
      "description: new hire\n"
      "-\n"
      "delete: roomNumber\n");
  ASSERT_TRUE(records.ok()) << records.status();
  const LdifRecord& record = (*records)[0];
  EXPECT_EQ(record.op, UpdateOp::kModify);
  ASSERT_EQ(record.mods.size(), 3u);
  EXPECT_EQ(record.mods[0].type, Modification::Type::kReplace);
  EXPECT_EQ(record.mods[0].attribute, "telephoneNumber");
  ASSERT_EQ(record.mods[0].values.size(), 1u);
  EXPECT_EQ(record.mods[1].type, Modification::Type::kAdd);
  EXPECT_EQ(record.mods[2].type, Modification::Type::kDelete);
  EXPECT_TRUE(record.mods[2].values.empty());
}

TEST(LdifTest, ChangeTypeModRdn) {
  auto records = ParseLdif(
      "dn: cn=X,o=Lucent\n"
      "changetype: modrdn\n"
      "newrdn: cn=Y\n"
      "deleteoldrdn: 1\n");
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ((*records)[0].op, UpdateOp::kModifyRdn);
  EXPECT_EQ((*records)[0].new_rdn.ToString(), "cn=Y");
  EXPECT_TRUE((*records)[0].delete_old_rdn);
}

TEST(LdifTest, Errors) {
  EXPECT_FALSE(ParseLdif("cn: no dn first\n").ok());
  EXPECT_FALSE(ParseLdif("dn: cn=X,o=L\nchangetype: bogus\n").ok());
  EXPECT_FALSE(ParseLdif("dn: cn=X,o=L\nchangetype: modrdn\n").ok());
}

TEST(LdifTest, SerializeRoundTrip) {
  Entry entry(Dn::Root().Child(Rdn("cn", "John Doe")));
  entry.Set("objectClass", {"top", "person"});
  entry.SetOne("cn", "John Doe");
  entry.SetOne("sn", "Doe");
  entry.SetOne("description", " starts with space");

  std::string text = ToLdif(entry);
  auto parsed = ParseLdif(text);
  ASSERT_TRUE(parsed.ok()) << text;
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_TRUE((*parsed)[0].entry == entry)
      << text << "\nvs\n" << (*parsed)[0].entry.ToString();
}

TEST(LdifTest, SerializeMultipleEntries) {
  Entry a(Dn::Root().Child(Rdn("cn", "A")));
  a.SetOne("cn", "A");
  Entry b(Dn::Root().Child(Rdn("cn", "B")));
  b.SetOne("cn", "B");
  std::string text = ToLdif(std::vector<Entry>{a, b});
  auto parsed = ParseLdif(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

}  // namespace
}  // namespace metacomm::ldap
