#include "lexpress/closure.h"

#include <gtest/gtest.h>

namespace metacomm::lexpress {
namespace {

/// The paper's running example: Extension on the PBX relates
/// telephoneNumber and DefinityExtension in LDAP, and telephoneNumber
/// relates the voice mailbox id on the messaging platform.
constexpr char kThreeWay[] = R"(
mapping PbxToLdap from pbx to ldap {
  option allow_cycles = true;
  key Extension -> DefinityExtension;
  map concat("+1 908 582 ", Extension) -> telephoneNumber;
  map Name -> cn;
}
mapping LdapToPbx from ldap to pbx {
  option allow_cycles = true;
  key substr(digits(telephoneNumber), -4, 4) -> Extension;
  map DefinityExtension -> Extension;
  map cn -> Name;
}
mapping LdapToMp from ldap to mp {
  option allow_cycles = true;
  key substr(digits(telephoneNumber), -4, 4) -> MailboxNumber;
  map cn -> SubscriberName;
}
mapping MpToLdap from mp to ldap {
  option allow_cycles = true;
  key MailboxNumber -> MpMailboxNumber;
  map SubscriberId -> MpSubscriberId;
}
)";

MappingSet BuildSet(const char* source) {
  MappingSet set;
  Status status = set.AddSource(source);
  EXPECT_TRUE(status.ok()) << status;
  return set;
}

TEST(ClosureTest, PaperExampleExtensionChangeRipples) {
  // "When the extension of an existing object changes, the PBX-to-LDAP
  // lexpress mapping requires lexpress to change the telephone number.
  // Because lexpress processes the transitive closure of mappings, it
  // also uses the LDAP-to-MP mapping to change the voice mailbox
  // identifier." (§4.2)
  MappingSet set = BuildSet(kThreeWay);

  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record old_pbx("pbx");
  old_pbx.SetOne("Extension", "9000");
  old_pbx.SetOne("Name", "John Doe");
  base.emplace("pbx", old_pbx);
  Record old_ldap("ldap");
  old_ldap.SetOne("telephoneNumber", "+1 908 582 9000");
  old_ldap.SetOne("DefinityExtension", "9000");
  old_ldap.SetOne("cn", "John Doe");
  base.emplace("ldap", old_ldap);
  Record old_mp("mp");
  old_mp.SetOne("MailboxNumber", "9000");
  old_mp.SetOne("SubscriberName", "John Doe");
  base.emplace("mp", old_mp);

  Record new_pbx = old_pbx;
  new_pbx.SetOne("Extension", "9111");

  std::set<std::string, CaseInsensitiveLess> explicit_attrs{"Extension"};
  auto result = set.Propagate(base, "pbx", new_pbx, explicit_attrs);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->records.at("ldap").GetFirst("telephoneNumber"),
            "+1 908 582 9111");
  EXPECT_EQ(result->records.at("ldap").GetFirst("DefinityExtension"),
            "9111");
  EXPECT_EQ(result->records.at("mp").GetFirst("MailboxNumber"), "9111");
  EXPECT_GT(result->iterations, 1);  // It had to chase the chain.
}

TEST(ClosureTest, ExplicitAttributesAreNeverOverwritten) {
  // "The algorithm does not change the values of explicitly set
  // attributes" (§4.2). Client sets telephoneNumber AND
  // DefinityExtension inconsistently; both keep their values, and the
  // first mapping (telephoneNumber -> Extension) feeds the PBX.
  MappingSet set = BuildSet(kThreeWay);

  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record old_ldap("ldap");
  old_ldap.SetOne("telephoneNumber", "+1 908 582 9000");
  old_ldap.SetOne("DefinityExtension", "9000");
  base.emplace("ldap", old_ldap);
  Record old_pbx("pbx");
  old_pbx.SetOne("Extension", "9000");
  base.emplace("pbx", old_pbx);

  Record new_ldap = old_ldap;
  new_ldap.SetOne("telephoneNumber", "+1 908 582 9111");
  new_ldap.SetOne("DefinityExtension", "9222");  // Inconsistent.

  std::set<std::string, CaseInsensitiveLess> explicit_attrs{
      "telephoneNumber", "DefinityExtension"};
  auto result = set.Propagate(base, "ldap", new_ldap, explicit_attrs);
  ASSERT_TRUE(result.ok()) << result.status();

  // Explicit values retained.
  EXPECT_EQ(result->records.at("ldap").GetFirst("telephoneNumber"),
            "+1 908 582 9111");
  EXPECT_EQ(result->records.at("ldap").GetFirst("DefinityExtension"),
            "9222");
  // First mapping wins at the PBX: Extension follows telephoneNumber.
  EXPECT_EQ(result->records.at("pbx").GetFirst("Extension"), "9111");
}

TEST(ClosureTest, DerivedAttributeUpdatedWhenNotExplicit) {
  // Same change, but DefinityExtension is NOT explicitly set: the
  // closure brings it in line with the new telephone number via the
  // pbx round trip.
  MappingSet set = BuildSet(kThreeWay);

  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record old_ldap("ldap");
  old_ldap.SetOne("telephoneNumber", "+1 908 582 9000");
  old_ldap.SetOne("DefinityExtension", "9000");
  base.emplace("ldap", old_ldap);
  Record old_pbx("pbx");
  old_pbx.SetOne("Extension", "9000");
  base.emplace("pbx", old_pbx);

  Record new_ldap = old_ldap;
  new_ldap.SetOne("telephoneNumber", "+1 908 582 9111");

  std::set<std::string, CaseInsensitiveLess> explicit_attrs{
      "telephoneNumber"};
  auto result = set.Propagate(base, "ldap", new_ldap, explicit_attrs);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.at("pbx").GetFirst("Extension"), "9111");
  EXPECT_EQ(result->records.at("ldap").GetFirst("DefinityExtension"),
            "9111");
}

TEST(ClosureTest, NoChangeReachesFixpointImmediately) {
  MappingSet set = BuildSet(kThreeWay);
  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record ldap_record("ldap");
  ldap_record.SetOne("cn", "John Doe");
  base.emplace("ldap", ldap_record);
  auto result = set.Propagate(base, "ldap", ldap_record, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 1);
  EXPECT_TRUE(result->changed["pbx"].empty());
}

TEST(ClosureTest, RuntimeFixpointCapTriggers) {
  // A genuinely divergent cycle: each round trip appends a character.
  // Compile-time analysis cannot prove divergence (allow_cycles), so
  // runtime detection must catch it (§4.2 "at execution time").
  MappingSet set = BuildSet(R"(
mapping AtoB from a to b {
  option allow_cycles = true;
  map concat(x, "!") -> y;
}
mapping BtoA from b to a {
  option allow_cycles = true;
  map concat(y, "?") -> x;
}
)");
  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record old_a("a");
  old_a.SetOne("x", "seed");
  base.emplace("a", old_a);
  Record new_a("a");
  new_a.SetOne("x", "changed");
  auto result = set.Propagate(base, "a", new_a, {"x"}, /*max_iter=*/8);
  // 'x' is explicit so the b->a echo cannot overwrite it; the cycle
  // stalls at a fixpoint... unless x is not explicit:
  auto divergent = set.Propagate(base, "a", new_a, {}, /*max_iter=*/8);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(divergent.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CycleAnalysisTest, IdentityCycleIsConvergent) {
  MappingSet set = BuildSet(R"(
mapping AtoB from a to b { map x -> y; }
mapping BtoA from b to a { map y -> x; }
)");
  auto warnings = set.AnalyzeCycles();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_TRUE(warnings[0].convergent);
  EXPECT_TRUE(set.Validate().ok());
}

TEST(CycleAnalysisTest, TransformingCycleRejectedAtCompileTime) {
  // §4.2: "at compile time (if a fixpoint can never be reached)".
  MappingSet set = BuildSet(R"(
mapping AtoB from a to b { map concat(x, "!") -> y; }
mapping BtoA from b to a { map y -> x; }
)");
  auto warnings = set.AnalyzeCycles();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_FALSE(warnings[0].convergent);
  EXPECT_EQ(set.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(CycleAnalysisTest, AllowCyclesDefersToRuntime) {
  MappingSet set = BuildSet(R"(
mapping AtoB from a to b {
  option allow_cycles = true;
  map concat(x, "!") -> y;
}
mapping BtoA from b to a { map y -> x; }
)");
  EXPECT_TRUE(set.Validate().ok());
}

TEST(CycleAnalysisTest, AcyclicMappingsHaveNoWarnings) {
  MappingSet set = BuildSet(R"(
mapping AtoB from a to b { map upper(x) -> y; map z -> w; }
)");
  EXPECT_TRUE(set.AnalyzeCycles().empty());
  EXPECT_TRUE(set.Validate().ok());
}

TEST(MappingSetTest, FromAndInto) {
  MappingSet set = BuildSet(kThreeWay);
  EXPECT_EQ(set.From("ldap").size(), 2u);
  EXPECT_EQ(set.Into("ldap").size(), 2u);
  EXPECT_EQ(set.From("pbx").size(), 1u);
  EXPECT_EQ(set.From("nowhere").size(), 0u);
}

TEST(ClosureTest, FirstMappingWinsAcrossMappings) {
  // Two mappings target the same attribute in schema c; the one that
  // fires first owns it for the rest of the closure.
  MappingSet set = BuildSet(R"(
mapping AtoC from a to c { map x -> out; }
mapping BtoC from b to c { map y -> out; }
mapping AtoB from a to b { map x -> y_src; }
)");
  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record old_a("a");
  old_a.SetOne("x", "old");
  base.emplace("a", old_a);
  Record old_b("b");
  old_b.SetOne("y", "from-b");
  base.emplace("b", old_b);

  Record new_a("a");
  new_a.SetOne("x", "from-a");
  auto result = set.Propagate(base, "a", new_a, {"x"});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.at("c").GetFirst("out"), "from-a");
}

TEST(ClosureTest, DeviceGeneratedInfoStyleSeed) {
  // Seeding a device-schema update (e.g. the MP minting SubscriberId)
  // flows into ldap through MpToLdap only.
  MappingSet set = BuildSet(kThreeWay);
  std::map<std::string, Record, CaseInsensitiveLess> base;
  Record old_mp("mp");
  old_mp.SetOne("MailboxNumber", "9000");
  base.emplace("mp", old_mp);

  Record new_mp = old_mp;
  new_mp.SetOne("SubscriberId", "SUB000042");
  auto result = set.Propagate(base, "mp", new_mp, {"SubscriberId"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.at("ldap").GetFirst("MpSubscriberId"),
            "SUB000042");
}

}  // namespace
}  // namespace metacomm::lexpress
